// tsf_trace — inspector for tsf-trace/1 binary trace streams.
//
// Usage:
//   tsf_trace dump <trace> [--vcd]   materialize and print CSV (default)
//                                    or a value-change dump
//   tsf_trace summarize <trace>      one streaming pass: record/kind counts,
//                                    busy time, response quantiles and the
//                                    trace fingerprint — O(entities) memory
//                                    regardless of trace length
//   tsf_trace diff <a> <b>           first diverging record of two traces;
//                                    exit 1 when they differ
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/trace.h"
#include "common/trace_io.h"
#include "common/trace_sink.h"
#include "common/trace_stream.h"

namespace {

using namespace tsf;

int usage() {
  std::cerr << "usage: tsf_trace dump <trace> [--vcd]\n"
               "       tsf_trace summarize <trace>\n"
               "       tsf_trace diff <a> <b>\n";
  return 2;
}

bool replay_file(const std::string& path, common::TraceSink* sink) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot read '" << path << "'\n";
    return false;
  }
  std::string error;
  if (!common::read_trace(in, sink, &error)) {
    std::cerr << "error: " << path << ": " << error << '\n';
    return false;
  }
  return true;
}

std::string render_record(const common::TraceRecord& r) {
  std::string out = std::to_string(r.at.ticks());
  out += ' ';
  out += common::to_string(r.kind);
  out += ' ';
  out += r.who;
  out += " value=" + std::to_string(r.value);
  if (!r.note.empty()) out += " note=" + r.note;
  return out;
}

int cmd_dump(const std::string& path, bool vcd) {
  common::Timeline timeline;
  if (!replay_file(path, &timeline)) return 2;
  if (vcd) {
    std::cout << common::to_vcd(timeline, timeline.entities());
  } else {
    std::cout << timeline.to_csv();
  }
  return 0;
}

int cmd_summarize(const std::string& path) {
  common::StreamingFingerprint fingerprint;
  common::StreamingTraceMetrics metrics;
  common::TeeSink tee;
  tee.add(&fingerprint);
  tee.add(&metrics);
  if (!replay_file(path, &tee)) return 2;
  metrics.finish();

  std::printf("records      %llu\n",
              static_cast<unsigned long long>(metrics.records()));
  std::printf("retractions  %llu\n",
              static_cast<unsigned long long>(metrics.retractions()));
  std::printf("entities     %zu\n", metrics.entity_count());
  std::printf("span ticks   [%lld, %lld]\n",
              static_cast<long long>(metrics.first_ticks()),
              static_cast<long long>(metrics.last_ticks()));
  std::printf("busy ticks   %lld\n",
              static_cast<long long>(metrics.busy_ticks()));
  std::printf("kinds       ");
  for (std::size_t k = 0; k < common::kTraceKindCount; ++k) {
    const auto count = metrics.kind_count(static_cast<common::TraceKind>(k));
    if (count == 0) continue;
    std::printf(" %s=%llu", common::to_string(static_cast<common::TraceKind>(k)),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  const auto& responses = metrics.response_stats();
  if (!responses.empty()) {
    const auto& sketch = metrics.response_sketch();
    std::printf("responses    n=%zu mean=%.4f tu  p50=%.4f p95=%.4f p99=%.4f"
                " (±%.0f%%)\n",
                responses.count(), responses.mean(), sketch.p50(),
                sketch.p95(), sketch.p99(),
                sketch.relative_accuracy() * 100.0);
  }
  std::printf("fingerprint  %016llx\n",
              static_cast<unsigned long long>(fingerprint.digest()));
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  common::Timeline a, b;
  if (!replay_file(path_a, &a) || !replay_file(path_b, &b)) return 2;

  const auto& ra = a.records();
  const auto& rb = b.records();
  const std::size_t n = std::min(ra.size(), rb.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& x = ra[i];
    const auto& y = rb[i];
    if (x.at == y.at && x.kind == y.kind && x.who == y.who &&
        x.value == y.value && x.note == y.note) {
      continue;
    }
    std::printf("record %zu differs:\n  a: %s\n  b: %s\n", i,
                render_record(x).c_str(), render_record(y).c_str());
    return 1;
  }
  if (ra.size() != rb.size()) {
    const bool a_longer = ra.size() > rb.size();
    std::printf("%s has %zu extra record(s) starting at %zu:\n  %s\n",
                a_longer ? "a" : "b",
                (a_longer ? ra.size() : rb.size()) - n, n,
                render_record(a_longer ? ra[n] : rb[n]).c_str());
    return 1;
  }
  std::printf("traces identical: %zu records, fingerprint %016llx\n",
              ra.size(),
              static_cast<unsigned long long>(common::fingerprint(a)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  if (command == "dump") {
    bool vcd = false;
    std::string path;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--vcd") == 0) {
        vcd = true;
      } else if (path.empty()) {
        path = argv[i];
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    return cmd_dump(path, vcd);
  }
  if (command == "summarize") {
    if (argc != 3) return usage();
    return cmd_summarize(argv[2]);
  }
  if (command == "diff") {
    if (argc != 4) return usage();
    return cmd_diff(argv[2], argv[3]);
  }
  return usage();
}
