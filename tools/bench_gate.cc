// bench_gate — CI gate comparing a bench's --json output against the
// committed baseline under bench/baselines/.
//
// Usage:
//   bench_gate --baseline bench/baselines/cross_core.json \
//              --current out/cross_core.json [--tolerance 0.05]
//
// Both files use the "tsf-bench/1" schema: {"schema", "bench", "metrics":
// [{"name", "value", "higher_is_better"}]}. Every baseline metric must be
// present in the current run and within the relative tolerance in its good
// direction (latencies may not rise more than |baseline|*tol above the
// baseline, throughput may not fall more than |baseline|*tol below it —
// magnitude-relative, so negative baselines keep a sane band). A zero
// baseline gets the tolerance as an absolute bound, in both directions
// (common/gate_check.h holds the testable rule). Extra current metrics are
// reported but don't fail.
//
// All tracked metrics are virtual-time quantities of deterministic runs, so
// in a healthy tree current == baseline exactly; the tolerance only keeps
// the gate from tripping on an intentional small change while CHANGES are
// in flight. To update after an intentional change:
//   ./build/bench_cross_core --json bench/baselines/cross_core.json
//   ./build/bench_mp_scaling --json bench/baselines/mp_scaling.json
// and commit the diff with a sentence on why the numbers moved.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/gate_check.h"
#include "common/json_reader.h"

namespace {

struct Metric {
  double value = 0.0;
  bool higher_is_better = false;
};

bool load_metrics(const std::string& path, std::string* bench_name,
                  std::map<std::string, Metric>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot read '" << path << "'\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  tsf::common::JsonValue doc;
  std::string error;
  if (!tsf::common::json_parse(buffer.str(), &doc, &error)) {
    std::cerr << "error: " << path << ": " << error << '\n';
    return false;
  }
  const auto* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "tsf-bench/1") {
    std::cerr << "error: " << path << ": not a tsf-bench/1 document\n";
    return false;
  }
  if (const auto* bench = doc.find("bench")) *bench_name = bench->as_string();
  const auto* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    std::cerr << "error: " << path << ": missing metrics array\n";
    return false;
  }
  for (const auto& entry : metrics->as_array()) {
    const auto* name = entry.find("name");
    const auto* value = entry.find("value");
    if (name == nullptr || value == nullptr || !value->is_number()) {
      std::cerr << "error: " << path << ": malformed metric entry\n";
      return false;
    }
    Metric m;
    m.value = value->as_number();
    if (const auto* hib = entry.find("higher_is_better")) {
      m.higher_is_better = hib->as_bool();
    }
    (*out)[name->as_string()] = m;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  double tolerance = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--current") == 0 && i + 1 < argc) {
      current_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      char* end = nullptr;
      tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "bad --tolerance value '" << argv[i] << "'\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_gate --baseline FILE --current FILE"
                   " [--tolerance 0.05]\n";
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty() || tolerance < 0.0 ||
      !std::isfinite(tolerance)) {
    std::cerr << "usage: bench_gate --baseline FILE --current FILE"
                 " [--tolerance 0.05]\n";
    return 2;
  }

  std::string baseline_bench, current_bench;
  std::map<std::string, Metric> baseline, current;
  if (!load_metrics(baseline_path, &baseline_bench, &baseline) ||
      !load_metrics(current_path, &current_bench, &current)) {
    return 2;
  }
  if (!baseline_bench.empty() && baseline_bench != current_bench) {
    std::cerr << "error: bench mismatch: baseline is '" << baseline_bench
              << "', current is '" << current_bench << "'\n";
    return 2;
  }

  int regressions = 0;
  for (const auto& [name, base] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      std::printf("MISSING  %-48s baseline %.6g\n", name.c_str(), base.value);
      ++regressions;
      continue;
    }
    const double cur = it->second.value;
    const auto verdict = tsf::common::gate_check(base.value, cur, tolerance,
                                                 base.higher_is_better);
    std::printf("%-8s %-48s baseline %-12.6g current %-12.6g limit %.6g\n",
                verdict.regressed ? "REGRESS" : "ok", name.c_str(), base.value,
                cur, verdict.limit);
    if (verdict.regressed) ++regressions;
  }
  for (const auto& [name, m] : current) {
    if (baseline.count(name) == 0) {
      std::printf("new      %-48s current %.6g (untracked; update the"
                  " baseline to start gating it)\n",
                  name.c_str(), m.value);
    }
  }

  if (regressions > 0) {
    std::printf(
        "\n%d tracked metric(s) regressed beyond %.0f%% of baseline.\n"
        "If the change is intentional, regenerate the baseline:\n"
        "  ./build/bench_%s --json %s\n"
        "and commit it with a note on why the numbers moved.\n",
        regressions, tolerance * 100.0, current_bench.c_str(),
        baseline_path.c_str());
    return 1;
  }
  std::printf("\nall %zu tracked metrics within %.0f%% of baseline\n",
              baseline.size(), tolerance * 100.0);
  return 0;
}
