// tsf_run — run a system spec file on the simulator and/or the RTSJ-style
// runtime and print outcomes, metrics and Gantt charts.
//
// Usage:   tsf_run <spec-file> [--mode sim|exec|both]
//                  [--backend lockstep|threads] [--batch N] [--no-gantt]
//                  [--vcd FILE] [--trace FILE] [--metrics-json FILE]
// See examples/specs/ for spec files and src/cli/spec_file.h for the format.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "cli/report.h"
#include "cli/spec_file.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: tsf_run <spec-file> [--mode sim|exec|both]"
                 " [--backend lockstep|threads] [--batch <n>] [--no-gantt]"
                 " [--vcd <file>] [--trace <file>] [--metrics-json <file>]\n";
    return 2;
  }
  auto outcome = tsf::cli::load_spec_file(argv[1]);
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "sim") {
        outcome.config.mode = tsf::cli::RunMode::kSim;
      } else if (mode == "exec") {
        outcome.config.mode = tsf::cli::RunMode::kExec;
      } else if (mode == "both") {
        outcome.config.mode = tsf::cli::RunMode::kBoth;
      } else {
        std::cerr << "unknown --mode '" << mode << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      const auto backend = tsf::mp::parse_exec_backend(argv[++i]);
      if (!backend.has_value()) {
        std::cerr << "unknown --backend '" << argv[i] << "'\n";
        return 2;
      }
      outcome.config.backend = *backend;
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      const int batch = std::atoi(argv[++i]);
      if (batch < 1) {
        std::cerr << "--batch needs a positive count, got '" << argv[i]
                  << "'\n";
        return 2;
      }
      outcome.config.exec_options.batch = batch;
    } else if (std::strcmp(argv[i], "--no-gantt") == 0) {
      outcome.config.gantt = false;
    } else if (std::strcmp(argv[i], "--vcd") == 0 && i + 1 < argc) {
      outcome.config.vcd_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      outcome.config.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      outcome.config.metrics_json_path = argv[++i];
    } else {
      std::cerr << "unknown argument '" << argv[i] << "'\n";
      return 2;
    }
  }
  if (!outcome.ok()) {
    for (const auto& error : outcome.errors) {
      std::cerr << "error: " << error << '\n';
    }
    return 1;
  }
  std::cout << tsf::cli::run_and_report(outcome.config);
  return 0;
}
