// Token stream for tsf_lint's rule passes.
//
// This is deliberately a lexer, not a compiler front end: it strips
// comments, collapses string/char literals, skips preprocessor directives
// (so macro *definitions* are never misread as code — only their use sites
// are seen), and keeps line numbers. The analyzer's function/call/scope
// recognition is heuristic over this stream; the rules it feeds are token
// rules (forbidden identifiers, keywords, annotation markers), which is
// exactly the level at which the TSF_* contracts are written.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tsf::lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kPunct,    // operators and punctuation, one string per token ("::", "->")
  kNumber,   // numeric literals (collapsed)
  kString,   // string/char literals (collapsed; contents dropped)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

// One `// TSF_LINT_ALLOW[rule]: justification` comment. Suppresses findings
// of `rule` on its own line or on the line directly below the comment block
// it opens (directly-following full-line `//` comments extend the block, so
// a justification may wrap). An empty justification is invalid and reported
// as a finding by the analyzer.
struct Suppression {
  int line = 0;      // line of the TSF_LINT_ALLOW comment itself
  int end_line = 0;  // last line of the comment block it opens
  std::string rule;
  std::string justification;
  mutable bool used = false;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

// Lexes `source`. Never fails: unterminated constructs are closed at EOF
// (the lint must degrade gracefully on any input it is pointed at).
LexedFile lex(std::string path, std::string_view source);

}  // namespace tsf::lint
