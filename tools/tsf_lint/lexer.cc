#include "tsf_lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace tsf::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators the analyzer cares about distinguishing. Anything
// else becomes a single-char punct token.
bool starts_with(std::string_view s, std::size_t i, std::string_view p) {
  return s.compare(i, p.size(), p) == 0;
}

// Parses a `TSF_LINT_ALLOW[rule]: justification` body out of a comment's
// text; returns false when the comment is not a suppression.
bool parse_suppression(std::string_view comment, int line, Suppression* out) {
  const std::size_t at = comment.find("TSF_LINT_ALLOW[");
  if (at == std::string_view::npos) return false;
  // Only a comment that *is* a suppression counts — documentation that
  // quotes the marker mid-sentence (or a nested `// TSF_LINT_ALLOW`
  // example) must not create one.
  for (std::size_t p = 0; p < at; ++p) {
    if (!std::isspace(static_cast<unsigned char>(comment[p]))) return false;
  }
  std::size_t i = at + std::string_view("TSF_LINT_ALLOW[").size();
  const std::size_t close = comment.find(']', i);
  if (close == std::string_view::npos) return false;
  out->line = line;
  out->rule = std::string(comment.substr(i, close - i));
  std::size_t j = close + 1;
  if (j < comment.size() && comment[j] == ':') ++j;
  while (j < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[j]))) {
    ++j;
  }
  std::size_t end = comment.size();
  while (end > j &&
         std::isspace(static_cast<unsigned char>(comment[end - 1]))) {
    --end;
  }
  out->justification = std::string(comment.substr(j, end - j));
  return true;
}

}  // namespace

LexedFile lex(std::string path, std::string_view src) {
  LexedFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto skip_line_remainder = [&]() {
    // Consumes to end-of-line honoring backslash continuations (so a whole
    // macro definition is skipped, not just its first line).
    while (i < n) {
      if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
        i += 2;
        ++line;
        continue;
      }
      if (src[i] == '\n') return;  // leave the newline for the main loop
      ++i;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: only when '#' is the first non-space on the
    // line, which is guaranteed here because '#' is not part of any token
    // we emit — a mid-line '#' only occurs inside skipped directives.
    if (c == '#') {
      skip_line_remainder();
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      skip_line_remainder();
      Suppression s;
      if (parse_suppression(src.substr(start, i - start), line, &s)) {
        s.end_line = s.line;
        out.suppressions.push_back(std::move(s));
      } else if (!out.suppressions.empty()) {
        // A full-line `//` comment directly under a suppression comment
        // continues its block (wrapped justifications anchor to the code
        // line below the whole block).
        Suppression& prev = out.suppressions.back();
        const int last_token_line =
            out.tokens.empty() ? 0 : out.tokens.back().line;
        if (prev.end_line == line - 1 && last_token_line < line) {
          prev.end_line = line;
        }
      }
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i + 2;
      const int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      const std::size_t end = i;
      i = (i + 1 < n) ? i + 2 : n;
      Suppression s;
      if (parse_suppression(src.substr(start, end - start), start_line, &s)) {
        s.end_line = line;  // a /* */ block may span lines
        out.suppressions.push_back(std::move(s));
      }
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n' &&
             delim.size() <= 16) {
        delim.push_back(src[j++]);
      }
      if (j < n && src[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        std::size_t k = src.find(closer, j + 1);
        if (k == std::string_view::npos) k = n;
        for (std::size_t p = i; p < k && p < n; ++p) {
          if (src[p] == '\n') ++line;
        }
        out.tokens.push_back({TokKind::kString, "\"\"", line});
        i = (k == n) ? n : k + closer.size();
        continue;
      }
      // Not actually a raw string; fall through to identifier handling.
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // tolerate unterminated literals
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({TokKind::kString, "\"\"", line});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(src[j])) ++j;
      out.tokens.push_back(
          {TokKind::kIdent, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      // Good enough for C++ numeric literals incl. hex/exponents/quotes.
      while (j < n && (is_ident_char(src[j]) || src[j] == '.' ||
                       src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, "0", line});
      i = j;
      continue;
    }
    // Punctuation. Only '::' and '->' need to stay whole for the analyzer.
    if (starts_with(src, i, "::") || starts_with(src, i, "->")) {
      out.tokens.push_back({TokKind::kPunct, std::string(src.substr(i, 2)),
                            line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace tsf::lint
