#include "tsf_lint/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace tsf::lint {
namespace {

unsigned annotation_for(const std::string& t) {
  if (t == "TSF_REALTIME") return kRealtime;
  if (t == "TSF_NO_ALLOC") return kNoAlloc;
  if (t == "TSF_DETERMINISM_CRITICAL") return kDeterminismCritical;
  if (t == "TSF_BARRIER_ONLY") return kBarrierOnly;
  if (t == "TSF_WORKER_PHASE") return kWorkerPhase;
  return 0;
}

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",    "switch",   "return",
      "catch",    "sizeof",   "alignof",  "alignas",  "decltype",
      "noexcept", "static_assert",        "typeid",   "co_await",
      "co_return", "co_yield", "requires", "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast"};
  return kw;
}

// Statement keywords that may directly precede a call expression — a call
// candidate whose previous token is any *other* identifier is treated as a
// declaration (`Type name(...)`) and skipped.
const std::set<std::string>& call_preceders() {
  static const std::set<std::string> kw = {"return", "throw", "else",
                                           "do",     "goto",  "case"};
  return kw;
}

struct BadToken {
  const char* token;
  const char* rule;
  const char* what;
  bool call_only;  // flag only when followed by '(' (function-style use)
};

// Rule family 1: RT-safety. `rt-alloc` applies to TSF_NO_ALLOC and
// TSF_REALTIME; the rest to TSF_REALTIME only.
const BadToken kRtBad[] = {
    {"malloc", "rt-alloc", "malloc", true},
    {"calloc", "rt-alloc", "calloc", true},
    {"realloc", "rt-alloc", "realloc", true},
    {"free", "rt-alloc", "free", true},
    {"strdup", "rt-alloc", "strdup", true},
    {"strndup", "rt-alloc", "strndup", true},
    {"posix_memalign", "rt-alloc", "posix_memalign", true},
    {"aligned_alloc", "rt-alloc", "aligned_alloc", true},
    {"make_unique", "rt-alloc", "std::make_unique", true},
    {"make_shared", "rt-alloc", "std::make_shared", true},
    {"new", "rt-alloc", "operator new", false},
    {"delete", "rt-alloc", "operator delete", false},
    {"mutex", "rt-block", "std::mutex", false},
    {"recursive_mutex", "rt-block", "std::recursive_mutex", false},
    {"timed_mutex", "rt-block", "std::timed_mutex", false},
    {"shared_mutex", "rt-block", "std::shared_mutex", false},
    {"condition_variable", "rt-block", "std::condition_variable", false},
    {"condition_variable_any", "rt-block", "std::condition_variable_any",
     false},
    {"lock_guard", "rt-block", "std::lock_guard", false},
    {"unique_lock", "rt-block", "std::unique_lock", false},
    {"scoped_lock", "rt-block", "std::scoped_lock", false},
    {"shared_lock", "rt-block", "std::shared_lock", false},
    {"sleep", "rt-block", "sleep", true},
    {"usleep", "rt-block", "usleep", true},
    {"nanosleep", "rt-block", "nanosleep", true},
    {"sleep_for", "rt-block", "sleep_for", true},
    {"sleep_until", "rt-block", "sleep_until", true},
    {"pthread_mutex_lock", "rt-block", "pthread_mutex_lock", true},
    {"pthread_cond_wait", "rt-block", "pthread_cond_wait", true},
    {"sem_wait", "rt-block", "sem_wait", true},
    {"printf", "rt-io", "printf", true},
    {"fprintf", "rt-io", "fprintf", true},
    {"vfprintf", "rt-io", "vfprintf", true},
    {"puts", "rt-io", "puts", true},
    {"fputs", "rt-io", "fputs", true},
    {"fopen", "rt-io", "fopen", true},
    {"fclose", "rt-io", "fclose", true},
    {"fread", "rt-io", "fread", true},
    {"fwrite", "rt-io", "fwrite", true},
    {"fflush", "rt-io", "fflush", true},
    {"cout", "rt-io", "std::cout", false},
    {"cerr", "rt-io", "std::cerr", false},
    {"clog", "rt-io", "std::clog", false},
    {"ofstream", "rt-io", "std::ofstream", false},
    {"ifstream", "rt-io", "std::ifstream", false},
    {"fstream", "rt-io", "std::fstream", false},
    {"throw", "rt-throw", "throw expression", false},
};

// Rule family 2: determinism. Wall clocks and ambient randomness must not
// feed fingerprints, trace output or JSON. steady_clock is deliberately
// absent: host-seconds gauges are allowed to be non-reproducible.
const BadToken kDetBad[] = {
    {"rand", "det-random", "rand()", true},
    {"srand", "det-random", "srand()", true},
    {"rand_r", "det-random", "rand_r()", true},
    {"drand48", "det-random", "drand48()", true},
    {"lrand48", "det-random", "lrand48()", true},
    {"random_shuffle", "det-random", "std::random_shuffle", true},
    {"random_device", "det-random", "std::random_device", false},
    {"default_random_engine", "det-random", "std::default_random_engine",
     false},
    {"system_clock", "det-clock", "std::chrono::system_clock", false},
    {"high_resolution_clock", "det-clock",
     "std::chrono::high_resolution_clock", false},
    {"gettimeofday", "det-clock", "gettimeofday()", true},
    {"localtime", "det-clock", "localtime()", true},
    {"gmtime", "det-clock", "gmtime()", true},
    {"strftime", "det-clock", "strftime()", true},
};

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "rt-alloc",   "rt-block",  "rt-io",
      "rt-throw",   "det-random", "det-clock",
      "det-unordered-iter", "phase-order"};
  return rules;
}

bool is_unordered_container(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

void Analyzer::add_file(LexedFile file) { files_.push_back(std::move(file)); }

// ------------------------------------------------------------- extraction

void Analyzer::extract(std::size_t fi) {
  const std::vector<Token>& toks = files_[fi].tokens;
  std::vector<std::string>& unordered = unordered_names_[fi];

  struct Scope {
    std::string name;
    bool is_class = false;
    int depth = 0;  // brace depth *inside* the scope
  };
  std::vector<Scope> scopes;
  int depth = 0;
  std::size_t last_boundary = 0;   // token index of the last ; { } or ':'
  std::size_t current_body_end = 0;  // nothing inside a body is re-scanned

  auto is_punct = [&](std::size_t i, const char* p) {
    return i < toks.size() && toks[i].kind == TokKind::kPunct &&
           toks[i].text == p;
  };
  auto is_ident = [&](std::size_t i) {
    return i < toks.size() && toks[i].kind == TokKind::kIdent;
  };
  auto match_forward = [&](std::size_t open, const char* o, const char* c) {
    // Index of the punct matching toks[open]; toks.size() when unmatched.
    int bal = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
      if (is_punct(j, o)) ++bal;
      if (is_punct(j, c) && --bal == 0) return j;
    }
    return toks.size();
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++depth;
        last_boundary = i;
      } else if (t.text == "}") {
        --depth;
        last_boundary = i;
        while (!scopes.empty() && scopes.back().depth > depth) {
          scopes.pop_back();
        }
      } else if (t.text == ";") {
        last_boundary = i;
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    // Access specifiers reset the annotation window.
    if ((t.text == "public" || t.text == "private" ||
         t.text == "protected") &&
        is_punct(i + 1, ":")) {
      last_boundary = i + 1;
      ++i;
      continue;
    }

    // namespace N { ... } — push a named (or anonymous) namespace scope.
    if (t.text == "namespace") {
      std::size_t j = i + 1;
      std::string name;
      while (is_ident(j) || is_punct(j, "::")) {
        name += toks[j].text;
        ++j;
      }
      if (is_punct(j, "{")) {
        ++depth;
        scopes.push_back({name, /*is_class=*/false, depth});
        last_boundary = j;
        i = j;
      }
      continue;
    }

    // class/struct definition — push a class scope (skip `enum class`).
    if ((t.text == "class" || t.text == "struct") &&
        !(i > 0 && is_ident(i - 1) && toks[i - 1].text == "enum")) {
      std::size_t j = i + 1;
      std::string name;
      if (is_ident(j)) {
        name = toks[j].text;
        ++j;
        // `struct Outer::Inner : Base {` — the innermost name is the class.
        while (is_punct(j, "::") && is_ident(j + 1)) {
          name = toks[j + 1].text;
          j += 2;
        }
      }
      int angle = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(j, "<")) ++angle;
        if (is_punct(j, ">")) --angle;
        if (angle > 0) continue;
        if (is_punct(j, ";") || is_punct(j, "(") || is_punct(j, "=")) break;
        if (is_punct(j, "{")) {
          ++depth;
          scopes.push_back({name, /*is_class=*/true, depth});
          last_boundary = j;
          i = j;
          break;
        }
      }
      continue;
    }

    // Unordered-container declarations: `unordered_map<...> name`.
    if (is_unordered_container(t.text) && is_punct(i + 1, "<")) {
      const std::size_t close = match_forward(i + 1, "<", ">");
      if (close < toks.size() && is_ident(close + 1)) {
        unordered.push_back(toks[close + 1].text);
      }
      continue;
    }

    // Member-variable declarations directly in a class body — `Type<...>*
    // name ;` (with optional = / { initializer) — feed the receiver-typed
    // call resolution. The depth check keeps method-body locals out.
    if (!scopes.empty() && scopes.back().is_class &&
        depth == scopes.back().depth) {
      std::size_t j = i;
      while (is_ident(j) &&
             (toks[j].text == "static" || toks[j].text == "const" ||
              toks[j].text == "mutable" || toks[j].text == "constexpr" ||
              toks[j].text == "inline" || toks[j].text == "volatile")) {
        ++j;
      }
      if (is_ident(j) && keywords().count(toks[j].text) == 0) {
        std::string type = toks[j].text;
        ++j;
        while (is_punct(j, "::") && is_ident(j + 1)) {
          type = toks[j + 1].text;
          j += 2;
        }
        if (is_punct(j, "<")) {
          const std::size_t close = match_forward(j, "<", ">");
          // Smart pointers forward operator-> to the pointee: the receiver's
          // effective type is the last name inside the angle brackets.
          if ((type == "unique_ptr" || type == "shared_ptr") &&
              close < toks.size() && is_ident(close - 1)) {
            type = toks[close - 1].text;
          }
          j = close;
          if (j < toks.size()) ++j;
        }
        while (is_punct(j, "*") || is_punct(j, "&")) ++j;
        if (is_ident(j) && type != "using" && type != "typedef" &&
            (is_punct(j + 1, ";") || is_punct(j + 1, "=") ||
             is_punct(j + 1, "{"))) {
          member_types_[scopes.back().name][toks[j].text] = type;
        }
      }
    }

    // Function signature candidate: ident '(' ...
    if (!is_punct(i + 1, "(")) continue;
    if (keywords().count(t.text) != 0) continue;
    if (i > 0 && (is_punct(i - 1, ".") || is_punct(i - 1, "->"))) continue;

    const std::size_t close = match_forward(i + 1, "(", ")");
    if (close >= toks.size()) continue;

    // Walk the trailer to decide definition / declaration / neither.
    std::size_t k = close + 1;
    bool is_def = false, is_decl = false;
    std::size_t body_open = 0;
    while (k < toks.size()) {
      if (is_ident(k) && (toks[k].text == "const" ||
                          toks[k].text == "override" ||
                          toks[k].text == "final" ||
                          toks[k].text == "mutable" ||
                          toks[k].text == "volatile" ||
                          toks[k].text == "noexcept")) {
        if (toks[k].text == "noexcept" && is_punct(k + 1, "(")) {
          k = match_forward(k + 1, "(", ")");
          if (k >= toks.size()) break;
        }
        ++k;
        continue;
      }
      if (is_punct(k, "->")) {  // trailing return type
        ++k;
        while (k < toks.size() && !is_punct(k, "{") && !is_punct(k, ";") &&
               !is_punct(k, "=")) {
          ++k;
        }
        continue;
      }
      if (is_punct(k, ":")) {  // constructor init list
        ++k;
        bool ok = true;
        while (k < toks.size()) {
          while (is_ident(k) || is_punct(k, "::") || is_punct(k, "<") ||
                 is_punct(k, ">") || is_punct(k, ",")) {
            // `,` between list entries; idents/templates within names.
            ++k;
          }
          if (is_punct(k, "(")) {
            k = match_forward(k, "(", ")") + 1;
            continue;
          }
          if (is_punct(k, "{")) {
            // Either a brace-init entry or the body. A brace-init is
            // followed by ',' or the body's '{'; the body ends the list.
            const std::size_t end = match_forward(k, "{", "}");
            if (end < toks.size() &&
                (is_punct(end + 1, ",") || is_punct(end + 1, "{"))) {
              k = end + 1;
              continue;
            }
            break;  // this '{' opens the body
          }
          ok = false;
          break;
        }
        if (!ok || k >= toks.size() || !is_punct(k, "{")) {
          is_def = is_decl = false;
        } else {
          is_def = true;
          body_open = k;
        }
        break;
      }
      if (is_punct(k, "{")) {
        is_def = true;
        body_open = k;
        break;
      }
      if (is_punct(k, ";")) {
        is_decl = true;
        break;
      }
      if (is_punct(k, "=")) {
        if ((toks[k + 1].kind == TokKind::kNumber ||
             (is_ident(k + 1) && (toks[k + 1].text == "default" ||
                                  toks[k + 1].text == "delete"))) &&
            is_punct(k + 2, ";")) {
          is_decl = true;
        }
        break;
      }
      break;  // anything else: not a function signature
    }
    if (!is_def && !is_decl) continue;
    if (i < current_body_end) continue;  // inside another function's body

    // Qualified name: explicit Class:: wins, then enclosing class scope.
    std::string qualifier;
    std::size_t sig_name_start = i;
    {
      std::size_t r = i;
      while (r >= 2 && is_punct(r - 1, "::") && is_ident(r - 2)) {
        if (qualifier.empty()) qualifier = toks[r - 2].text;
        r -= 2;
        sig_name_start = r;
      }
      // Innermost explicit qualifier is the owning class: A::B::f -> B.
      if (!qualifier.empty()) qualifier = toks[i - 2].text;
    }
    if (qualifier.empty()) {
      for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        if (it->is_class) {
          qualifier = it->name;
          break;
        }
      }
    }

    FunctionInfo fn;
    fn.simple = t.text;
    fn.qualified = qualifier.empty() ? fn.simple : qualifier + "::" + fn.simple;
    fn.file_index = fi;
    fn.line = t.line;
    for (std::size_t a = last_boundary; a < sig_name_start; ++a) {
      if (toks[a].kind == TokKind::kIdent) {
        fn.annotations |= annotation_for(toks[a].text);
      }
    }
    if (is_def) {
      const std::size_t body_close = match_forward(body_open, "{", "}");
      fn.has_body = true;
      fn.body_begin = body_open;
      fn.body_end = body_close;
      current_body_end = body_close;
      // Collect call sites inside the body.
      for (std::size_t c = body_open + 1; c < body_close; ++c) {
        if (toks[c].kind != TokKind::kIdent) continue;
        if (!is_punct(c + 1, "(")) continue;
        if (keywords().count(toks[c].text) != 0) continue;
        if (c > 0 && is_ident(c - 1) &&
            call_preceders().count(toks[c - 1].text) == 0) {
          continue;  // `Type name(...)` declaration, not a call
        }
        Call call;
        call.name = toks[c].text;
        call.line = toks[c].line;
        if (c >= 2 && is_punct(c - 1, "::") && is_ident(c - 2)) {
          call.qualifier = toks[c - 2].text;
        } else if (c >= 1 &&
                   (is_punct(c - 1, ".") || is_punct(c - 1, "->"))) {
          // Walk the receiver chain leftward: `a.b->f(` yields {"a","b"}.
          // A chain off a non-identifier (a call result, a dereference)
          // stays empty — the resolver treats that as unresolvable.
          call.member_call = true;
          std::size_t r = c - 1;
          while (r >= 1 && (is_punct(r, ".") || is_punct(r, "->")) &&
                 is_ident(r - 1)) {
            call.receiver_chain.insert(call.receiver_chain.begin(),
                                       toks[r - 1].text);
            if (r < 2) break;
            r -= 2;
          }
          if (r >= 1 && (is_punct(r, ".") || is_punct(r, "->")) &&
              !is_ident(r - 1)) {
            call.receiver_chain.clear();  // rooted at an expression
          }
        }
        fn.calls.push_back(std::move(call));
      }
    }
    functions_.push_back(std::move(fn));
  }
}

void Analyzer::merge_annotations() {
  std::map<std::string, unsigned> merged;
  for (const FunctionInfo& f : functions_) {
    merged[f.qualified] |= f.annotations;
  }
  annotated_count_ = 0;
  for (const auto& [name, mask] : merged) {
    if (mask != 0) ++annotated_count_;
  }
  for (FunctionInfo& f : functions_) {
    f.annotations = merged[f.qualified];
  }
}

std::vector<std::size_t> Analyzer::resolve(const Call& call,
                                           const FunctionInfo& caller) const {
  auto collapse = [&](std::vector<std::size_t> in) {
    // A declaration and its out-of-line definition are one function, not an
    // ambiguity: collapse to one entry per qualified name, preferring the
    // entry with a body (annotations are already merged across all of them).
    std::map<std::string, std::size_t> by_name;
    for (std::size_t i : in) {
      auto [it, inserted] = by_name.emplace(functions_[i].qualified, i);
      if (!inserted && functions_[i].has_body &&
          !functions_[it->second].has_body) {
        it->second = i;
      }
    }
    std::vector<std::size_t> out;
    for (const auto& [name, i] : by_name) out.push_back(i);
    return out;
  };
  auto methods_of = [&](const std::string& cls) {
    std::vector<std::size_t> out;
    const std::string wanted = cls + "::" + call.name;
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      if (functions_[i].qualified == wanted) out.push_back(i);
    }
    return collapse(std::move(out));
  };
  const std::string caller_class =
      caller.qualified.size() > caller.simple.size()
          ? caller.qualified.substr(
                0, caller.qualified.size() - caller.simple.size() - 2)
          : std::string();

  if (!call.qualifier.empty()) return methods_of(call.qualifier);

  if (call.member_call) {
    // Walk the receiver chain through the member-type map. A hop through a
    // name we have no type for (a local, a std:: container, an expression)
    // dead-ends the chain — unresolved beats a wrong simple-name guess,
    // which would convict `heap_.pop()` of being `MpscQueue::pop`.
    std::string cls = caller_class;
    for (const std::string& recv : call.receiver_chain) {
      if (recv == "this") continue;
      const auto cls_it = member_types_.find(cls);
      if (cls_it == member_types_.end()) return {};
      const auto mem_it = cls_it->second.find(recv);
      if (mem_it == cls_it->second.end()) return {};
      cls = mem_it->second;
    }
    if (call.receiver_chain.empty()) return {};
    return methods_of(cls);
  }

  // Plain call: the caller's own class first (ordinary member lookup), then
  // the global simple-name match (free functions, inherited members).
  if (!caller_class.empty()) {
    std::vector<std::size_t> own = methods_of(caller_class);
    if (!own.empty()) return own;
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].simple == call.name) out.push_back(i);
  }
  return collapse(std::move(out));
}

// ------------------------------------------------------------ rule passes

namespace {

// Scans a function body for forbidden tokens. `context` is appended to the
// message for direct-callee findings.
void scan_body(const LexedFile& file, const FunctionInfo& fn,
               const BadToken* rules, std::size_t rule_count,
               bool alloc_only, const std::string& holder,
               const std::string& context, std::vector<Finding>* findings) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    for (std::size_t r = 0; r < rule_count; ++r) {
      const BadToken& bad = rules[r];
      if (toks[i].text != bad.token) continue;
      if (alloc_only && std::string_view(bad.rule) != "rt-alloc") continue;
      const bool next_is_paren = i + 1 < toks.size() &&
                                 toks[i + 1].kind == TokKind::kPunct &&
                                 toks[i + 1].text == "(";
      // `<` admits template-argument calls (make_unique<T>(...)).
      const bool next_is_call = next_is_paren ||
                                (i + 1 < toks.size() &&
                                 toks[i + 1].kind == TokKind::kPunct &&
                                 toks[i + 1].text == "<");
      if (bad.call_only && !next_is_call) continue;
      if (std::string_view(bad.token) == "new") {
        const bool after_operator = i > 0 &&
                                    toks[i - 1].kind == TokKind::kIdent &&
                                    toks[i - 1].text == "operator";
        // Placement new constructs in place; only `operator new(...)`
        // spelled out is still an allocation.
        if (next_is_paren && !after_operator) continue;
      }
      Finding f;
      f.file = file.path;
      f.line = toks[i].line;
      f.rule = bad.rule;
      f.function = holder;
      f.message = std::string(bad.what) + " forbidden here" + context;
      findings->push_back(std::move(f));
      break;
    }
  }
}

}  // namespace

void Analyzer::check_rt_rules(std::vector<Finding>* findings) const {
  // (callee index, rule-agnostic) dedupe so one dirty helper shared by many
  // annotated callers is reported once.
  std::set<std::size_t> scanned_callees;
  for (const FunctionInfo& fn : functions_) {
    if (!fn.has_body) continue;
    if ((fn.annotations & (kRealtime | kNoAlloc)) == 0) continue;
    const bool alloc_only = (fn.annotations & kRealtime) == 0;
    const char* marker = alloc_only ? "TSF_NO_ALLOC" : "TSF_REALTIME";
    scan_body(files_[fn.file_index], fn, kRtBad, std::size(kRtBad),
              alloc_only, fn.qualified, "", findings);
    for (const Call& call : fn.calls) {
      const std::vector<std::size_t> cands = resolve(call, fn);
      if (cands.size() != 1) continue;  // ambiguous or unresolved: skip
      const FunctionInfo& callee = functions_[cands[0]];
      if (!callee.has_body) continue;
      if ((callee.annotations & (kRealtime | kNoAlloc)) != 0) continue;
      if (!scanned_callees.insert(cands[0]).second) continue;
      scan_body(files_[callee.file_index], callee, kRtBad, std::size(kRtBad),
                alloc_only, fn.qualified,
                " (in direct callee '" + callee.qualified + "' of " + marker +
                    " '" + fn.qualified + "')",
                findings);
    }
  }
}

void Analyzer::check_det_rules(std::vector<Finding>* findings) const {
  for (const FunctionInfo& fn : functions_) {
    if (!fn.has_body) continue;
    if ((fn.annotations & kDeterminismCritical) == 0) continue;
    const LexedFile& file = files_[fn.file_index];
    scan_body(file, fn, kDetBad, std::size(kDetBad), /*alloc_only=*/false,
              fn.qualified, "", findings);

    // Range-for over an identifier declared (anywhere in this file) with an
    // unordered container type.
    const std::vector<Token>& toks = file.tokens;
    const std::vector<std::string>& unordered =
        unordered_names_[fn.file_index];
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdent || toks[i].text != "for") continue;
      if (!(toks[i + 1].kind == TokKind::kPunct && toks[i + 1].text == "("))
        continue;
      int bal = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < fn.body_end; ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        if (toks[j].text == "(") ++bal;
        if (toks[j].text == ")" && --bal == 0) {
          close = j;
          break;
        }
        if (toks[j].text == ":" && bal == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind != TokKind::kIdent) continue;
        if (std::find(unordered.begin(), unordered.end(), toks[j].text) ==
            unordered.end()) {
          continue;
        }
        Finding f;
        f.file = file.path;
        f.line = toks[j].line;
        f.rule = "det-unordered-iter";
        f.function = fn.qualified;
        f.message = "iteration over unordered container '" + toks[j].text +
                    "' has hash-dependent order";
        findings->push_back(std::move(f));
        break;
      }
    }
  }
}

void Analyzer::check_phase_order(std::vector<Finding>* findings) const {
  std::set<std::pair<std::string, std::string>> reported;
  auto allowed = [&](const FunctionInfo& root, const FunctionInfo& caller,
                     const FunctionInfo& target) {
    for (const AllowEdge& e : allowlist_) {
      const bool from_ok = e.from == root.qualified ||
                           e.from == root.simple ||
                           e.from == caller.qualified ||
                           e.from == caller.simple;
      const bool to_ok = e.to == target.qualified || e.to == target.simple;
      if (from_ok && to_ok) return true;
    }
    return false;
  };

  for (std::size_t w = 0; w < functions_.size(); ++w) {
    const FunctionInfo& root = functions_[w];
    if (!root.has_body) continue;
    if ((root.annotations & kWorkerPhase) == 0) continue;
    if ((root.annotations & kBarrierOnly) != 0) {
      Finding f;
      f.file = files_[root.file_index].path;
      f.line = root.line;
      f.rule = "phase-order";
      f.function = root.qualified;
      f.message = "function is annotated both TSF_WORKER_PHASE and "
                  "TSF_BARRIER_ONLY";
      findings->push_back(std::move(f));
    }

    // BFS from the worker-phase root; parent chain reconstructs the path.
    std::vector<std::size_t> queue = {w};
    std::map<std::size_t, std::size_t> parent;
    std::set<std::size_t> visited = {w};
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const FunctionInfo& cur = functions_[queue[qi]];
      for (const Call& call : cur.calls) {
        const std::vector<std::size_t> cands = resolve(call, cur);
        std::vector<std::size_t> barrier, onward;
        for (std::size_t c : cands) {
          ((functions_[c].annotations & kBarrierOnly) != 0 ? barrier : onward)
              .push_back(c);
        }
        // Only an unambiguous resolution may convict: if the simple name
        // also matches non-barrier definitions the edge is skipped (the
        // allowlist is the escape hatch for real mixed-name cases).
        if (!barrier.empty() && onward.empty()) {
          const FunctionInfo& target = functions_[barrier.front()];
          if (!allowed(root, cur, target) &&
              reported.insert({root.qualified, target.qualified}).second) {
            std::string path = root.qualified;
            std::vector<std::size_t> chain;
            for (std::size_t n = queue[qi]; n != w; n = parent.at(n)) {
              chain.push_back(n);
            }
            for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
              path += " -> " + functions_[*it].qualified;
            }
            path += " -> " + target.qualified;
            Finding f;
            f.file = files_[cur.file_index].path;
            f.line = call.line;
            f.rule = "phase-order";
            f.function = root.qualified;
            f.message = "TSF_BARRIER_ONLY '" + target.qualified +
                        "' is reachable from TSF_WORKER_PHASE code: " + path;
            findings->push_back(std::move(f));
          }
        }
        for (std::size_t c : onward) {
          if (!functions_[c].has_body) continue;
          if (visited.insert(c).second) {
            parent[c] = queue[qi];
            queue.push_back(c);
          }
        }
      }
    }
  }
}

void Analyzer::check_suppression_comments(
    std::vector<Finding>* findings) const {
  for (const LexedFile& file : files_) {
    for (const Suppression& s : file.suppressions) {
      if (known_rules().count(s.rule) == 0) {
        findings->push_back({file.path, s.line, "allow-unknown-rule", "",
                             "TSF_LINT_ALLOW names unknown rule '" + s.rule +
                                 "'"});
      }
      if (s.justification.empty()) {
        findings->push_back({file.path, s.line, "allow-missing-justification",
                             "",
                             "TSF_LINT_ALLOW[" + s.rule +
                                 "] needs a justification after the colon"});
      }
    }
  }
}

void Analyzer::apply_suppressions(std::vector<Finding>* findings) const {
  auto suppressed = [&](const Finding& f) {
    if (f.rule.rfind("allow-", 0) == 0) return false;
    for (const LexedFile& file : files_) {
      if (file.path != f.file) continue;
      for (const Suppression& s : file.suppressions) {
        if (s.rule != f.rule) continue;
        if (s.justification.empty()) continue;
        if (s.line == f.line || s.end_line == f.line - 1) {
          s.used = true;
          return true;
        }
      }
    }
    return false;
  };
  findings->erase(
      std::remove_if(findings->begin(), findings->end(), suppressed),
      findings->end());
}

std::vector<Finding> Analyzer::run() {
  unordered_names_.resize(files_.size());
  for (std::size_t i = 0; i < files_.size(); ++i) extract(i);
  merge_annotations();

  std::vector<Finding> findings;
  check_suppression_comments(&findings);
  check_rt_rules(&findings);
  check_det_rules(&findings);
  check_phase_order(&findings);
  apply_suppressions(&findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

bool parse_allowlist(std::string_view text, std::vector<AllowEdge>* out,
                     std::string* error) {
  std::size_t line_no = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::string note;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      note = trim(line.substr(hash + 1));
      line = line.substr(0, hash);
    }
    const std::string body = trim(line);
    if (body.empty()) continue;
    const std::size_t arrow = body.find("->");
    if (arrow == std::string::npos) {
      *error = "allowlist line " + std::to_string(line_no) +
               ": expected 'from -> to'";
      return false;
    }
    AllowEdge e;
    e.from = trim(body.substr(0, arrow));
    e.to = trim(body.substr(arrow + 2));
    e.note = std::move(note);
    if (e.from.empty() || e.to.empty()) {
      *error = "allowlist line " + std::to_string(line_no) +
               ": empty endpoint";
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

}  // namespace tsf::lint
