// tsf_lint's analysis core: function/annotation/call extraction over the
// lexed token streams, the three rule families, and the phase-order call
// graph. See src/common/annotations.h for the contract each marker states
// and FORBIDDEN_BEHAVIOR_CATALOG.md for the rule <-> runtime-checker map.
//
// Rules (finding names are stable — the mutation suite asserts on them):
//   rt-alloc            heap traffic in TSF_REALTIME / TSF_NO_ALLOC code
//                       (or an unannotated direct callee)
//   rt-block            locks / sleeps / blocking waits in TSF_REALTIME
//   rt-io               stdio / iostream / file IO in TSF_REALTIME
//   rt-throw            `throw` in TSF_REALTIME
//   det-random          ambient randomness in TSF_DETERMINISM_CRITICAL
//   det-clock           wall clocks in TSF_DETERMINISM_CRITICAL
//   det-unordered-iter  range-for over an unordered container in
//                       TSF_DETERMINISM_CRITICAL
//   phase-order         a TSF_BARRIER_ONLY function reachable from
//                       TSF_WORKER_PHASE code (call graph walk; reviewed
//                       exceptions live in the allowlist file)
//   allow-missing-justification / allow-unknown-rule
//                       malformed TSF_LINT_ALLOW suppressions
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "tsf_lint/lexer.h"

namespace tsf::lint {

// Annotation bit set, keyed by the literal marker tokens.
enum Annotation : unsigned {
  kRealtime = 1u << 0,
  kNoAlloc = 1u << 1,
  kDeterminismCritical = 1u << 2,
  kBarrierOnly = 1u << 3,
  kWorkerPhase = 1u << 4,
};

struct Call {
  std::string name;       // simple name at the call site
  std::string qualifier;  // "Class" when written Class::name(...)
  // For `a.b->f(...)`: {"a", "b"}, outermost first. Resolution walks the
  // chain through recorded member-variable types; a chain that starts at an
  // untyped name (a local, a temporary) leaves the call unresolved rather
  // than guessing by simple name.
  std::vector<std::string> receiver_chain;
  bool member_call = false;  // written with '.' or '->'
  int line = 0;
};

struct FunctionInfo {
  std::string qualified;  // "Class::name" (or "name" at namespace scope)
  std::string simple;
  std::size_t file_index = 0;
  int line = 0;
  unsigned annotations = 0;  // merged across declarations + definition
  bool has_body = false;
  std::size_t body_begin = 0;  // token indices into the owning file
  std::size_t body_end = 0;
  std::vector<Call> calls;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string function;  // qualified name of the contract holder
  std::string message;
};

// One reviewed `from -> to` exception for phase-order: the reachability
// finding is suppressed when `from` names the worker-phase root or the
// immediate caller of the barrier-only target, and `to` names the target.
struct AllowEdge {
  std::string from;
  std::string to;
  std::string note;
};

class Analyzer {
 public:
  // Lexes nothing itself: feed lex() results in any order, then run().
  void add_file(LexedFile file);
  void set_allowlist(std::vector<AllowEdge> allow) {
    allowlist_ = std::move(allow);
  }

  // Runs every rule pass; idempotent state is not kept — call once.
  std::vector<Finding> run();

  // Populated by run().
  const std::vector<FunctionInfo>& functions() const { return functions_; }
  const std::vector<LexedFile>& files() const { return files_; }
  std::size_t annotated_count() const { return annotated_count_; }

 private:
  void extract(std::size_t file_index);
  void merge_annotations();
  void check_suppression_comments(std::vector<Finding>* findings) const;
  void check_rt_rules(std::vector<Finding>* findings) const;
  void check_det_rules(std::vector<Finding>* findings) const;
  void check_phase_order(std::vector<Finding>* findings) const;
  void apply_suppressions(std::vector<Finding>* findings) const;
  // Resolution is receiver-aware: member calls are followed through the
  // member-type map starting from `caller`'s class; plain calls prefer a
  // method of the caller's own class, then fall back to the unique global
  // simple-name match (free functions, inherited members).
  std::vector<std::size_t> resolve(const Call& call,
                                   const FunctionInfo& caller) const;

  std::vector<LexedFile> files_;
  // Per-file set of identifiers declared with an unordered container type.
  std::vector<std::vector<std::string>> unordered_names_;
  // class simple name -> member name -> member type's simple name, as
  // declared in the class body ("staged_" -> "MpscQueue"). Pointer /
  // reference / template arguments are stripped; std:: types resolve to
  // names no in-tree class has, which correctly dead-ends the chain.
  std::map<std::string, std::map<std::string, std::string>> member_types_;
  std::vector<FunctionInfo> functions_;
  std::vector<AllowEdge> allowlist_;
  std::size_t annotated_count_ = 0;
};

// Parses an allowlist file (`from -> to  # note` lines, '#' comments).
// Returns false and sets `error` on a malformed line.
bool parse_allowlist(std::string_view text, std::vector<AllowEdge>* out,
                     std::string* error);

}  // namespace tsf::lint
