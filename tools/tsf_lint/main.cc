// tsf_lint — static analyzer for the TSF_* real-time-safety contracts.
//
//   tsf_lint --root src --allowlist tools/tsf_lint.allow
//   tsf_lint --compile-commands build/compile_commands.json
//   tsf_lint file.cc [file2.h ...] [--report findings.json]
//
// Exit code 0 when no findings, 1 on findings, 2 on usage/IO errors.
// The JSON report (tsf-lint/1) lists every finding and every
// TSF_LINT_ALLOW suppression (with its justification and whether it was
// exercised), so reviewed exceptions stay auditable.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "tsf_lint/analyzer.h"
#include "tsf_lint/lexer.h"

namespace {

namespace fs = std::filesystem;
using tsf::lint::Analyzer;
using tsf::lint::Finding;

bool has_cpp_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int usage() {
  std::cerr << "usage: tsf_lint [--root DIR]... [--compile-commands FILE]\n"
               "                [--allowlist FILE] [--report FILE] "
               "[files...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> explicit_files;
  std::string compile_commands;
  std::string allowlist_path;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usage();
      roots.push_back(v);
    } else if (arg == "--compile-commands") {
      const char* v = next();
      if (v == nullptr) return usage();
      compile_commands = v;
    } else if (arg == "--allowlist") {
      const char* v = next();
      if (v == nullptr) return usage();
      allowlist_path = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return usage();
      report_path = v;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tsf_lint: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      explicit_files.push_back(arg);
    }
  }

  // Gather the file set, deduped and sorted for deterministic output.
  std::set<std::string> files(explicit_files.begin(), explicit_files.end());
  for (const std::string& root : roots) {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file() && has_cpp_extension(it->path())) {
        files.insert(it->path().generic_string());
      }
    }
    if (ec) {
      std::cerr << "tsf_lint: cannot walk '" << root << "': " << ec.message()
                << "\n";
      return 2;
    }
  }
  if (!compile_commands.empty()) {
    std::string text, error;
    if (!read_file(compile_commands, &text)) {
      std::cerr << "tsf_lint: cannot read " << compile_commands << "\n";
      return 2;
    }
    tsf::common::JsonValue doc;
    if (!tsf::common::json_parse(text, &doc, &error) || !doc.is_array()) {
      std::cerr << "tsf_lint: bad compile_commands.json: " << error << "\n";
      return 2;
    }
    for (const tsf::common::JsonValue& entry : doc.as_array()) {
      const tsf::common::JsonValue* file = entry.find("file");
      if (file != nullptr && file->is_string() &&
          has_cpp_extension(fs::path(file->as_string()))) {
        files.insert(file->as_string());
      }
    }
  }
  if (files.empty()) {
    std::cerr << "tsf_lint: no input files\n";
    return usage();
  }

  Analyzer analyzer;
  for (const std::string& path : files) {
    std::string source;
    if (!read_file(path, &source)) {
      std::cerr << "tsf_lint: cannot read " << path << "\n";
      return 2;
    }
    analyzer.add_file(tsf::lint::lex(path, source));
  }

  if (!allowlist_path.empty()) {
    std::string text, error;
    if (!read_file(allowlist_path, &text)) {
      std::cerr << "tsf_lint: cannot read " << allowlist_path << "\n";
      return 2;
    }
    std::vector<tsf::lint::AllowEdge> allow;
    if (!tsf::lint::parse_allowlist(text, &allow, &error)) {
      std::cerr << "tsf_lint: " << error << "\n";
      return 2;
    }
    analyzer.set_allowlist(std::move(allow));
  }

  const std::vector<Finding> findings = analyzer.run();
  for (const Finding& f : findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message;
    if (!f.function.empty()) std::cerr << " (contract: " << f.function << ")";
    std::cerr << "\n";
  }

  std::size_t suppression_count = 0;
  for (const auto& file : analyzer.files()) {
    suppression_count += file.suppressions.size();
  }
  std::cout << "tsf_lint: " << findings.size() << " finding(s) over "
            << analyzer.files().size() << " file(s), "
            << analyzer.functions().size() << " function(s), "
            << analyzer.annotated_count() << " annotated, "
            << suppression_count << " suppression(s)\n";

  if (!report_path.empty()) {
    tsf::common::JsonWriter w;
    w.begin_object();
    w.key("schema").value("tsf-lint/1");
    w.key("files").value(static_cast<std::uint64_t>(analyzer.files().size()));
    w.key("functions")
        .value(static_cast<std::uint64_t>(analyzer.functions().size()));
    w.key("annotated")
        .value(static_cast<std::uint64_t>(analyzer.annotated_count()));
    w.key("findings").begin_array();
    for (const Finding& f : findings) {
      w.begin_object();
      w.key("file").value(f.file);
      w.key("line").value(static_cast<std::int64_t>(f.line));
      w.key("rule").value(f.rule);
      w.key("function").value(f.function);
      w.key("message").value(f.message);
      w.end_object();
    }
    w.end_array();
    w.key("suppressions").begin_array();
    for (const auto& file : analyzer.files()) {
      for (const auto& s : file.suppressions) {
        w.begin_object();
        w.key("file").value(file.path);
        w.key("line").value(static_cast<std::int64_t>(s.line));
        w.key("rule").value(s.rule);
        w.key("justification").value(s.justification);
        w.key("used").value(s.used);
        w.end_object();
      }
    }
    w.end_array();
    w.end_object();
    std::ofstream out(report_path, std::ios::binary);
    if (!out) {
      std::cerr << "tsf_lint: cannot write " << report_path << "\n";
      return 2;
    }
    out << w.take();
  }

  return findings.empty() ? 0 : 1;
}
