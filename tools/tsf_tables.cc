// tsf_tables — sharded reproduction of the paper's Tables 2-5.
//
// Decomposes the selected tables into one WorkUnit per (set, policy, mode)
// cell, fans the cells out over fork()ed workers (--jobs N) and reassembles
// each table in canonical order, so the text and JSON output are
// byte-identical to a serial run regardless of worker count.
//
// Usage:
//   tsf_tables [--tables 2,3,4,5] [--jobs N] [--json FILE] [--in-process]
//              [--no-text]
//
//   --tables      comma-separated table ids (default: all four)
//                   2 = Polling Server simulations   3 = PS executions
//                   4 = Deferrable Server simulations 5 = DS executions
//   --jobs N      worker processes (default 1 = serial in-process)
//   --json FILE   also write the versioned machine-readable document
//                 ("tsf-tables/1"; see README). '-' writes it to stdout.
//   --in-process  never fork (sanitized builds)
//   --no-text     suppress the paper-layout text tables
//
// Timing (generation vs run, wall-clock) goes to stderr only — the JSON
// carries exclusively deterministic fields so runs can be diffed with cmp.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/sketch.h"
#include "exp/bench_cli.h"
#include "exp/shard.h"

namespace {

using namespace tsf;

struct TableId {
  int id;
  model::ServerPolicy policy;
  exp::Mode mode;
};

const TableId kTables[] = {
    {2, model::ServerPolicy::kPolling, exp::Mode::kSimulation},
    {3, model::ServerPolicy::kPolling, exp::Mode::kExecution},
    {4, model::ServerPolicy::kDeferrable, exp::Mode::kSimulation},
    {5, model::ServerPolicy::kDeferrable, exp::Mode::kExecution},
};

const TableId* find_table(int id) {
  for (const auto& t : kTables) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

std::string hex_digest(std::uint64_t d) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, d);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> selected = {2, 3, 4, 5};
  exp::BenchCli cli(exp::BenchCli::kJson | exp::BenchCli::kShard);
  bool text = true;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tables") == 0 && i + 1 < argc) {
      selected.clear();
      const std::string list = argv[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string token =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (token.size() != 1 || find_table(token[0] - '0') == nullptr) {
          std::cerr << "unknown table '" << token << "' (expected 2-5)\n";
          return 2;
        }
        selected.push_back(token[0] - '0');
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
      if (selected.empty()) {
        std::cerr << "--tables needs at least one table id\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-text") == 0) {
      text = false;
    } else if (!cli.consume(argc, argv, &i)) {
      return cli.fail("tsf_tables", " [--tables 2,3,4,5] [--no-text]");
    }
  }
  const exp::ShardOptions& shard = cli.shard;
  const std::string& json_path = cli.json_path;

  // One flat unit list across every selected table, so the worker pool
  // balances sim cells (cheap) against exec cells (expensive).
  std::vector<exp::WorkUnit> units;
  for (const int id : selected) {
    const TableId& t = *find_table(id);
    const exp::ExecOptions options = t.mode == exp::Mode::kExecution
                                         ? exp::paper_execution_options()
                                         : exp::ExecOptions{};
    auto table_units = exp::paper_table_units("table" + std::to_string(id),
                                              t.policy, t.mode, options);
    units.insert(units.end(), table_units.begin(), table_units.end());
  }

  const exp::ShardOutcome outcome = exp::run_units(units, shard);
  if (!outcome.ok) {
    std::cerr << "error: " << outcome.error << '\n';
    return 1;
  }

  const auto sets = exp::paper_sets();
  // Provenance from the single source of truth (the set-specific density /
  // std-deviation live on the cells; everything else is table-invariant).
  const gen::GeneratorParams provenance =
      exp::paper_generator_params(sets[0], model::ServerPolicy::kPolling);
  common::JsonWriter json;
  json.begin_object();
  json.key("schema").value("tsf-tables/1");
  json.key("generator").begin_object();
  json.key("seed").value(std::uint64_t{provenance.seed});
  json.key("nb_generation").value(std::uint64_t{provenance.nb_generation});
  json.key("horizon_periods")
      .value(std::int64_t{provenance.horizon_periods});
  json.key("average_cost_tu").value(provenance.average_cost_tu);
  json.key("server_capacity_tu").value(provenance.server_capacity.to_tu());
  json.key("server_period_tu").value(provenance.server_period.to_tu());
  json.end_object();
  json.key("tables").begin_array();

  double gen_seconds = 0.0, run_seconds = 0.0;
  for (std::size_t t = 0; t < selected.size(); ++t) {
    const TableId& table = *find_table(selected[t]);
    exp::PaperTable assembled;
    assembled.title = "Measures on " +
                      std::string(model::to_string(table.policy)) +
                      " server " + exp::to_string(table.mode) + "s";
    json.begin_object();
    json.key("id").value(std::int64_t{table.id});
    json.key("policy").value(model::to_string(table.policy));
    json.key("mode").value(exp::to_string(table.mode));
    json.key("cells").begin_array();
    common::LogSketch pooled;  // exact merge of the per-cell sketches
    for (std::size_t c = 0; c < sets.size(); ++c) {
      const exp::CellResult& cell = outcome.cells[t * sets.size() + c];
      assembled.cells[c] = cell.metrics;
      pooled.merge(cell.metrics.response_sketch);
      gen_seconds += cell.gen_seconds;
      run_seconds += cell.run_seconds;
      json.begin_object();
      json.key("density").value(sets[c].density);
      json.key("std_deviation").value(sets[c].std_deviation);
      json.key("aart").value(cell.metrics.aart);
      json.key("air").value(cell.metrics.air);
      json.key("asr").value(cell.metrics.asr);
      json.key("p50_response_tu").value(cell.metrics.p50_response_tu);
      json.key("p95_response_tu").value(cell.metrics.p95_response_tu);
      json.key("p99_response_tu").value(cell.metrics.p99_response_tu);
      json.key("systems").value(cell.metrics.systems);
      json.key("total_jobs").value(cell.metrics.total_jobs);
      json.key("spec_digest").value(hex_digest(cell.spec_digest));
      json.end_object();
    }
    json.end_array();
    // Table-level response quantiles over every served job of every set,
    // pooled by exact sketch merge — byte-identical for any --jobs N.
    json.key("pooled").begin_object();
    json.key("samples").value(static_cast<std::uint64_t>(pooled.count()));
    json.key("p50_response_tu").value(pooled.p50());
    json.key("p95_response_tu").value(pooled.p95());
    json.key("p99_response_tu").value(pooled.p99());
    json.end_object();
    json.end_object();
    if (text) {
      std::cout << exp::format_paper_table(assembled) << '\n';
    }
  }
  json.end_array();
  json.end_object();

  if (!json_path.empty()) {
    const std::string doc = json.take();
    if (json_path == "-") {
      std::cout << doc;
    } else {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::cerr << "error: cannot write '" << json_path << "'\n";
        return 1;
      }
      out << doc;
    }
  }
  std::fprintf(stderr, "tsf_tables: %zu cells, generation %.3fs, runs %.3fs\n",
               units.size(), gen_seconds, run_seconds);
  return 0;
}
