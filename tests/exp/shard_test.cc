// The sharded experiment harness: merged results must be bit-identical to
// the serial run for every worker count, generated workloads must be
// identical however the cells are sharded, and a dead worker must fail the
// run with the in-flight cell named.
#include "exp/shard.h"

#include <string>
#include <vector>

#include "common/sketch.h"
#include "gtest/gtest.h"

namespace tsf::exp {
namespace {

// A small mixed grid: cheap simulation cells next to expensive execution
// cells, so dynamic work distribution actually reorders completions.
std::vector<WorkUnit> small_grid() {
  std::vector<WorkUnit> units;
  for (const auto& set : {PaperSet{1, 0}, PaperSet{2, 2}, PaperSet{3, 2}}) {
    for (const Mode mode : {Mode::kSimulation, Mode::kExecution}) {
      WorkUnit unit;
      unit.label = std::string(to_string(mode)) + "/(" +
                   std::to_string(static_cast<int>(set.density)) + "," +
                   std::to_string(static_cast<int>(set.std_deviation)) + ")";
      unit.params = paper_generator_params(set, model::ServerPolicy::kPolling);
      unit.params.nb_generation = 3;  // keep the suite fast
      unit.mode = mode;
      if (mode == Mode::kExecution) {
        unit.exec_options = paper_execution_options();
      }
      units.push_back(std::move(unit));
    }
  }
  return units;
}

void expect_identical(const CellResult& a, const CellResult& b,
                      const std::string& label) {
  // Bitwise equality: the pipe protocol round-trips doubles exactly, so any
  // difference at all is a determinism bug.
  EXPECT_EQ(a.metrics.aart, b.metrics.aart) << label;
  EXPECT_EQ(a.metrics.air, b.metrics.air) << label;
  EXPECT_EQ(a.metrics.asr, b.metrics.asr) << label;
  EXPECT_EQ(a.metrics.p50_response_tu, b.metrics.p50_response_tu) << label;
  EXPECT_EQ(a.metrics.p95_response_tu, b.metrics.p95_response_tu) << label;
  EXPECT_EQ(a.metrics.p99_response_tu, b.metrics.p99_response_tu) << label;
  EXPECT_EQ(a.metrics.systems, b.metrics.systems) << label;
  EXPECT_EQ(a.metrics.total_jobs, b.metrics.total_jobs) << label;
  EXPECT_TRUE(a.metrics.response_sketch == b.metrics.response_sketch) << label;
  EXPECT_EQ(a.spec_digest, b.spec_digest) << label;
}

TEST(ShardHarness, WorkerCountsProduceIdenticalResults) {
  const auto units = small_grid();
  ShardOptions serial;
  serial.jobs = 1;
  const ShardOutcome baseline = run_units(units, serial);
  ASSERT_TRUE(baseline.ok) << baseline.error;
  ASSERT_EQ(baseline.cells.size(), units.size());

  for (const int jobs : {2, 8}) {
    ShardOptions options;
    options.jobs = jobs;
    const ShardOutcome sharded = run_units(units, options);
    ASSERT_TRUE(sharded.ok) << sharded.error;
    ASSERT_EQ(sharded.cells.size(), units.size());
    for (std::size_t i = 0; i < units.size(); ++i) {
      expect_identical(baseline.cells[i], sharded.cells[i],
                       units[i].label + " @ jobs=" + std::to_string(jobs));
    }
  }
}

TEST(ShardHarness, PooledSketchQuantilesIdenticalAcrossWorkerCounts) {
  // The reason the sketch exists: cross-cell quantiles pooled by exact
  // bucket merge must be bitwise identical however the cells were sharded.
  const auto units = small_grid();
  ShardOptions serial;
  serial.jobs = 1;
  const ShardOutcome baseline = run_units(units, serial);
  ASSERT_TRUE(baseline.ok) << baseline.error;
  common::LogSketch expected;
  for (const auto& cell : baseline.cells) {
    expected.merge(cell.metrics.response_sketch);
  }
  ASSERT_GT(expected.count(), 0u);

  for (const int jobs : {2, 8}) {
    ShardOptions options;
    options.jobs = jobs;
    const ShardOutcome sharded = run_units(units, options);
    ASSERT_TRUE(sharded.ok) << sharded.error;
    common::LogSketch pooled;
    for (const auto& cell : sharded.cells) {
      pooled.merge(cell.metrics.response_sketch);
    }
    EXPECT_TRUE(pooled == expected) << "jobs=" << jobs;
    EXPECT_EQ(pooled.encode(), expected.encode()) << "jobs=" << jobs;
    EXPECT_EQ(pooled.p50(), expected.p50()) << "jobs=" << jobs;
    EXPECT_EQ(pooled.p99(), expected.p99()) << "jobs=" << jobs;
  }
}

TEST(ShardHarness, InProcessFallbackMatchesForked) {
  const auto units = small_grid();
  ShardOptions forced;
  forced.jobs = 4;
  forced.in_process = true;
  const ShardOutcome in_process = run_units(units, forced);
  ASSERT_TRUE(in_process.ok) << in_process.error;

  ShardOptions forked;
  forked.jobs = 4;
  const ShardOutcome other = run_units(units, forked);
  ASSERT_TRUE(other.ok) << other.error;
  for (std::size_t i = 0; i < units.size(); ++i) {
    expect_identical(in_process.cells[i], other.cells[i], units[i].label);
  }
}

TEST(ShardHarness, GenerationIsDeterministicPerCell) {
  auto units = small_grid();
  const CellResult once = run_cell(units[0]);
  const CellResult twice = run_cell(units[0]);
  EXPECT_EQ(once.spec_digest, twice.spec_digest);
  EXPECT_NE(once.spec_digest, 0u);

  // The digest actually depends on the workload.
  WorkUnit reseeded = units[0];
  reseeded.params.seed = 4242;
  EXPECT_NE(run_cell(reseeded).spec_digest, once.spec_digest);
}

TEST(ShardHarness, RunPaperTableMatchesLegacySerialPath) {
  // The harness-based run_paper_table must reproduce the pre-harness
  // behaviour exactly: per-cell metrics equal to run_set on the same
  // parameters (generation hoisting must not change the workload).
  const PaperTable table = run_paper_table(model::ServerPolicy::kPolling,
                                           Mode::kSimulation);
  const auto sets = paper_sets();
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const SetMetrics direct = run_set(
        paper_generator_params(sets[i], model::ServerPolicy::kPolling),
        Mode::kSimulation);
    EXPECT_EQ(table.cells[i].aart, direct.aart) << i;
    EXPECT_EQ(table.cells[i].air, direct.air) << i;
    EXPECT_EQ(table.cells[i].asr, direct.asr) << i;
    EXPECT_EQ(table.cells[i].p99_response_tu, direct.p99_response_tu) << i;
    EXPECT_NE(table.spec_digests[i], 0u) << i;
  }
}

TEST(ShardHarness, WorkerCrashNamesTheCell) {
  if (!shard_forking_available()) {
    GTEST_SKIP() << "fork-based sharding disabled under sanitizers";
  }
  auto units = small_grid();
  WorkUnit bomb;
  bomb.label = "poisoned-cell";
  bomb.params = units[0].params;
  bomb.crash_for_test = true;
  units.insert(units.begin() + 2, bomb);

  ShardOptions options;
  options.jobs = 2;
  const ShardOutcome outcome = run_units(units, options);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("poisoned-cell"), std::string::npos)
      << outcome.error;
  EXPECT_NE(outcome.error.find("signal"), std::string::npos) << outcome.error;
}

TEST(ShardHarness, InProcessCrashUnitFailsWithoutAborting) {
  WorkUnit bomb;
  bomb.label = "poisoned-cell";
  bomb.params =
      paper_generator_params(PaperSet{1, 0}, model::ServerPolicy::kPolling);
  bomb.crash_for_test = true;

  ShardOptions serial;
  serial.jobs = 1;
  const ShardOutcome outcome = run_units({bomb}, serial);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("poisoned-cell"), std::string::npos)
      << outcome.error;
}

TEST(ShardHarness, EmptyUnitListSucceeds) {
  const ShardOutcome outcome = run_units({}, ShardOptions{});
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.cells.empty());
}

}  // namespace
}  // namespace tsf::exp
