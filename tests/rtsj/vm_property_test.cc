// Parameterized VM properties: conservation and isolation invariants that
// must hold for every overhead model.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.h"
#include "rtsj/vm/vm.h"
#include "support/timeline_checks.h"

namespace tsf::rtsj::vm {
namespace {

using common::Duration;
using common::TimePoint;

[[maybe_unused]] Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

// (timer_fire ticks, context_switch ticks, seed)
using VmParams = std::tuple<std::int64_t, std::int64_t, std::uint64_t>;

class VmProperties : public ::testing::TestWithParam<VmParams> {
 protected:
  OverheadModel overhead() const {
    OverheadModel o;
    o.timer_fire = Duration::ticks(std::get<0>(GetParam()));
    o.context_switch = Duration::ticks(std::get<1>(GetParam()));
    return o;
  }
  std::uint64_t seed() const { return std::get<2>(GetParam()); }
};

TEST_P(VmProperties, SingleFiberCompletionIsWorkPlusOverheads) {
  // One fiber, N timers firing during its work: completion time must equal
  // work + switch cost + N * timer cost, exactly.
  VirtualMachine m(overhead());
  common::Rng rng(seed());
  const std::int64_t timers = 1 + static_cast<std::int64_t>(rng.uniform_u64(8));
  const Duration work = Duration::ticks(
      5000 + static_cast<std::int64_t>(rng.uniform_u64(5000)));
  TimePoint done;
  Fiber* f = m.create_fiber("w", 10, [&] {
    m.work(work);
    done = m.now();
  });
  m.start_fiber(f);
  for (std::int64_t i = 0; i < timers; ++i) {
    m.schedule_timer(TimePoint::origin() + Duration::ticks(100 * (i + 1)),
                     [] {});
  }
  m.run_until(at_tu(1000));
  const Duration expected = work + overhead().context_switch +
                            overhead().timer_fire * timers;
  EXPECT_EQ(done - TimePoint::origin(), expected);
}

TEST_P(VmProperties, ProcessorNeverOverlapsUnderRandomLoad) {
  VirtualMachine m(overhead());
  common::Rng rng(seed());
  for (int i = 0; i < 5; ++i) {
    const int priority = 1 + static_cast<int>(rng.uniform_u64(20));
    const Duration cost =
        Duration::ticks(200 + static_cast<std::int64_t>(rng.uniform_u64(2000)));
    const Duration period =
        Duration::ticks(3000 + static_cast<std::int64_t>(rng.uniform_u64(6000)));
    Fiber* f = m.create_fiber("f" + std::to_string(i), priority,
                              [&m, cost, period] {
                                for (;;) {
                                  m.work(cost);
                                  m.sleep_until(m.now() + period);
                                }
                              });
    m.start_fiber(f);
  }
  m.run_until(at_tu(100));
  EXPECT_EQ(testing::find_overlap(m.timeline()), "");
}

TEST_P(VmProperties, TotalServiceBoundedByElapsedTime) {
  VirtualMachine m(overhead());
  common::Rng rng(seed());
  for (int i = 0; i < 4; ++i) {
    Fiber* f = m.create_fiber(
        "f" + std::to_string(i), 1 + static_cast<int>(rng.uniform_u64(9)),
        [&m] {
          for (;;) {
            m.work(Duration::ticks(700));
            m.sleep_until(m.now() + Duration::ticks(900));
          }
        });
    m.start_fiber(f);
  }
  const TimePoint horizon = at_tu(50);
  m.run_until(horizon);
  EXPECT_LE(testing::total_busy(m.timeline()).count(),
            (horizon - TimePoint::origin()).count());
}

TEST_P(VmProperties, RunsAreBitIdentical) {
  auto run = [&] {
    VirtualMachine m(overhead());
    common::Rng rng(seed());
    for (int i = 0; i < 4; ++i) {
      const Duration cost = Duration::ticks(
          100 + static_cast<std::int64_t>(rng.uniform_u64(900)));
      Fiber* f = m.create_fiber("f" + std::to_string(i),
                                static_cast<int>(rng.uniform_u64(5)),
                                [&m, cost] {
                                  for (;;) {
                                    m.work(cost);
                                    m.sleep_until(m.now() + cost + cost);
                                  }
                                });
      m.start_fiber(f);
    }
    m.schedule_timer(at_tu(7), [] {});
    m.run_until(at_tu(40));
    return m.timeline().to_csv();
  };
  EXPECT_EQ(run(), run());
}

std::string vm_param_name(const ::testing::TestParamInfo<VmParams>& info) {
  return "tf" + std::to_string(std::get<0>(info.param)) + "_cs" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    OverheadSweep, VmProperties,
    ::testing::Combine(::testing::Values<std::int64_t>(0, 50, 250),
                       ::testing::Values<std::int64_t>(0, 20),
                       ::testing::Values<std::uint64_t>(1, 42)),
    vm_param_name);

}  // namespace
}  // namespace tsf::rtsj::vm
