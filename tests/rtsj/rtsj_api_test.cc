// Tests for the RTSJ-style API layer: threads, events, timers, Timed
// sections, processing groups and the feasibility interface.
#include <gtest/gtest.h>

#include <vector>

#include "rtsj/async_event.h"
#include "rtsj/clock.h"
#include "rtsj/interruptible.h"
#include "rtsj/pgp.h"
#include "rtsj/realtime_thread.h"
#include "rtsj/schedulable.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj {
namespace {

using common::Duration;
using common::TimePoint;
using vm::VirtualMachine;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

TEST(RealtimeThread, PeriodicPatternReleasesOnBoundaries) {
  VirtualMachine m;
  std::vector<TimePoint> completions;
  RealtimeThread t(m, "tau", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(5), tu(2)),
                   [&](RealtimeThread& self) {
                     for (;;) {
                       self.work(tu(2));
                       completions.push_back(self.now());
                       self.wait_for_next_period();
                     }
                   });
  t.start();
  m.run_until(at_tu(20));
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], at_tu(2));
  EXPECT_EQ(completions[1], at_tu(7));
  EXPECT_EQ(completions[2], at_tu(12));
  EXPECT_EQ(completions[3], at_tu(17));
}

TEST(RealtimeThread, StartOffsetRespected) {
  VirtualMachine m;
  TimePoint first;
  RealtimeThread t(m, "tau", PriorityParameters(10),
                   PeriodicParameters(at_tu(3), tu(5), tu(1)),
                   [&](RealtimeThread& self) {
                     first = self.now();
                     self.work(tu(1));
                   });
  t.start();
  m.run_until(at_tu(10));
  EXPECT_EQ(first, at_tu(3));
}

TEST(RealtimeThread, OverrunSkipsToNextBoundaryAndReportsFalse) {
  VirtualMachine m;
  std::vector<bool> on_time;
  RealtimeThread t(m, "tau", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(4), tu(1)),
                   [&](RealtimeThread& self) {
                     // First job deliberately overruns its period.
                     self.work(tu(6));
                     on_time.push_back(self.wait_for_next_period());
                     self.work(tu(1));
                     on_time.push_back(self.wait_for_next_period());
                   });
  t.start();
  m.run_until(at_tu(20));
  ASSERT_EQ(on_time.size(), 2u);
  EXPECT_FALSE(on_time[0]);  // boundary at 4 already passed at t=6
  EXPECT_TRUE(on_time[1]);
  EXPECT_EQ(t.overrun_count(), 1u);
}

TEST(RealtimeThread, InterferenceIsCeilingOfWindowOverPeriod) {
  VirtualMachine m;
  RealtimeThread t(m, "tau", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(6), tu(2)),
                   nullptr);
  EXPECT_EQ(t.interference(tu(6)), tu(2));
  EXPECT_EQ(t.interference(tu(7)), tu(4));
  EXPECT_EQ(t.interference(tu(12)), tu(4));
  EXPECT_EQ(t.interference(tu(13)), tu(6));
  EXPECT_EQ(t.interference(Duration::zero()), Duration::zero());
  EXPECT_DOUBLE_EQ(t.utilization(), 2.0 / 6.0);
}

TEST(AsyncEvent, FireReleasesAllHandlers) {
  VirtualMachine m;
  int a = 0, b = 0;
  AsyncEventHandler ha(m, "ha", PriorityParameters(10),
                       [&](AsyncEventHandler&) { ++a; });
  AsyncEventHandler hb(m, "hb", PriorityParameters(10),
                       [&](AsyncEventHandler&) { ++b; });
  AsyncEvent e(m, "e");
  e.add_handler(&ha);
  e.add_handler(&hb);
  m.schedule_silent(at_tu(1), [&] { e.fire(); });
  m.run_until(at_tu(5));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(e.fire_count(), 1u);
}

TEST(AsyncEvent, FireCountAccumulatesWhileHandlerBusy) {
  VirtualMachine m;
  std::vector<TimePoint> handled;
  AsyncEventHandler h(m, "h", PriorityParameters(10),
                      [&](AsyncEventHandler& self) {
                        self.machine().work(tu(3));
                        handled.push_back(self.machine().now());
                      });
  AsyncEvent e(m, "e");
  e.add_handler(&h);
  // Three fires in quick succession; the handler must run three times.
  m.schedule_silent(at_tu(1), [&] { e.fire(); });
  m.schedule_silent(at_tu(2), [&] { e.fire(); });
  m.schedule_silent(at_tu(3), [&] { e.fire(); });
  m.run_until(at_tu(20));
  ASSERT_EQ(handled.size(), 3u);
  EXPECT_EQ(handled[0], at_tu(4));
  EXPECT_EQ(handled[1], at_tu(7));
  EXPECT_EQ(handled[2], at_tu(10));
  EXPECT_EQ(h.handled_count(), 3u);
  EXPECT_EQ(h.pending_fire_count(), 0u);
}

TEST(AsyncEvent, RemoveHandlerStopsDelivery) {
  VirtualMachine m;
  int count = 0;
  AsyncEventHandler h(m, "h", PriorityParameters(10),
                      [&](AsyncEventHandler&) { ++count; });
  AsyncEvent e(m, "e");
  e.add_handler(&h);
  EXPECT_TRUE(e.handled_by(&h));
  e.remove_handler(&h);
  EXPECT_FALSE(e.handled_by(&h));
  m.schedule_silent(at_tu(1), [&] { e.fire(); });
  m.run_until(at_tu(5));
  EXPECT_EQ(count, 0);
}

TEST(Timers, OneShotFiresOnce) {
  VirtualMachine m;
  std::vector<TimePoint> fired;
  AsyncEventHandler h(m, "h", PriorityParameters(10),
                      [&](AsyncEventHandler& self) {
                        fired.push_back(self.machine().now());
                      });
  AsyncEvent e(m, "e");
  e.add_handler(&h);
  OneShotTimer timer(m, at_tu(4), &e);
  timer.start();
  m.run_until(at_tu(20));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], at_tu(4));
}

TEST(Timers, PeriodicFiresRepeatedly) {
  VirtualMachine m;
  std::vector<TimePoint> fired;
  AsyncEventHandler h(m, "h", PriorityParameters(10),
                      [&](AsyncEventHandler& self) {
                        fired.push_back(self.machine().now());
                      });
  AsyncEvent e(m, "e");
  e.add_handler(&h);
  PeriodicTimer timer(m, at_tu(2), tu(3), &e);
  timer.start();
  m.run_until(at_tu(12));
  ASSERT_EQ(fired.size(), 4u);  // 2, 5, 8, 11
  EXPECT_EQ(fired[0], at_tu(2));
  EXPECT_EQ(fired[3], at_tu(11));
}

TEST(Timers, StopPreventsFutureFires) {
  VirtualMachine m;
  int fires = 0;
  AsyncEventHandler h(m, "h", PriorityParameters(10),
                      [&](AsyncEventHandler&) { ++fires; });
  AsyncEvent e(m, "e");
  e.add_handler(&h);
  PeriodicTimer timer(m, at_tu(1), tu(2), &e);
  timer.start();
  m.run_until(at_tu(4));  // fires at 1, 3
  timer.stop();
  m.run_until(at_tu(20));
  EXPECT_EQ(fires, 2);
}

TEST(Timed, SectionCompletingWithinBudgetIsNotInterrupted) {
  VirtualMachine m;
  bool completed = false;
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(100)),
                   [&](RealtimeThread& self) {
                     Timed timed(self.machine(), tu(5));
                     InterruptibleFn body([&](Timed& section) {
                       section.work(tu(3));
                       completed = true;
                     });
                     EXPECT_TRUE(timed.do_interruptible(body));
                   });
  t.start();
  m.run_until(at_tu(50));
  EXPECT_TRUE(completed);
}

TEST(Timed, ExactFitCompletes) {
  // A section whose demand equals its budget completes (completion wins the
  // tie against the budget alarm) — the paper's cost==capacity case.
  VirtualMachine m;
  bool ok = false;
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(100)),
                   [&](RealtimeThread& self) {
                     Timed timed(self.machine(), tu(4));
                     InterruptibleFn body(
                         [&](Timed& section) { section.work(tu(4)); });
                     ok = timed.do_interruptible(body);
                   });
  t.start();
  m.run_until(at_tu(50));
  EXPECT_TRUE(ok);
}

TEST(Timed, OverrunningSectionInterruptedAtBudget) {
  VirtualMachine m;
  TimePoint interrupted_at;
  bool reached_end = false;
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(100)),
                   [&](RealtimeThread& self) {
                     Timed timed(self.machine(), tu(2));
                     class Body : public Interruptible {
                      public:
                       explicit Body(bool* end) : end_(end) {}
                       void run(Timed& section) override {
                         section.work(tu(10));
                         *end_ = true;
                       }
                       void interrupt_action(AbsoluteTime at) override {
                         when = at;
                       }
                       AbsoluteTime when;

                      private:
                       bool* end_;
                     } body(&reached_end);
                     EXPECT_FALSE(timed.do_interruptible(body));
                     interrupted_at = body.when;
                   });
  t.start();
  m.run_until(at_tu(50));
  EXPECT_FALSE(reached_end);
  EXPECT_EQ(interrupted_at, at_tu(2));
}

TEST(Timed, BudgetIsWallClockNotCpuTime) {
  // A higher-priority thread preempts the section; the budget drains anyway
  // (RTSJ Timed is a wall-clock timer) — the root cause of the paper's
  // overhead-induced interruptions.
  VirtualMachine m;
  bool ok = true;
  RealtimeThread hi(m, "hi", PriorityParameters(20),
                    PeriodicParameters(at_tu(1), tu(100), tu(3)),
                    [&](RealtimeThread& self) { self.work(tu(3)); });
  RealtimeThread lo(m, "lo", PriorityParameters(10),
                    PeriodicParameters(TimePoint::origin(), tu(100)),
                    [&](RealtimeThread& self) {
                      Timed timed(self.machine(), tu(4));
                      InterruptibleFn body(
                          [&](Timed& section) { section.work(tu(3)); });
                      ok = timed.do_interruptible(body);
                    });
  lo.start();
  hi.start();
  m.run_until(at_tu(50));
  // lo needs 3 units but loses [1,4) to hi: wall time exceeds the budget.
  EXPECT_FALSE(ok);
}

TEST(Timed, NestedSectionsKeepBalance) {
  VirtualMachine m;
  bool inner_ok = false, outer_ok = false;
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(100)),
                   [&](RealtimeThread& self) {
                     Timed outer(self.machine(), tu(10));
                     InterruptibleFn outer_body([&](Timed&) {
                       Timed inner(self.machine(), tu(2));
                       InterruptibleFn inner_body(
                           [&](Timed& s) { s.work(tu(1)); });
                       inner_ok = inner.do_interruptible(inner_body);
                       self.machine().work(tu(1));
                     });
                     outer_ok = outer.do_interruptible(outer_body);
                   });
  t.start();
  m.run_until(at_tu(50));
  EXPECT_TRUE(inner_ok);
  EXPECT_TRUE(outer_ok);
}

TEST(ProcessingGroup, AccountsWithoutEnforcement) {
  // The RI behaviour the paper criticises: without cost enforcement the
  // budget is bookkeeping only.
  VirtualMachine m;
  ProcessingGroupParameters pgp(m, TimePoint::origin(), tu(10), tu(2),
                                /*enforce=*/false);
  TimePoint done;
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(100)),
                   [&](RealtimeThread& self) {
                     self.work(tu(6));
                     done = self.now();
                   });
  t.set_processing_group(&pgp);
  t.start();
  m.run_until(at_tu(50));
  EXPECT_EQ(done, at_tu(6));  // ran straight through the budget
  EXPECT_EQ(pgp.total_charged(), tu(6));
}

TEST(ProcessingGroup, EnforcementStallsAtBudgetExhaustion) {
  VirtualMachine m;
  ProcessingGroupParameters pgp(m, TimePoint::origin(), tu(10), tu(2),
                                /*enforce=*/true);
  TimePoint done;
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(100)),
                   [&](RealtimeThread& self) {
                     self.work(tu(5));
                     done = self.now();
                   });
  t.set_processing_group(&pgp);
  t.start();
  m.run_until(at_tu(50));
  // 2 units in [0,2), stall to 10; 2 in [10,12), stall to 20; 1 in [20,21).
  EXPECT_EQ(done, at_tu(21));
  EXPECT_EQ(pgp.total_charged(), tu(5));
  EXPECT_GE(pgp.replenish_count(), 2u);
}

TEST(ProcessingGroup, SharedAcrossThreads) {
  VirtualMachine m;
  ProcessingGroupParameters pgp(m, TimePoint::origin(), tu(10), tu(4),
                                /*enforce=*/true);
  TimePoint done_a, done_b;
  RealtimeThread a(m, "a", PriorityParameters(20),
                   PeriodicParameters(TimePoint::origin(), tu(100)),
                   [&](RealtimeThread& self) {
                     self.work(tu(3));
                     done_a = self.now();
                   });
  RealtimeThread b(m, "b", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(100)),
                   [&](RealtimeThread& self) {
                     self.work(tu(3));
                     done_b = self.now();
                   });
  a.set_processing_group(&pgp);
  b.set_processing_group(&pgp);
  a.start();
  b.start();
  m.run_until(at_tu(50));
  EXPECT_EQ(done_a, at_tu(3));
  // b gets the remaining 1 unit, then waits for the replenishment at 10.
  EXPECT_EQ(done_b, at_tu(12));
}

TEST(PriorityScheduler, ResponseTimeMatchesHandComputation) {
  VirtualMachine m;
  // Classic example: hp task (C=2, T=5), lp task (C=3, T=10).
  RealtimeThread hp(m, "hp", PriorityParameters(20),
                    PeriodicParameters(TimePoint::origin(), tu(5), tu(2)),
                    nullptr);
  RealtimeThread lp(m, "lp", PriorityParameters(10),
                    PeriodicParameters(TimePoint::origin(), tu(10), tu(3)),
                    nullptr);
  PriorityScheduler sched;
  sched.add_to_feasibility(&hp);
  sched.add_to_feasibility(&lp);
  EXPECT_EQ(sched.response_time(&hp), tu(2));
  // R_lp = 3 + ceil(R/5)*2: fixpoint at 5 (lp finishes exactly at the
  // second hp release).
  EXPECT_EQ(sched.response_time(&lp), tu(5));
  EXPECT_TRUE(sched.is_feasible());
}

TEST(PriorityScheduler, DetectsInfeasibleSet) {
  VirtualMachine m;
  RealtimeThread hp(m, "hp", PriorityParameters(20),
                    PeriodicParameters(TimePoint::origin(), tu(4), tu(3)),
                    nullptr);
  RealtimeThread lp(m, "lp", PriorityParameters(10),
                    PeriodicParameters(TimePoint::origin(), tu(8), tu(3)),
                    nullptr);
  PriorityScheduler sched;
  sched.add_to_feasibility(&hp);
  sched.add_to_feasibility(&lp);
  EXPECT_FALSE(sched.is_feasible());
  EXPECT_TRUE(sched.response_time(&lp).is_infinite());
}

TEST(PriorityScheduler, RemoveFromFeasibility) {
  VirtualMachine m;
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(5), tu(1)),
                   nullptr);
  PriorityScheduler sched;
  sched.add_to_feasibility(&t);
  sched.add_to_feasibility(&t);  // idempotent
  EXPECT_EQ(sched.feasibility_set().size(), 1u);
  EXPECT_TRUE(sched.remove_from_feasibility(&t));
  EXPECT_FALSE(sched.remove_from_feasibility(&t));
}

TEST(Clock, ReadsVirtualTime) {
  VirtualMachine m;
  Clock clock(m);
  EXPECT_EQ(clock.get_time(), TimePoint::origin());
  m.run_until(at_tu(9));
  EXPECT_EQ(clock.get_time(), at_tu(9));
}

}  // namespace
}  // namespace tsf::rtsj
