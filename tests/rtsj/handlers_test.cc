// RTSJ deadline-miss and cost-overrun handlers on RealtimeThread.
#include <gtest/gtest.h>

#include <vector>

#include "rtsj/async_event.h"
#include "rtsj/realtime_thread.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj {
namespace {

using common::Duration;
using common::TimePoint;
using vm::VirtualMachine;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

TEST(DeadlineMissHandler, FiresWhenJobFinishesLate) {
  VirtualMachine m;
  std::vector<TimePoint> misses;
  AsyncEventHandler miss(m, "miss", PriorityParameters(5),
                         [&](AsyncEventHandler& self) {
                           misses.push_back(self.machine().now());
                         });
  // Period 4, deadline 4, but a high-priority thread steals [0,6): the
  // first job of `victim` completes at 7 > 4.
  RealtimeThread thief(m, "thief", PriorityParameters(20),
                       PeriodicParameters(TimePoint::origin(), tu(100)),
                       [](RealtimeThread& self) { self.work(tu(6)); });
  RealtimeThread victim(m, "victim", PriorityParameters(10),
                        PeriodicParameters(TimePoint::origin(), tu(4), tu(1)),
                        [](RealtimeThread& self) {
                          for (;;) {
                            self.work(tu(1));
                            self.wait_for_next_period();
                          }
                        });
  victim.set_deadline_miss_handler(&miss);
  thief.start();
  victim.start();
  m.run_until(at_tu(20));
  EXPECT_GE(victim.deadline_miss_count(), 1u);
  ASSERT_GE(misses.size(), 1u);
  // The miss is detected at completion (t=7).
  EXPECT_EQ(misses[0], at_tu(7));
}

TEST(DeadlineMissHandler, SilentWhenAllDeadlinesMet) {
  VirtualMachine m;
  int fired = 0;
  AsyncEventHandler miss(m, "miss", PriorityParameters(5),
                         [&](AsyncEventHandler&) { ++fired; });
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(5), tu(2)),
                   [](RealtimeThread& self) {
                     for (;;) {
                       self.work(tu(2));
                       self.wait_for_next_period();
                     }
                   });
  t.set_deadline_miss_handler(&miss);
  t.start();
  m.run_until(at_tu(50));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(t.deadline_miss_count(), 0u);
}

TEST(CostOverrunHandler, FiresOncePerOverrunningRelease) {
  VirtualMachine m;
  int fired = 0;
  AsyncEventHandler overrun(m, "overrun", PriorityParameters(5),
                            [&](AsyncEventHandler&) { ++fired; });
  // Declared cost 1; the body consumes 3 in separate chunks — the handler
  // must fire exactly once per release, at the crossing.
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(10), tu(1)),
                   [](RealtimeThread& self) {
                     for (;;) {
                       self.work(tu(1));
                       self.work(tu(1));
                       self.work(tu(1));
                       self.wait_for_next_period();
                     }
                   });
  t.set_cost_overrun_handler(&overrun);
  t.start();
  m.run_until(at_tu(25));  // releases at 0, 10, 20 (third one incomplete)
  EXPECT_EQ(t.cost_overrun_count(), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(CostOverrunHandler, ExactCostDoesNotFire) {
  VirtualMachine m;
  int fired = 0;
  AsyncEventHandler overrun(m, "overrun", PriorityParameters(5),
                            [&](AsyncEventHandler&) { ++fired; });
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(10), tu(2)),
                   [](RealtimeThread& self) {
                     for (;;) {
                       self.work(tu(2));  // exactly the declared cost
                       self.wait_for_next_period();
                     }
                   });
  t.set_cost_overrun_handler(&overrun);
  t.start();
  m.run_until(at_tu(50));
  EXPECT_EQ(fired, 0);
}

TEST(CostOverrunHandler, PreemptionDoesNotCountAsConsumption) {
  // Cost accounting is service time, not wall time: a preempted job whose
  // own demand stays within its cost never fires the overrun handler.
  VirtualMachine m;
  int fired = 0;
  AsyncEventHandler overrun(m, "overrun", PriorityParameters(5),
                            [&](AsyncEventHandler&) { ++fired; });
  RealtimeThread thief(m, "thief", PriorityParameters(20),
                       PeriodicParameters(at_tu(1), tu(100)),
                       [](RealtimeThread& self) { self.work(tu(5)); });
  RealtimeThread t(m, "t", PriorityParameters(10),
                   PeriodicParameters(TimePoint::origin(), tu(20), tu(2)),
                   [](RealtimeThread& self) {
                     for (;;) {
                       self.work(tu(2));
                       self.wait_for_next_period();
                     }
                   });
  t.set_cost_overrun_handler(&overrun);
  t.start();
  thief.start();
  m.run_until(at_tu(50));
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace tsf::rtsj
