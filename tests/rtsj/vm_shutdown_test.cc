// Teardown regression suite for the VM's fiber shutdown: a VirtualMachine
// must destroy cleanly — signalling termination to every fiber before
// joining any thread — whatever state the run left its fibers in: started
// but never run, parked mid-work, frozen at a horizon, or stranded by a run
// that aborted mid-horizon with an exception.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "common/time.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj::vm {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

TEST(VmShutdown, UnRunFibersDestroyCleanly) {
  // Fibers started (threads spawned, parked at their first grant) but the
  // driver never runs: destruction must wake and join every one.
  VirtualMachine vm;
  bool ran = false;
  for (int i = 0; i < 8; ++i) {
    auto* fiber = vm.create_fiber("f" + std::to_string(i), 10 + i,
                                  [&vm, &ran] {
                                    ran = true;
                                    vm.work(tu(5));
                                  });
    vm.start_fiber(fiber);
  }
  // Destructor runs here. The bodies must never have executed.
  EXPECT_FALSE(ran);
}

TEST(VmShutdown, NeverStartedFibersDestroyCleanly) {
  // Created but never started: no thread exists, nothing to signal or join.
  VirtualMachine vm;
  vm.create_fiber("idle", 5, [&vm] { vm.work(tu(1)); });
  vm.create_fiber("idle2", 6, [&vm] { vm.work(tu(1)); });
}

TEST(VmShutdown, MixOfFinishedParkedAndUnrunFibers) {
  VirtualMachine vm;
  auto* done = vm.create_fiber("done", 20, [&vm] { vm.work(tu(1)); });
  auto* parked = vm.create_fiber("parked", 10, [&vm] { vm.work(tu(100)); });
  vm.start_fiber(done);
  vm.start_fiber(parked);
  vm.run_until(at_tu(2));  // "done" finishes; "parked" freezes mid-work
  auto* unrun = vm.create_fiber("unrun", 1, [&vm] { vm.work(tu(1)); });
  vm.start_fiber(unrun);
  EXPECT_TRUE(done->finished());
  EXPECT_FALSE(parked->finished());
  EXPECT_FALSE(unrun->finished());
  // Destructor: one finished (join only), one frozen mid-work (signal +
  // join), one ready-but-never-granted (signal + join).
}

TEST(VmShutdown, AbortMidHorizonThenDestroyWithUnrunFibers) {
  // A run aborts mid-horizon: the erroring fiber's exception surfaces from
  // run_until while lower-priority fibers have not run at all and a
  // same-priority one is parked waiting. Destruction right after the abort
  // must still signal every survivor before joining.
  auto vm = std::make_unique<VirtualMachine>();
  auto* boom = vm->create_fiber("boom", 30, [&] {
    vm->work(tu(2));
    throw std::runtime_error("handler failed");
  });
  auto* waiting = vm->create_fiber("waiting", 20, [&] { vm->work(tu(50)); });
  auto* starved = vm->create_fiber("starved", 1, [&] { vm->work(tu(50)); });
  vm->start_fiber(boom);
  vm->start_fiber(waiting);
  vm->start_fiber(starved);
  EXPECT_THROW(vm->run_until(at_tu(10)), std::runtime_error);
  EXPECT_FALSE(waiting->finished());
  EXPECT_FALSE(starved->finished());
  vm.reset();  // must not hang or crash
}

TEST(VmShutdown, DestroyFromAnotherThreadAfterPartialRun) {
  // The threads backend drives a VM on a worker and may destroy it from the
  // main thread after joining the worker: the join is the ordering edge the
  // destructor relies on.
  for (int round = 0; round < 20; ++round) {
    auto vm = std::make_unique<VirtualMachine>();
    auto* fiber = vm->create_fiber("w", 10, [&] { vm->work(tu(1000)); });
    vm->start_fiber(fiber);
    std::thread driver([&] { vm->run_until(at_tu(3)); });
    driver.join();
    EXPECT_FALSE(fiber->finished());
    vm.reset();
  }
}

}  // namespace
}  // namespace tsf::rtsj::vm
