// Tests for the virtual-time kernel: scheduling, preemption, timers,
// overhead accounting, horizons, and determinism.
#include "rtsj/vm/vm.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/time.h"
#include "common/trace.h"

namespace tsf::rtsj::vm {
namespace {

using common::Duration;
using common::Interval;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

TEST(VmBasics, SingleFiberConsumesVirtualTime) {
  VirtualMachine m;
  TimePoint done;
  Fiber* f = m.create_fiber("worker", 10, [&] {
    m.work(tu(3));
    done = m.now();
  });
  m.start_fiber(f);
  m.run_until(at_tu(100));
  EXPECT_EQ(done, at_tu(3));
  EXPECT_TRUE(f->finished());
}

TEST(VmBasics, FiberDoesNotRunBeforeStart) {
  VirtualMachine m;
  bool ran = false;
  m.create_fiber("never", 10, [&] { ran = true; });
  m.run_until(at_tu(10));
  EXPECT_FALSE(ran);
}

TEST(VmBasics, WorkZeroCompletesInstantly) {
  VirtualMachine m;
  Fiber* f = m.create_fiber("zero", 10, [&] { m.work(Duration::zero()); });
  m.start_fiber(f);
  m.run_until(at_tu(1));
  EXPECT_TRUE(f->finished());
  EXPECT_EQ(m.now(), at_tu(1));
}

TEST(VmBasics, SequentialWorkAccumulates) {
  VirtualMachine m;
  std::vector<TimePoint> marks;
  Fiber* f = m.create_fiber("worker", 10, [&] {
    for (int i = 0; i < 4; ++i) {
      m.work(tu(2));
      marks.push_back(m.now());
    }
  });
  m.start_fiber(f);
  m.run_until(at_tu(100));
  ASSERT_EQ(marks.size(), 4u);
  EXPECT_EQ(marks[0], at_tu(2));
  EXPECT_EQ(marks[1], at_tu(4));
  EXPECT_EQ(marks[2], at_tu(6));
  EXPECT_EQ(marks[3], at_tu(8));
}

TEST(VmScheduling, HigherPriorityPreempts) {
  VirtualMachine m;
  TimePoint low_done, high_done;
  Fiber* high = m.create_fiber("high", 20, [&] {
    m.work(tu(2));
    high_done = m.now();
  });
  Fiber* low = m.create_fiber("low", 10, [&] {
    m.work(tu(10));
    low_done = m.now();
  });
  m.start_fiber(low);
  // Release the high-priority fiber at t=5 while low is mid-work.
  m.schedule_silent(at_tu(5), [&] { m.start_fiber(high); });
  m.run_until(at_tu(100));
  EXPECT_EQ(high_done, at_tu(7));   // runs [5,7)
  EXPECT_EQ(low_done, at_tu(12));   // 10 units of service + 2 preempted
}

TEST(VmScheduling, EqualPriorityIsFifoNotRoundRobin) {
  VirtualMachine m;
  TimePoint first_done, second_done;
  Fiber* a = m.create_fiber("a", 10, [&] {
    m.work(tu(4));
    first_done = m.now();
  });
  Fiber* b = m.create_fiber("b", 10, [&] {
    m.work(tu(4));
    second_done = m.now();
  });
  m.start_fiber(a);
  m.start_fiber(b);
  m.run_until(at_tu(100));
  // a was made ready first and must run to completion before b starts.
  EXPECT_EQ(first_done, at_tu(4));
  EXPECT_EQ(second_done, at_tu(8));
}

TEST(VmScheduling, PriorityOrderAtSameInstant) {
  VirtualMachine m;
  std::vector<std::string> order;
  Fiber* lo = m.create_fiber("lo", 1, [&] {
    m.work(tu(1));
    order.push_back("lo");
  });
  Fiber* hi = m.create_fiber("hi", 9, [&] {
    m.work(tu(1));
    order.push_back("hi");
  });
  Fiber* mid = m.create_fiber("mid", 5, [&] {
    m.work(tu(1));
    order.push_back("mid");
  });
  // Start order deliberately scrambled; priority must decide.
  m.start_fiber(lo);
  m.start_fiber(hi);
  m.start_fiber(mid);
  m.run_until(at_tu(100));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "hi");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(order[2], "lo");
}

TEST(VmScheduling, SleepUntilWakesAtExactInstant) {
  VirtualMachine m;
  TimePoint woke;
  Fiber* f = m.create_fiber("sleeper", 10, [&] {
    m.sleep_until(at_tu(7));
    woke = m.now();
  });
  m.start_fiber(f);
  m.run_until(at_tu(100));
  EXPECT_EQ(woke, at_tu(7));
}

TEST(VmScheduling, SleepInPastReturnsImmediately) {
  VirtualMachine m;
  TimePoint woke;
  Fiber* f = m.create_fiber("sleeper", 10, [&] {
    m.work(tu(5));
    m.sleep_until(at_tu(3));  // already past
    woke = m.now();
  });
  m.start_fiber(f);
  m.run_until(at_tu(100));
  EXPECT_EQ(woke, at_tu(5));
}

TEST(VmScheduling, BlockUnblock) {
  VirtualMachine m;
  TimePoint resumed;
  Fiber* f = m.create_fiber("blocked", 10, [&] {
    m.block();
    resumed = m.now();
  });
  m.start_fiber(f);
  m.schedule_silent(at_tu(9), [&] { m.unblock(f); });
  m.run_until(at_tu(100));
  EXPECT_EQ(resumed, at_tu(9));
}

TEST(VmScheduling, UnblockOnRunnableFiberIsNoOp) {
  VirtualMachine m;
  Fiber* f = m.create_fiber("w", 10, [&] { m.work(tu(2)); });
  m.start_fiber(f);
  m.unblock(f);  // not blocked: must not corrupt the ready set
  m.run_until(at_tu(100));
  EXPECT_TRUE(f->finished());
}

TEST(VmScheduling, PreemptedFiberResumesWithRemainingDemandIntact) {
  VirtualMachine m;
  // low works 6; high bursts of 1 at t=1,2,3. low must finish at 9.
  TimePoint low_done;
  Fiber* low = m.create_fiber("low", 1, [&] {
    m.work(tu(6));
    low_done = m.now();
  });
  Fiber* high = m.create_fiber("high", 9, [&] {
    for (int i = 0; i < 3; ++i) {
      m.work(tu(1));
      m.sleep_until(m.now());  // no-op; keep running pattern simple
      if (i < 2) m.sleep_until(at_tu(i + 2));
    }
  });
  m.start_fiber(low);
  m.schedule_silent(at_tu(1), [&] { m.start_fiber(high); });
  m.run_until(at_tu(100));
  EXPECT_EQ(low_done, at_tu(9));
}

TEST(VmTimers, TimersFireInOrderWithTies) {
  VirtualMachine m;
  std::vector<int> order;
  m.schedule_silent(at_tu(5), [&] { order.push_back(2); });
  m.schedule_silent(at_tu(3), [&] { order.push_back(1); });
  m.schedule_silent(at_tu(5), [&] { order.push_back(3); });  // tie: after 2
  m.run_until(at_tu(10));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(VmTimers, CancelledTimerNeverFires) {
  VirtualMachine m;
  bool fired = false;
  auto h = m.schedule_silent(at_tu(5), [&] { fired = true; });
  h.cancel();
  m.run_until(at_tu(10));
  EXPECT_FALSE(fired);
}

TEST(VmTimers, TimerFiresDuringFiberWork) {
  VirtualMachine m;
  TimePoint fired_at;
  Fiber* f = m.create_fiber("w", 10, [&] { m.work(tu(10)); });
  m.start_fiber(f);
  m.schedule_silent(at_tu(4), [&] { fired_at = m.now(); });
  m.run_until(at_tu(20));
  EXPECT_EQ(fired_at, at_tu(4));
  EXPECT_TRUE(f->finished());
}

TEST(VmOverhead, TimerFireOverheadStallsTheProcessor) {
  OverheadModel oh;
  oh.timer_fire = Duration::ticks(200);
  VirtualMachine m(oh);
  TimePoint done;
  Fiber* f = m.create_fiber("w", 10, [&] {
    m.work(tu(4));
    done = m.now();
  });
  m.start_fiber(f);
  // Two timers fire while the fiber works; each steals 200 ticks.
  m.schedule_timer(at_tu(1), [] {});
  m.schedule_timer(at_tu(2), [] {});
  m.run_until(at_tu(100));
  EXPECT_EQ(done, at_tu(4) + Duration::ticks(400));
}

TEST(VmOverhead, OverheadAtSameInstantStacks) {
  OverheadModel oh;
  oh.timer_fire = Duration::ticks(100);
  VirtualMachine m(oh);
  TimePoint done;
  Fiber* f = m.create_fiber("w", 10, [&] {
    m.work(tu(1));
    done = m.now();
  });
  m.start_fiber(f);
  m.schedule_timer(at_tu(0), [] {});
  m.schedule_timer(at_tu(0), [] {});
  m.schedule_timer(at_tu(0), [] {});
  m.run_until(at_tu(100));
  EXPECT_EQ(done, at_tu(1) + Duration::ticks(300));
}

TEST(VmOverhead, ContextSwitchOverheadCharged) {
  OverheadModel oh;
  oh.context_switch = Duration::ticks(50);
  VirtualMachine m(oh);
  TimePoint done;
  Fiber* f = m.create_fiber("w", 10, [&] {
    m.work(tu(1));
    done = m.now();
  });
  m.start_fiber(f);
  m.run_until(at_tu(100));
  // One grant: 50 ticks of switch cost before any service accrues.
  EXPECT_EQ(done, at_tu(1) + Duration::ticks(50));
}

TEST(VmInterrupt, InterruptDeliveredOnlyInInterruptibleSection) {
  VirtualMachine m;
  bool threw = false;
  TimePoint caught_at;
  Fiber* f = m.create_fiber("w", 10, [&] {
    // Not interruptible yet: the pending interrupt must be held.
    m.work(tu(2));
    m.enter_interruptible(m.current());
    try {
      m.work(tu(2));
    } catch (const AsyncInterrupt&) {
      threw = true;
      caught_at = m.now();
    }
    m.exit_interruptible(m.current());
  });
  m.start_fiber(f);
  m.schedule_silent(at_tu(1), [&] { m.post_interrupt(f); });
  m.run_until(at_tu(100));
  EXPECT_TRUE(threw);
  // Delivered at the first interruptible work() call, i.e. t=2.
  EXPECT_EQ(caught_at, at_tu(2));
}

TEST(VmInterrupt, InterruptMidWorkStopsServiceAtFireTime) {
  VirtualMachine m;
  TimePoint caught_at;
  Fiber* f = m.create_fiber("w", 10, [&] {
    m.enter_interruptible(m.current());
    try {
      m.work(tu(10));
    } catch (const AsyncInterrupt&) {
      caught_at = m.now();
    }
    m.exit_interruptible(m.current());
  });
  m.start_fiber(f);
  m.schedule_silent(at_tu(4), [&] { m.post_interrupt(f); });
  m.run_until(at_tu(100));
  EXPECT_EQ(caught_at, at_tu(4));
}

TEST(VmInterrupt, ClearInterruptDropsPendingFlag) {
  VirtualMachine m;
  bool threw = false;
  Fiber* f = m.create_fiber("w", 10, [&] {
    m.work(tu(2));  // interrupt posted at t=1, not deliverable yet
    m.clear_interrupt(m.current());
    m.enter_interruptible(m.current());
    try {
      m.work(tu(1));
    } catch (const AsyncInterrupt&) {
      threw = true;
    }
    m.exit_interruptible(m.current());
  });
  m.start_fiber(f);
  m.schedule_silent(at_tu(1), [&] { m.post_interrupt(f); });
  m.run_until(at_tu(100));
  EXPECT_FALSE(threw);
}

TEST(VmHorizon, RunUntilFreezesMidWorkAndResumes) {
  VirtualMachine m;
  TimePoint done;
  Fiber* f = m.create_fiber("w", 10, [&] {
    m.work(tu(10));
    done = m.now();
  });
  m.start_fiber(f);
  m.run_until(at_tu(4));
  EXPECT_EQ(m.now(), at_tu(4));
  EXPECT_FALSE(f->finished());
  m.run_until(at_tu(50));
  EXPECT_EQ(done, at_tu(10));
  EXPECT_TRUE(f->finished());
}

TEST(VmHorizon, IdleAdvancesToHorizon) {
  VirtualMachine m;
  m.run_until(at_tu(42));
  EXPECT_EQ(m.now(), at_tu(42));
}

TEST(VmHorizon, TimersBeyondHorizonDoNotFire) {
  VirtualMachine m;
  bool fired = false;
  m.schedule_silent(at_tu(10), [&] { fired = true; });
  m.run_until(at_tu(5));
  EXPECT_FALSE(fired);
  m.run_until(at_tu(15));
  EXPECT_TRUE(fired);
}

TEST(VmTrace, BusyIntervalsReflectPreemption) {
  VirtualMachine m;
  Fiber* low = m.create_fiber("low", 1, [&] { m.work(tu(6)); });
  Fiber* high = m.create_fiber("high", 9, [&] { m.work(tu(2)); });
  m.start_fiber(low);
  m.schedule_silent(at_tu(3), [&] { m.start_fiber(high); });
  m.run_until(at_tu(100));
  const auto low_iv = m.timeline().busy_intervals("low");
  const auto high_iv = m.timeline().busy_intervals("high");
  ASSERT_EQ(high_iv.size(), 1u);
  EXPECT_EQ(high_iv[0], (Interval{at_tu(3), at_tu(5)}));
  ASSERT_EQ(low_iv.size(), 2u);
  EXPECT_EQ(low_iv[0], (Interval{at_tu(0), at_tu(3)}));
  EXPECT_EQ(low_iv[1], (Interval{at_tu(5), at_tu(8)}));
}

TEST(VmTrace, SetLabelSplitsAttribution) {
  VirtualMachine m;
  Fiber* f = m.create_fiber("server", 10, [&] {
    m.work(tu(1));
    m.set_label("h1");
    m.work(tu(2));
    m.set_label("server");
    m.work(tu(1));
  });
  m.start_fiber(f);
  m.run_until(at_tu(100));
  const auto server_iv = m.timeline().busy_intervals("server");
  const auto h1_iv = m.timeline().busy_intervals("h1");
  ASSERT_EQ(h1_iv.size(), 1u);
  EXPECT_EQ(h1_iv[0], (Interval{at_tu(1), at_tu(3)}));
  ASSERT_EQ(server_iv.size(), 2u);
  EXPECT_EQ(server_iv[0], (Interval{at_tu(0), at_tu(1)}));
  EXPECT_EQ(server_iv[1], (Interval{at_tu(3), at_tu(4)}));
}

TEST(VmErrors, FiberExceptionSurfacesInRunUntil) {
  VirtualMachine m;
  Fiber* f = m.create_fiber("bad", 10, [&] {
    m.work(tu(1));
    throw std::runtime_error("boom");
  });
  m.start_fiber(f);
  EXPECT_THROW(m.run_until(at_tu(10)), std::runtime_error);
}

TEST(VmLifecycle, DestructionWithParkedFibersIsClean) {
  auto m = std::make_unique<VirtualMachine>();
  Fiber* blocked = m->create_fiber("blocked", 10, [&] { m->block(); });
  Fiber* sleeping =
      m->create_fiber("sleeping", 10, [&] { m->sleep_until(at_tu(1000)); });
  Fiber* working = m->create_fiber("working", 5, [&] { m->work(tu(1000)); });
  m->start_fiber(blocked);
  m->start_fiber(sleeping);
  m->start_fiber(working);
  m->run_until(at_tu(10));
  // Destructor must join all three without deadlock.
  m.reset();
  SUCCEED();
}

TEST(VmLifecycle, DestructionWithoutRunIsClean) {
  VirtualMachine m;
  Fiber* f = m.create_fiber("unran", 10, [&] { m.work(tu(1)); });
  m.start_fiber(f);
  // No run_until at all.
}

TEST(VmDeterminism, IdenticalSetupsProduceIdenticalTimelines) {
  auto run = [] {
    VirtualMachine m;
    Fiber* low = m.create_fiber("low", 1, [&] {
      for (int i = 0; i < 5; ++i) {
        m.work(tu(2));
        m.sleep_until(m.now() + tu(1));
      }
    });
    Fiber* high = m.create_fiber("high", 9, [&] {
      for (int i = 0; i < 5; ++i) {
        m.work(tu(1));
        m.sleep_until(m.now() + tu(3));
      }
    });
    m.start_fiber(low);
    m.start_fiber(high);
    m.run_until(at_tu(50));
    return m.timeline().to_csv();
  };
  EXPECT_EQ(run(), run());
}

TEST(VmDeterminism, ContextSwitchCountIsStable) {
  auto run = [] {
    VirtualMachine m;
    Fiber* a = m.create_fiber("a", 1, [&] { m.work(tu(5)); });
    Fiber* b = m.create_fiber("b", 2, [&] {
      m.sleep_until(at_tu(1));
      m.work(tu(1));
    });
    m.start_fiber(a);
    m.start_fiber(b);
    m.run_until(at_tu(20));
    return m.context_switches();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tsf::rtsj::vm
