// Global operator new/delete interposer for the zero-allocation tests.
//
// Include this from EXACTLY ONE translation unit per test binary (the
// replacement operators are definitions, not declarations — a second
// including TU is an ODR violation the linker will reject). The interposer
// routes every C++ heap allocation through malloc and counts it, so a test
// can snapshot tsf::testing::alloc_count() around a steady-state window and
// assert the delta is zero.
//
// Under ASan/TSan the sanitizer runtime owns the allocator and interposing
// on top of it is asking for trouble, so the interposer compiles itself out
// (TSF_ALLOC_INTERPOSER_ACTIVE == 0) and tests should GTEST_SKIP.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TSF_ALLOC_INTERPOSER_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TSF_ALLOC_INTERPOSER_ACTIVE 0
#else
#define TSF_ALLOC_INTERPOSER_ACTIVE 1
#endif
#else
#define TSF_ALLOC_INTERPOSER_ACTIVE 1
#endif

namespace tsf::testing {

// Total operator-new calls (all forms) since process start. Monotonic;
// tests compare before/after snapshots, never absolute values.
inline std::atomic<std::uint64_t>& alloc_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline std::uint64_t alloc_count() {
  return alloc_counter().load(std::memory_order_relaxed);
}

inline constexpr bool alloc_interposer_active() {
  return TSF_ALLOC_INTERPOSER_ACTIVE != 0;
}

}  // namespace tsf::testing

#if TSF_ALLOC_INTERPOSER_ACTIVE

#include <execinfo.h>
#include <unistd.h>

namespace tsf::testing {

// Diagnostic aid: while true, every counted allocation dumps a raw
// backtrace to stderr (addresses only — pipe through addr2line/llvm-
// symbolizer). Off by default; tests flip it only when hunting a failure.
inline std::atomic<bool>& alloc_trace() {
  static std::atomic<bool> on{false};
  return on;
}

}  // namespace tsf::testing

namespace tsf::testing::detail {

inline void dump_backtrace() {
  void* frames[24];
  const int n = ::backtrace(frames, 24);
  ::backtrace_symbols_fd(frames, n, STDERR_FILENO);
  const char nl = '\n';
  (void)!::write(STDERR_FILENO, &nl, 1);
}

inline void* counted_alloc(std::size_t size) {
  alloc_counter().fetch_add(1, std::memory_order_relaxed);
  if (alloc_trace().load(std::memory_order_relaxed)) dump_backtrace();
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  alloc_counter().fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size > 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace tsf::testing::detail

// Replacement functions ([new.delete.single] / [new.delete.array]); the
// array and nothrow forms forward so every path is counted.
void* operator new(std::size_t size) {
  return tsf::testing::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return tsf::testing::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return tsf::testing::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return tsf::testing::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tsf::testing::detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tsf::testing::detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // TSF_ALLOC_INTERPOSER_ACTIVE
