// Shared invariant checks over execution timelines.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/trace.h"

namespace tsf::testing {

struct OwnedInterval {
  common::Interval interval;
  std::string who;
};

// All busy intervals of all entities, sorted by start time.
inline std::vector<OwnedInterval> all_busy_intervals(
    const common::Timeline& timeline) {
  std::vector<OwnedInterval> out;
  for (const auto& who : timeline.entities()) {
    for (const auto& iv : timeline.busy_intervals(who)) {
      out.push_back({iv, who});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OwnedInterval& a, const OwnedInterval& b) {
              return a.interval.begin < b.interval.begin;
            });
  return out;
}

// Single-processor invariant: no two entities hold the CPU at once.
// Returns a description of the first violation, or an empty string.
inline std::string find_overlap(const common::Timeline& timeline) {
  const auto intervals = all_busy_intervals(timeline);
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].interval.begin < intervals[i - 1].interval.end) {
      return intervals[i - 1].who + " [" +
             common::to_string(intervals[i - 1].interval.begin) + "," +
             common::to_string(intervals[i - 1].interval.end) +
             ") overlaps " + intervals[i].who + " starting " +
             common::to_string(intervals[i].interval.begin);
    }
  }
  return {};
}

// Total processor busy time across all entities.
inline common::Duration total_busy(const common::Timeline& timeline) {
  common::Duration sum = common::Duration::zero();
  for (const auto& owned : all_busy_intervals(timeline)) {
    sum += owned.interval.end - owned.interval.begin;
  }
  return sum;
}

}  // namespace tsf::testing
