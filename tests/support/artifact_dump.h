// Failing-test artifacts for determinism diagnostics.
//
// A fingerprint mismatch tells you *that* two runs diverged, not *where*.
// Tests that compare trace fingerprints call dump_timeline_mismatch on
// failure: it writes both timelines as CSV into $TSF_ARTIFACT_DIR (or
// ./test-artifacts when unset), where the CI workflow picks them up as
// build artifacts. Diffing the two CSVs pinpoints the first diverging
// record.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/trace.h"

namespace tsf::testing {

inline std::filesystem::path artifact_dir() {
  const char* dir = std::getenv("TSF_ARTIFACT_DIR");
  return std::filesystem::path(dir != nullptr && *dir != '\0'
                                   ? dir
                                   : "test-artifacts");
}

// Writes `content` to <artifact-dir>/<name>; returns the path written (for
// the assertion message). Failures to write are swallowed — the artifact is
// best-effort diagnostics, never the reason a test fails.
inline std::string write_test_artifact(const std::string& name,
                                       const std::string& content) {
  std::error_code ec;
  const auto dir = artifact_dir();
  std::filesystem::create_directories(dir, ec);
  const auto path = dir / name;
  std::ofstream out(path);
  if (out) out << content;
  return path.string();
}

// Dumps two diverging timelines side by side; returns a message naming the
// written files, suitable for streaming into an EXPECT_* failure.
inline std::string dump_timeline_mismatch(const std::string& test_name,
                                          const common::Timeline& expected,
                                          const common::Timeline& actual) {
  const auto a =
      write_test_artifact(test_name + ".expected.csv", expected.to_csv());
  const auto b =
      write_test_artifact(test_name + ".actual.csv", actual.to_csv());
  return "timelines diverged; dumped " + a + " and " + b;
}

}  // namespace tsf::testing
