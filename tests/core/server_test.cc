// Unit tests for the concrete server policies beyond the paper's worked
// scenarios: capacity accounting, the DS boundary-spanning rule, sporadic
// replenishment, background service, and server statistics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/background_server.h"
#include "core/deferrable_task_server.h"
#include "core/polling_task_server.h"
#include "core/servable_async_event.h"
#include "core/sporadic_task_server.h"
#include "rtsj/realtime_thread.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

namespace tsf::core {
namespace {

using common::Duration;
using common::Interval;
using common::TimePoint;
using rtsj::vm::VirtualMachine;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

// A test jig owning a VM, one server, and dynamically created events.
template <typename Server>
class Jig {
 public:
  explicit Jig(TaskServerParameters params) : server_(vm_, params) {}

  // Fires an event for a fresh handler with the given costs at time t.
  void event(const std::string& name, std::int64_t t, Duration declared,
             Duration actual = Duration::zero()) {
    event_at(name, TimePoint::origin() + tu(t), declared, actual);
  }

  void event_at(const std::string& name, TimePoint at, Duration declared,
                Duration actual = Duration::zero()) {
    if (actual.is_zero()) actual = declared;
    handlers_.push_back(std::make_unique<ServableAsyncEventHandler>(
        ServableAsyncEventHandler::pure_work(name, declared, actual)));
    handlers_.back()->set_server(&server_);
    events_.push_back(std::make_unique<ServableAsyncEvent>(vm_, name + ".e"));
    events_.back()->add_handler(handlers_.back().get());
    timers_.push_back(std::make_unique<rtsj::OneShotTimer>(
        vm_, at, events_.back().get()));
    timers_.back()->start();
  }

  void run(std::int64_t horizon) {
    server_.start();
    vm_.run_until(at_tu(horizon));
  }

  std::vector<Interval> busy(const std::string& who) {
    return vm_.timeline().busy_intervals(who);
  }

  VirtualMachine vm_;
  Server server_;
  std::vector<std::unique_ptr<ServableAsyncEventHandler>> handlers_;
  std::vector<std::unique_ptr<ServableAsyncEvent>> events_;
  std::vector<std::unique_ptr<rtsj::OneShotTimer>> timers_;
};

TaskServerParameters params_4_6(model::QueueDiscipline q =
                                    model::QueueDiscipline::kFifoFirstFit) {
  TaskServerParameters p("server", tu(4), tu(6), 30);
  p.set_queue_discipline(q);
  return p;
}

TEST(PollingServer, EventLargerThanCapacityNeverServed) {
  Jig<PollingTaskServer> jig(params_4_6());
  jig.event("huge", 0, tu(5));
  jig.run(60);
  EXPECT_EQ(jig.server_.served_count(), 0u);
  EXPECT_EQ(jig.server_.interrupted_count(), 0u);
  const auto outcomes = jig.server_.final_outcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].served);
}

TEST(PollingServer, ServesMultipleEventsPerInstanceWithinCapacity) {
  Jig<PollingTaskServer> jig(params_4_6());
  jig.event("a", 0, tu(2));
  jig.event("b", 0, tu(2));
  jig.run(12);
  EXPECT_EQ(jig.busy("a")[0], (Interval{at_tu(0), at_tu(2)}));
  EXPECT_EQ(jig.busy("b")[0], (Interval{at_tu(2), at_tu(4)}));
  EXPECT_EQ(jig.server_.served_count(), 2u);
  EXPECT_EQ(jig.server_.activation_count(), 2u);  // t=0 and t=6
}

TEST(PollingServer, FirstFitServesLaterCheapEventFirst) {
  // §6.2.2's worked example at the server level.
  Jig<PollingTaskServer> jig(params_4_6());
  jig.event("expensive", 1, tu(3));
  jig.event("cheap", 2, tu(1));
  // At t=6 the server has capacity 4: expensive [6,9), cheap [9,10).
  jig.run(12);
  EXPECT_EQ(jig.busy("expensive")[0], (Interval{at_tu(6), at_tu(9)}));
  EXPECT_EQ(jig.busy("cheap")[0], (Interval{at_tu(9), at_tu(10)}));
}

TEST(PollingServer, FirstFitReordersWhenHeadTooBig) {
  Jig<PollingTaskServer> jig(params_4_6());
  // Three events: 3 + 3 doesn't fit one instance; the 1-cost event jumps in.
  jig.event("big1", 0, tu(3));
  jig.event("big2", 0, tu(3));
  jig.event("small", 0, tu(1));
  jig.run(18);
  EXPECT_EQ(jig.busy("big1")[0], (Interval{at_tu(0), at_tu(3)}));
  EXPECT_EQ(jig.busy("small")[0], (Interval{at_tu(3), at_tu(4)}));
  EXPECT_EQ(jig.busy("big2")[0], (Interval{at_tu(6), at_tu(9)}));
}

TEST(PollingServer, StrictFifoDoesNotReorder) {
  Jig<PollingTaskServer> jig(
      params_4_6(model::QueueDiscipline::kStrictFifo));
  jig.event("big1", 0, tu(3));
  jig.event("big2", 0, tu(3));
  jig.event("small", 0, tu(1));
  jig.run(18);
  EXPECT_EQ(jig.busy("big1")[0], (Interval{at_tu(0), at_tu(3)}));
  // Strict FIFO: big2 blocks the queue; small waits behind it.
  EXPECT_EQ(jig.busy("big2")[0], (Interval{at_tu(6), at_tu(9)}));
  EXPECT_EQ(jig.busy("small")[0], (Interval{at_tu(9), at_tu(10)}));
}

TEST(PollingServer, SameHandlerFiredTwiceServedTwice) {
  Jig<PollingTaskServer> jig(params_4_6());
  jig.event("h", 0, tu(2));
  // Fire the same event again at t=1 (second release of the same handler).
  jig.timers_.push_back(std::make_unique<rtsj::OneShotTimer>(
      jig.vm_, at_tu(1), jig.events_[0].get()));
  jig.timers_.back()->start();
  jig.run(12);
  EXPECT_EQ(jig.server_.released_count(), 2u);
  EXPECT_EQ(jig.server_.served_count(), 2u);
  const auto iv = jig.busy("h");
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{at_tu(0), at_tu(2)}));
  EXPECT_EQ(iv[1], (Interval{at_tu(2), at_tu(4)}));
}

TEST(DeferrableServer, ServesImmediatelyMidPeriod) {
  Jig<DeferrableTaskServer> jig(params_4_6());
  jig.event("a", 2, tu(2));
  jig.run(12);
  // DS serves at release, not at the next activation.
  EXPECT_EQ(jig.busy("a")[0], (Interval{at_tu(2), at_tu(4)}));
}

TEST(DeferrableServer, PreservesCapacityWhileIdle) {
  Jig<DeferrableTaskServer> jig(params_4_6());
  jig.event("a", 1, tu(2));  // consumes 2, leaving 2
  jig.event("b", 4, tu(2));  // fits the preserved remainder
  jig.run(12);
  EXPECT_EQ(jig.busy("a")[0], (Interval{at_tu(1), at_tu(3)}));
  EXPECT_EQ(jig.busy("b")[0], (Interval{at_tu(4), at_tu(6)}));
  EXPECT_EQ(jig.server_.served_count(), 2u);
}

TEST(DeferrableServer, ExhaustedCapacityDefersToReplenishment) {
  Jig<DeferrableTaskServer> jig(params_4_6());
  jig.event("a", 0, tu(4));  // drains the whole budget
  jig.event("b", 1, tu(3));  // must wait for the t=6 replenishment
  jig.run(12);
  EXPECT_EQ(jig.busy("a")[0], (Interval{at_tu(0), at_tu(4)}));
  EXPECT_EQ(jig.busy("b")[0], (Interval{at_tu(6), at_tu(9)}));
}

TEST(DeferrableServer, BoundarySpanningRuleServesAcrossReplenishment) {
  // §4.2: remaining capacity 1, event cost 2, next refill closer than the
  // remaining capacity -> budget becomes remaining + full capacity and the
  // event runs across the boundary.
  Jig<DeferrableTaskServer> jig(params_4_6());
  jig.event("drain", 0, tu(3));  // leaves 1
  jig.event("span", 5, tu(2));   // at t=5: remaining 1, refill at 6
  jig.run(12);
  EXPECT_EQ(jig.busy("drain")[0], (Interval{at_tu(0), at_tu(3)}));
  ASSERT_EQ(jig.busy("span").size(), 1u);
  EXPECT_EQ(jig.busy("span")[0], (Interval{at_tu(5), at_tu(7)}));
  EXPECT_EQ(jig.server_.served_count(), 2u);
}

TEST(DeferrableServer, StrictCapacityRejectsEagerSpan) {
  // Same scenario, but the event arrives earlier than the remaining
  // capacity allows: the permissive rule serves it (over-consuming the
  // pre-boundary budget), the strict rule defers it to the replenishment.
  TaskServerParameters strict = params_4_6();
  strict.set_strict_capacity(true);
  Jig<DeferrableTaskServer> jig(strict);
  jig.event("drain", 0, tu(3));  // leaves 1 until t=6
  // At t=4.5: refill in 1.5 > remaining 1 -> the strict rule defers.
  jig.event_at("span", TimePoint::origin() + Duration::ticks(4500), tu(2));
  jig.run(12);
  ASSERT_EQ(jig.busy("span").size(), 1u);
  EXPECT_EQ(jig.busy("span")[0], (Interval{at_tu(6), at_tu(8)}));
}

TEST(DeferrableServer, PermissiveSpanServesEagerly) {
  // The paper's literal rule serves the same event immediately: 4.5 + 2
  // crosses the boundary, so the budget becomes remaining + capacity.
  Jig<DeferrableTaskServer> jig(params_4_6());
  jig.event("drain", 0, tu(3));
  jig.event_at("span", TimePoint::origin() + Duration::ticks(4500), tu(2));
  jig.run(12);
  ASSERT_EQ(jig.busy("span").size(), 1u);
  EXPECT_EQ(jig.busy("span")[0],
            (Interval{TimePoint::origin() + Duration::ticks(4500),
                      TimePoint::origin() + Duration::ticks(6500)}));
}

TEST(SporadicServer, ReplenishesConsumedAmountOnePeriodAfterUse) {
  Jig<SporadicTaskServer> jig(params_4_6());
  jig.event("a", 0, tu(3));  // consumes 3 in [0,3); replenished at 6
  jig.event("b", 3, tu(2));  // fits the remaining 1? no -> waits for 6
  jig.run(12);
  EXPECT_EQ(jig.busy("a")[0], (Interval{at_tu(0), at_tu(3)}));
  ASSERT_EQ(jig.busy("b").size(), 1u);
  EXPECT_EQ(jig.busy("b")[0], (Interval{at_tu(6), at_tu(8)}));
  EXPECT_GE(jig.server_.replenishment_count(), 1u);
}

TEST(SporadicServer, UnusedCapacityIsNotLost) {
  Jig<SporadicTaskServer> jig(params_4_6());
  // Unlike the PS, an SS that was idle at t=0..5 still has capacity at t=5.
  jig.event("late", 5, tu(4));
  jig.run(12);
  EXPECT_EQ(jig.busy("late")[0], (Interval{at_tu(5), at_tu(9)}));
}

TEST(BackgroundServer, RunsOnlyInIdleTime) {
  VirtualMachine vm;
  TaskServerParameters p("bg", tu(6), tu(6), 1);  // lowest priority
  BackgroundServer server(vm, p);
  // A periodic task at higher priority occupies [0,3) of every period 6.
  rtsj::RealtimeThread tau(
      vm, "tau", rtsj::PriorityParameters(20),
      rtsj::PeriodicParameters(TimePoint::origin(), tu(6), tu(3)),
      [](rtsj::RealtimeThread& self) {
        for (;;) {
          self.work(tu(3));
          self.wait_for_next_period();
        }
      });
  auto handler = std::make_unique<ServableAsyncEventHandler>(
      ServableAsyncEventHandler::pure_work("job", tu(5), tu(5)));
  handler->set_server(&server);
  ServableAsyncEvent event(vm, "e");
  event.add_handler(handler.get());
  rtsj::OneShotTimer timer(vm, at_tu(0), &event);
  timer.start();
  server.start();
  tau.start();
  vm.run_until(at_tu(30));
  // job runs in the gaps [3,6) and [9,12): completes at 11... wait:
  // 3 units in [3,6), 2 more in [9,11).
  const auto iv = vm.timeline().busy_intervals("job");
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{at_tu(3), at_tu(6)}));
  EXPECT_EQ(iv[1], (Interval{at_tu(9), at_tu(11)}));
  EXPECT_EQ(server.served_count(), 1u);
  EXPECT_EQ(server.interrupted_count(), 0u);
}

TEST(BackgroundServer, NeverInterruptsEvenHugeJobs) {
  Jig<BackgroundServer> jig(TaskServerParameters("bg", tu(6), tu(6), 1));
  jig.event("huge", 0, tu(1), tu(20));  // actual far above declared
  jig.run(30);
  EXPECT_EQ(jig.server_.served_count(), 1u);
  EXPECT_EQ(jig.server_.interrupted_count(), 0u);
  EXPECT_EQ(jig.busy("huge")[0], (Interval{at_tu(0), at_tu(20)}));
}

TEST(TaskServerStats, DispatchAndActivationCounters) {
  Jig<PollingTaskServer> jig(params_4_6());
  jig.event("a", 0, tu(2));
  jig.event("b", 7, tu(2));
  jig.run(18);
  EXPECT_EQ(jig.server_.released_count(), 2u);
  EXPECT_EQ(jig.server_.dispatch_count(), 2u);
  EXPECT_EQ(jig.server_.activation_count(), 3u);
  EXPECT_EQ(jig.server_.served_count(), 2u);
}

TEST(PollingServer, FullUtilizationBackToBackActivations) {
  // capacity == period: the server can be busy wall-to-wall. A continuous
  // backlog must be drained without deadlock or lost activations.
  Jig<PollingTaskServer> jig(TaskServerParameters("PS", tu(6), tu(6), 30));
  for (int i = 0; i < 12; ++i) {
    jig.event("j" + std::to_string(i), 0, tu(3));
  }
  jig.run(40);
  // Two jobs per 6tu instance: all 12 served within 36tu.
  EXPECT_EQ(jig.server_.served_count(), 12u);
  EXPECT_EQ(jig.server_.interrupted_count(), 0u);
  const auto last = jig.busy("j11");
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0], (Interval{at_tu(33), at_tu(36)}));
}

TEST(DeferrableServer, ContinuousBacklogRespectsBandwidth) {
  // More demand than bandwidth: the DS must serve exactly capacity per
  // period and never more.
  Jig<DeferrableTaskServer> jig(params_4_6());
  for (int i = 0; i < 10; ++i) {
    jig.event("j" + std::to_string(i), 0, tu(2));
  }
  jig.run(18);
  // 4tu of service per 6tu period over [0,18): 12tu => 6 jobs of cost 2.
  EXPECT_EQ(jig.server_.served_count(), 6u);
  for (std::int64_t k = 0; k < 3; ++k) {
    common::Duration service = common::Duration::zero();
    for (int i = 0; i < 10; ++i) {
      for (const auto& iv : jig.busy("j" + std::to_string(i))) {
        const auto b = common::max(iv.begin, at_tu(6 * k));
        const auto e = common::min(iv.end, at_tu(6 * (k + 1)));
        if (e > b) service += e - b;
      }
    }
    EXPECT_LE(service, tu(4)) << "period " << k;
  }
}

TEST(TaskServerInterference, PollingIsPlainPeriodic) {
  VirtualMachine vm;
  PollingTaskServer ps(vm, params_4_6());
  EXPECT_EQ(ps.interference(tu(6)), tu(4));
  EXPECT_EQ(ps.interference(tu(7)), tu(8));
  EXPECT_DOUBLE_EQ(ps.utilization(), 4.0 / 6.0);
}

TEST(TaskServerInterference, DeferrableIsBackToBack) {
  VirtualMachine vm;
  DeferrableTaskServer ds(vm, params_4_6());
  // Jitter T - C = 2: ceil((w+2)/6)*4.
  EXPECT_EQ(ds.interference(tu(4)), tu(4));
  EXPECT_EQ(ds.interference(tu(5)), tu(8));  // back-to-back hit
  EXPECT_EQ(ds.interference(tu(10)), tu(8));
  EXPECT_EQ(ds.interference(tu(11)), tu(12));
}

}  // namespace
}  // namespace tsf::core
