#include "core/pending_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/servable_async_event_handler.h"

namespace tsf::core {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }

// Handlers with declared costs only; logic never runs in these tests.
class HandlerPool {
 public:
  ServableAsyncEventHandler* make(const std::string& name, Duration cost) {
    pool_.push_back(std::make_unique<ServableAsyncEventHandler>(
        name, cost, [](rtsj::Timed&) {}));
    return pool_.back().get();
  }

 private:
  std::vector<std::unique_ptr<ServableAsyncEventHandler>> pool_;
};

Request req(ServableAsyncEventHandler* h, std::uint64_t seq) {
  Request r;
  r.handler = h;
  r.release = TimePoint::origin();
  r.seq = seq;
  return r;
}

// Returns the lambda itself (not a FitsFn, which is a non-owning reference
// and would dangle past this statement); call expressions bind it in place.
auto fits_under(Duration budget) {
  return [budget](Duration cost) { return cost <= budget; };
}

TEST(StrictFifoQueue, HeadBlocksWhenTooExpensive) {
  HandlerPool pool;
  StrictFifoQueue q;
  q.push(req(pool.make("big", tu(3)), 0));
  q.push(req(pool.make("small", tu(1)), 1));
  // Head does not fit: nothing is served, even though "small" would fit.
  EXPECT_FALSE(q.pop_fitting(fits_under(tu(2))).has_value());
  auto r = q.pop_fitting(fits_under(tu(3)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->handler->name(), "big");
}

TEST(StrictFifoQueue, FifoOrder) {
  HandlerPool pool;
  StrictFifoQueue q;
  q.push(req(pool.make("a", tu(1)), 0));
  q.push(req(pool.make("b", tu(1)), 1));
  EXPECT_EQ(q.pop_fitting(fits_under(tu(4)))->handler->name(), "a");
  EXPECT_EQ(q.pop_fitting(fits_under(tu(4)))->handler->name(), "b");
  EXPECT_TRUE(q.empty());
}

TEST(FifoFirstFitQueue, SkipsOversizedHead) {
  // The §6.2.2 example: "if the event queue contains two tasks tau1 and
  // tau2, with c1 = 3 and c2 = 1, if the remaining capacity of the server
  // is 2, then tau2 can be executed instantaneously, even if it has been
  // released after tau1."
  HandlerPool pool;
  FifoFirstFitQueue q;
  q.push(req(pool.make("tau1", tu(3)), 0));
  q.push(req(pool.make("tau2", tu(1)), 1));
  auto r = q.pop_fitting(fits_under(tu(2)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->handler->name(), "tau2");
  // tau1 is still queued.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop_fitting(fits_under(tu(3)))->handler->name(), "tau1");
}

TEST(FifoFirstFitQueue, PrefersFifoAmongFitting) {
  HandlerPool pool;
  FifoFirstFitQueue q;
  q.push(req(pool.make("a", tu(2)), 0));
  q.push(req(pool.make("b", tu(1)), 1));
  EXPECT_EQ(q.pop_fitting(fits_under(tu(2)))->handler->name(), "a");
}

TEST(FifoFirstFitQueue, DrainReturnsEverythingInOrder) {
  HandlerPool pool;
  FifoFirstFitQueue q;
  q.push(req(pool.make("a", tu(9)), 0));
  q.push(req(pool.make("b", tu(9)), 1));
  const auto rest = q.drain();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].handler->name(), "a");
  EXPECT_EQ(rest[1].handler->name(), "b");
  EXPECT_TRUE(q.empty());
}

TEST(ListOfListsQueue, AppendsToLastOpenBucket) {
  HandlerPool pool;
  ListOfListsQueue q(tu(4));
  q.push(req(pool.make("a", tu(3)), 0));  // bucket 0 (load 3)
  q.push(req(pool.make("b", tu(2)), 1));  // bucket 1 (3+2 > 4)
  q.push(req(pool.make("c", tu(1)), 2));  // bucket 1 (2+1 <= 4, FIFO kept)
  EXPECT_EQ(q.bucket_count(), 2u);
  EXPECT_EQ(q.size(), 3u);

  // A cost-2 release would overflow the last bucket (3+2 > 4): it opens
  // instance 2; a cost-1 release still fits behind c.
  const auto p2 = q.placement_for(tu(2));
  EXPECT_EQ(p2.instance_offset, 2);
  EXPECT_EQ(p2.cumulative_before, Duration::zero());
  const auto p1 = q.placement_for(tu(1));
  EXPECT_EQ(p1.instance_offset, 1);
  EXPECT_EQ(p1.cumulative_before, tu(3));
}

TEST(ListOfListsQueue, PlacementForFullBucketsOpensNewOne) {
  HandlerPool pool;
  ListOfListsQueue q(tu(4));
  q.push(req(pool.make("a", tu(4)), 0));
  const auto p = q.placement_for(tu(4));
  EXPECT_EQ(p.instance_offset, 1);
  EXPECT_EQ(p.cumulative_before, Duration::zero());
}

TEST(ListOfListsQueue, ServesOnlyActiveInstance) {
  HandlerPool pool;
  ListOfListsQueue q(tu(4));
  q.push(req(pool.make("a", tu(3)), 0));
  q.push(req(pool.make("b", tu(3)), 1));  // next instance
  // Nothing is active until the first activation.
  EXPECT_FALSE(q.pop_fitting(fits_under(tu(4))).has_value());
  q.begin_instance();
  EXPECT_EQ(q.pop_fitting(fits_under(tu(4)))->handler->name(), "a");
  EXPECT_FALSE(q.pop_fitting(fits_under(tu(4))).has_value());
  q.begin_instance();
  EXPECT_EQ(q.pop_fitting(fits_under(tu(4)))->handler->name(), "b");
  EXPECT_TRUE(q.empty());
}

TEST(ListOfListsQueue, LeftoversAreReRegistered) {
  HandlerPool pool;
  ListOfListsQueue q(tu(4));
  q.push(req(pool.make("a", tu(3)), 0));
  q.begin_instance();
  // Not served (e.g. capacity consumed by overhead); next activation must
  // still offer it.
  q.begin_instance();
  auto r = q.pop_fitting(fits_under(tu(4)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->handler->name(), "a");
}

TEST(ListOfListsQueue, DrainCoversActiveAndFuture) {
  HandlerPool pool;
  ListOfListsQueue q(tu(4));
  q.push(req(pool.make("a", tu(3)), 0));
  q.push(req(pool.make("b", tu(3)), 1));
  q.begin_instance();
  const auto rest = q.drain();
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(ListOfListsQueue, OversizedRequestsParkedNotBlocking) {
  // A request above the capacity violates the §4 constraint; it must not
  // waste a server instance, but it must still appear in the final drain.
  HandlerPool pool;
  ListOfListsQueue q(tu(4));
  q.push(req(pool.make("huge", tu(5)), 0));
  q.push(req(pool.make("ok", tu(2)), 1));
  EXPECT_TRUE(!q.empty());
  EXPECT_EQ(q.size(), 2u);
  q.begin_instance();
  // The servable request comes straight out; the oversized one never does.
  EXPECT_EQ(q.pop_fitting(fits_under(tu(4)))->handler->name(), "ok");
  EXPECT_FALSE(q.pop_fitting(fits_under(tu(4))).has_value());
  EXPECT_TRUE(q.empty());  // no *servable* work left
  const auto rest = q.drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].handler->name(), "huge");
}

TEST(PendingQueueFactory, MakesEachDiscipline) {
  EXPECT_NE(PendingQueue::make(model::QueueDiscipline::kStrictFifo, tu(4)),
            nullptr);
  EXPECT_NE(PendingQueue::make(model::QueueDiscipline::kFifoFirstFit, tu(4)),
            nullptr);
  EXPECT_NE(PendingQueue::make(model::QueueDiscipline::kListOfLists, tu(4)),
            nullptr);
}

}  // namespace
}  // namespace tsf::core
