// The paper's worked examples (Table 1, Figures 2-4), asserted exactly.
//
// Task set: PS (capacity 3, period 6) at high priority, tau1 (cost 2,
// period 6) at medium, tau2 (cost 1, period 6) at low; all started
// synchronously at t=0. h1 and h2 (cost 2 each) are bound to servable
// events e1 and e2.
#include <gtest/gtest.h>

#include <memory>

#include "common/time.h"
#include "common/trace.h"
#include "core/polling_task_server.h"
#include "core/servable_async_event.h"
#include "core/servable_async_event_handler.h"
#include "core/task_server_parameters.h"
#include "rtsj/realtime_thread.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

namespace tsf::core {
namespace {

using common::Duration;
using common::Interval;
using common::TimePoint;
using rtsj::vm::VirtualMachine;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

// Builds the Table 1 world on a fresh VM.
class ScenarioWorld {
 public:
  explicit ScenarioWorld(Duration h2_declared_cost = tu(2))
      : vm_(),
        server_(vm_, TaskServerParameters("PS", tu(3), tu(6), 30)),
        tau1_(vm_, "tau1", rtsj::PriorityParameters(20),
              rtsj::PeriodicParameters(TimePoint::origin(), tu(6), tu(2)),
              periodic_body(tu(2))),
        tau2_(vm_, "tau2", rtsj::PriorityParameters(10),
              rtsj::PeriodicParameters(TimePoint::origin(), tu(6), tu(1)),
              periodic_body(tu(1))),
        h1_(ServableAsyncEventHandler::pure_work("h1", tu(2), tu(2))),
        h2_(ServableAsyncEventHandler::pure_work("h2", h2_declared_cost,
                                                 tu(2))),
        e1_(vm_, "e1"),
        e2_(vm_, "e2") {
    h1_.set_server(&server_);
    h2_.set_server(&server_);
    e1_.add_handler(&h1_);
    e2_.add_handler(&h2_);
    server_.start();
    tau1_.start();
    tau2_.start();
  }

  void fire_at(ServableAsyncEvent& e, std::int64_t t) {
    timers_.push_back(
        std::make_unique<rtsj::OneShotTimer>(vm_, at_tu(t), &e));
    timers_.back()->start();
  }

  void run(std::int64_t horizon_tu = 18) { vm_.run_until(at_tu(horizon_tu)); }

  std::vector<Interval> busy(const std::string& who) {
    return vm_.timeline().busy_intervals(who);
  }

  VirtualMachine vm_;
  PollingTaskServer server_;
  rtsj::RealtimeThread tau1_;
  rtsj::RealtimeThread tau2_;
  ServableAsyncEventHandler h1_;
  ServableAsyncEventHandler h2_;
  ServableAsyncEvent e1_;
  ServableAsyncEvent e2_;
  std::vector<std::unique_ptr<rtsj::OneShotTimer>> timers_;

 private:
  static rtsj::RealtimeThread::Logic periodic_body(Duration cost) {
    return [cost](rtsj::RealtimeThread& t) {
      for (;;) {
        t.work(cost);
        t.wait_for_next_period();
      }
    };
  }
};

TEST(PaperScenario1, HandlersServedImmediatelyWithFullCapacity) {
  // Figure 2: e1 fired at 0, e2 at 6; the server has full capacity at both
  // instants, so h1 and h2 are processed immediately.
  ScenarioWorld w;
  w.fire_at(w.e1_, 0);
  w.fire_at(w.e2_, 6);
  w.run();

  const auto h1 = w.busy("h1");
  ASSERT_EQ(h1.size(), 1u);
  EXPECT_EQ(h1[0], (Interval{at_tu(0), at_tu(2)}));

  const auto h2 = w.busy("h2");
  ASSERT_EQ(h2.size(), 1u);
  EXPECT_EQ(h2[0], (Interval{at_tu(6), at_tu(8)}));

  // tau1 runs after the server within each period.
  const auto tau1 = w.busy("tau1");
  ASSERT_GE(tau1.size(), 2u);
  EXPECT_EQ(tau1[0], (Interval{at_tu(2), at_tu(4)}));
  EXPECT_EQ(tau1[1], (Interval{at_tu(8), at_tu(10)}));

  const auto tau2 = w.busy("tau2");
  ASSERT_GE(tau2.size(), 2u);
  EXPECT_EQ(tau2[0], (Interval{at_tu(4), at_tu(5)}));
  EXPECT_EQ(tau2[1], (Interval{at_tu(10), at_tu(11)}));

  EXPECT_EQ(w.server_.served_count(), 2u);
  EXPECT_EQ(w.server_.interrupted_count(), 0u);
}

TEST(PaperScenario2, SecondHandlerDeferredToNextInstance) {
  // Figure 3: e1 at 2, e2 at 4. At the t=6 activation h1 runs in [6,8),
  // leaving capacity 1 < cost(h2)=2, so h2 "does not begin its execution at
  // time 8" — the implementation defers it to the t=12 activation.
  ScenarioWorld w;
  w.fire_at(w.e1_, 2);
  w.fire_at(w.e2_, 4);
  w.run();

  const auto h1 = w.busy("h1");
  ASSERT_EQ(h1.size(), 1u);
  EXPECT_EQ(h1[0], (Interval{at_tu(6), at_tu(8)}));

  const auto h2 = w.busy("h2");
  ASSERT_EQ(h2.size(), 1u);
  EXPECT_EQ(h2[0], (Interval{at_tu(12), at_tu(14)}));

  EXPECT_EQ(w.server_.served_count(), 2u);
  EXPECT_EQ(w.server_.interrupted_count(), 0u);

  // Periodic tasks are undisturbed in period 1 (server idle at t=0).
  const auto tau1 = w.busy("tau1");
  ASSERT_GE(tau1.size(), 1u);
  EXPECT_EQ(tau1[0], (Interval{at_tu(0), at_tu(2)}));
}

TEST(PaperScenario3, UnderDeclaredHandlerInterruptedAtCapacityExhaustion) {
  // Figure 4: h2's cost parameter is lowered to 1 while its real demand
  // stays 2. With remaining capacity 1 at t=8, h2 is admitted, starts at 8,
  // and is interrupted at 9 "because the server has consumed all its
  // capacity and because h2 has not finished".
  ScenarioWorld w(/*h2_declared_cost=*/tu(1));
  w.fire_at(w.e1_, 2);
  w.fire_at(w.e2_, 4);
  w.run();

  const auto h1 = w.busy("h1");
  ASSERT_EQ(h1.size(), 1u);
  EXPECT_EQ(h1[0], (Interval{at_tu(6), at_tu(8)}));

  const auto h2 = w.busy("h2");
  ASSERT_EQ(h2.size(), 1u);
  EXPECT_EQ(h2[0], (Interval{at_tu(8), at_tu(9)}));

  EXPECT_EQ(w.server_.served_count(), 1u);
  EXPECT_EQ(w.server_.interrupted_count(), 1u);

  // The abort is recorded against h2 at t=9.
  const auto aborts = w.vm_.timeline().marks("h2", common::TraceKind::kAbort);
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_EQ(aborts[0], at_tu(9));
}

TEST(PaperScenario2, ReleaseMarksRecorded) {
  ScenarioWorld w;
  w.fire_at(w.e1_, 2);
  w.fire_at(w.e2_, 4);
  w.run();
  const auto r1 = w.vm_.timeline().marks("h1", common::TraceKind::kRelease);
  const auto r2 = w.vm_.timeline().marks("h2", common::TraceKind::kRelease);
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r1[0], at_tu(2));
  EXPECT_EQ(r2[0], at_tu(4));
}

TEST(PaperScenario1, OutcomesCarryResponseTimes) {
  ScenarioWorld w;
  w.fire_at(w.e1_, 0);
  w.fire_at(w.e2_, 6);
  w.run();
  const auto outcomes = w.server_.final_outcomes();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].name, "h1");
  EXPECT_TRUE(outcomes[0].served);
  EXPECT_EQ(outcomes[0].response(), tu(2));
  EXPECT_EQ(outcomes[1].name, "h2");
  EXPECT_EQ(outcomes[1].response(), tu(2));
}

}  // namespace
}  // namespace tsf::core
