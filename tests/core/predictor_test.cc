// §7: constant-time response-time prediction on the list-of-lists queue.
#include "core/response_time_predictor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/servable_async_event.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

namespace tsf::core {
namespace {

using common::Duration;
using common::TimePoint;
using rtsj::vm::VirtualMachine;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

TaskServerParameters lol_params() {
  TaskServerParameters p("PS", tu(4), tu(6), 30);
  p.set_queue_discipline(model::QueueDiscipline::kListOfLists);
  return p;
}

class PredictorWorld {
 public:
  PredictorWorld() : server_(vm_, lol_params()), predictor_(server_) {}

  ServableAsyncEventHandler* release_now(const std::string& name,
                                         Duration cost) {
    handlers_.push_back(std::make_unique<ServableAsyncEventHandler>(
        ServableAsyncEventHandler::pure_work(name, cost, cost)));
    handlers_.back()->set_server(&server_);
    server_.servable_event_released(handlers_.back().get());
    return handlers_.back().get();
  }

  VirtualMachine vm_;
  PollingTaskServer server_;
  ResponseTimePredictor predictor_;
  std::vector<std::unique_ptr<ServableAsyncEventHandler>> handlers_;
};

TEST(Predictor, RejectsCostAboveCapacity) {
  PredictorWorld w;
  EXPECT_FALSE(w.predictor_.predict(tu(5)).has_value());
  EXPECT_TRUE(w.predictor_.predict(tu(4)).has_value());
}

TEST(Predictor, EmptyQueuePredictsNextActivation) {
  PredictorWorld w;
  // At t=0 before the run, the next activation is instance 0 at t=0:
  // a cost-2 release now completes at 0 + 0 + 2.
  const auto r = w.predictor_.predict(tu(2));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, tu(2));
}

TEST(Predictor, AccountsForQueuedWorkInSameInstance) {
  PredictorWorld w;
  w.release_now("a", tu(2));
  // A 1-cost release joins the same bucket behind a: Ra = 0 + (2 + 1) - 0.
  const auto r = w.predictor_.predict(tu(1));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, tu(3));
}

TEST(Predictor, OverflowsToLaterInstance) {
  PredictorWorld w;
  w.release_now("a", tu(3));
  // cost 2 does not fit bucket 0 (3+2>4): instance 1 at t=6, Ra = 6+0+2.
  const auto r = w.predictor_.predict(tu(2));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, tu(8));
}

TEST(Predictor, PredictionMatchesActualServiceUnderZeroOverhead) {
  // End-to-end: queue three events at t=0, predict each insertion, then run
  // and compare against the measured completions (equation (5) is exact for
  // the list-of-lists server on an ideal machine).
  PredictorWorld w;
  struct Expectation {
    std::string name;
    Duration predicted;
  };
  std::vector<Expectation> expected;
  for (const auto& [name, cost] :
       std::vector<std::pair<std::string, Duration>>{
           {"a", tu(2)}, {"b", tu(3)}, {"c", tu(2)}, {"d", tu(1)}}) {
    const auto p = w.predictor_.predict(cost);
    ASSERT_TRUE(p.has_value()) << name;
    expected.push_back({name, *p});
    w.release_now(name, cost);
  }
  w.server_.start();
  w.vm_.run_until(at_tu(40));

  const auto outcomes = w.server_.final_outcomes();
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].served) << outcomes[i].name;
    const auto it =
        std::find_if(expected.begin(), expected.end(),
                     [&](const Expectation& e) {
                       return e.name == outcomes[i].name;
                     });
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(outcomes[i].response(), it->predicted) << outcomes[i].name;
  }
}

TEST(Predictor, AdmissionGateUsesDeadline) {
  PredictorWorld w;
  w.release_now("a", tu(3));
  // Next slot for cost 2 completes at t=8.
  EXPECT_TRUE(w.predictor_.admissible(tu(2), tu(8)));
  EXPECT_FALSE(w.predictor_.admissible(tu(2), tu(7)));
  EXPECT_FALSE(w.predictor_.admissible(tu(5), tu(100)));  // above capacity
}

TEST(Predictor, MidRunPredictionUsesNextActivation) {
  PredictorWorld w;
  w.server_.start();
  w.vm_.run_until(at_tu(2));  // instance 0 has passed (empty poll)
  const auto r = w.predictor_.predict(tu(2));
  ASSERT_TRUE(r.has_value());
  // Next activation is t=6; release at t=2 completes at 8.
  EXPECT_EQ(*r, tu(6));
}

}  // namespace
}  // namespace tsf::core
