// §7 future work: the interruption-avoidance admission margin.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/polling_task_server.h"
#include "core/servable_async_event.h"
#include "exp/exec_runner.h"
#include "exp/metrics.h"
#include "gen/generator.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

namespace tsf::core {
namespace {

using common::Duration;
using common::Interval;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

TEST(AdmissionMargin, DefersScenario3InsteadOfInterrupting) {
  // Scenario 3 (h2 declared 1, actual 2, remaining capacity 1 at t=8)
  // interrupts h2 at t=9. With a margin of 0.5tu the dispatch is deferred
  // to the next instance, where the full capacity absorbs the overrun.
  rtsj::vm::VirtualMachine vm;
  TaskServerParameters params("PS", tu(3), tu(6), 30);
  params.set_admission_margin(Duration::ticks(500));
  PollingTaskServer server(vm, params);

  auto h1 = ServableAsyncEventHandler::pure_work("h1", tu(2), tu(2));
  auto h2 = ServableAsyncEventHandler::pure_work("h2", tu(1), tu(2));
  h1.set_server(&server);
  h2.set_server(&server);
  ServableAsyncEvent e1(vm, "e1"), e2(vm, "e2");
  e1.add_handler(&h1);
  e2.add_handler(&h2);
  rtsj::OneShotTimer t1(vm, at_tu(2), &e1), t2(vm, at_tu(4), &e2);
  t1.start();
  t2.start();
  server.start();
  vm.run_until(at_tu(18));

  EXPECT_EQ(server.interrupted_count(), 0u);
  EXPECT_EQ(server.served_count(), 2u);
  const auto h2_iv = vm.timeline().busy_intervals("h2");
  ASSERT_EQ(h2_iv.size(), 1u);
  // Deferred to the t=12 activation; actual demand 2 fits the budget 3.
  EXPECT_EQ(h2_iv[0], (Interval{at_tu(12), at_tu(14)}));
}

TEST(AdmissionMargin, ReducesInterruptedRatioOnRandomWorkloads) {
  gen::GeneratorParams p;
  p.task_density = 2;
  p.std_deviation_tu = 2;
  p.nb_generation = 10;

  auto run_with_margin = [&](Duration margin) {
    std::vector<model::RunResult> runs;
    for (auto spec : gen::RandomSystemGenerator(p).generate()) {
      spec.server.admission_margin = margin;
      runs.push_back(exp::run_exec(spec, exp::paper_execution_options()));
    }
    return exp::compute_set_metrics(runs);
  };

  const auto base = run_with_margin(Duration::zero());
  const auto padded = run_with_margin(tu(1));
  EXPECT_LT(padded.air, base.air);
  EXPECT_GT(base.air, 0.0);  // the margin has something to remove
}

TEST(AdmissionMargin, ZeroMarginIsThePaperBehaviour) {
  // Default-constructed parameters must reproduce scenario 3 exactly.
  rtsj::vm::VirtualMachine vm;
  PollingTaskServer server(vm, TaskServerParameters("PS", tu(3), tu(6), 30));
  // h1 drains the capacity to 1 in [0,2); h2 (declared 1, actual 2) is
  // then dispatched into the 1tu remainder and interrupted at t=3.
  auto h1 = ServableAsyncEventHandler::pure_work("h1", tu(2), tu(2));
  h1.set_server(&server);
  ServableAsyncEvent e1(vm, "e1");
  e1.add_handler(&h1);
  rtsj::OneShotTimer t1(vm, at_tu(0), &e1);
  t1.start();
  auto h2 = ServableAsyncEventHandler::pure_work("h2", tu(1), tu(2));
  h2.set_server(&server);
  ServableAsyncEvent e2(vm, "e2");
  e2.add_handler(&h2);
  rtsj::OneShotTimer t2(vm, at_tu(1), &e2);
  t2.start();
  server.start();
  vm.run_until(at_tu(12));
  EXPECT_EQ(server.interrupted_count(), 1u);
  const auto aborts = vm.timeline().marks("h2", common::TraceKind::kAbort);
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_EQ(aborts[0], at_tu(3));
}

}  // namespace
}  // namespace tsf::core
