// ServableAsyncEvent semantics beyond the scenarios: mixed handler kinds
// (Figure 1 shows an SAE keeps the plain addHandler overload), multiple
// servable handlers per event, multiple servers, and failure injection.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/deferrable_task_server.h"
#include "core/polling_task_server.h"
#include "core/servable_async_event.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

namespace tsf::core {
namespace {

using common::Duration;
using common::TimePoint;
using rtsj::vm::VirtualMachine;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

TaskServerParameters ps_params() {
  return TaskServerParameters("PS", tu(4), tu(6), 30);
}

TEST(ServableAsyncEvent, MixedHandlersBothDelivered) {
  // "Like a normal AE, a SAE can be bound to one or several standard
  // handlers" — a plain AsyncEventHandler and a servable one on the same
  // event must both run on fire().
  VirtualMachine vm;
  PollingTaskServer server(vm, ps_params());
  int plain_runs = 0;
  rtsj::AsyncEventHandler plain(vm, "plain", rtsj::PriorityParameters(5),
                                [&](rtsj::AsyncEventHandler&) {
                                  ++plain_runs;
                                });
  auto servable = ServableAsyncEventHandler::pure_work("srv", tu(1), tu(1));
  servable.set_server(&server);

  ServableAsyncEvent event(vm, "e");
  event.add_handler(&plain);     // base-class overload
  event.add_handler(&servable);  // servable overload
  rtsj::OneShotTimer timer(vm, at_tu(0), &event);
  timer.start();
  server.start();
  vm.run_until(at_tu(12));

  EXPECT_EQ(plain_runs, 1);
  EXPECT_EQ(server.served_count(), 1u);
}

TEST(ServableAsyncEvent, OneEventManyServableHandlers) {
  // One fire registers every bound servable handler with its server.
  VirtualMachine vm;
  PollingTaskServer server(vm, ps_params());
  auto h1 = ServableAsyncEventHandler::pure_work("h1", tu(1), tu(1));
  auto h2 = ServableAsyncEventHandler::pure_work("h2", tu(2), tu(2));
  h1.set_server(&server);
  h2.set_server(&server);
  ServableAsyncEvent event(vm, "e");
  event.add_handler(&h1);
  event.add_handler(&h2);
  rtsj::OneShotTimer timer(vm, at_tu(0), &event);
  timer.start();
  server.start();
  vm.run_until(at_tu(12));
  EXPECT_EQ(server.released_count(), 2u);
  EXPECT_EQ(server.served_count(), 2u);
}

TEST(ServableAsyncEvent, HandlersOnDifferentServers) {
  // "It can be bound with one or many SAE but associated with a unique
  // TaskServer": two handlers of the same event may use different servers.
  VirtualMachine vm;
  PollingTaskServer ps(vm, ps_params());
  DeferrableTaskServer ds(
      vm, TaskServerParameters("DS", tu(4), tu(6), 25));
  auto hp = ServableAsyncEventHandler::pure_work("hp", tu(1), tu(1));
  auto hd = ServableAsyncEventHandler::pure_work("hd", tu(1), tu(1));
  hp.set_server(&ps);
  hd.set_server(&ds);
  ServableAsyncEvent event(vm, "e");
  event.add_handler(&hp);
  event.add_handler(&hd);
  rtsj::OneShotTimer timer(vm, at_tu(1), &event);
  timer.start();
  ps.start();
  ds.start();
  vm.run_until(at_tu(12));
  EXPECT_EQ(ps.served_count(), 1u);
  EXPECT_EQ(ds.served_count(), 1u);
  // DS serves immediately at t=1; PS waits for its t=6 activation.
  EXPECT_EQ(vm.timeline().busy_intervals("hd")[0].begin, at_tu(1));
  EXPECT_EQ(vm.timeline().busy_intervals("hp")[0].begin, at_tu(6));
}

TEST(ServableAsyncEvent, RemoveServableHandlerStopsRegistration) {
  VirtualMachine vm;
  PollingTaskServer server(vm, ps_params());
  auto h = ServableAsyncEventHandler::pure_work("h", tu(1), tu(1));
  h.set_server(&server);
  ServableAsyncEvent event(vm, "e");
  event.add_handler(&h);
  event.remove_handler(&h);
  rtsj::OneShotTimer timer(vm, at_tu(0), &event);
  timer.start();
  server.start();
  vm.run_until(at_tu(12));
  EXPECT_EQ(server.released_count(), 0u);
}

TEST(FailureInjection, HandlerExceptionSurfacesFromRunUntil) {
  // A handler body that throws something other than the interruption must
  // not be swallowed: it aborts the run visibly.
  VirtualMachine vm;
  PollingTaskServer server(vm, ps_params());
  ServableAsyncEventHandler bad("bad", tu(1), [](rtsj::Timed&) {
    throw std::runtime_error("handler bug");
  });
  bad.set_server(&server);
  ServableAsyncEvent event(vm, "e");
  event.add_handler(&bad);
  rtsj::OneShotTimer timer(vm, at_tu(0), &event);
  timer.start();
  server.start();
  EXPECT_THROW(vm.run_until(at_tu(12)), std::runtime_error);
}

TEST(DeferrableWithListOfLists, ServesInstanceBucketsAtReplenishments) {
  // The §7 queue composes with the DS: buckets rotate on replenishment.
  VirtualMachine vm;
  TaskServerParameters params("DS", tu(4), tu(6), 30);
  params.set_queue_discipline(model::QueueDiscipline::kListOfLists);
  DeferrableTaskServer server(vm, params);
  std::vector<std::unique_ptr<ServableAsyncEventHandler>> handlers;
  std::vector<std::unique_ptr<ServableAsyncEvent>> events;
  std::vector<std::unique_ptr<rtsj::OneShotTimer>> timers;
  for (int i = 0; i < 3; ++i) {
    handlers.push_back(std::make_unique<ServableAsyncEventHandler>(
        ServableAsyncEventHandler::pure_work("h" + std::to_string(i), tu(2),
                                             tu(2))));
    handlers.back()->set_server(&server);
    events.push_back(std::make_unique<ServableAsyncEvent>(
        vm, "e" + std::to_string(i)));
    events.back()->add_handler(handlers.back().get());
    timers.push_back(
        std::make_unique<rtsj::OneShotTimer>(vm, at_tu(0), events.back().get()));
    timers.back()->start();
  }
  server.start();
  vm.run_until(at_tu(20));
  // All three eventually served (2+2 in the first window, the third after
  // the first replenishment rotates its bucket in).
  EXPECT_EQ(server.served_count(), 3u);
}

}  // namespace
}  // namespace tsf::core
