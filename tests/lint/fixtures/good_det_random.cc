// Legal twin of bad_det_random.cc: a seeded counter-based draw — the
// deterministic pattern common/rng.h uses. Expected findings: none.
#include <cstdint>

#include "common/annotations.h"

namespace fixture {

TSF_DETERMINISM_CRITICAL
long jitter(std::uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<long>(*state >> 61);
}

}  // namespace fixture
