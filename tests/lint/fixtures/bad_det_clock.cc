// Seeded violation: a wall-clock read inside a TSF_DETERMINISM_CRITICAL
// body. Expected findings: det-clock.
#include <chrono>

#include "common/annotations.h"

namespace fixture {

TSF_DETERMINISM_CRITICAL
long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
