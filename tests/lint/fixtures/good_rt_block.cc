// Legal twin of bad_rt_block.cc: the real-time path is single-writer by
// contract and touches a plain field; the locked path is a separate,
// unannotated maintenance function. Expected findings: none.
#include <mutex>

#include "common/annotations.h"

namespace fixture {

struct Shared {
  int value_ = 0;
  int audit_ = 0;

  TSF_REALTIME
  void update(int v) {
    value_ = v;
  }

  void audit(std::mutex& mu) {
    std::lock_guard<std::mutex> lock(mu);
    audit_ = value_;
  }
};

}  // namespace fixture
