// Legal twin of bad_det_unordered_iter.cc: the unordered map is a
// lookup-only index (the pattern the src/common audit comments document);
// emission walks the insertion-ordered vector. Expected findings: none.
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"

namespace fixture {

struct Registry {
  std::unordered_map<std::string, int> index_;
  std::vector<int> values_;

  TSF_DETERMINISM_CRITICAL
  int checksum() const {
    int sum = 0;
    for (const auto& v : values_) sum += v;
    return sum;
  }

  int lookup(const std::string& name) const {
    const auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
  }
};

}  // namespace fixture
