// Legal twin of bad_rt_alloc.cc: the hot body only touches a caller-owned
// buffer; the allocation happens in an unannotated setup function the
// annotated body never calls. Expected findings: none.
#include "common/annotations.h"

namespace fixture {

int* make_buffer() { return new int[16]; }

TSF_NO_ALLOC
void absorb(int* buffer) {
  buffer[0] = 7;
}

}  // namespace fixture
