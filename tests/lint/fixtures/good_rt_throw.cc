// Legal twin of bad_rt_throw.cc: the real-time path reports failure by
// return value. Expected findings: none.
#include "common/annotations.h"

namespace fixture {

TSF_REALTIME
bool check(int margin, int* out) {
  if (margin < 0) return false;
  *out = margin;
  return true;
}

}  // namespace fixture
