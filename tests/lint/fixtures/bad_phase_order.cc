// Seeded phase-order violation in the shape of mp/threaded_runtime.cc: the
// worker-phase completion port posts straight into the fabric instead of
// staging the fire for the barrier. The call is a two-hop member chain
// (runtime->fabric_.post_fire), so convicting it requires the analyzer to
// resolve receivers through member types, not just simple names.
// Expected findings: phase-order, rooted at FakePort::fire_remote.
#include <cstddef>
#include <string>

#include "common/annotations.h"

namespace fixture {

struct FakeFabric {
  TSF_BARRIER_ONLY
  void post_fire(const std::string& job) { jobs_ += job.size(); }
  TSF_BARRIER_ONLY
  std::size_t drain() { return jobs_; }
  std::size_t jobs_ = 0;
};

struct FakeRuntime {
  FakeFabric fabric_;
  TSF_BARRIER_ONLY
  void on_boundary() { fabric_.drain(); }
};

struct FakePort {
  FakeRuntime* runtime = nullptr;

  // BAD: worker-phase completion must stage, never post into the fabric
  // mid-epoch.
  TSF_WORKER_PHASE
  void fire_remote(const std::string& job) {
    runtime->fabric_.post_fire(job);
  }
};

}  // namespace fixture
