// Seeded violation: ambient randomness inside a TSF_DETERMINISM_CRITICAL
// body. Expected findings: det-random.
#include <cstdlib>

#include "common/annotations.h"

namespace fixture {

TSF_DETERMINISM_CRITICAL
long jitter() {
  return rand() % 7;
}

}  // namespace fixture
