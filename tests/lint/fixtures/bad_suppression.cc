// Seeded suppression misuse: a misspelled rule name and a justification-free
// allow. Neither silences anything — the unknown rule and the missing
// justification are findings themselves, and the underlying rt-alloc still
// fires. Expected findings: allow-unknown-rule, allow-missing-justification,
// rt-alloc.
#include "common/annotations.h"

namespace fixture {

TSF_NO_ALLOC
int* grow() {
  // TSF_LINT_ALLOW[rt-allocate]: the rule is spelled rt-alloc
  // TSF_LINT_ALLOW[rt-alloc]:
  return new int(7);
}

}  // namespace fixture
