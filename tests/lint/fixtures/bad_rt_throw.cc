// Seeded violation: a throw on the TSF_REALTIME path.
// Expected findings: rt-throw.
#include "common/annotations.h"

namespace fixture {

TSF_REALTIME
int check(int margin) {
  if (margin < 0) throw margin;
  return margin;
}

}  // namespace fixture
