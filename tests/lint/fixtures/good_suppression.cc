// Legal twin of bad_suppression.cc: a well-formed, justified suppression of
// the pool-growth pattern (the same shape src/common/event_queue.cc and
// src/mp/mailbox.h carry). Expected findings: none; the report records the
// suppression with used = true.
#include "common/annotations.h"

namespace fixture {

TSF_NO_ALLOC
int* pool_grow() {
  // TSF_LINT_ALLOW[rt-alloc]: fixture twin of the pool-growth pattern —
  // reached only until the high-water mark, steady state pops the free
  // stack.
  return new int(7);
}

}  // namespace fixture
