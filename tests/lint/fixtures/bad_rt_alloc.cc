// Seeded violation: direct heap traffic inside a TSF_NO_ALLOC body.
// Expected findings: rt-alloc (one per operator, on separate lines).
#include "common/annotations.h"

namespace fixture {

TSF_NO_ALLOC
void absorb() {
  int* p = new int(7);
  delete p;
}

}  // namespace fixture
