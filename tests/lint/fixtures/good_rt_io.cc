// Legal twin of bad_rt_io.cc: the real-time path records into a
// caller-owned ring; an unannotated flush does the IO later.
// Expected findings: none.
#include <cstdio>

#include "common/annotations.h"

namespace fixture {

TSF_REALTIME
void log_sample(long* ring, int slot, long v) {
  ring[slot] = v;
}

void flush(const long* ring, int n) {
  for (int i = 0; i < n; ++i) printf("%ld\n", ring[i]);
}

}  // namespace fixture
