// Seeded violation: console IO inside a TSF_REALTIME body.
// Expected findings: rt-io.
#include <cstdio>

#include "common/annotations.h"

namespace fixture {

TSF_REALTIME
void log_sample(long v) {
  printf("%ld\n", v);
}

}  // namespace fixture
