// Seeded violation: lock acquisition inside a TSF_REALTIME body.
// Expected findings: rt-block (lock_guard and the mutex template argument
// both match, same line).
#include <mutex>

#include "common/annotations.h"

namespace fixture {

struct Shared {
  std::mutex mu_;
  int value_ = 0;

  TSF_REALTIME
  void update(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
  }
};

}  // namespace fixture
