// Seeded violation: range-for over an unordered container inside a
// TSF_DETERMINISM_CRITICAL body — the bucket order leaks into the result.
// Expected findings: det-unordered-iter.
#include <string>
#include <unordered_map>

#include "common/annotations.h"

namespace fixture {

struct Registry {
  std::unordered_map<std::string, int> index_;

  TSF_DETERMINISM_CRITICAL
  int checksum() const {
    int sum = 0;
    for (const auto& kv : index_) sum += kv.second;
    return sum;
  }
};

}  // namespace fixture
