// Legal twin of bad_phase_order.cc: the worker-phase port stages the fire
// into an MPSC queue (itself worker-phase on the push side); only the
// barrier-only boundary hook pops the stage and posts into the fabric —
// exactly the StagedPort discipline of mp/threaded_runtime.cc.
// Expected findings: none.
#include <cstddef>
#include <string>

#include "common/annotations.h"

namespace fixture {

struct StagedQueue {
  TSF_WORKER_PHASE
  void push(const std::string& job) { depth_ += job.size(); }
  TSF_BARRIER_ONLY
  bool pop(std::string* job) {
    job->clear();
    return depth_-- > 0;
  }
  std::size_t depth_ = 0;
};

struct FakeFabric {
  TSF_BARRIER_ONLY
  void post_fire(const std::string& job) { jobs_ += job.size(); }
  std::size_t jobs_ = 0;
};

struct FakeRuntime {
  StagedQueue staged_;
  FakeFabric fabric_;

  TSF_BARRIER_ONLY
  void on_boundary() {
    std::string job;
    while (staged_.pop(&job)) fabric_.post_fire(job);
  }
};

struct FakePort {
  FakeRuntime* runtime = nullptr;

  TSF_WORKER_PHASE
  void fire_remote(const std::string& job) {
    runtime->staged_.push(job);
  }
};

}  // namespace fixture
