// Legal twin of bad_det_clock.cc: virtual time is threaded in as a
// parameter, never read from an ambient clock. Expected findings: none.
#include <cstdint>

#include "common/annotations.h"

namespace fixture {

TSF_DETERMINISM_CRITICAL
long stamp(std::int64_t virtual_now) {
  return static_cast<long>(virtual_now);
}

}  // namespace fixture
