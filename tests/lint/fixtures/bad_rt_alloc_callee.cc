// Seeded violation one hop away: the TSF_REALTIME entry point itself is
// clean, but its direct (unannotated, same-class) callee allocates through
// a template-argument call — make_unique<T>() has `<` after the identifier,
// the shape that once slipped past a parenthesis-only call check.
// Expected findings: rt-alloc, attributed to the annotated caller.
#include <memory>

#include "common/annotations.h"

namespace fixture {

struct Entry {
  int value = 0;
};

struct Pool {
  std::unique_ptr<Entry> storage_;

  void grow() { storage_ = std::make_unique<Entry>(); }

  TSF_REALTIME
  void schedule() {
    grow();
  }
};

}  // namespace fixture
