// Mutation suite for tsf_lint: every rule the analyzer claims to enforce is
// proven non-vacuous against a seeded-violation fixture, and proven
// non-paranoid against that fixture's legal twin. The suite drives the real
// binary (TSF_LINT_EXE, injected by CMake) over tests/lint/fixtures/ and
// asserts on the tsf-lint/1 JSON report — the same artifact CI uploads —
// so a rule that silently stops firing, or starts firing on clean code,
// fails here by name.
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_reader.h"

namespace {

using tsf::common::JsonValue;
using tsf::common::json_parse;

std::string fixture(const std::string& name) {
  return std::string(TSF_SOURCE_DIR) + "/tests/lint/fixtures/" + name;
}

struct LintRun {
  int exit_code = -1;
  JsonValue report;
};

// Runs the binary over the named fixtures, returning the exit code and the
// parsed --report document. The report lands in the test's working
// directory (the build tree) under a per-invocation name.
LintRun run_lint(const std::vector<std::string>& fixtures,
                 const std::string& allowlist = "") {
  static int counter = 0;
  const std::string report_path =
      "tsf_lint_mutation_report_" + std::to_string(counter++) + ".json";
  std::string cmd = std::string(TSF_LINT_EXE);
  for (const std::string& f : fixtures) cmd += " " + fixture(f);
  if (!allowlist.empty()) cmd += " --allowlist " + fixture(allowlist);
  cmd += " --report " + report_path + " >/dev/null 2>&1";

  LintRun run;
  const int status = std::system(cmd.c_str());
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;

  std::ifstream in(report_path);
  EXPECT_TRUE(in.good()) << "no report at " << report_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  EXPECT_TRUE(json_parse(buffer.str(), &run.report, &error)) << error;
  std::remove(report_path.c_str());
  return run;
}

// The distinct rule names present in a report's findings.
std::set<std::string> rules_of(const LintRun& run) {
  std::set<std::string> rules;
  const JsonValue* findings = run.report.find("findings");
  if (findings == nullptr || !findings->is_array()) return rules;
  for (const JsonValue& f : findings->as_array()) {
    const JsonValue* rule = f.find("rule");
    if (rule != nullptr) rules.insert(rule->as_string());
  }
  return rules;
}

std::size_t finding_count(const LintRun& run) {
  const JsonValue* findings = run.report.find("findings");
  return findings != nullptr && findings->is_array()
             ? findings->as_array().size()
             : 0;
}

// Asserts the bad fixture yields exactly `expected` rule names (exit 1) and
// its legal twin yields nothing (exit 0).
void expect_twin(const std::string& bad, const std::string& good,
                 const std::set<std::string>& expected) {
  const LintRun bad_run = run_lint({bad});
  EXPECT_EQ(bad_run.exit_code, 1) << bad;
  EXPECT_EQ(rules_of(bad_run), expected) << bad;

  const LintRun good_run = run_lint({good});
  EXPECT_EQ(good_run.exit_code, 0) << good;
  EXPECT_EQ(finding_count(good_run), 0u) << good;
}

TEST(LintMutation, RtAllocFiresByName) {
  expect_twin("bad_rt_alloc.cc", "good_rt_alloc.cc", {"rt-alloc"});
}

TEST(LintMutation, RtAllocSeesTemplateCallInDirectCallee) {
  // make_unique<Entry>() sits in an unannotated callee one hop below the
  // TSF_REALTIME entry point, and the call site has `<` where a naive
  // call check expects `(` — both halves of the detection must hold.
  const LintRun run = run_lint({"bad_rt_alloc_callee.cc"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(rules_of(run), std::set<std::string>{"rt-alloc"});
  const JsonValue* findings = run.report.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->as_array().size(), 1u);
  const JsonValue& f = findings->as_array()[0];
  // The contract being violated is the annotated caller's.
  EXPECT_EQ(f.find("function")->as_string(), "Pool::schedule");
  EXPECT_NE(f.find("message")->as_string().find("grow"), std::string::npos);
}

TEST(LintMutation, RtBlockFiresByName) {
  expect_twin("bad_rt_block.cc", "good_rt_block.cc", {"rt-block"});
}

TEST(LintMutation, RtIoFiresByName) {
  expect_twin("bad_rt_io.cc", "good_rt_io.cc", {"rt-io"});
}

TEST(LintMutation, RtThrowFiresByName) {
  expect_twin("bad_rt_throw.cc", "good_rt_throw.cc", {"rt-throw"});
}

TEST(LintMutation, DetRandomFiresByName) {
  expect_twin("bad_det_random.cc", "good_det_random.cc", {"det-random"});
}

TEST(LintMutation, DetClockFiresByName) {
  expect_twin("bad_det_clock.cc", "good_det_clock.cc", {"det-clock"});
}

TEST(LintMutation, DetUnorderedIterFiresByName) {
  expect_twin("bad_det_unordered_iter.cc", "good_det_unordered_iter.cc",
              {"det-unordered-iter"});
}

TEST(LintMutation, PhaseOrderConvictsSeededEdgeThroughMemberChain) {
  // The seeded edge is runtime->fabric_.post_fire — a two-hop member chain
  // in the shape of mp/threaded_runtime.cc, so this also locks in the
  // receiver-aware call resolution.
  const LintRun run = run_lint({"bad_phase_order.cc"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(rules_of(run), std::set<std::string>{"phase-order"});
  const JsonValue* findings = run.report.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->as_array().size(), 1u);
  const JsonValue& f = findings->as_array()[0];
  EXPECT_EQ(f.find("function")->as_string(), "FakePort::fire_remote");
  EXPECT_NE(f.find("message")->as_string().find("FakeFabric::post_fire"),
            std::string::npos);
}

TEST(LintMutation, PhaseOrderStagedTwinIsClean) {
  // The StagedPort discipline: worker-phase push, barrier-only pop + post.
  const LintRun run = run_lint({"good_phase_order.cc"});
  EXPECT_EQ(run.exit_code, 0) << "staged twin must lint clean";
  EXPECT_EQ(finding_count(run), 0u);
}

TEST(LintMutation, PhaseOrderAllowlistWaivesExactlyTheSeededEdge) {
  const LintRun run =
      run_lint({"bad_phase_order.cc"}, "phase_order.allow");
  EXPECT_EQ(run.exit_code, 0)
      << "the reviewed allowlist entry must silence the seeded edge";
  EXPECT_EQ(finding_count(run), 0u);
}

TEST(LintMutation, SuppressionMisuseIsItselfAFinding) {
  // A misspelled rule and a justification-free allow each fire by name,
  // and neither silences the underlying violation.
  const LintRun run = run_lint({"bad_suppression.cc"});
  EXPECT_EQ(run.exit_code, 1);
  const std::set<std::string> expected = {
      "allow-unknown-rule", "allow-missing-justification", "rt-alloc"};
  EXPECT_EQ(rules_of(run), expected);
}

TEST(LintMutation, JustifiedSuppressionSilencesAndIsRecordedUsed) {
  const LintRun run = run_lint({"good_suppression.cc"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(finding_count(run), 0u);

  const JsonValue* suppressions = run.report.find("suppressions");
  ASSERT_NE(suppressions, nullptr);
  ASSERT_TRUE(suppressions->is_array());
  ASSERT_EQ(suppressions->as_array().size(), 1u);
  const JsonValue& s = suppressions->as_array()[0];
  EXPECT_EQ(s.find("rule")->as_string(), "rt-alloc");
  EXPECT_TRUE(s.find("used")->as_bool());
  EXPECT_FALSE(s.find("justification")->as_string().empty());
}

TEST(LintMutation, ReportSchemaAndCountsAreCoherent) {
  // One combined run over the whole corpus: the report's schema tag and
  // file/function tallies must match what was analyzed, and the finding
  // rule set must be the union of the per-fixture seeds.
  const std::vector<std::string> corpus = {
      "bad_rt_alloc.cc",      "bad_rt_alloc_callee.cc",
      "bad_rt_block.cc",      "bad_rt_io.cc",
      "bad_rt_throw.cc",      "bad_det_random.cc",
      "bad_det_clock.cc",     "bad_det_unordered_iter.cc",
      "bad_phase_order.cc",   "bad_suppression.cc",
  };
  const LintRun run = run_lint(corpus);
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.report.find("schema")->as_string(), "tsf-lint/1");
  EXPECT_EQ(run.report.find("files")->as_number(),
            static_cast<double>(corpus.size()));
  EXPECT_GT(run.report.find("functions")->as_number(), 0.0);
  EXPECT_GT(run.report.find("annotated")->as_number(), 0.0);
  const std::set<std::string> expected = {
      "rt-alloc",      "rt-block",
      "rt-io",         "rt-throw",
      "det-random",    "det-clock",
      "det-unordered-iter", "phase-order",
      "allow-unknown-rule", "allow-missing-justification"};
  EXPECT_EQ(rules_of(run), expected);
}

}  // namespace
