// tsf_stress_threads — time-budgeted stress of the real-threads backend.
//
// Hammers the nastiest configuration the backend supports — 4 cores,
// semi-partitioned stealing plus drift rebalancing plus cost jitter, so
// every epoch boundary moves work between cores — and cross-validates every
// run against a lock-step oracle signature computed once up front. Any
// divergence (served/missed sets, trace fingerprint) or crash fails the
// binary.
//
// Registered as ctest `tsf_stress_threads` under CONFIGURATIONS stress, so
// the default label sweep skips it; CI runs it explicitly with
// `ctest -C stress`. Budget defaults to 120 seconds of wall clock;
// override with TSF_STRESS_SECONDS (e.g. =5 for a smoke run).
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <utility>

#include "common/trace.h"
#include "mp/mp_system.h"

namespace {

using tsf::common::Duration;
using tsf::common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

tsf::model::SystemSpec stress_spec(int cores) {
  tsf::model::SystemSpec spec;
  spec.name = "stress-threads";
  spec.cores = cores;
  spec.server.policy = tsf::model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < cores; ++c) {
    tsf::model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(3);
    t.priority = 10;
    spec.periodic_tasks.push_back(t);
  }
  for (int j = 0; j < 16; ++j) {
    tsf::model::AperiodicJobSpec job;
    job.name = "a" + std::to_string(j);
    job.release = at_tu(1 + 2 * j);
    job.cost = tu(1);
    spec.aperiodic_jobs.push_back(job);
  }
  spec.aperiodic_jobs[0].fires = "trig";
  tsf::model::AperiodicJobSpec trig;
  trig.name = "trig";
  trig.triggered = true;
  trig.cost = tu(1);
  spec.aperiodic_jobs.push_back(trig);
  for (int r = 0; r < 3; ++r) {
    tsf::model::AperiodicJobSpec roam;
    roam.name = "roam" + std::to_string(r);
    roam.release = at_tu(3 + 4 * r);
    roam.cost = tu(1);
    roam.migrate = true;
    spec.aperiodic_jobs.push_back(roam);
  }
  spec.horizon = at_tu(48);
  return spec;
}

struct Signature {
  std::set<std::pair<std::string, std::int64_t>> served;
  std::set<std::pair<std::string, std::int64_t>> missed;
  std::uint64_t fingerprint = 0;

  bool operator==(const Signature& other) const {
    return served == other.served && missed == other.missed &&
           fingerprint == other.fingerprint;
  }
};

Signature signature_of(const tsf::mp::MpRunResult& run) {
  Signature sig;
  for (const auto& job : run.merged.jobs) {
    const auto key = std::make_pair(
        job.name, (job.release - TimePoint::origin()).count());
    (job.served ? sig.served : sig.missed).insert(key);
  }
  sig.fingerprint = tsf::common::fingerprint(run.merged.timeline);
  return sig;
}

}  // namespace

int main() {
  double budget_seconds = 120.0;
  if (const char* env = std::getenv("TSF_STRESS_SECONDS")) {
    budget_seconds = std::atof(env);
    if (budget_seconds <= 0.0) budget_seconds = 120.0;
  }

  const auto spec = stress_spec(4);
  tsf::mp::MpRunOptions options;
  options.policy = tsf::mp::SchedPolicy::kSemiPartitioned;
  options.rebalance.mode = tsf::mp::RebalanceMode::kDrift;
  options.rebalance.drift = 0.05;
  options.rebalance.period = tu(4);
  options.exec.cost_jitter = 0.2;

  // The oracle signature, computed once on the deterministic backend.
  options.backend = tsf::mp::ExecBackend::kLockstep;
  const auto oracle = signature_of(tsf::mp::run(spec, options));
  if (oracle.served.empty()) {
    std::cerr << "stress: oracle served nothing — spec is broken\n";
    return 1;
  }

  options.backend = tsf::mp::ExecBackend::kThreads;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t runs = 0;
  std::uint64_t divergences = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < budget_seconds) {
    const auto threads = signature_of(tsf::mp::run(spec, options));
    ++runs;
    if (!(threads == oracle)) {
      ++divergences;
      std::cerr << "stress: divergence on run " << runs << " (served "
                << threads.served.size() << " vs " << oracle.served.size()
                << ", fingerprint " << threads.fingerprint << " vs "
                << oracle.fingerprint << ")\n";
      if (divergences >= 3) break;  // enough evidence; stop early
    }
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "tsf_stress_threads: " << runs << " runs in " << elapsed
            << "s, " << divergences << " divergences\n";
  if (runs == 0) {
    std::cerr << "stress: budget too small to complete a single run\n";
    return 1;
  }
  return divergences == 0 ? 0 : 1;
}
