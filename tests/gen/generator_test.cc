// Tests for the random system generator (§6.1) and the task-set utilities.
#include "gen/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "gen/taskset.h"

namespace tsf::gen {
namespace {

using common::Duration;

GeneratorParams paper_params(double density, double sd) {
  GeneratorParams p;
  p.task_density = density;
  p.average_cost_tu = 3.0;
  p.std_deviation_tu = sd;
  p.nb_generation = 10;
  p.seed = 1983;
  return p;
}

TEST(Generator, DeterministicForFixedSeed) {
  RandomSystemGenerator g1(paper_params(2, 2));
  RandomSystemGenerator g2(paper_params(2, 2));
  const auto a = g1.generate();
  const auto b = g2.generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].aperiodic_jobs.size(), b[i].aperiodic_jobs.size());
    for (std::size_t j = 0; j < a[i].aperiodic_jobs.size(); ++j) {
      EXPECT_EQ(a[i].aperiodic_jobs[j].release, b[i].aperiodic_jobs[j].release);
      EXPECT_EQ(a[i].aperiodic_jobs[j].cost, b[i].aperiodic_jobs[j].cost);
    }
  }
}

TEST(Generator, DifferentSeedsProduceDifferentSystems) {
  auto p1 = paper_params(2, 2);
  auto p2 = paper_params(2, 2);
  p2.seed = 42;
  const auto a = RandomSystemGenerator(p1).generate();
  const auto b = RandomSystemGenerator(p2).generate();
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = a[i].aperiodic_jobs.size() != b[i].aperiodic_jobs.size();
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, SystemCountMatchesNbGeneration) {
  auto p = paper_params(1, 0);
  p.nb_generation = 7;
  EXPECT_EQ(RandomSystemGenerator(p).generate().size(), 7u);
}

TEST(Generator, PrefixStability) {
  // System i must be identical whether 3 or 10 systems are generated: each
  // system draws from its own split stream.
  auto p3 = paper_params(2, 0);
  p3.nb_generation = 3;
  auto p10 = paper_params(2, 0);
  p10.nb_generation = 10;
  const auto a = RandomSystemGenerator(p3).generate();
  const auto b = RandomSystemGenerator(p10).generate();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(a[i].aperiodic_jobs.size(), b[i].aperiodic_jobs.size());
    for (std::size_t j = 0; j < a[i].aperiodic_jobs.size(); ++j) {
      EXPECT_EQ(a[i].aperiodic_jobs[j].cost, b[i].aperiodic_jobs[j].cost);
    }
  }
}

TEST(Generator, DensityControlsArrivalCount) {
  double mean1 = 0, mean3 = 0;
  for (const auto& s : RandomSystemGenerator(paper_params(1, 0)).generate()) {
    mean1 += static_cast<double>(s.aperiodic_jobs.size());
  }
  for (const auto& s : RandomSystemGenerator(paper_params(3, 0)).generate()) {
    mean3 += static_cast<double>(s.aperiodic_jobs.size());
  }
  mean1 /= 10;  // expected ~10 (1 per period, 10 periods)
  mean3 /= 10;  // expected ~30
  EXPECT_NEAR(mean1, 10.0, 4.0);
  EXPECT_NEAR(mean3, 30.0, 8.0);
  EXPECT_GT(mean3, mean1 * 2);
}

TEST(Generator, CostFloorReproducedFromPaper) {
  auto p = paper_params(3, 2);
  p.average_cost_tu = 0.2;  // most draws fall below the floor
  const auto systems = RandomSystemGenerator(p).generate();
  bool saw_floor = false;
  for (const auto& s : systems) {
    for (const auto& j : s.aperiodic_jobs) {
      EXPECT_GE(j.cost, Duration::ticks(100));
      saw_floor |= (j.cost == Duration::ticks(100));
    }
  }
  EXPECT_TRUE(saw_floor);
}

TEST(Generator, CostFloorBiasesAverageUpward) {
  // §6.2.1: "So the average cost has no longer the correct value."
  auto p = paper_params(3, 2);
  p.average_cost_tu = 0.3;
  double mean = 0;
  std::size_t n = 0;
  for (const auto& s : RandomSystemGenerator(p).generate()) {
    for (const auto& j : s.aperiodic_jobs) {
      mean += j.cost.to_tu();
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_GT(mean / static_cast<double>(n), 0.3);
}

TEST(Generator, ZeroStdDeviationGivesConstantCosts) {
  for (const auto& s : RandomSystemGenerator(paper_params(2, 0)).generate()) {
    for (const auto& j : s.aperiodic_jobs) {
      EXPECT_EQ(j.cost, Duration::time_units(3));
    }
  }
}

TEST(Generator, ReleasesSortedWithinHorizon) {
  for (const auto& s : RandomSystemGenerator(paper_params(3, 2)).generate()) {
    for (std::size_t j = 1; j < s.aperiodic_jobs.size(); ++j) {
      EXPECT_LE(s.aperiodic_jobs[j - 1].release, s.aperiodic_jobs[j].release);
    }
    for (const auto& j : s.aperiodic_jobs) {
      EXPECT_GE(j.release, common::TimePoint::origin());
      EXPECT_LT(j.release, s.horizon);
    }
    EXPECT_EQ(s.horizon - common::TimePoint::origin(),
              Duration::time_units(60));
  }
}

TEST(Generator, UniqueJobNamesPerSystem) {
  for (const auto& s : RandomSystemGenerator(paper_params(3, 2)).generate()) {
    std::set<std::string> names;
    for (const auto& j : s.aperiodic_jobs) {
      EXPECT_TRUE(names.insert(j.name).second) << j.name;
    }
  }
}

TEST(Generator, ServerSpecPropagated) {
  auto p = paper_params(1, 0);
  p.policy = model::ServerPolicy::kDeferrable;
  p.queue = model::QueueDiscipline::kListOfLists;
  const auto s = RandomSystemGenerator(p).generate().front();
  EXPECT_EQ(s.server.policy, model::ServerPolicy::kDeferrable);
  EXPECT_EQ(s.server.queue, model::QueueDiscipline::kListOfLists);
  EXPECT_EQ(s.server.capacity, Duration::time_units(4));
  EXPECT_EQ(s.server.period, Duration::time_units(6));
}

TEST(UUniFast, SumsToTarget) {
  common::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto u = uunifast(5, 0.8, rng);
    double sum = 0;
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 0.8 + 1e-12);
      sum += x;
    }
    EXPECT_NEAR(sum, 0.8, 1e-9);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  common::Rng rng(5);
  const auto u = uunifast(1, 0.5, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.5);
}

TEST(TaskSet, UtilisationNearTargetAndRmPriorities) {
  common::Rng rng(9);
  TaskSetParams p;
  p.count = 5;
  p.total_utilization = 0.6;
  const auto tasks = make_task_set(p, rng);
  ASSERT_EQ(tasks.size(), 5u);
  double u = 0;
  for (const auto& t : tasks) u += t.cost.to_tu() / t.period.to_tu();
  EXPECT_NEAR(u, 0.6, 0.1);  // rounding to ticks perturbs slightly
  // Rate-monotonic: shorter period implies higher (or equal) priority.
  for (const auto& a : tasks) {
    for (const auto& b : tasks) {
      if (a.period < b.period) {
        EXPECT_GT(a.priority, b.priority);
      }
    }
  }
}

TEST(MpGenerator, HitsPerCoreUtilizationTarget) {
  MpGeneratorParams params;
  params.cores = 4;
  params.tasks_per_core = 5;
  params.per_core_utilization = 0.45;
  const auto spec = generate_mp_system(params);
  EXPECT_EQ(spec.cores, 4);
  EXPECT_EQ(spec.periodic_tasks.size(), 20u);
  // Total periodic load is cores x target (tick rounding perturbs slightly).
  EXPECT_NEAR(spec.periodic_utilization(), 4 * 0.45, 0.15);
  // Globally unique names and rate-monotonic priorities.
  for (const auto& a : spec.periodic_tasks) {
    for (const auto& b : spec.periodic_tasks) {
      if (&a == &b) continue;
      EXPECT_NE(a.name, b.name);
      if (a.period < b.period) EXPECT_GT(a.priority, b.priority);
    }
    EXPECT_LT(a.priority, spec.server.priority);
  }
}

TEST(MpGenerator, DeterministicInSeedAndScalesAperiodicLoad) {
  MpGeneratorParams params;
  params.cores = 2;
  params.task_density = 3.0;
  params.horizon_periods = 20;
  const auto a = generate_mp_system(params);
  const auto b = generate_mp_system(params);
  ASSERT_EQ(a.aperiodic_jobs.size(), b.aperiodic_jobs.size());
  for (std::size_t i = 0; i < a.aperiodic_jobs.size(); ++i) {
    EXPECT_EQ(a.aperiodic_jobs[i].release, b.aperiodic_jobs[i].release);
    EXPECT_EQ(a.aperiodic_jobs[i].cost, b.aperiodic_jobs[i].cost);
  }
  // Density is per core: 2 cores x 3 events x 20 periods = 120 expected.
  EXPECT_NEAR(static_cast<double>(a.aperiodic_jobs.size()), 120.0, 40.0);
}

}  // namespace
}  // namespace tsf::gen
