// Tests for the offline feasibility analysis: RTA with servers, utilisation
// bounds, EDF demand criterion, hyperperiods.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.h"
#include "analysis/edf.h"
#include "analysis/rta.h"

namespace tsf::analysis {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }

model::PeriodicTaskSpec task(const std::string& name, std::int64_t period,
                             std::int64_t cost, int priority) {
  model::PeriodicTaskSpec t;
  t.name = name;
  t.period = tu(period);
  t.cost = tu(cost);
  t.priority = priority;
  return t;
}

TEST(Rta, TextbookExample) {
  // Liu & Layland's classic pair.
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("hp", 5, 2, 20),
      task("lp", 10, 3, 10),
  };
  EXPECT_EQ(response_time(tasks[0], tasks), tu(2));
  EXPECT_EQ(response_time(tasks[1], tasks), tu(5));
  EXPECT_TRUE(feasible(tasks));
}

TEST(Rta, ThreeTaskChain) {
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("t1", 4, 1, 30),
      task("t2", 6, 2, 20),
      task("t3", 12, 3, 10),
  };
  EXPECT_EQ(response_time(tasks[0], tasks), tu(1));
  // R2 = 2 + ceil(R/4)*1 -> 3 -> 3. R3 = 3 + ceil(R/4)+2*ceil(R/6)...
  EXPECT_EQ(response_time(tasks[1], tasks), tu(3));
  EXPECT_EQ(response_time(tasks[2], tasks), tu(10));
}

TEST(Rta, DetectsInfeasibility) {
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("hp", 4, 3, 20),
      task("lp", 8, 3, 10),
  };
  EXPECT_FALSE(response_time(tasks[1], tasks).has_value());
  EXPECT_FALSE(feasible(tasks));
  const auto all = response_times(tasks);
  EXPECT_TRUE(all[0].has_value());
  EXPECT_FALSE(all[1].has_value());
}

TEST(Rta, PollingServerCountsAsPeriodicTask) {
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("tau1", 6, 2, 20),
      task("tau2", 6, 1, 10),
  };
  model::ServerSpec ps;
  ps.policy = model::ServerPolicy::kPolling;
  ps.capacity = tu(3);
  ps.period = tu(6);
  ps.priority = 30;
  // tau1: 2 + 3 = 5; tau2: 1 + 3 + 2 = 6 == deadline.
  EXPECT_EQ(response_time(tasks[0], tasks, &ps), tu(5));
  EXPECT_EQ(response_time(tasks[1], tasks, &ps), tu(6));
  EXPECT_TRUE(feasible(tasks, &ps));
}

TEST(Rta, DeferrableServerBackToBackIsWorse) {
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("tau", 20, 5, 10),
  };
  model::ServerSpec ps;
  ps.policy = model::ServerPolicy::kPolling;
  ps.capacity = tu(3);
  ps.period = tu(6);
  ps.priority = 30;
  model::ServerSpec ds = ps;
  ds.policy = model::ServerPolicy::kDeferrable;
  const auto r_ps = response_time(tasks[0], tasks, &ps);
  const auto r_ds = response_time(tasks[0], tasks, &ds);
  ASSERT_TRUE(r_ps.has_value());
  ASSERT_TRUE(r_ds.has_value());
  EXPECT_GT(*r_ds, *r_ps);
}

TEST(Rta, BackgroundServerDoesNotInterfere) {
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("tau", 10, 4, 10),
  };
  model::ServerSpec bg;
  bg.policy = model::ServerPolicy::kBackground;
  bg.capacity = tu(10);
  bg.period = tu(10);
  bg.priority = 1;
  EXPECT_EQ(response_time(tasks[0], tasks, &bg), tu(4));
  EXPECT_EQ(server_interference(bg, tu(100)), Duration::zero());
}

TEST(Rta, ServerInterferenceFormulas) {
  model::ServerSpec ps;
  ps.policy = model::ServerPolicy::kPolling;
  ps.capacity = tu(4);
  ps.period = tu(6);
  EXPECT_EQ(server_interference(ps, tu(6)), tu(4));
  EXPECT_EQ(server_interference(ps, tu(7)), tu(8));
  model::ServerSpec ds = ps;
  ds.policy = model::ServerPolicy::kDeferrable;
  // Jitter 2: ceil((w+2)/6)*4.
  EXPECT_EQ(server_interference(ds, tu(4)), tu(4));
  EXPECT_EQ(server_interference(ds, tu(5)), tu(8));
}

TEST(Rta, LowerPriorityServerIgnoredInTaskAnalysis) {
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("tau", 10, 4, 10),
  };
  model::ServerSpec ps;
  ps.policy = model::ServerPolicy::kPolling;
  ps.capacity = tu(4);
  ps.period = tu(6);
  ps.priority = 5;  // below tau
  EXPECT_EQ(response_time(tasks[0], tasks, &ps), tu(4));
}

TEST(Hyperperiod, LcmOfPeriods) {
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("a", 4, 1, 1),
      task("b", 6, 1, 2),
  };
  EXPECT_EQ(hyperperiod(tasks), tu(12));
  model::ServerSpec s;
  s.policy = model::ServerPolicy::kPolling;
  s.capacity = tu(1);
  s.period = tu(5);
  EXPECT_EQ(hyperperiod(tasks, &s), tu(60));
}

TEST(Bounds, LiuLaylandValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-3);
  EXPECT_NEAR(liu_layland_bound(100), std::log(2.0), 1e-2);
}

TEST(Bounds, DeferrableServerBound) {
  // Us = 0 degenerates to ln 2 (the n->inf LL bound).
  EXPECT_NEAR(deferrable_server_periodic_bound(0.0), std::log(2.0), 1e-12);
  // A heavier DS leaves less for the periodic tasks.
  EXPECT_LT(deferrable_server_periodic_bound(0.5),
            deferrable_server_periodic_bound(0.2));
}

TEST(Bounds, PollingServerBoundIsLlWithOneMore) {
  EXPECT_DOUBLE_EQ(polling_server_periodic_bound(1), liu_layland_bound(2));
}

TEST(EdfFeasibility, UtilisationTest) {
  EXPECT_TRUE(edf_feasible_implicit({task("a", 4, 2, 1), task("b", 8, 4, 2)}));
  EXPECT_FALSE(
      edf_feasible_implicit({task("a", 4, 3, 1), task("b", 8, 3, 2)}));
}

TEST(EdfFeasibility, DemandCriterionConstrainedDeadlines) {
  auto a = task("a", 8, 3, 1);
  a.deadline = tu(4);
  auto b = task("b", 12, 4, 2);
  b.deadline = tu(10);
  EXPECT_TRUE(edf_feasible_demand({a, b}));
  // Tighten a's deadline below its cost plus b's interference window.
  a.deadline = tu(3);
  b.deadline = tu(5);
  EXPECT_FALSE(edf_feasible_demand({a, b}));
}

TEST(EdfFeasibility, ImplicitDeadlineFullUtilisationPasses) {
  EXPECT_TRUE(edf_feasible_demand({task("a", 4, 2, 1), task("b", 8, 4, 2)}));
}

}  // namespace
}  // namespace tsf::analysis
