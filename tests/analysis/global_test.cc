// Global fixed-priority RTA (Bertogna-style interference bound).
#include "analysis/global.h"

#include <gtest/gtest.h>

#include "analysis/rta.h"

namespace tsf::analysis {
namespace {

using common::Duration;

Duration tu(std::int64_t n) { return Duration::time_units(n); }

model::PeriodicTaskSpec task(const std::string& name, std::int64_t cost,
                             std::int64_t period, int priority) {
  model::PeriodicTaskSpec t;
  t.name = name;
  t.cost = tu(cost);
  t.period = tu(period);
  t.priority = priority;
  return t;
}

TEST(GlobalWorkloadBound, CountsCarryInFreeJobsPlusClippedTail) {
  const auto t = task("t", 2, 10, 1);  // D == T == 10
  // One full job fits in a 10tu window, the straddler contributes its
  // clipped tail: slack = 10 + 10 - 2 = 18 → 1 full job + min(2, 8) = 4.
  EXPECT_EQ(global_workload_bound(t, tu(10)), tu(4));
  // A 1tu window: no full job, tail min(2, 9) = 2.
  EXPECT_EQ(global_workload_bound(t, tu(1)), tu(2));
  EXPECT_EQ(global_workload_bound(t, Duration::zero()), Duration::zero());
}

TEST(GlobalRta, HighestPriorityTaskRespondsInItsOwnCost) {
  const std::vector<model::PeriodicTaskSpec> tasks = {
      task("hi", 3, 12, 10), task("lo", 2, 12, 1)};
  const auto verdict = analyze_global(tasks, 4);
  ASSERT_TRUE(verdict.response_times[0].has_value());
  EXPECT_EQ(*verdict.response_times[0], tu(3));
}

TEST(GlobalRta, MoreCoresTurnOverloadIntoFeasibility) {
  // Three heavy high-priority tasks swamp a single core but leave plenty
  // of parallel slack on four.
  std::vector<model::PeriodicTaskSpec> tasks = {
      task("h0", 4, 12, 10), task("h1", 4, 12, 10), task("h2", 4, 12, 10),
      task("lo", 4, 12, 1)};
  EXPECT_FALSE(analyze_global(tasks, 1).feasible);
  const auto quad = analyze_global(tasks, 4);
  EXPECT_TRUE(quad.feasible);
  ASSERT_TRUE(quad.response_times[3].has_value());
  EXPECT_LE(*quad.response_times[3], tu(12));
}

TEST(GlobalRta, ServerReplicasChargeOneReplicaWorthOfInterference) {
  const std::vector<model::PeriodicTaskSpec> tasks = {task("lo", 2, 12, 1)};
  model::ServerSpec server;
  server.policy = model::ServerPolicy::kPolling;
  server.capacity = tu(2);
  server.period = tu(6);
  server.priority = 30;
  const auto without = analyze_global(tasks, 2);
  const auto with = analyze_global(tasks, 2, &server);
  ASSERT_TRUE(without.response_times[0].has_value());
  ASSERT_TRUE(with.response_times[0].has_value());
  // The m pinned replicas summed and divided by m: strictly more
  // interference than no server at all.
  EXPECT_GT(*with.response_times[0], *without.response_times[0]);
  // A background server never interferes.
  server.policy = model::ServerPolicy::kBackground;
  const auto background = analyze_global(tasks, 2, &server);
  EXPECT_EQ(*background.response_times[0], *without.response_times[0]);
}

TEST(GlobalRta, EmptyTaskSetIsFeasible) {
  EXPECT_TRUE(analyze_global({}, 2).feasible);
}

}  // namespace
}  // namespace tsf::analysis
