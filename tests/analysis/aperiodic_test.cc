// Tests for the paper's §7 on-line response-time equations.
#include "analysis/aperiodic.h"

#include <gtest/gtest.h>

namespace tsf::analysis {
namespace {

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

PsOnlineInputs base() {
  PsOnlineInputs in;
  in.capacity = tu(4);
  in.period = tu(6);
  in.t = at_tu(0);
  in.release = at_tu(0);
  in.remaining = tu(4);
  return in;
}

TEST(PsOnline, FitsCurrentInstance) {
  // Demand 3 <= remaining 4: served immediately, Ra = t + Cape - ra = 3.
  auto in = base();
  in.demand = tu(3);
  EXPECT_EQ(ps_online_response_time(in), tu(3));
}

TEST(PsOnline, ReleaseEarlierThanAnalysisInstant) {
  auto in = base();
  in.t = at_tu(5);
  in.release = at_tu(3);
  in.demand = tu(2);
  in.remaining = tu(4);
  // Completion at t + demand = 7; response 7 - 3 = 4.
  EXPECT_EQ(ps_online_response_time(in), tu(4));
}

TEST(PsOnline, OverflowIntoNextInstances) {
  // Demand 9 with remaining 1: overflow 8 = 2 full instances capacity 4.
  // F=2, G=ceil(0/6)=0, R=0: Ra = (2+0)*6 + 0 - 0 = 12.
  auto in = base();
  in.demand = tu(9);
  in.remaining = tu(1);
  EXPECT_EQ(ps_online_response_time(in), tu(12));
}

TEST(PsOnline, PartialLastInstance) {
  // Demand 6, remaining 1: overflow 5 -> F=1, R=1.
  // At t=2 (mid instance 1): G = ceil(2/6) = 1: Ra = (1+1)*6 + 1 - 0 = 13.
  auto in = base();
  in.t = at_tu(2);
  in.demand = tu(6);
  in.remaining = tu(1);
  EXPECT_EQ(ps_online_response_time(in), tu(13));
}

TEST(PsOnline, ExactCapacityMultipleLandsOnInstanceBoundary) {
  // Overflow exactly k * capacity: the remainder R is zero.
  auto in = base();
  in.demand = tu(8);
  in.remaining = tu(0);
  // F = 2, G = 0, R = 0 -> 12.
  EXPECT_EQ(ps_online_response_time(in), tu(12));
}

TEST(ImplementationEq5, MatchesHandComputation) {
  // Ra = (Ia*Ts + Cpa + Ca) - ra.
  EXPECT_EQ(implementation_response_time(2, tu(6), tu(1), tu(2), at_tu(3)),
            tu(12));  // 12 + 1 + 2 - 3
  EXPECT_EQ(implementation_response_time(0, tu(6), tu(0), tu(2), at_tu(0)),
            tu(2));
}

TEST(ImplementationEq5, LaterReleaseShortensResponse) {
  const auto early =
      implementation_response_time(1, tu(6), tu(2), tu(1), at_tu(0));
  const auto late =
      implementation_response_time(1, tu(6), tu(2), tu(1), at_tu(4));
  EXPECT_EQ(early - late, tu(4));
}

}  // namespace
}  // namespace tsf::analysis
