// Cross-engine and analysis-vs-engine validation.
//
// These tests tie the three stacks together: the offline analysis must
// bound what the engines observe, the two engines must agree where their
// semantics coincide, and both must be deterministic.
#include <gtest/gtest.h>

#include "analysis/rta.h"
#include "exp/exec_runner.h"
#include "exp/metrics.h"
#include "gen/generator.h"
#include "gen/taskset.h"
#include "sim/simulator.h"

namespace tsf {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

TEST(AnalysisVsSim, RtaIsTightAtTheCriticalInstant) {
  // Synchronous release is the worst case: the largest observed response
  // of each task over the hyperperiod equals the RTA fixpoint.
  common::Rng rng(1234);
  for (int round = 0; round < 10; ++round) {
    gen::TaskSetParams p;
    p.count = 4;
    p.total_utilization = 0.7;
    p.period_min = tu(5);
    p.period_max = tu(40);
    const auto tasks = gen::make_task_set(p, rng);
    if (!analysis::feasible(tasks)) continue;
    const Duration hyper = analysis::hyperperiod(tasks);
    if (hyper > tu(50'000)) continue;  // bound the test's wall time

    model::SystemSpec spec;
    spec.periodic_tasks = tasks;
    spec.server.policy = model::ServerPolicy::kNone;
    spec.horizon = TimePoint::origin() + hyper;
    const auto result = sim::simulate(spec);

    for (std::size_t i = 0; i < tasks.size(); ++i) {
      Duration max_response = Duration::zero();
      for (const auto& j : result.periodic_jobs) {
        if (j.task == tasks[i].name && !j.completion.is_never()) {
          max_response = common::max(max_response, j.completion - j.release);
        }
      }
      const auto bound = analysis::response_time(tasks[i], tasks);
      ASSERT_TRUE(bound.has_value()) << tasks[i].name;
      EXPECT_EQ(max_response, *bound)
          << tasks[i].name << " in round " << round;
    }
  }
}

TEST(AnalysisVsExec, RtaBoundsIdealExecution) {
  // On the ideal VM (zero overhead) the observed periodic response times
  // never exceed the RTA bound, with a Polling Server present.
  common::Rng rng(99);
  gen::TaskSetParams p;
  p.count = 3;
  p.total_utilization = 0.4;
  p.period_min = tu(8);
  p.period_max = tu(30);
  const auto tasks = gen::make_task_set(p, rng);

  model::SystemSpec spec;
  spec.periodic_tasks = tasks;
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = tu(2);
  spec.server.period = tu(10);
  spec.server.priority = 50;
  spec.horizon = at_tu(300);
  // Aperiodic load to keep the server busy.
  for (int i = 0; i < 20; ++i) {
    model::AperiodicJobSpec j;
    j.name = "a" + std::to_string(i);
    j.release = at_tu(3 * i);
    j.cost = tu(1);
    spec.aperiodic_jobs.push_back(j);
  }
  ASSERT_TRUE(analysis::feasible(tasks, &spec.server));

  const auto result = exp::run_exec(spec, exp::ideal_execution_options());
  for (const auto& t : tasks) {
    const auto bound = analysis::response_time(t, tasks, &spec.server);
    ASSERT_TRUE(bound.has_value());
    for (const auto& j : result.periodic_jobs) {
      if (j.task != t.name || j.completion.is_never()) continue;
      EXPECT_LE(j.completion - j.release, *bound) << t.name;
    }
  }
}

TEST(ExecVsSim, StrictFifoIdealExecMatchesSimWhenJobsFitInstances) {
  // When every cost fits one server instance and the queue is strict FIFO,
  // the non-resumable limitation never triggers, so the ideal execution
  // must reproduce the theoretical simulator's response times exactly.
  gen::GeneratorParams p;
  p.task_density = 1.0;
  p.average_cost_tu = 2.0;
  p.std_deviation_tu = 0.0;  // constant cost 2 <= capacity 4
  p.nb_generation = 5;
  p.seed = 7;
  p.queue = model::QueueDiscipline::kStrictFifo;
  p.policy = model::ServerPolicy::kPolling;

  for (const auto& spec : gen::RandomSystemGenerator(p).generate()) {
    const auto sim_result = sim::simulate(spec);
    const auto exec_result =
        exp::run_exec(spec, exp::ideal_execution_options());
    ASSERT_EQ(sim_result.jobs.size(), exec_result.jobs.size());
    for (std::size_t i = 0; i < sim_result.jobs.size(); ++i) {
      EXPECT_EQ(sim_result.jobs[i].served, exec_result.jobs[i].served)
          << spec.name << "/" << sim_result.jobs[i].name;
      if (sim_result.jobs[i].served && exec_result.jobs[i].served) {
        EXPECT_EQ(sim_result.jobs[i].completion,
                  exec_result.jobs[i].completion)
            << spec.name << "/" << sim_result.jobs[i].name;
      }
    }
  }
}

TEST(ExecVsSim, DeferrableIdealExecTracksSimWithinOnePeriod) {
  // The implemented DS deliberately deviates from the theoretical one
  // (§4.2's boundary-spanning budget instead of suspend/resume), so exact
  // completion equality is not expected. The paper's own validation
  // criterion is that served ratios stay close; additionally, any served
  // job's completion may differ by at most one server period (the
  // divergence is confined to how a replenishment boundary is crossed).
  gen::GeneratorParams p;
  p.task_density = 1.0;
  p.average_cost_tu = 2.0;
  p.std_deviation_tu = 0.0;
  p.nb_generation = 5;
  p.seed = 21;
  p.queue = model::QueueDiscipline::kStrictFifo;
  p.policy = model::ServerPolicy::kDeferrable;

  for (const auto& spec : gen::RandomSystemGenerator(p).generate()) {
    const auto sim_result = sim::simulate(spec);
    const auto exec_result =
        exp::run_exec(spec, exp::ideal_execution_options());
    const auto sim_m = exp::compute_run_metrics(sim_result);
    const auto exec_m = exp::compute_run_metrics(exec_result);
    EXPECT_NEAR(exec_m.served_ratio, sim_m.served_ratio, 0.21) << spec.name;
    for (std::size_t i = 0; i < sim_result.jobs.size(); ++i) {
      if (sim_result.jobs[i].served && exec_result.jobs[i].served) {
        const Duration gap =
            sim_result.jobs[i].completion > exec_result.jobs[i].completion
                ? sim_result.jobs[i].completion -
                      exec_result.jobs[i].completion
                : exec_result.jobs[i].completion -
                      sim_result.jobs[i].completion;
        EXPECT_LE(gap, spec.server.period)
            << spec.name << "/" << sim_result.jobs[i].name;
      }
    }
  }
}

TEST(ExecDeterminism, RepeatedRunsBitIdentical) {
  gen::GeneratorParams p;
  p.task_density = 2.0;
  p.std_deviation_tu = 2.0;
  p.nb_generation = 1;
  p.seed = 1983;
  const auto spec = gen::RandomSystemGenerator(p).generate().front();
  const auto opt = exp::paper_execution_options();
  const auto r1 = exp::run_exec(spec, opt);
  const auto r2 = exp::run_exec(spec, opt);
  EXPECT_EQ(r1.timeline.to_csv(), r2.timeline.to_csv());
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (std::size_t i = 0; i < r1.jobs.size(); ++i) {
    EXPECT_EQ(r1.jobs[i].served, r2.jobs[i].served);
    EXPECT_EQ(r1.jobs[i].completion, r2.jobs[i].completion);
  }
}

TEST(Metrics, ComputedFromOutcomes) {
  model::RunResult run;
  model::JobOutcome a;
  a.name = "a";
  a.release = at_tu(0);
  a.served = true;
  a.start = at_tu(1);
  a.completion = at_tu(3);
  model::JobOutcome b;
  b.name = "b";
  b.release = at_tu(2);
  b.interrupted = true;
  model::JobOutcome c;
  c.name = "c";
  c.release = at_tu(4);
  run.jobs = {a, b, c};
  const auto m = exp::compute_run_metrics(run);
  EXPECT_EQ(m.released, 3u);
  EXPECT_EQ(m.served, 1u);
  EXPECT_EQ(m.interrupted, 1u);
  EXPECT_DOUBLE_EQ(m.mean_response_tu, 3.0);
  EXPECT_NEAR(m.interrupted_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.served_ratio, 1.0 / 3.0, 1e-12);
}

TEST(Metrics, ResponseDistributionPercentiles) {
  model::RunResult run;
  for (int i = 1; i <= 100; ++i) {
    model::JobOutcome o;
    o.name = "j" + std::to_string(i);
    o.release = at_tu(0);
    o.served = true;
    o.completion = at_tu(i);  // responses 1..100 tu
    run.jobs.push_back(o);
  }
  const auto d = exp::compute_response_distribution({run});
  EXPECT_EQ(d.samples, 100u);
  EXPECT_DOUBLE_EQ(d.mean_tu, 50.5);
  EXPECT_DOUBLE_EQ(d.p50_tu, 50.0);
  EXPECT_DOUBLE_EQ(d.p90_tu, 90.0);
  EXPECT_DOUBLE_EQ(d.p99_tu, 99.0);
  EXPECT_DOUBLE_EQ(d.max_tu, 100.0);
}

TEST(Metrics, ResponseDistributionEmptyIsZero) {
  const auto d = exp::compute_response_distribution({});
  EXPECT_EQ(d.samples, 0u);
  EXPECT_DOUBLE_EQ(d.max_tu, 0.0);
}

TEST(Metrics, SetAveragesSkipServedlessSystemsForAart) {
  model::RunResult served_run;
  model::JobOutcome a;
  a.name = "a";
  a.release = at_tu(0);
  a.served = true;
  a.completion = at_tu(4);
  served_run.jobs = {a};
  model::RunResult empty_run;
  model::JobOutcome b;
  b.name = "b";
  b.release = at_tu(0);
  empty_run.jobs = {b};
  const auto set = exp::compute_set_metrics({served_run, empty_run});
  EXPECT_DOUBLE_EQ(set.aart, 4.0);       // only the serving system counts
  EXPECT_DOUBLE_EQ(set.asr, 0.5);        // (1.0 + 0.0) / 2
  EXPECT_EQ(set.systems, 2u);
}

}  // namespace
}  // namespace tsf
