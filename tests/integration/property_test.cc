// Parameterized property sweeps over random workloads: invariants that must
// hold for every policy, density, cost distribution and engine.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "exp/exec_runner.h"
#include "gen/generator.h"
#include "sim/simulator.h"
#include "support/timeline_checks.h"

namespace tsf {
namespace {

using common::Duration;
using common::TimePoint;

// (policy, density, std deviation, seed)
using Params = std::tuple<model::ServerPolicy, double, double, std::uint64_t>;

class EngineProperties : public ::testing::TestWithParam<Params> {
 protected:
  static gen::GeneratorParams generator_params() {
    const auto& [policy, density, sd, seed] = GetParam();
    gen::GeneratorParams p;
    p.policy = policy;
    p.task_density = density;
    p.std_deviation_tu = sd;
    p.seed = seed;
    p.nb_generation = 3;
    if (policy == model::ServerPolicy::kBackground) p.server_priority = 1;
    return p;
  }
};

TEST_P(EngineProperties, ExecTimelineNeverOverlapsOnTheProcessor) {
  for (const auto& spec :
       gen::RandomSystemGenerator(generator_params()).generate()) {
    const auto result = exp::run_exec(spec, exp::paper_execution_options());
    EXPECT_EQ(testing::find_overlap(result.timeline), "") << spec.name;
  }
}

TEST_P(EngineProperties, SimTimelineNeverOverlapsOnTheProcessor) {
  for (const auto& spec :
       gen::RandomSystemGenerator(generator_params()).generate()) {
    const auto result = sim::simulate(spec);
    EXPECT_EQ(testing::find_overlap(result.timeline), "") << spec.name;
  }
}

TEST_P(EngineProperties, OutcomeAccountingIsExhaustive) {
  for (const auto& spec :
       gen::RandomSystemGenerator(generator_params()).generate()) {
    std::vector<model::RunResult> results;
    results.push_back(exp::run_exec(spec, exp::paper_execution_options()));
    results.push_back(sim::simulate(spec));
    for (const auto& result : results) {
      ASSERT_EQ(result.jobs.size(), spec.aperiodic_jobs.size()) << spec.name;
      for (const auto& job : result.jobs) {
        // A job is served xor interrupted xor unserved.
        EXPECT_FALSE(job.served && job.interrupted) << job.name;
        if (job.served) {
          EXPECT_GE(job.start, job.release) << job.name;
          EXPECT_GE(job.completion, job.start) << job.name;
          EXPECT_LE(job.completion, spec.horizon + Duration::time_units(12))
              << job.name;  // boundary-spanning may run past the horizon
        }
      }
    }
  }
}

TEST_P(EngineProperties, ExecIsDeterministic) {
  const auto spec =
      gen::RandomSystemGenerator(generator_params()).generate().front();
  const auto a = exp::run_exec(spec, exp::paper_execution_options());
  const auto b = exp::run_exec(spec, exp::paper_execution_options());
  EXPECT_EQ(a.timeline.to_csv(), b.timeline.to_csv());
}

TEST_P(EngineProperties, SimNeverInterruptsAndNeverServesPartially) {
  for (const auto& spec :
       gen::RandomSystemGenerator(generator_params()).generate()) {
    const auto result = sim::simulate(spec);
    for (const auto& job : result.jobs) {
      EXPECT_FALSE(job.interrupted) << job.name;
      if (job.served) {
        // Total service equals the demand: busy time under the job's name.
        Duration service = Duration::zero();
        for (const auto& iv : result.timeline.busy_intervals(job.name)) {
          service += iv.end - iv.begin;
        }
        EXPECT_EQ(service, job.cost) << job.name;
      }
    }
  }
}

std::string sweep_name(const ::testing::TestParamInfo<Params>& param_info) {
  const auto& [policy, density, sd, seed] = param_info.param;
  return std::string(model::to_string(policy)) + "_d" +
         std::to_string(static_cast<int>(density)) + "_sd" +
         std::to_string(static_cast<int>(sd)) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, EngineProperties,
    ::testing::Combine(
        ::testing::Values(model::ServerPolicy::kPolling,
                          model::ServerPolicy::kDeferrable,
                          model::ServerPolicy::kBackground),
        ::testing::Values(1.0, 3.0), ::testing::Values(0.0, 2.0),
        ::testing::Values(1983u, 7u)),
    sweep_name);

// Sporadic server: exec engine only (the theoretical simulator implements
// the paper's two policies).
class SporadicProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SporadicProperties, InvariantsHold) {
  gen::GeneratorParams p;
  p.policy = model::ServerPolicy::kSporadic;
  p.task_density = 2;
  p.std_deviation_tu = 2;
  p.seed = GetParam();
  p.nb_generation = 3;
  for (const auto& spec : gen::RandomSystemGenerator(p).generate()) {
    const auto result = exp::run_exec(spec, exp::paper_execution_options());
    EXPECT_EQ(testing::find_overlap(result.timeline), "") << spec.name;
    ASSERT_EQ(result.jobs.size(), spec.aperiodic_jobs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SporadicProperties,
                         ::testing::Values(1u, 2u, 3u, 1983u));

// The ideal-execution Polling Server must respect its capacity within every
// server period: total handler service inside [kT, (k+1)T) <= capacity.
class PsCapacityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsCapacityProperty, PerPeriodServiceNeverExceedsCapacity) {
  gen::GeneratorParams p;
  p.policy = model::ServerPolicy::kPolling;
  p.task_density = 3;
  p.std_deviation_tu = 2;
  p.seed = GetParam();
  p.nb_generation = 3;
  for (const auto& spec : gen::RandomSystemGenerator(p).generate()) {
    const auto result = exp::run_exec(spec, exp::ideal_execution_options());
    const std::int64_t periods = 10;
    for (std::int64_t k = 0; k < periods; ++k) {
      const TimePoint from =
          TimePoint::origin() + spec.server.period * k;
      const TimePoint to = from + spec.server.period;
      Duration service = Duration::zero();
      for (const auto& job : spec.aperiodic_jobs) {
        for (const auto& iv : result.timeline.busy_intervals(job.name)) {
          const TimePoint b = common::max(iv.begin, from);
          const TimePoint e = common::min(iv.end, to);
          if (e > b) service += e - b;
        }
      }
      EXPECT_LE(service, spec.server.capacity)
          << spec.name << " period " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsCapacityProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 1983u));

}  // namespace
}  // namespace tsf
