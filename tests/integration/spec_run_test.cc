// End-to-end: a multi-core spec file with cross-core channels flows through
// the same path as `tsf_run <spec>` (load_spec_file + run_and_report) and
// produces (a) a byte-identical report across repeated runs — the
// determinism contract of the lock-step runtime — and (b) exactly the
// golden report checked in under tests/integration/golden/ (the partition
// table, served cross-core jobs, channel latency lines and the trace
// fingerprint). On mismatch the actual output lands in the test-artifact
// directory for diffing.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/report.h"
#include "cli/spec_file.h"
#include "support/artifact_dump.h"

#ifndef TSF_SOURCE_DIR
#error "TSF_SOURCE_DIR must point at the repository root"
#endif

namespace tsf::cli {
namespace {

std::string source_path(const std::string& relative) {
  return std::string(TSF_SOURCE_DIR) + "/" + relative;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(SpecRunIntegration, CrossCoreSpecMatchesGoldenReport) {
  const auto outcome =
      load_spec_file(source_path("examples/specs/mp_cross_core.tsf"));
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  ASSERT_EQ(outcome.config.spec.cores, 2);
  ASSERT_TRUE(outcome.config.spec.uses_channels());

  // Three full runs: the report (which embeds the trace fingerprint) must
  // be byte-identical every time.
  const std::string first = run_and_report(outcome.config);
  for (int i = 1; i < 3; ++i) {
    const std::string again = run_and_report(outcome.config);
    ASSERT_EQ(again, first)
        << "run " << i << " diverged; dumped "
        << testing::write_test_artifact("spec_run_repeat.txt", again);
  }

  // Spot-check the semantics before the byte-compare, so a golden drift
  // still tells us whether the machinery (not just formatting) broke.
  EXPECT_NE(first.find("partition (worst-fit-decreasing, 2 cores)"),
            std::string::npos);
  EXPECT_NE(first.find("system verdict: feasible"), std::string::npos);
  EXPECT_NE(first.find("cross-core channels: 3 delivered, 0 failed"),
            std::string::npos);
  EXPECT_NE(first.find("channel latency"), std::string::npos);
  EXPECT_NE(first.find("cross-core response (post to completion)"),
            std::string::npos);
  EXPECT_NE(first.find("trace fingerprint: "), std::string::npos);
  // The triggered jobs on core 1 really got served via the channel.
  EXPECT_EQ(first.find("unserved"), std::string::npos);

  const std::string golden =
      slurp(source_path("tests/integration/golden/mp_cross_core.txt"));
  ASSERT_FALSE(golden.empty())
      << "missing golden file; regenerate with:\n"
         "  ./build/tsf_run examples/specs/mp_cross_core.tsf"
         " > tests/integration/golden/mp_cross_core.txt";
  EXPECT_EQ(first, golden)
      << "report drifted from the golden file; actual output dumped to "
      << testing::write_test_artifact("spec_run_actual.txt", first)
      << "\nif the change is intentional, regenerate the golden file with:\n"
         "  ./build/tsf_run examples/specs/mp_cross_core.tsf"
         " > tests/integration/golden/mp_cross_core.txt";
}

// Shared body for the scheduling-policy golden tests: repeat-run
// determinism plus the byte-compare against the checked-in report.
void check_policy_golden(const std::string& spec_rel,
                         const std::string& golden_rel,
                         const std::vector<std::string>& must_contain) {
  const auto outcome = load_spec_file(source_path(spec_rel));
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  ASSERT_EQ(outcome.config.spec.cores, 2);

  const std::string first = run_and_report(outcome.config);
  for (int i = 1; i < 3; ++i) {
    const std::string again = run_and_report(outcome.config);
    ASSERT_EQ(again, first)
        << "run " << i << " diverged; dumped "
        << testing::write_test_artifact("policy_run_repeat.txt", again);
  }
  for (const auto& needle : must_contain) {
    EXPECT_NE(first.find(needle), std::string::npos) << needle;
  }

  const std::string golden = slurp(source_path(golden_rel));
  ASSERT_FALSE(golden.empty())
      << "missing golden file; regenerate with:\n  ./build/tsf_run "
      << spec_rel << " > " << golden_rel;
  EXPECT_EQ(first, golden)
      << "report drifted from the golden file; actual output dumped to "
      << testing::write_test_artifact("policy_run_actual.txt", first)
      << "\nif the change is intentional, regenerate with:\n  ./build/tsf_run "
      << spec_rel << " > " << golden_rel;
}

TEST(SpecRunIntegration, SemiPartitionedSpecMatchesGoldenReport) {
  check_policy_golden(
      "examples/specs/mp_policy_semi.tsf",
      "tests/integration/golden/mp_policy_semi.txt",
      {
          "scheduling policy: semi-partitioned",
          "global RTA (Bertogna-style bound): feasible",
          // The burst really triggered a steal and its count is reported.
          "scheduling (semi-partitioned): 0 pool dispatches, 1 steals",
          "served 6/6",
          "trace fingerprint: ",
      });
}

TEST(SpecRunIntegration, GlobalPolicySpecMatchesGoldenReport) {
  check_policy_golden(
      "examples/specs/mp_policy_global.tsf",
      "tests/integration/golden/mp_policy_global.txt",
      {
          "scheduling policy: global",
          // All four unpinned jobs went through the shared ready pool.
          "scheduling (global): 4 pool dispatches, 0 steals",
          // The channel pair still flowed, unchanged by the policy.
          "cross-core channels: 1 delivered, 0 failed",
          "served 6/6",
          "trace fingerprint: ",
      });
}

// Storm specs (emitted by tools/make_storms.cc from the canonical
// generator storms) run under overload = dover; every report must carry
// the value-accrual ratio against the clairvoyant bound and a clean
// forbidden-behavior line. Ratios pinned here are the same cells
// bench/overload.cc gates, so a silent policy regression shows up twice.

TEST(SpecRunIntegration, RouterStormSpecMatchesGoldenReport) {
  check_policy_golden(
      "examples/specs/mp_storm_router.tsf",
      "tests/integration/golden/mp_storm_router.txt",
      {
          "overload (dover, threshold 0.75, period 6tu): 152 shed,"
          " 3 takeovers",
          "value accrual: 64.77 of clairvoyant bound 131.00 (ratio 0.494)",
          "forbidden-behavior check: clean",
          "trace fingerprint: ",
      });
}

TEST(SpecRunIntegration, MarketStormSpecMatchesGoldenReport) {
  check_policy_golden(
      "examples/specs/mp_storm_market.tsf",
      "tests/integration/golden/mp_storm_market.txt",
      {
          "overload (dover, threshold 0.75, period 6tu): 20 shed,"
          " 0 takeovers",
          "value accrual: 80.50 of clairvoyant bound 191.40 (ratio 0.421)",
          "forbidden-behavior check: clean",
          "trace fingerprint: ",
      });
}

TEST(SpecRunIntegration, CascadeStormSpecMatchesGoldenReport) {
  check_policy_golden(
      "examples/specs/mp_storm_cascade.tsf",
      "tests/integration/golden/mp_storm_cascade.txt",
      {
          "overload (dover, threshold 0.75, period 6tu): 122 shed,"
          " 0 takeovers",
          "value accrual: 102.78 of clairvoyant bound 148.79 (ratio 0.691)",
          "forbidden-behavior check: clean",
          "trace fingerprint: ",
      });
}

TEST(SpecRunIntegration, RebalanceSpecMatchesGoldenReport) {
  check_policy_golden(
      "examples/specs/mp_rebalance.tsf",
      "tests/integration/golden/mp_rebalance.txt",
      {
          // The skewed bursts really drifted core 0 and the rebalancer
          // moved its backlog — and with it, every job got served.
          "rebalancing (drift, drift 0.15, period 6tu): 3 passes,"
          " 3 migrations, 0 admissions",
          "post-rebalance utilization: c0=0.250 c1=0.250",
          "served 18/18",
          "trace fingerprint: ",
      });
}

}  // namespace
}  // namespace tsf::cli
