// The ideal Sporadic Server in the simulator: amount-based replenishment,
// capacity preservation, and cross-validation against the exec-side SS.
#include <gtest/gtest.h>

#include "exp/exec_runner.h"
#include "exp/metrics.h"
#include "gen/generator.h"
#include "sim/simulator.h"

namespace tsf::sim {
namespace {

using common::Duration;
using common::Interval;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

model::SystemSpec ss_spec() {
  model::SystemSpec s;
  s.server.policy = model::ServerPolicy::kSporadic;
  s.server.capacity = tu(4);
  s.server.period = tu(6);
  s.server.priority = 30;
  s.horizon = at_tu(30);
  return s;
}

void add_job(model::SystemSpec& s, const std::string& name, std::int64_t t,
             Duration cost) {
  model::AperiodicJobSpec j;
  j.name = name;
  j.release = at_tu(t);
  j.cost = cost;
  s.aperiodic_jobs.push_back(j);
}

TEST(SimSporadicServer, CapacityPreservedWhileIdle) {
  // Unlike the PS, an idle SS keeps its budget: a job at t=5 runs at once.
  auto s = ss_spec();
  add_job(s, "late", 5, tu(4));
  const auto r = simulate(s);
  ASSERT_EQ(r.timeline.busy_intervals("late").size(), 1u);
  EXPECT_EQ(r.timeline.busy_intervals("late")[0],
            (Interval{at_tu(5), at_tu(9)}));
}

TEST(SimSporadicServer, ConsumedAmountReturnsOnePeriodAfterUse) {
  auto s = ss_spec();
  add_job(s, "a", 0, tu(3));  // consumes [0,3): +3 back at t=6
  add_job(s, "b", 3, tu(2));  // 1tu left now; the rest after the refill
  const auto r = simulate(s);
  EXPECT_EQ(r.timeline.busy_intervals("a")[0], (Interval{at_tu(0), at_tu(3)}));
  // Ideal SS service is resumable: b gets the leftover 1tu immediately,
  // suspends at exhaustion, and finishes once a's consumption returns.
  const auto b = r.timeline.busy_intervals("b");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], (Interval{at_tu(3), at_tu(4)}));
  EXPECT_EQ(b[1], (Interval{at_tu(6), at_tu(7)}));
  EXPECT_EQ(r.jobs[1].completion, at_tu(7));
}

TEST(SimSporadicServer, PartialServiceResumesAfterReplenishment) {
  // The theoretical SS is resumable, like the other simulated policies.
  auto s = ss_spec();
  add_job(s, "big", 0, tu(6));
  const auto r = simulate(s);
  const auto iv = r.timeline.busy_intervals("big");
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{at_tu(0), at_tu(4)}));  // budget exhausted
  EXPECT_EQ(iv[1], (Interval{at_tu(6), at_tu(8)}));  // +4 back at t=6
  EXPECT_TRUE(r.jobs[0].served);
}

TEST(SimSporadicServer, ReplenishmentNeverExceedsCapacity) {
  auto s = ss_spec();
  add_job(s, "a", 0, tu(2));
  add_job(s, "b", 10, tu(4));  // by t=10 the +2 replenishment has landed
  const auto r = simulate(s);
  EXPECT_EQ(r.timeline.busy_intervals("b")[0],
            (Interval{at_tu(10), at_tu(14)}));
}

TEST(SimSporadicServer, SegmentSplitByPreemption) {
  // A higher-priority periodic task splits the server's service into two
  // segments with distinct replenishment times.
  auto s = ss_spec();
  s.periodic_tasks.push_back({"hp", tu(10), tu(2), Duration::zero(),
                              at_tu(1), 40});  // above the server
  add_job(s, "job", 0, tu(3));
  const auto r = simulate(s);
  const auto iv = r.timeline.busy_intervals("job");
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{at_tu(0), at_tu(1)}));
  EXPECT_EQ(iv[1], (Interval{at_tu(3), at_tu(5)}));
  EXPECT_TRUE(r.jobs[0].served);
}

TEST(SimVsExecSporadic, ServedRatiosTrack) {
  // Cross-engine: the ideal SS and the implemented SS agree on served
  // ratios within the usual resumability gap.
  gen::GeneratorParams p;
  p.policy = model::ServerPolicy::kSporadic;
  p.task_density = 2;
  p.std_deviation_tu = 0;
  p.nb_generation = 5;
  for (const auto& spec : gen::RandomSystemGenerator(p).generate()) {
    const auto sim_m = exp::compute_run_metrics(simulate(spec));
    const auto exec_m = exp::compute_run_metrics(
        exp::run_exec(spec, exp::ideal_execution_options()));
    EXPECT_NEAR(exec_m.served_ratio, sim_m.served_ratio, 0.25) << spec.name;
  }
}

}  // namespace
}  // namespace tsf::sim
