// Tests for the theoretical (RTSS-style) simulator: ideal PS/DS semantics,
// including the resumable service the RTSJ implementation cannot do.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "common/trace.h"
#include "common/trace_sink.h"

namespace tsf::sim {
namespace {

using common::Duration;
using common::Interval;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

model::SystemSpec scenario_base(model::ServerPolicy policy,
                                Duration capacity) {
  model::SystemSpec s;
  s.name = "scenario";
  s.server.policy = policy;
  s.server.capacity = capacity;
  s.server.period = tu(6);
  s.server.priority = 30;
  s.periodic_tasks.push_back(
      {"tau1", tu(6), tu(2), Duration::zero(), TimePoint::origin(), 20});
  s.periodic_tasks.push_back(
      {"tau2", tu(6), tu(1), Duration::zero(), TimePoint::origin(), 10});
  s.horizon = at_tu(18);
  return s;
}

void add_job(model::SystemSpec& s, const std::string& name, std::int64_t t,
             Duration cost) {
  model::AperiodicJobSpec j;
  j.name = name;
  j.release = at_tu(t);
  j.cost = cost;
  s.aperiodic_jobs.push_back(j);
}

TEST(SimPollingServer, Scenario1MatchesPaperFigure2) {
  auto s = scenario_base(model::ServerPolicy::kPolling, tu(3));
  add_job(s, "h1", 0, tu(2));
  add_job(s, "h2", 6, tu(2));
  const auto r = simulate(s);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_TRUE(r.jobs[0].served);
  EXPECT_EQ(r.jobs[0].completion, at_tu(2));
  EXPECT_TRUE(r.jobs[1].served);
  EXPECT_EQ(r.jobs[1].completion, at_tu(8));
  // Periodic tasks follow.
  EXPECT_EQ(r.timeline.busy_intervals("tau1")[0], (Interval{at_tu(2), at_tu(4)}));
  EXPECT_EQ(r.timeline.busy_intervals("tau2")[0], (Interval{at_tu(4), at_tu(5)}));
}

TEST(SimPollingServer, Scenario2TheoreticalServerSuspendsAndResumes) {
  // The paper's footnote to scenario 2: "With the real PS policy, h2 should
  // begin its execution at time 8, suspend it at time 9 and resume it at
  // time 12." The theoretical simulator does exactly that.
  auto s = scenario_base(model::ServerPolicy::kPolling, tu(3));
  add_job(s, "h1", 2, tu(2));
  add_job(s, "h2", 4, tu(2));
  const auto r = simulate(s);
  const auto h2 = r.timeline.busy_intervals("h2");
  ASSERT_EQ(h2.size(), 2u);
  EXPECT_EQ(h2[0], (Interval{at_tu(8), at_tu(9)}));
  EXPECT_EQ(h2[1], (Interval{at_tu(12), at_tu(13)}));
  EXPECT_EQ(r.jobs[1].completion, at_tu(13));
  EXPECT_FALSE(r.jobs[1].interrupted);  // simulations never interrupt
}

TEST(SimPollingServer, EmptyPollForfeitsCapacity) {
  auto s = scenario_base(model::ServerPolicy::kPolling, tu(3));
  // Event arrives just after the t=0 poll: it waits for t=6 even though the
  // server would have had capacity.
  add_job(s, "late", 1, tu(1));
  const auto r = simulate(s);
  EXPECT_EQ(r.jobs[0].start, at_tu(6));
  EXPECT_EQ(r.jobs[0].completion, at_tu(7));
}

TEST(SimPollingServer, ArrivalDuringActiveInstanceIsServed) {
  auto s = scenario_base(model::ServerPolicy::kPolling, tu(3));
  add_job(s, "first", 0, tu(2));
  add_job(s, "second", 1, tu(1));  // arrives while the server is busy
  const auto r = simulate(s);
  EXPECT_EQ(r.jobs[0].completion, at_tu(2));
  EXPECT_EQ(r.jobs[1].completion, at_tu(3));
}

TEST(SimDeferrableServer, ServesAtReleaseMidPeriod) {
  auto s = scenario_base(model::ServerPolicy::kDeferrable, tu(3));
  add_job(s, "late", 1, tu(1));
  const auto r = simulate(s);
  EXPECT_EQ(r.jobs[0].start, at_tu(1));
  EXPECT_EQ(r.jobs[0].completion, at_tu(2));
}

TEST(SimDeferrableServer, SuspendsAtExhaustionResumesAtReplenish) {
  auto s = scenario_base(model::ServerPolicy::kDeferrable, tu(3));
  add_job(s, "big", 0, tu(5));
  const auto r = simulate(s);
  const auto iv = r.timeline.busy_intervals("big");
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{at_tu(0), at_tu(3)}));
  EXPECT_EQ(iv[1], (Interval{at_tu(6), at_tu(8)}));
  EXPECT_TRUE(r.jobs[0].served);
}

TEST(SimDeferrableServer, FasterThanPollingOnSameWorkload) {
  auto ps = scenario_base(model::ServerPolicy::kPolling, tu(3));
  auto ds = scenario_base(model::ServerPolicy::kDeferrable, tu(3));
  for (auto* s : {&ps, &ds}) {
    add_job(*s, "a", 1, tu(2));
    add_job(*s, "b", 7, tu(2));
  }
  const auto rp = simulate(ps);
  const auto rd = simulate(ds);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(rp.jobs[i].served && rd.jobs[i].served);
    EXPECT_LE(rd.jobs[i].response(), rp.jobs[i].response());
  }
  EXPECT_LT(rd.jobs[0].response(), rp.jobs[0].response());
}

TEST(SimBackground, RunsOnlyInIdleTime) {
  model::SystemSpec s;
  s.server.policy = model::ServerPolicy::kBackground;
  s.server.capacity = tu(6);
  s.server.period = tu(6);
  s.server.priority = 1;  // below every periodic task
  s.periodic_tasks.push_back(
      {"tau", tu(6), tu(3), Duration::zero(), TimePoint::origin(), 20});
  s.horizon = at_tu(30);
  add_job(s, "job", 0, tu(5));
  const auto r = simulate(s);
  const auto iv = r.timeline.busy_intervals("job");
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{at_tu(3), at_tu(6)}));
  EXPECT_EQ(iv[1], (Interval{at_tu(9), at_tu(11)}));
}

TEST(SimNoServer, AperiodicsNeverServed) {
  model::SystemSpec s;
  s.server.policy = model::ServerPolicy::kNone;
  s.horizon = at_tu(20);
  add_job(s, "ignored", 0, tu(1));
  const auto r = simulate(s);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_FALSE(r.jobs[0].served);
}

TEST(SimPeriodic, ResponseTimesMatchFixedPriorityTheory) {
  model::SystemSpec s;
  s.server.policy = model::ServerPolicy::kNone;
  s.periodic_tasks.push_back(
      {"hp", tu(5), tu(2), Duration::zero(), TimePoint::origin(), 20});
  s.periodic_tasks.push_back(
      {"lp", tu(10), tu(3), Duration::zero(), TimePoint::origin(), 10});
  s.horizon = at_tu(40);
  const auto r = simulate(s);
  // Worst case at the critical instant (t=0): R_lp = 5.
  Duration max_lp = Duration::zero();
  for (const auto& j : r.periodic_jobs) {
    if (j.task == "lp") {
      max_lp = common::max(max_lp, j.completion - j.release);
    }
    EXPECT_FALSE(j.deadline_missed) << j.task;
  }
  EXPECT_EQ(max_lp, tu(5));
}

TEST(SimPeriodic, BacklogWhenTransientOverload) {
  // A single task with cost > period would diverge; give it a finite
  // horizon and check jobs queue FIFO without loss.
  model::SystemSpec s;
  s.server.policy = model::ServerPolicy::kNone;
  s.periodic_tasks.push_back(
      {"over", tu(2), tu(3), Duration::zero(), TimePoint::origin(), 10});
  s.horizon = at_tu(12);
  const auto r = simulate(s);
  ASSERT_GE(r.periodic_jobs.size(), 3u);
  // Completions at 3, 6, 9, 12 — each job runs to completion in order.
  EXPECT_EQ(r.periodic_jobs[0].completion, at_tu(3));
  EXPECT_EQ(r.periodic_jobs[1].completion, at_tu(6));
  EXPECT_TRUE(r.periodic_jobs[1].deadline_missed);
}

TEST(SimDeterminism, RepeatedRunsIdentical) {
  auto s = scenario_base(model::ServerPolicy::kDeferrable, tu(3));
  add_job(s, "a", 1, tu(2));
  add_job(s, "b", 3, tu(4));
  const auto r1 = simulate(s);
  const auto r2 = simulate(s);
  EXPECT_EQ(r1.timeline.to_csv(), r2.timeline.to_csv());
}

TEST(SimStreaming, AttachedSinkSeesTheExactRecordStream) {
  auto s = scenario_base(model::ServerPolicy::kDeferrable, tu(3));
  add_job(s, "a", 1, tu(2));
  add_job(s, "b", 3, tu(4));
  Simulator sim(s);
  common::StreamingFingerprint streamed;
  sim.add_trace_sink(&streamed);
  const auto r = sim.run();
  EXPECT_EQ(streamed.digest(), common::fingerprint(r.timeline));
  EXPECT_EQ(streamed.records(), r.timeline.records().size());
}

TEST(SimMetadata, ActivationAndDispatchCounters) {
  auto s = scenario_base(model::ServerPolicy::kPolling, tu(3));
  add_job(s, "a", 0, tu(1));
  const auto r = simulate(s);
  EXPECT_EQ(r.server_activations, 3u);  // t=0, 6, 12
  EXPECT_EQ(r.server_dispatches, 1u);
}

}  // namespace
}  // namespace tsf::sim
