// Parameterized properties of the dynamic-priority policies over random
// firm job sets.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.h"
#include "sim/dover.h"
#include "sim/edf.h"

namespace tsf::sim {
namespace {

using common::Duration;
using common::TimePoint;

// (load percent, seed)
using DynParams = std::tuple<int, std::uint64_t>;

std::vector<DynJob> random_jobs(double load, common::Rng& rng, int count) {
  std::vector<DynJob> jobs;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < count; ++i) {
    t += Duration::from_tu(rng.uniform(0.0, 2.0) * 3.0 / load);
    DynJob j;
    j.name = "j" + std::to_string(i);
    j.release = t;
    j.cost = Duration::from_tu(rng.uniform(0.5, 5.0));
    j.deadline =
        j.release + Duration::from_tu(j.cost.to_tu() * rng.uniform(1.5, 4.0));
    jobs.push_back(std::move(j));
  }
  return jobs;
}

class DynamicPolicyProperties : public ::testing::TestWithParam<DynParams> {
 protected:
  std::vector<DynJob> jobs() const {
    common::Rng rng(std::get<1>(GetParam()));
    return random_jobs(std::get<0>(GetParam()) / 100.0, rng, 60);
  }
};

TEST_P(DynamicPolicyProperties, EdfValueNeverExceedsOffered) {
  const auto set = jobs();
  EdfOptions firm;
  firm.firm = true;
  const auto r = simulate_edf(set, firm);
  EXPECT_LE(r.total_value, total_value(set) + 1e-9);
  EXPECT_GE(r.total_value, 0.0);
}

TEST_P(DynamicPolicyProperties, DOverValueNeverExceedsOffered) {
  const auto set = jobs();
  const auto r = simulate_dover(set);
  EXPECT_LE(r.total_value, total_value(set) + 1e-9);
}

TEST_P(DynamicPolicyProperties, EveryJobAccountedExactlyOnce) {
  const auto set = jobs();
  const auto dover = simulate_dover(set);
  EdfOptions firm;
  firm.firm = true;
  const auto edf = simulate_edf(set, firm);
  for (const auto* r : {&dover, &edf}) {
    ASSERT_EQ(r->outcomes.size(), set.size());
    for (const auto& o : r->outcomes) {
      EXPECT_FALSE(o.completed && o.abandoned) << o.name;
    }
  }
}

TEST_P(DynamicPolicyProperties, CompletedJobsFinishOnOrBeforeDeadline) {
  // D-OVER only accrues value for jobs completed by their deadline; in our
  // implementation a completed job always met it (abandonment happens at
  // the LST otherwise).
  const auto set = jobs();
  const auto r = simulate_dover(set);
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (r.outcomes[i].completed) {
      EXPECT_LE(r.outcomes[i].completion, set[i].deadline)
          << r.outcomes[i].name;
    }
  }
}

TEST_P(DynamicPolicyProperties, UnderloadedSetsCompleteEverything) {
  if (std::get<0>(GetParam()) > 70) GTEST_SKIP() << "overload case";
  const auto set = jobs();
  const auto dover = simulate_dover(set);
  EdfOptions firm;
  firm.firm = true;
  const auto edf = simulate_edf(set, firm);
  // At these loads the deadline factor (>=1.5x cost) keeps both optimal
  // policies miss-free in practice; assert near-complete value.
  EXPECT_GE(edf.total_value, 0.9 * total_value(set));
  EXPECT_GE(dover.total_value, 0.9 * total_value(set));
}

TEST_P(DynamicPolicyProperties, DOverAtLeastMatchesFirmEdfUnderOverload) {
  if (std::get<0>(GetParam()) < 120) GTEST_SKIP() << "not overloaded";
  const auto set = jobs();
  EdfOptions firm;
  firm.firm = true;
  const auto edf = simulate_edf(set, firm);
  const auto dover = simulate_dover(set);
  // The domino effect costs firm EDF real value; D-OVER's early abandonment
  // should never do markedly worse on these uniform-density sets.
  EXPECT_GE(dover.total_value, edf.total_value * 0.9);
}

std::string dyn_name(const ::testing::TestParamInfo<DynParams>& info) {
  return "load" + std::to_string(std::get<0>(info.param)) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, DynamicPolicyProperties,
    ::testing::Combine(::testing::Values(50, 70, 120, 180),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    dyn_name);

}  // namespace
}  // namespace tsf::sim
