// Tests for the dynamic-priority RTSS policies: EDF and D-OVER.
#include <gtest/gtest.h>

#include "sim/dover.h"
#include "sim/edf.h"

namespace tsf::sim {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

DynJob job(const std::string& name, std::int64_t release, std::int64_t cost,
           std::int64_t deadline, double value = 0.0) {
  DynJob j;
  j.name = name;
  j.release = at_tu(release);
  j.cost = tu(cost);
  j.deadline = at_tu(deadline);
  j.value = value;
  return j;
}

TEST(Edf, FeasibleSetAllOnTime) {
  const auto r = simulate_edf({
      job("a", 0, 2, 10),
      job("b", 0, 3, 6),
      job("c", 4, 1, 8),
  });
  EXPECT_EQ(r.missed, 0u);
  for (const auto& o : r.outcomes) {
    EXPECT_TRUE(o.completed) << o.name;
  }
}

TEST(Edf, EarliestDeadlineRunsFirst) {
  const auto r = simulate_edf({
      job("late", 0, 2, 20),
      job("soon", 0, 2, 5),
  });
  EXPECT_EQ(r.outcomes[1].completion, at_tu(2));  // "soon"
  EXPECT_EQ(r.outcomes[0].completion, at_tu(4));
}

TEST(Edf, PreemptsOnUrgentArrival) {
  const auto r = simulate_edf({
      job("long", 0, 6, 20),
      job("urgent", 2, 1, 4),
  });
  EXPECT_EQ(r.outcomes[1].completion, at_tu(3));
  EXPECT_EQ(r.outcomes[0].completion, at_tu(7));
}

TEST(Edf, IdleGapsBridged) {
  const auto r = simulate_edf({
      job("a", 0, 1, 5),
      job("b", 10, 1, 15),
  });
  EXPECT_EQ(r.outcomes[1].completion, at_tu(11));
}

TEST(Edf, SoftModeRecordsMissButCompletes) {
  const auto r = simulate_edf({
      job("a", 0, 4, 2),
  });
  EXPECT_EQ(r.missed, 1u);
  EXPECT_TRUE(r.outcomes[0].completed);
  EXPECT_DOUBLE_EQ(r.outcomes[0].value_obtained, 0.0);
}

TEST(Edf, FirmModeAbandonsAtDeadline) {
  EdfOptions firm;
  firm.firm = true;
  const auto r = simulate_edf({job("a", 0, 4, 2)}, firm);
  EXPECT_EQ(r.missed, 1u);
  EXPECT_FALSE(r.outcomes[0].completed);
  EXPECT_TRUE(r.outcomes[0].abandoned);
}

TEST(Edf, FirmModeDropsHopelessWaiters) {
  EdfOptions firm;
  firm.firm = true;
  // "waiter" expires while "runner" (earlier deadline) occupies the CPU.
  const auto r = simulate_edf(
      {job("runner", 0, 4, 4), job("waiter", 0, 2, 3)}, firm);
  // EDF runs waiter first (deadline 3 < 4): waiter completes at 2, runner
  // at 6 > its deadline 4 -> abandoned at 4.
  EXPECT_TRUE(r.outcomes[1].completed);
  EXPECT_TRUE(r.outcomes[0].abandoned);
}

TEST(Edf, ValueAccounting) {
  const auto r = simulate_edf({
      job("a", 0, 2, 10, 5.0),
      job("b", 0, 2, 12),  // value defaults to cost in tu = 2
  });
  EXPECT_DOUBLE_EQ(r.total_value, 7.0);
}

TEST(DOver, MatchesEdfOnFeasibleSets) {
  const std::vector<DynJob> jobs = {
      job("a", 0, 2, 10),
      job("b", 0, 3, 6),
      job("c", 4, 1, 8),
      job("d", 7, 2, 12),
  };
  const auto edf = simulate_edf(jobs);
  const auto dover = simulate_dover(jobs);
  EXPECT_EQ(dover.missed, 0u);
  EXPECT_DOUBLE_EQ(dover.total_value, total_value(jobs));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(dover.outcomes[i].completed, edf.outcomes[i].completed);
    EXPECT_EQ(dover.outcomes[i].completion, edf.outcomes[i].completion);
  }
}

TEST(DOver, HighValueLatecomerTakesOver) {
  // Two unit-density jobs and one job of enormous value density arriving at
  // its last possible start time: D-OVER must abandon the running work.
  const auto r = simulate_dover({
      job("cheap1", 0, 4, 4, 4.0),
      job("rich", 1, 3, 4, 400.0),
  });
  const auto& rich = r.outcomes[1];
  EXPECT_TRUE(rich.completed);
  EXPECT_EQ(rich.completion, at_tu(4));
  EXPECT_TRUE(r.outcomes[0].abandoned);
  EXPECT_DOUBLE_EQ(r.total_value, 400.0);
}

TEST(DOver, LowValueChallengerAbandonedInstead) {
  const auto r = simulate_dover({
      job("rich", 0, 4, 4, 400.0),
      job("cheap", 1, 3, 4, 4.0),
  });
  EXPECT_TRUE(r.outcomes[0].completed);
  EXPECT_TRUE(r.outcomes[1].abandoned);
  EXPECT_DOUBLE_EQ(r.total_value, 400.0);
}

TEST(DOver, BeatsFirmEdfUnderOverload) {
  // Classic overload: EDF thrashes (domino effect), D-OVER salvages value.
  std::vector<DynJob> jobs;
  for (int i = 0; i < 6; ++i) {
    // Overlapping jobs, each 3 long with deadline release+4, arriving
    // every 2: load 1.5.
    jobs.push_back(job("j" + std::to_string(i), 2 * i, 3, 2 * i + 4));
  }
  EdfOptions firm;
  firm.firm = true;
  const auto edf = simulate_edf(jobs, firm);
  const auto dover = simulate_dover(jobs);
  EXPECT_GE(dover.total_value, edf.total_value);
  EXPECT_GT(dover.total_value, 0.0);
}

TEST(DOver, DeterministicAcrossRuns) {
  std::vector<DynJob> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(job("j" + std::to_string(i), i, 2 + (i % 3), i + 5,
                       1.0 + i));
  }
  const auto r1 = simulate_dover(jobs);
  const auto r2 = simulate_dover(jobs);
  EXPECT_DOUBLE_EQ(r1.total_value, r2.total_value);
  EXPECT_EQ(r1.missed, r2.missed);
}

TEST(DOver, EmptyJobSet) {
  const auto r = simulate_dover({});
  EXPECT_EQ(r.outcomes.size(), 0u);
  EXPECT_DOUBLE_EQ(r.total_value, 0.0);
}

}  // namespace
}  // namespace tsf::sim
