#include "common/trace.h"

#include <gtest/gtest.h>

namespace tsf::common {
namespace {

TimePoint at(std::int64_t tu) {
  return TimePoint::origin() + Duration::time_units(tu);
}

TEST(Timeline, BusyIntervalsPairStartsWithStops) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "a");
  t.record(at(2), TraceKind::kPreempt, "a");
  t.record(at(5), TraceKind::kResume, "a");
  t.record(at(7), TraceKind::kComplete, "a");
  const auto iv = t.busy_intervals("a");
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{at(0), at(2)}));
  EXPECT_EQ(iv[1], (Interval{at(5), at(7)}));
}

TEST(Timeline, ZeroLengthIntervalsDropped) {
  Timeline t;
  t.record(at(3), TraceKind::kResume, "a");
  t.record(at(3), TraceKind::kPreempt, "a");
  EXPECT_TRUE(t.busy_intervals("a").empty());
}

TEST(Timeline, IntervalsIsolatedPerEntity) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "a");
  t.record(at(1), TraceKind::kResume, "b");
  t.record(at(2), TraceKind::kPreempt, "b");
  t.record(at(4), TraceKind::kAbort, "a");
  ASSERT_EQ(t.busy_intervals("a").size(), 1u);
  ASSERT_EQ(t.busy_intervals("b").size(), 1u);
  EXPECT_EQ(t.busy_intervals("a")[0], (Interval{at(0), at(4)}));
}

TEST(Timeline, MarksFilterByKindAndEntity) {
  Timeline t;
  t.record(at(1), TraceKind::kRelease, "x");
  t.record(at(2), TraceKind::kFire, "x");
  t.record(at(3), TraceKind::kRelease, "y");
  t.record(at(4), TraceKind::kRelease, "x");
  const auto marks = t.marks("x", TraceKind::kRelease);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks[0], at(1));
  EXPECT_EQ(marks[1], at(4));
}

TEST(Timeline, EntitiesInFirstAppearanceOrder) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "b");
  t.record(at(1), TraceKind::kResume, "a");
  t.record(at(2), TraceKind::kPreempt, "b");
  const auto e = t.entities();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], "b");
  EXPECT_EQ(e[1], "a");
}

TEST(Timeline, CsvHasHeaderAndRows) {
  Timeline t;
  t.record(at(1), TraceKind::kRelease, "x", 42, "note");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("ticks,kind,who,value,note"), std::string::npos);
  EXPECT_NE(csv.find("1000,release,x,42,note"), std::string::npos);
}

TEST(Timeline, CsvQuotesAwkwardFieldsAndRoundTrips) {
  Timeline t;
  t.record(at(1), TraceKind::kRelease, "x", 1, "plain");
  t.record(at(2), TraceKind::kFire, "a,b", 2, "comma, note");
  t.record(at(3), TraceKind::kComplete, "x", 3, "say \"hi\"");
  t.record(at(4), TraceKind::kCapacity, "x", 4, "two\nlines");
  const std::string csv = t.to_csv();
  // Plain fields stay unquoted (historical format), awkward ones are
  // RFC-4180 quoted with '"' doubled.
  EXPECT_NE(csv.find("1000,release,x,1,plain"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"two\nlines\""), std::string::npos) << csv;

  Timeline back;
  std::string error;
  ASSERT_TRUE(timeline_from_csv(csv, &back, &error)) << error;
  EXPECT_EQ(fingerprint(back), fingerprint(t));
  ASSERT_EQ(back.records().size(), 4u);
  EXPECT_EQ(back.records()[1].who, "a,b");
  EXPECT_EQ(back.records()[3].note, "two\nlines");
}

TEST(Timeline, CsvParserRejectsMalformedRows) {
  Timeline out;
  std::string error;
  EXPECT_FALSE(timeline_from_csv("no header here", &out, &error));
  EXPECT_FALSE(timeline_from_csv(
      "ticks,kind,who,value,note\n1000,notakind,x,0,\n", &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Gantt, RendersBusyCellsAndReleases) {
  Timeline t;
  t.record(at(0), TraceKind::kRelease, "a");
  t.record(at(1), TraceKind::kResume, "a");
  t.record(at(3), TraceKind::kPreempt, "a");
  GanttOptions opt;
  opt.cell = Duration::time_units(1);
  opt.end = at(6);
  const std::string chart = render_gantt(t, {"a"}, opt);
  // Row: release mark at cell 0, busy cells 1-2.
  EXPECT_NE(chart.find("a     ^##..."), std::string::npos) << chart;
}

TEST(Gantt, IntervalTouchingCellBoundaryDoesNotBleed) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "a");
  t.record(at(2), TraceKind::kPreempt, "a");
  GanttOptions opt;
  opt.cell = Duration::time_units(1);
  opt.end = at(4);
  opt.show_releases = false;
  const std::string chart = render_gantt(t, {"a"}, opt);
  EXPECT_NE(chart.find("a     ##.."), std::string::npos) << chart;
}

TEST(Gantt, ReleaseDuringBusyCellMarkedAtSign) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "a");
  t.record(at(4), TraceKind::kPreempt, "a");
  t.record(at(2), TraceKind::kRelease, "a");
  GanttOptions opt;
  opt.cell = Duration::time_units(1);
  opt.end = at(4);
  const std::string chart = render_gantt(t, {"a"}, opt);
  EXPECT_NE(chart.find("##@#"), std::string::npos) << chart;
}

TEST(TraceKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(TraceKind::kRelease), "release");
  EXPECT_STREQ(to_string(TraceKind::kAbort), "abort");
  EXPECT_STREQ(to_string(TraceKind::kReplenish), "replenish");
}

}  // namespace
}  // namespace tsf::common
