#include "common/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tsf::common {
namespace {

TimePoint at(std::int64_t t) { return TimePoint::at_ticks(t); }

TEST(EventQueue, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.next_time().is_never());
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(at(7), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeTracksEarliestLiveEvent) {
  EventQueue q;
  auto h = q.schedule(at(5), [] {});
  q.schedule(at(9), [] {});
  EXPECT_EQ(q.next_time(), at(5));
  h.cancel();
  EXPECT_EQ(q.next_time(), at(9));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(at(1), [&] { ran = true; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, HandleInactiveAfterFire) {
  EventQueue q;
  auto h = q.schedule(at(1), [] {});
  q.pop_and_run();
  EXPECT_FALSE(h.active());
  h.cancel();  // harmless after firing
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventQueue::Handle h;
  EXPECT_FALSE(h.active());
  h.cancel();  // no-op
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1), [&] {
    order.push_back(1);
    q.schedule(at(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbackMayCancelLaterEvent) {
  EventQueue q;
  bool ran = false;
  EventQueue::Handle later;
  later = q.schedule(at(5), [&] { ran = true; });
  q.schedule(at(1), [&] { later.cancel(); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, ScheduledCountGrowsMonotonically) {
  EventQueue q;
  q.schedule(at(1), [] {});
  auto h = q.schedule(at(2), [] {});
  h.cancel();
  EXPECT_EQ(q.scheduled_count(), 2u);
}

}  // namespace
}  // namespace tsf::common
