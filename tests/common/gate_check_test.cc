// The bench_gate tolerance rule (common/gate_check.h): direction-aware,
// magnitude-relative margins, and the zero-baseline absolute-bound
// fallback in *both* directions — regression coverage for the degenerate
// checks naive baseline * (1 ± tolerance) arithmetic produces on zero and
// negative baselines.
#include <gtest/gtest.h>

#include "common/gate_check.h"

namespace tsf::common {
namespace {

TEST(GateCheck, LowerIsBetterWithinAndBeyondTolerance) {
  EXPECT_FALSE(gate_check(10.0, 10.0, 0.05, false).regressed);
  EXPECT_FALSE(gate_check(10.0, 10.5, 0.05, false).regressed);  // at the limit
  EXPECT_TRUE(gate_check(10.0, 10.6, 0.05, false).regressed);
  EXPECT_FALSE(gate_check(10.0, 2.0, 0.05, false).regressed);  // improvement
}

TEST(GateCheck, HigherIsBetterWithinAndBeyondTolerance) {
  EXPECT_FALSE(gate_check(10.0, 10.0, 0.05, true).regressed);
  EXPECT_FALSE(gate_check(10.0, 9.5, 0.05, true).regressed);  // at the limit
  EXPECT_TRUE(gate_check(10.0, 9.4, 0.05, true).regressed);
  EXPECT_FALSE(gate_check(10.0, 40.0, 0.05, true).regressed);  // improvement
}

TEST(GateCheck, ZeroBaselineUsesAbsoluteBoundInBothDirections) {
  // A latency cell that legitimately measures 0: the relative margin
  // degenerates (0 * tolerance == 0), so the tolerance acts absolutely.
  EXPECT_FALSE(gate_check(0.0, 0.0, 0.05, false).regressed);
  EXPECT_FALSE(gate_check(0.0, 0.05, 0.05, false).regressed);
  EXPECT_TRUE(gate_check(0.0, 0.06, 0.05, false).regressed);
  // Mirrored for higher-is-better: a zero count may dip to -tolerance
  // (it can't in practice, but the bound is defined, not degenerate).
  EXPECT_FALSE(gate_check(0.0, 0.0, 0.05, true).regressed);
  EXPECT_FALSE(gate_check(0.0, -0.05, 0.05, true).regressed);
  EXPECT_TRUE(gate_check(0.0, -0.06, 0.05, true).regressed);
  EXPECT_FALSE(gate_check(0.0, 3.0, 0.05, true).regressed);
}

TEST(GateCheck, NegativeBaselineKeepsASaneBand) {
  // baseline * (1 + tol) on a negative lower-is-better baseline used to
  // put the limit *below* the baseline, flagging even an identical rerun.
  EXPECT_FALSE(gate_check(-10.0, -10.0, 0.05, false).regressed);
  EXPECT_FALSE(gate_check(-10.0, -9.5, 0.05, false).regressed);
  EXPECT_TRUE(gate_check(-10.0, -9.4, 0.05, false).regressed);
  EXPECT_FALSE(gate_check(-10.0, -10.0, 0.05, true).regressed);
  EXPECT_FALSE(gate_check(-10.0, -10.5, 0.05, true).regressed);
  EXPECT_TRUE(gate_check(-10.0, -10.6, 0.05, true).regressed);
}

TEST(GateCheck, LimitIsReportedForTheMessage) {
  EXPECT_DOUBLE_EQ(gate_check(10.0, 11.0, 0.05, false).limit, 10.5);
  EXPECT_DOUBLE_EQ(gate_check(10.0, 9.0, 0.05, true).limit, 9.5);
  EXPECT_DOUBLE_EQ(gate_check(0.0, 1.0, 0.05, false).limit, 0.05);
  EXPECT_DOUBLE_EQ(gate_check(0.0, -1.0, 0.05, true).limit, -0.05);
}

}  // namespace
}  // namespace tsf::common
