// tsf-trace/1 round trips: records, interned entities, retract tombstones,
// and malformed-stream rejection.
#include "common/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/trace.h"

namespace tsf::common {
namespace {

TimePoint at(std::int64_t tu) {
  return TimePoint::origin() + Duration::time_units(tu);
}

Timeline sample_timeline() {
  Timeline t;
  t.record(at(0), TraceKind::kRelease, "a");
  t.record(at(0), TraceKind::kStart, "a");
  t.record(at(2), TraceKind::kComplete, "a", 5, "note with spaces");
  t.record(at(2), TraceKind::kRelease, "b");
  t.record(at(9), TraceKind::kComplete, "b", -3, "");
  return t;
}

TEST(TraceIo, WriteReadRoundTripsFingerprint) {
  const Timeline t = sample_timeline();
  std::ostringstream out;
  write_trace(out, t);
  std::istringstream in(out.str());
  Timeline back;
  std::string error;
  ASSERT_TRUE(read_trace(in, &back, &error)) << error;
  EXPECT_EQ(fingerprint(back), fingerprint(t));
  EXPECT_EQ(back.records().size(), t.records().size());
  EXPECT_EQ(back.records()[2].note, "note with spaces");
}

TEST(TraceIo, StreamingWriterMatchesConvenienceWriter) {
  const Timeline t = sample_timeline();
  std::ostringstream a, b;
  write_trace(a, t);
  BinaryTraceWriter writer(b);
  for (const auto& r : t.records()) {
    writer.record(r.at, r.kind, r.who, r.value, r.note);
  }
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(writer.records_written(), t.records().size());
  EXPECT_EQ(writer.bytes_written(), b.str().size());
}

TEST(TraceIo, TombstoneReplaysAsRetract) {
  std::ostringstream out;
  BinaryTraceWriter writer(out);
  writer.record(at(0), TraceKind::kResume, "task");
  writer.record(at(4), TraceKind::kPreempt, "task");
  EXPECT_TRUE(writer.retract(at(4), TraceKind::kPreempt, "task"));
  writer.record(at(6), TraceKind::kPreempt, "task");

  Timeline expected;
  expected.record(at(0), TraceKind::kResume, "task");
  expected.record(at(6), TraceKind::kPreempt, "task");

  std::istringstream in(out.str());
  Timeline back;
  std::string error;
  ASSERT_TRUE(read_trace(in, &back, &error)) << error;
  EXPECT_EQ(fingerprint(back), fingerprint(expected));
}

TEST(TraceIo, EmptyStreamIsValid) {
  std::ostringstream out;
  BinaryTraceWriter writer(out);  // writes the magic only
  std::istringstream in(out.str());
  Timeline back;
  std::string error;
  EXPECT_TRUE(read_trace(in, &back, &error)) << error;
  EXPECT_TRUE(back.records().empty());
}

TEST(TraceIo, RejectsBadMagic) {
  std::istringstream in("nottrc1\n");
  Timeline t;
  std::string error;
  EXPECT_FALSE(read_trace(in, &t, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceIo, RejectsTruncatedEntry) {
  const Timeline t = sample_timeline();
  std::ostringstream out;
  write_trace(out, t);
  const std::string whole = out.str();
  std::istringstream in(whole.substr(0, whole.size() - 1));
  Timeline back;
  std::string error;
  EXPECT_FALSE(read_trace(in, &back, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tsf::common
