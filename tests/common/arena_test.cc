// The allocation substrate of the exec hot path: size-class freelist
// recycling, epoch reset, over-aligned blocks, and a 200-seed property fuzz
// (mirroring the mailbox fuzz style) checking that every outstanding block
// stays writable and disjoint under randomized allocate/release churn.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <random>
#include <vector>

namespace tsf::common {
namespace {

TEST(Arena, FreelistReusesReleasedBlockByPointerEquality) {
  Arena arena;
  void* first = arena.allocate(48, 8);  // 64-byte class
  arena.deallocate(first, 48, 8);
  // Same class: the freelist must hand the identical block back.
  void* again = arena.allocate(40, 8);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.freelist_hits(), 1u);
  EXPECT_EQ(arena.fresh_blocks(), 1u);
}

TEST(Arena, DistinctClassesDoNotShareFreelists) {
  Arena arena;
  void* small = arena.allocate(16, 8);
  arena.deallocate(small, 16, 8);
  // A 1KiB request must not be served from the released 16-byte block.
  void* big = arena.allocate(1024, 8);
  EXPECT_NE(small, big);
  EXPECT_EQ(arena.freelist_hits(), 0u);
}

TEST(Arena, SteadyStateChurnStopsAllocatingSlabs) {
  Arena arena;
  // Warm up: allocate and release one working set.
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(arena.allocate(128, 8));
  for (void* p : blocks) arena.deallocate(p, 128, 8);
  const std::size_t warm_slabs = arena.slab_count();
  const std::uint64_t warm_fresh = arena.fresh_blocks();
  // Steady state: the same working set cycles through the freelist.
  for (int round = 0; round < 100; ++round) {
    blocks.clear();
    for (int i = 0; i < 64; ++i) blocks.push_back(arena.allocate(128, 8));
    for (void* p : blocks) arena.deallocate(p, 128, 8);
  }
  EXPECT_EQ(arena.slab_count(), warm_slabs);
  EXPECT_EQ(arena.fresh_blocks(), warm_fresh);
}

TEST(Arena, ResetRecyclesSlabsBetweenEpochs) {
  Arena arena(4096);
  for (int epoch = 0; epoch < 50; ++epoch) {
    // Touch every block: a reset that failed to rewind would run off the
    // slab; a reset that freed slabs would churn bytes_reserved.
    for (int i = 0; i < 16; ++i) {
      void* p = arena.allocate(192, 8);
      std::memset(p, epoch & 0xff, 192);
    }
    arena.reset();
  }
  // The whole 50-epoch run fits in the slabs the first epoch reserved.
  const std::size_t after_first = arena.bytes_reserved();
  arena.reset();
  for (int i = 0; i < 16; ++i) arena.allocate(192, 8);
  EXPECT_EQ(arena.bytes_reserved(), after_first);
}

TEST(Arena, OverAlignedBlocksAreAlignedAndRecycleInTheirOwnClass) {
  struct alignas(64) Cacheline {
    unsigned char bytes[64];
  };
  Arena arena;
  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) {
    void* p = arena.allocate(sizeof(Cacheline), alignof(Cacheline));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << i;
    blocks.push_back(p);
  }
  // A 16-byte over-aligned request is keyed by max(bytes, align): releasing
  // it must feed the 64-byte class, not the 16-byte one.
  void* small_overaligned = arena.allocate(16, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(small_overaligned) % 64, 0u);
  arena.deallocate(small_overaligned, 16, 64);
  void* reused = arena.allocate(sizeof(Cacheline), alignof(Cacheline));
  EXPECT_EQ(reused, small_overaligned);
  for (void* p : blocks) arena.deallocate(p, sizeof(Cacheline), 64);
}

TEST(Arena, JumboBlocksAboveTheLargestClassStillRecycle) {
  Arena arena;
  const std::size_t jumbo = (std::size_t{1} << 20) + 1;  // above kMaxClassBytes
  void* p = arena.allocate(jumbo, 8);
  std::memset(p, 0xab, jumbo);
  arena.deallocate(p, jumbo, 8);
  void* q = arena.allocate(jumbo, 8);
  EXPECT_EQ(p, q);
  EXPECT_EQ(arena.freelist_hits(), 1u);
}

TEST(ArenaAllocator, DequeDrawsFromArenaAndSurvivesEpochReuse) {
  Arena arena;
  using Deque = std::deque<std::int64_t, ArenaAllocator<std::int64_t>>;
  {
    Deque q{ArenaAllocator<std::int64_t>(&arena)};
    for (std::int64_t i = 0; i < 1000; ++i) q.push_back(i);
    for (std::int64_t i = 0; i < 1000; ++i) {
      ASSERT_EQ(q.front(), i);
      q.pop_front();
    }
  }
  EXPECT_GT(arena.fresh_blocks(), 0u);
  const std::uint64_t fresh = arena.fresh_blocks();
  // A second full cycle re-serves the chunk blocks from the freelists.
  {
    Deque q{ArenaAllocator<std::int64_t>(&arena)};
    for (std::int64_t i = 0; i < 1000; ++i) q.push_back(i);
  }
  EXPECT_EQ(arena.fresh_blocks(), fresh);
}

TEST(ArenaAllocator, NullArenaFallsBackToTheHeap) {
  std::deque<int, ArenaAllocator<int>> q;  // default: no arena
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.back(), 99);
}

TEST(ArenaAllocator, EqualityFollowsTheArena) {
  Arena a, b;
  ArenaAllocator<int> on_a(&a), on_a2(&a), on_b(&b), none;
  EXPECT_EQ(on_a, on_a2);
  EXPECT_NE(on_a, on_b);
  EXPECT_NE(on_a, none);
  // Rebinding preserves the arena.
  ArenaAllocator<double> rebound(on_a);
  EXPECT_EQ(rebound.arena(), &a);
}

// 200-seed property fuzz (mailbox-fuzz style): random allocate/release
// churn over mixed size classes. Every live block carries a seed-derived
// fill pattern; corruption of any byte means two blocks overlapped or a
// freelist handed out a live block.
TEST(ArenaProperty, TwoHundredRandomizedChurnRounds) {
  struct Block {
    void* p;
    std::size_t bytes;
    std::size_t align;
    unsigned char fill;
  };
  for (std::uint32_t seed = 0; seed < 200; ++seed) {
    std::mt19937 rng(seed);
    Arena arena(4096);
    std::vector<Block> live;
    unsigned char next_fill = 1;
    for (int step = 0; step < 300; ++step) {
      const bool release = !live.empty() && rng() % 3 == 0;
      if (release) {
        const std::size_t victim = rng() % live.size();
        Block b = live[victim];
        for (std::size_t i = 0; i < b.bytes; ++i) {
          ASSERT_EQ(static_cast<unsigned char*>(b.p)[i], b.fill)
              << "seed " << seed << " step " << step;
        }
        arena.deallocate(b.p, b.bytes, b.align);
        live[victim] = live.back();
        live.pop_back();
      } else {
        Block b;
        b.bytes = 1 + rng() % 512;
        b.align = std::size_t{1} << (rng() % 7);  // 1..64
        b.fill = next_fill++;
        if (next_fill == 0) next_fill = 1;
        b.p = arena.allocate(b.bytes, b.align);
        ASSERT_EQ(reinterpret_cast<std::uintptr_t>(b.p) % b.align, 0u);
        std::memset(b.p, b.fill, b.bytes);
        live.push_back(b);
      }
    }
    // Everything still alive must still hold its pattern.
    for (const Block& b : live) {
      for (std::size_t i = 0; i < b.bytes; ++i) {
        ASSERT_EQ(static_cast<unsigned char*>(b.p)[i], b.fill)
            << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace tsf::common
