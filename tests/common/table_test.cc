#include "common/table.h"

#include <gtest/gtest.h>

namespace tsf::common {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.add_row({"name", "value"});
  t.add_row({"x", "123456"});
  t.add_row({"longer", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name    value"), std::string::npos) << s;
  EXPECT_NE(s.find("x       123456"), std::string::npos) << s;
  EXPECT_NE(s.find("longer  1"), std::string::npos) << s;
}

TEST(TextTable, HeaderSeparatorPresent) {
  TextTable t;
  t.add_row({"a", "b"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, RaggedRowsTolerated) {
  TextTable t;
  t.add_row({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_FALSE(t.to_string().empty());
}

TEST(FmtFixed, Precision) {
  EXPECT_EQ(fmt_fixed(8.857, 2), "8.86");
  EXPECT_EQ(fmt_fixed(0.0, 2), "0.00");
  EXPECT_EQ(fmt_fixed(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace tsf::common
