#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tsf::common {
namespace {

TEST(Rng, DeterministicStreams) {
  Rng a(1983), b(1983);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng rng(13);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++seen[rng.uniform_u64(8)];
  }
  for (int c : seen) EXPECT_GT(c, 800);  // each bucket near 1000
}

TEST(Rng, UniformI64Inclusive) {
  Rng rng(17);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_i64(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, NormalWithZeroStddevIsConstant) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
  }
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(29);
  for (double lambda : {0.5, 1.0, 2.0, 3.0}) {
    std::uint64_t total = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) total += rng.poisson(lambda);
    EXPECT_NEAR(static_cast<double>(total) / n, lambda, 0.05 * lambda + 0.02)
        << "lambda=" << lambda;
  }
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(1983), b(1983);
  Rng as = a.split(), bs = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(as.next_u64(), bs.next_u64());
  }
  // The parent stream is unaffected by how much the child consumed.
  Rng c(1983);
  (void)c.split();
  EXPECT_EQ(a.next_u64(), c.next_u64());
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace tsf::common
