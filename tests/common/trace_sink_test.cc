// TeeSink fan-out and the streaming fingerprint's equivalence to
// fingerprint(Timeline), including the VM's retract-at-current-instant path.
#include "common/trace_sink.h"

#include <gtest/gtest.h>

#include "common/trace.h"

namespace tsf::common {
namespace {

TimePoint at(std::int64_t tu) {
  return TimePoint::origin() + Duration::time_units(tu);
}

TEST(TeeSink, FansOutRecordsAndRetractions) {
  Timeline a, b;
  TeeSink tee;
  tee.add(&a);
  tee.add(nullptr);  // ignored, not dereferenced
  tee.add(&b);
  tee.record(at(1), TraceKind::kRelease, "x", 7, "n");
  tee.record(at(2), TraceKind::kPreempt, "x");
  EXPECT_TRUE(tee.retract(at(2), TraceKind::kPreempt, "x"));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  ASSERT_EQ(a.records().size(), 1u);
  EXPECT_EQ(a.records()[0].note, "n");
}

TEST(StreamingFingerprint, MatchesMaterializedFingerprint) {
  Timeline t;
  StreamingFingerprint s;
  const auto emit = [&](TimePoint when, TraceKind kind, const char* who,
                        std::int64_t value, const char* note) {
    t.record(when, kind, who, value, note);
    s.record(when, kind, who, value, note);
  };
  emit(at(0), TraceKind::kRelease, "a", 0, "");
  emit(at(0), TraceKind::kStart, "a", 0, "");
  emit(at(3), TraceKind::kComplete, "a", 1, "served");
  emit(at(3), TraceKind::kRelease, "b", 0, "");
  emit(at(5), TraceKind::kComplete, "b", -2, "");
  EXPECT_EQ(s.digest(), fingerprint(t));
  EXPECT_EQ(s.records(), t.records().size());
}

TEST(StreamingFingerprint, HonoursRetractionOfPendingInstant) {
  // The VM's horizon-pause pattern: a provisional kPreempt at the current
  // instant is retracted when the run resumes and re-recorded later.
  Timeline t;
  StreamingFingerprint s;
  for (TraceSink* sink :
       {static_cast<TraceSink*>(&t), static_cast<TraceSink*>(&s)}) {
    sink->record(at(0), TraceKind::kResume, "task");
    sink->record(at(4), TraceKind::kPreempt, "task");
    EXPECT_TRUE(sink->retract(at(4), TraceKind::kPreempt, "task"));
    sink->record(at(6), TraceKind::kPreempt, "task");
  }
  EXPECT_EQ(s.digest(), fingerprint(t));
}

TEST(StreamingFingerprint, RetractionOfFoldedInstantRefused) {
  StreamingFingerprint s;
  s.record(at(1), TraceKind::kRelease, "x");
  s.record(at(5), TraceKind::kStart, "x");  // folds the at(1) instant
  EXPECT_FALSE(s.retract(at(1), TraceKind::kRelease, "x"));
}

TEST(StreamingFingerprint, DigestIsIdempotentMidStream) {
  StreamingFingerprint s;
  s.record(at(1), TraceKind::kRelease, "x");
  const auto d1 = s.digest();
  EXPECT_EQ(d1, s.digest());  // must not consume the pending instant
  s.record(at(2), TraceKind::kComplete, "x");
  StreamingFingerprint fresh;
  fresh.record(at(1), TraceKind::kRelease, "x");
  fresh.record(at(2), TraceKind::kComplete, "x");
  EXPECT_EQ(s.digest(), fresh.digest());
}

}  // namespace
}  // namespace tsf::common
