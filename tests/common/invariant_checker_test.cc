// Mutation tests for the forbidden-behavior checker: each test seeds a
// deliberately broken record stream (or ledger) and asserts the checker
// FAILS with the right violation name — proving the machine checks in
// FORBIDDEN_BEHAVIOR_CATALOG.md are not vacuously green. The clean-stream
// test pins the other direction: a conforming run produces zero violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/invariant_checker.h"

namespace tsf::common {
namespace {

TimePoint at_tu(double tu) {
  return TimePoint::origin() + Duration::from_tu(tu);
}

bool has_violation(const std::vector<InvariantChecker::Violation>& violations,
                   std::string_view name) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const InvariantChecker::Violation& v) {
                       return v.name == name;
                     });
}

// A conforming overload run: one job admitted and completed in deadline,
// one job shed with a matching ledger entry, one soft job served late.
TEST(InvariantChecker, CleanStreamProducesNoViolations) {
  InvariantChecker checker;
  checker.add_job("keep", 6000);
  checker.add_job("drop", 6000);
  checker.add_job("soft", 0);

  checker.record(at_tu(1), TraceKind::kAdmit, "keep", 1000);
  checker.record(at_tu(2), TraceKind::kShed, "drop", 1500, "overload");
  checker.note_shed_ledger(0, "drop", 1500, /*takeover=*/false);
  checker.record(at_tu(4), TraceKind::kComplete, "keep", 1000);
  checker.record(at_tu(9), TraceKind::kComplete, "soft", 500);

  EXPECT_TRUE(checker.finish().empty());
}

TEST(InvariantChecker, ServeAfterShedIsCaught) {
  InvariantChecker checker;
  checker.add_job("zombie", 6000);

  checker.record(at_tu(1), TraceKind::kShed, "zombie", 1000, "overload");
  checker.note_shed_ledger(0, "zombie", 1000, /*takeover=*/false);
  // The forbidden behavior: the job completes after it was dropped.
  checker.record(at_tu(3), TraceKind::kComplete, "zombie", 1000);

  const auto violations = checker.finish();
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(has_violation(violations, InvariantChecker::kServeAfterShed));
}

TEST(InvariantChecker, SheddingAdmittedWorkIsCaught) {
  InvariantChecker checker;
  checker.add_job("vip", 6000);

  checker.record(at_tu(1), TraceKind::kAdmit, "vip", 1000);
  // The forbidden behavior: shedding a job in the privileged set.
  checker.record(at_tu(2), TraceKind::kShed, "vip", 1000, "overload");
  checker.note_shed_ledger(0, "vip", 1000, /*takeover=*/false);

  const auto violations = checker.finish();
  EXPECT_TRUE(has_violation(violations, InvariantChecker::kShedAdmittedWork));
}

TEST(InvariantChecker, DemotedWorkMayBeShedWithoutViolation) {
  InvariantChecker checker;
  checker.add_job("demoted", 6000);

  checker.record(at_tu(1), TraceKind::kAdmit, "demoted", 1000);
  checker.record(at_tu(2), TraceKind::kDemote, "demoted", 1000);
  checker.record(at_tu(3), TraceKind::kShed, "demoted", 1000, "lst");
  checker.note_shed_ledger(0, "demoted", 1000, /*takeover=*/false);

  EXPECT_FALSE(has_violation(checker.finish(),
                             InvariantChecker::kShedAdmittedWork));
}

TEST(InvariantChecker, ShedWithoutLedgerEntryIsCaught) {
  InvariantChecker checker;
  checker.add_job("lost", 6000);

  checker.record(at_tu(1), TraceKind::kShed, "lost", 1000, "overload");
  // No note_shed_ledger: the trace says shed, the ledger never heard of it.

  const auto violations = checker.finish();
  EXPECT_TRUE(
      has_violation(violations, InvariantChecker::kShedLedgerMismatch));
}

TEST(InvariantChecker, LedgerEntryWithoutShedRecordIsCaught) {
  InvariantChecker checker;
  checker.add_job("phantom", 6000);

  // The ledger claims a shed the trace never shows.
  checker.note_shed_ledger(0, "phantom", 1000, /*takeover=*/false);

  const auto violations = checker.finish();
  EXPECT_TRUE(
      has_violation(violations, InvariantChecker::kShedLedgerMismatch));
}

TEST(InvariantChecker, DoubleShedIsCaught) {
  InvariantChecker checker;
  checker.add_job("twice", 6000);

  checker.record(at_tu(1), TraceKind::kShed, "twice", 1000, "overload");
  checker.note_shed_ledger(0, "twice", 1000, /*takeover=*/false);
  checker.record(at_tu(2), TraceKind::kShed, "twice", 1000, "overload");
  checker.note_shed_ledger(0, "twice", 1000, /*takeover=*/false);

  const auto violations = checker.finish();
  EXPECT_TRUE(
      has_violation(violations, InvariantChecker::kShedLedgerMismatch));
}

TEST(InvariantChecker, AdmittedDeadlineMissWhileSheddableServedIsCaught) {
  InvariantChecker checker;
  checker.add_job("vip", 6000);    // firm, deadline = release + 6tu
  checker.add_job("filler", 6000);  // firm, never admitted

  checker.record(at_tu(1), TraceKind::kAdmit, "vip", 1000);
  // The forbidden behavior: the core serves non-admitted (sheddable) firm
  // work to completion inside vip's scheduling window...
  checker.record(at_tu(3), TraceKind::kComplete, "filler", 2000);
  // ...and vip's deadline (t = 7tu) passes without a completion.
  const auto violations = checker.finish();
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(
      has_violation(violations, InvariantChecker::kAdmittedDeadlineMiss));
}

TEST(InvariantChecker, AdmittedDeadlineMissWithIdleCoresIsNotFlagged) {
  // Same miss, but no sheddable work was served in the window: an admitted
  // job missing on an underestimated cost is a policy outcome, not a
  // forbidden behavior.
  InvariantChecker checker;
  checker.add_job("vip", 6000);

  checker.record(at_tu(1), TraceKind::kAdmit, "vip", 1000);
  EXPECT_TRUE(checker.finish().empty());
}

TEST(InvariantChecker, SheddableServedOnOtherCoreIsNotFlagged) {
  // The deadline-miss check is per core: a different core serving its own
  // sheddable backlog does not displace this core's admitted job.
  InvariantChecker checker;
  checker.add_job("vip", 6000);
  checker.add_job("filler", 6000);

  checker.set_core(0);
  checker.record(at_tu(1), TraceKind::kAdmit, "vip", 1000);
  checker.set_core(1);
  checker.record(at_tu(3), TraceKind::kComplete, "filler", 2000);

  EXPECT_TRUE(checker.finish().empty());
}

TEST(InvariantChecker, UnregisteredEntitiesAreIgnored) {
  InvariantChecker checker;
  checker.add_job("real", 6000);

  // Periodic tasks and server fibers share the trace; none of their
  // records may leak into the firm-job bookkeeping.
  checker.record(at_tu(1), TraceKind::kShed, "tau0", 0, "not-a-job");
  checker.record(at_tu(2), TraceKind::kComplete, "server", 0);
  checker.record(at_tu(3), TraceKind::kComplete, "real", 1000);

  EXPECT_TRUE(checker.finish().empty());
}

TEST(InvariantChecker, CoreSinksTagTheRightCore) {
  InvariantChecker checker;
  checker.add_job("a", 6000);

  TraceSink* c0 = checker.core_sink(0);
  TraceSink* c1 = checker.core_sink(1);
  c0->record(at_tu(1), TraceKind::kShed, "a", 1000, "overload");
  checker.note_shed_ledger(1, "a", 1000, /*takeover=*/false);
  // Wrong core in the ledger: core 0 shed without an entry AND core 1 has
  // an entry without a shed — two mismatches.
  const auto violations = checker.finish();
  EXPECT_EQ(violations.size(), 2u);
  EXPECT_TRUE(
      has_violation(violations, InvariantChecker::kShedLedgerMismatch));
  (void)c1;
}

}  // namespace
}  // namespace tsf::common
