// The runtime-counter registry and its tsf-metrics/1 JSON form.
#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <string>

namespace tsf::common {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add_counter("a");
  m.add_counter("a", 4);
  m.add_counter("b", 0);
  EXPECT_EQ(m.counter("a"), 5u);
  EXPECT_EQ(m.counter("b"), 0u);
  EXPECT_EQ(m.counter("missing"), 0u);
  EXPECT_FALSE(m.empty());
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry m;
  m.set_gauge("u", 0.25);
  m.set_gauge("u", 0.75);
  EXPECT_EQ(m.gauge("u"), 0.75);
  EXPECT_EQ(m.gauge("missing"), 0.0);
}

TEST(MetricsRegistry, HistogramTracksDistribution) {
  MetricsRegistry m;
  EXPECT_EQ(m.histogram("lat"), nullptr);
  for (int i = 1; i <= 100; ++i) m.observe("lat", static_cast<double>(i));
  const LogSketch* sketch = m.histogram("lat");
  ASSERT_NE(sketch, nullptr);
  EXPECT_EQ(sketch->count(), 100u);
  EXPECT_NEAR(sketch->p50(), 50.0, 50.0 * 0.0101);
  EXPECT_NEAR(sketch->p99(), 99.0, 99.0 * 0.0101);
}

TEST(MetricsRegistry, JsonIsSchemaVersionedAndInsertionOrdered) {
  MetricsRegistry m;
  m.add_counter("zz.first", 3);
  m.add_counter("aa.second", 1);
  m.set_gauge("g", 1.5);
  m.observe("h", 2.0);
  m.observe("h", 4.0);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"schema\": \"tsf-metrics/1\""), std::string::npos)
      << json;
  // First-touch order, not alphabetical: counters stay diffable between
  // deterministic runs.
  EXPECT_LT(json.find("zz.first"), json.find("aa.second"));
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;
}

}  // namespace
}  // namespace tsf::common
