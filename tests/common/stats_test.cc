#include "common/stats.h"

#include <gtest/gtest.h>

namespace tsf::common {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MeanAndExtrema) {
  Accumulator a;
  a.add(2.0);
  a.add(4.0);
  a.add(9.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
}

TEST(Accumulator, SampleVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(Accumulator, SingleSampleVarianceIsZero) {
  Accumulator a;
  a.add(42.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Ratio, UndefinedWhenEmpty) {
  Ratio r;
  EXPECT_FALSE(r.defined());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(Ratio, CountsHits) {
  Ratio r;
  r.add(true);
  r.add(false);
  r.add(true);
  r.add(true);
  EXPECT_TRUE(r.defined());
  EXPECT_EQ(r.numerator(), 3u);
  EXPECT_EQ(r.denominator(), 4u);
  EXPECT_DOUBLE_EQ(r.value(), 0.75);
}

TEST(Ratio, BulkAdd) {
  Ratio r;
  r.add(5, 10);
  r.add(0, 10);
  EXPECT_DOUBLE_EQ(r.value(), 0.25);
}

}  // namespace
}  // namespace tsf::common
