#include "common/stats.h"

#include <gtest/gtest.h>

namespace tsf::common {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MeanAndExtrema) {
  Accumulator a;
  a.add(2.0);
  a.add(4.0);
  a.add(9.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
}

TEST(Accumulator, SampleVariance) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(Accumulator, SingleSampleVarianceIsZero) {
  Accumulator a;
  a.add(42.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Ratio, UndefinedWhenEmpty) {
  Ratio r;
  EXPECT_FALSE(r.defined());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(Ratio, CountsHits) {
  Ratio r;
  r.add(true);
  r.add(false);
  r.add(true);
  r.add(true);
  EXPECT_TRUE(r.defined());
  EXPECT_EQ(r.numerator(), 3u);
  EXPECT_EQ(r.denominator(), 4u);
  EXPECT_DOUBLE_EQ(r.value(), 0.75);
}

TEST(Ratio, BulkAdd) {
  Ratio r;
  r.add(5, 10);
  r.add(0, 10);
  EXPECT_DOUBLE_EQ(r.value(), 0.25);
}

// Regression: sum() used to be reconstructed as mean() * count(), which
// loses mass on large-N mixed-magnitude input (the mean rounds, the
// reconstruction amplifies the rounding by N).
TEST(Accumulator, ExactSumOnMixedMagnitudes) {
  Accumulator a;
  const int kTriples = 100000;
  for (int i = 0; i < kTriples; ++i) {
    a.add(1e15);
    a.add(1.0);
    a.add(-1e15);
  }
  // The big terms cancel exactly; only the 1.0s remain.
  EXPECT_DOUBLE_EQ(a.sum(), static_cast<double>(kTriples));
}

TEST(Accumulator, ExactSumLargeNSmallIncrements) {
  Accumulator a;
  const int kN = 1 << 20;
  for (int i = 0; i < kN; ++i) a.add(0.1);
  // Kahan-compensated: the error stays O(1 ulp) instead of O(N) ulps.
  EXPECT_NEAR(a.sum(), 0.1 * kN, 1e-6);
  long double exact = 0.0L;
  for (int i = 0; i < kN; ++i) exact += 0.1L;
  EXPECT_NEAR(a.sum(), static_cast<double>(exact), 1e-9);
}

TEST(QuantileReservoir, ExactQuantilesWhenUnbounded) {
  QuantileReservoir r;
  for (int i = 100; i >= 1; --i) r.add(static_cast<double>(i));
  EXPECT_TRUE(r.exact());
  EXPECT_DOUBLE_EQ(r.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.p50(), 50.0);
  EXPECT_DOUBLE_EQ(r.p95(), 95.0);
  EXPECT_DOUBLE_EQ(r.p99(), 99.0);
  EXPECT_DOUBLE_EQ(r.quantile(1.0), 100.0);
}

TEST(QuantileReservoir, EmptyIsZero) {
  QuantileReservoir r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.p99(), 0.0);
}

TEST(QuantileReservoir, BoundedReservoirIsDeterministicAndSane) {
  QuantileReservoir a(256), b(256);
  for (int i = 0; i < 100000; ++i) {
    a.add(static_cast<double>(i % 1000));
    b.add(static_cast<double>(i % 1000));
  }
  EXPECT_FALSE(a.exact());
  // Deterministic: two reservoirs fed the same stream agree exactly.
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
  // Sane: the sampled quantiles of uniform(0..999) land near the truth.
  EXPECT_NEAR(a.p50(), 500.0, 150.0);
  EXPECT_GT(a.p99(), 800.0);
}

TEST(QuantileReservoir, InterpolatesNearestRankLikeMetrics) {
  // Mirrors exp::ResponseDistribution's floor-index convention.
  QuantileReservoir r;
  for (int i = 1; i <= 10; ++i) r.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(r.p50(), 5.0);
  EXPECT_DOUBLE_EQ(r.quantile(0.9), 9.0);
}

}  // namespace
}  // namespace tsf::common
