// Mergeable log-bucket quantile sketch: accuracy bound, exact sharded
// merge, and the pipe-protocol text round trip.
#include "common/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tsf::common {
namespace {

// Deterministic xorshift so the suite never depends on library RNG details.
std::uint64_t next(std::uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
}

TEST(LogSketch, QuantilesWithinRelativeAccuracy) {
  LogSketch sketch(0.01);
  std::vector<double> values;
  std::uint64_t s = 42;
  for (int i = 0; i < 20000; ++i) {
    const double x =
        0.001 + static_cast<double>(next(&s) % 1000000) / 997.0;
    values.push_back(x);
    sketch.add(x);
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = exact_quantile(values, q);
    EXPECT_NEAR(sketch.quantile(q), exact, 0.0101 * exact) << "q=" << q;
  }
}

TEST(LogSketch, ShardedMergeIsBitIdenticalToSerial) {
  LogSketch whole(0.01);
  std::vector<LogSketch> parts(4, LogSketch(0.01));
  std::uint64_t s = 7;
  for (int i = 0; i < 5000; ++i) {
    const double x = static_cast<double>(next(&s) % 100000) / 13.0;
    whole.add(x);
    parts[static_cast<std::size_t>(i % 4)].add(x);
  }
  // Merge in a scrambled order; integer bucket addition is commutative.
  LogSketch pooled(0.01);
  for (const int p : {2, 0, 3, 1}) {
    pooled.merge(parts[static_cast<std::size_t>(p)]);
  }
  EXPECT_TRUE(pooled == whole);
  EXPECT_EQ(pooled.encode(), whole.encode());
  EXPECT_EQ(pooled.p99(), whole.p99());  // bitwise, not approximate
}

TEST(LogSketch, EncodeDecodeRoundTrip) {
  LogSketch sketch(0.02);
  sketch.add(0.0);    // zero bucket
  sketch.add(1e-12);  // below kMinValue -> zero bucket too
  sketch.add(3.5);
  sketch.add(700.25);
  LogSketch back;
  ASSERT_TRUE(LogSketch::decode(sketch.encode(), &back));
  EXPECT_TRUE(back == sketch);
  EXPECT_EQ(back.zero_count(), 2u);
  EXPECT_EQ(back.count(), 4u);

  LogSketch empty(0.01), empty_back;
  ASSERT_TRUE(LogSketch::decode(empty.encode(), &empty_back));
  EXPECT_TRUE(empty_back == empty);
}

TEST(LogSketch, ZeroValuesReportZero) {
  LogSketch sketch;
  sketch.add(0.0);
  sketch.add(0.0);
  EXPECT_EQ(sketch.p50(), 0.0);
  EXPECT_EQ(sketch.count(), 2u);
}

TEST(LogSketch, EmptyQuantileIsZero) {
  const LogSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.p99(), 0.0);
}

TEST(LogSketch, DecodeRejectsMalformed) {
  LogSketch out;
  EXPECT_FALSE(LogSketch::decode("", &out));
  EXPECT_FALSE(LogSketch::decode("not a sketch", &out));
  // Bucket counts disagreeing with the recorded total must not decode.
  LogSketch sketch(0.01);
  sketch.add(2.0);
  std::string text = sketch.encode();
  const auto colon = text.rfind(':');
  ASSERT_NE(colon, std::string::npos);
  text.replace(colon + 1, std::string::npos, "3");
  EXPECT_FALSE(LogSketch::decode(text, &out));
}

}  // namespace
}  // namespace tsf::common
