// common/json_writer + common/json_reader: escaping, deterministic number
// formatting, document structure, and write → parse round-trips — the
// properties the sharded harness's byte-identical-JSON promise rests on.
#include <cmath>
#include <cstdlib>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "gtest/gtest.h"

namespace tsf::common {
namespace {

TEST(JsonEscape, BasicAndControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab\rcr"), "line\\nbreak\\ttab\\rcr");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("b\bf\f"), "b\\bf\\f");
  // UTF-8 passes through untouched.
  EXPECT_EQ(json_escape("café"), "café");
}

TEST(JsonEscape, UnescapeInvertsEscape) {
  const std::string tricky[] = {
      "", "plain", "a\"b\\c", "line\nbreak\ttab", std::string("\x01\x02", 2),
      "trailing backslash in data \\", "café", "quote at end\""};
  for (const auto& s : tricky) {
    std::string back;
    ASSERT_TRUE(json_unescape(json_escape(s), &back)) << s;
    EXPECT_EQ(back, s);
  }
}

TEST(JsonEscape, UnescapeHandlesUnicodeEscapes) {
  std::string out;
  ASSERT_TRUE(json_unescape("caf\\u00e9", &out));
  EXPECT_EQ(out, "café");
  ASSERT_TRUE(json_unescape("\\u0041", &out));
  EXPECT_EQ(out, "A");
  ASSERT_TRUE(json_unescape("\\u20ac", &out));  // three-byte UTF-8
  EXPECT_EQ(out, "\xe2\x82\xac");
}

TEST(JsonEscape, UnescapeRejectsMalformedEscapes) {
  std::string out;
  EXPECT_FALSE(json_unescape("dangling\\", &out));
  EXPECT_FALSE(json_unescape("\\q", &out));
  EXPECT_FALSE(json_unescape("\\u12", &out));
  EXPECT_FALSE(json_unescape("\\u12zz", &out));
}

TEST(JsonEscape, UnescapeDecodesSurrogatePairsToAstralCodePoints) {
  std::string out;
  // U+1F600 GRINNING FACE as a \uXXXX\uXXXX UTF-16 surrogate pair must
  // decode to the 4-byte UTF-8 code point, not to two CESU-8 garbage
  // sequences (the round-trip bug for astral characters in spec names).
  ASSERT_TRUE(json_unescape("\\ud83d\\ude00", &out));
  EXPECT_EQ(out, "\xf0\x9f\x98\x80");
  ASSERT_TRUE(json_unescape("x\\uD83D\\uDE00y", &out));  // upper-case hex too
  EXPECT_EQ(out, "x\xf0\x9f\x98\x80y");
  // First and last astral code points.
  ASSERT_TRUE(json_unescape("\\ud800\\udc00", &out));
  EXPECT_EQ(out, "\xf0\x90\x80\x80");
  ASSERT_TRUE(json_unescape("\\udbff\\udfff", &out));
  EXPECT_EQ(out, "\xf4\x8f\xbf\xbf");
}

TEST(JsonEscape, UnescapeRejectsLoneSurrogates) {
  std::string out;
  EXPECT_FALSE(json_unescape("\\ud83d", &out));          // lone high half
  EXPECT_FALSE(json_unescape("\\ud83d tail", &out));     // high + plain text
  EXPECT_FALSE(json_unescape("\\ud83d\\u0041", &out));   // high + BMP escape
  EXPECT_FALSE(json_unescape("\\ud83d\\ud83d", &out));   // high + high
  EXPECT_FALSE(json_unescape("\\ude00", &out));          // lone low half
  EXPECT_FALSE(json_unescape("\\ude00\\ud83d", &out));   // reversed pair
}

TEST(JsonReader, AstralSpecNameRoundTripsThroughWriterAndParser) {
  // A name containing an astral code point survives writer → parser →
  // writer byte-identically (the writer emits raw UTF-8, the parser must
  // hand the same bytes back whether they arrive raw or escaped).
  const std::string name = "set \xf0\x9f\x98\x80 7";
  JsonWriter writer;
  writer.begin_object();
  writer.key("name").value(name);
  writer.end_object();
  const std::string doc = writer.take();

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(json_parse(doc, &parsed, &error)) << error;
  EXPECT_EQ(parsed.find("name")->as_string(), name);

  // The same name arriving as UTF-16 escapes parses to the same bytes…
  JsonValue escaped;
  ASSERT_TRUE(json_parse("{\"name\": \"set \\ud83d\\ude00 7\"}", &escaped,
                         &error))
      << error;
  EXPECT_EQ(escaped.find("name")->as_string(), name);
  // …while a lone surrogate is a clean parse error, not garbage.
  JsonValue bad;
  EXPECT_FALSE(json_parse("{\"name\": \"set \\ud83d 7\"}", &bad, &error));
}

TEST(JsonDouble, ShortestFormRoundTripsExactly) {
  const double values[] = {0.0,    1.0,         0.1,    1.0 / 3.0, 1e-17,
                           1e300,  -2.5,        1983.0, 8.4226905555555558,
                           0.625,  123456789.0, 3.5e-5};
  for (const double x : values) {
    const std::string s = json_double(x);
    const double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(back, x) << s;
  }
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::nan("")), "null");
  EXPECT_EQ(json_double(INFINITY), "null");
}

TEST(JsonWriter, DocumentShape) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("tsf-test/1");
  w.key("count").value(2);
  w.key("items").begin_array();
  w.value(1.5);
  w.begin_object();
  w.key("ok").value(true);
  w.key("note").null();
  w.end_object();
  w.end_array();
  w.key("empty").begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\n"
            "  \"schema\": \"tsf-test/1\",\n"
            "  \"count\": 2,\n"
            "  \"items\": [\n"
            "    1.5,\n"
            "    {\n"
            "      \"ok\": true,\n"
            "      \"note\": null\n"
            "    }\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}\n");
}

TEST(JsonReader, ParsesWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("cell \"a\"\n");
  w.key("aart").value(8.4226905555555558);
  w.key("systems").value(std::uint64_t{10});
  w.key("flags").begin_array();
  w.value(true).value(false).null();
  w.end_array();
  w.end_object();
  const std::string doc = w.take();

  JsonValue v;
  std::string error;
  ASSERT_TRUE(json_parse(doc, &v, &error)) << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->as_string(), "cell \"a\"\n");
  EXPECT_EQ(v.find("aart")->as_number(), 8.4226905555555558);
  EXPECT_EQ(v.find("systems")->as_number(), 10.0);
  const auto& flags = v.find("flags")->as_array();
  ASSERT_EQ(flags.size(), 3u);
  EXPECT_TRUE(flags[0].as_bool());
  EXPECT_FALSE(flags[1].as_bool());
  EXPECT_TRUE(flags[2].is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, MembersPreserveDocumentOrder) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(json_parse(R"({"z": 1, "a": 2, "z": 3})", &v, &error)) << error;
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  // Duplicate keys keep the last occurrence on lookup.
  EXPECT_EQ(v.find("z")->as_number(), 3.0);
}

TEST(JsonReader, ParsesNumbers) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(json_parse("[-0.5, 1e3, 2.5E-2, 1983]", &v, &error)) << error;
  const auto& a = v.as_array();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0].as_number(), -0.5);
  EXPECT_EQ(a[1].as_number(), 1000.0);
  EXPECT_EQ(a[2].as_number(), 0.025);
  EXPECT_EQ(a[3].as_number(), 1983.0);
}

TEST(JsonReader, RejectsMalformedDocuments) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\": }", &v, &error));
  EXPECT_FALSE(json_parse("{\"a\": 1,}", &v, &error));
  EXPECT_FALSE(json_parse("[1 2]", &v, &error));
  EXPECT_FALSE(json_parse("\"unterminated", &v, &error));
  EXPECT_FALSE(json_parse("{\"a\": 1} trailing", &v, &error));
  EXPECT_FALSE(json_parse("tru", &v, &error));
  EXPECT_FALSE(json_parse("{\"bad\\q\": 1}", &v, &error));
  EXPECT_FALSE(json_parse("", &v, &error));
  // Depth bound.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json_parse(deep, &v, &error));
}

}  // namespace
}  // namespace tsf::common
