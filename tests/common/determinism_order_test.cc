// Pins the determinism contract behind the TSF_DETERMINISM_CRITICAL
// annotation on MetricsRegistry::to_json (src/common/metrics_registry.h):
// emitted documents follow first-touch insertion order, never the bucket
// order of the lookup-only unordered index maps. If someone "simplifies"
// the registry to iterate its maps, these tests fail before the static
// audit comment goes stale.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_reader.h"
#include "common/metrics_registry.h"

namespace {

using tsf::common::JsonValue;
using tsf::common::MetricsRegistry;

// Names chosen to collide with no natural ordering: lexicographic order,
// length order and hash order all disagree with first-touch order.
const char* kNames[] = {"zz.last.alphabetically", "a", "m.mid", "b.early",
                        "zz.twin", "c"};

std::vector<std::string> keys_of(const JsonValue& object) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : object.members()) keys.push_back(key);
  return keys;
}

TEST(DeterminismOrder, CountersEmitInFirstTouchOrder) {
  MetricsRegistry registry;
  for (const char* name : kNames) registry.add_counter(name);
  // Re-touching an existing counter must not move it.
  registry.add_counter("m.mid", 5);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(tsf::common::json_parse(registry.to_json(), &doc, &error))
      << error;
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(keys_of(*counters),
            std::vector<std::string>(std::begin(kNames), std::end(kNames)));
}

TEST(DeterminismOrder, GaugesAndHistogramsEmitInFirstTouchOrder) {
  MetricsRegistry registry;
  double v = 0.5;
  for (const char* name : kNames) registry.set_gauge(name, v += 1.0);
  for (const char* name : kNames) registry.observe(name, v += 1.0);
  registry.set_gauge("b.early", -1.0);  // re-touch: order must not change
  registry.observe("zz.twin", 0.25);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(tsf::common::json_parse(registry.to_json(), &doc, &error))
      << error;

  const JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(keys_of(*gauges),
            std::vector<std::string>(std::begin(kNames), std::end(kNames)));

  const JsonValue* histograms = doc.find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_TRUE(histograms->is_array());
  std::vector<std::string> names;
  for (const JsonValue& h : histograms->as_array()) {
    names.push_back(h.find("name")->as_string());
  }
  EXPECT_EQ(names,
            std::vector<std::string>(std::begin(kNames), std::end(kNames)));
}

TEST(DeterminismOrder, DocumentIsByteStableAcrossIdenticalRuns) {
  // The full tsf-metrics/1 document — not just key order — must be
  // byte-identical for identical touch sequences; this is what lets CI
  // diff metrics artifacts across reruns.
  auto build = [] {
    MetricsRegistry registry;
    for (const char* name : kNames) {
      registry.add_counter(name, 3);
      registry.set_gauge(name, 1.25);
      registry.observe(name, 2.5);
      registry.observe(name, 40.0);
    }
    return registry.to_json();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
