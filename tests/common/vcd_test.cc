// VCD export of execution timelines.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/trace_stream.h"

namespace tsf::common {
namespace {

TimePoint at(std::int64_t ticks) { return TimePoint::at_ticks(ticks); }

TEST(Vcd, HeaderDeclaresOneWirePerEntity) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "server");
  t.record(at(5), TraceKind::kPreempt, "server");
  const std::string vcd = to_vcd(t, {"server", "tau1"});
  EXPECT_NE(vcd.find("$timescale 1us $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! server $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 \" tau1 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, TransitionsMatchBusyIntervals) {
  Timeline t;
  t.record(at(100), TraceKind::kResume, "a");
  t.record(at(300), TraceKind::kPreempt, "a");
  const std::string vcd = to_vcd(t, {"a"});
  // Initial zero, rising edge at 100, falling at 300.
  EXPECT_NE(vcd.find("#0\n0!"), std::string::npos);
  EXPECT_NE(vcd.find("#100\n1!"), std::string::npos);
  EXPECT_NE(vcd.find("#300\n0!"), std::string::npos);
}

TEST(Vcd, BackToBackHandoffOrdersFallBeforeRise) {
  // b takes over from a at the same instant: the falling edge of a must be
  // emitted before the rising edge of b under the same timestamp.
  Timeline t;
  t.record(at(0), TraceKind::kResume, "a");
  t.record(at(50), TraceKind::kPreempt, "a");
  t.record(at(50), TraceKind::kResume, "b");
  t.record(at(90), TraceKind::kPreempt, "b");
  const std::string vcd = to_vcd(t, {"a", "b"});
  const auto ts = vcd.find("#50");
  ASSERT_NE(ts, std::string::npos);
  const auto fall = vcd.find("0!", ts);
  const auto rise = vcd.find("1\"", ts);
  ASSERT_NE(fall, std::string::npos);
  ASSERT_NE(rise, std::string::npos);
  EXPECT_LT(fall, rise);
}

TEST(Vcd, ManyEntitiesGetMultiCharIdentifiers) {
  // Identifiers are bijective base-94: the 95th entity widens to two
  // characters instead of walking off the printable range.
  Timeline t;
  std::vector<std::string> rows;
  for (int i = 0; i < 100; ++i) {
    const std::string name = "e" + std::to_string(i);
    t.record(at(i), TraceKind::kResume, name);
    t.record(at(i + 200), TraceKind::kPreempt, name);
    rows.push_back(name);
  }
  const std::string vcd = to_vcd(t, rows);
  EXPECT_NE(vcd.find("$var wire 1 ! e0 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ~ e93 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 !! e94 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 !\" e95 $end"), std::string::npos);
}

TEST(StreamingVcd, ByteIdenticalToMaterializedExport) {
  Timeline t;
  // Handoffs at the same instant, a zero-length window, idle gaps, and
  // non-interval marks interleaved — everything the edge logic must handle.
  t.record(at(0), TraceKind::kRelease, "a");
  t.record(at(0), TraceKind::kResume, "a");
  t.record(at(50), TraceKind::kPreempt, "a");
  t.record(at(50), TraceKind::kResume, "b");
  t.record(at(70), TraceKind::kResume, "c");
  t.record(at(70), TraceKind::kPreempt, "c");  // zero-length: no edges
  t.record(at(90), TraceKind::kComplete, "b");
  t.record(at(120), TraceKind::kResume, "a");
  t.record(at(150), TraceKind::kAbort, "a");

  std::ostringstream body;
  StreamingVcd stream(body);
  for (const auto& r : t.records()) {
    stream.record(r.at, r.kind, r.who, r.value, r.note);
  }
  stream.finish();
  EXPECT_EQ(stream.header() + body.str(), to_vcd(t, t.entities()));
}

TEST(StreamingVcd, RetractedProvisionalPauseLeavesNoEdge) {
  // The VM's horizon-pause pattern: both paths must agree after a retract.
  Timeline t;
  std::ostringstream body;
  StreamingVcd stream(body);
  for (TraceSink* sink :
       {static_cast<TraceSink*>(&t), static_cast<TraceSink*>(&stream)}) {
    sink->record(at(0), TraceKind::kResume, "task");
    sink->record(at(40), TraceKind::kPreempt, "task");
    EXPECT_TRUE(sink->retract(at(40), TraceKind::kPreempt, "task"));
    sink->record(at(60), TraceKind::kPreempt, "task");
  }
  stream.finish();
  EXPECT_EQ(stream.header() + body.str(), to_vcd(t, t.entities()));
}

TEST(Vcd, SpacesInNamesSanitised) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "my task");
  t.record(at(1), TraceKind::kPreempt, "my task");
  const std::string vcd = to_vcd(t, {"my task"});
  EXPECT_NE(vcd.find("my_task"), std::string::npos);
}

}  // namespace
}  // namespace tsf::common
