// VCD export of execution timelines.
#include <gtest/gtest.h>

#include "common/trace.h"

namespace tsf::common {
namespace {

TimePoint at(std::int64_t ticks) { return TimePoint::at_ticks(ticks); }

TEST(Vcd, HeaderDeclaresOneWirePerEntity) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "server");
  t.record(at(5), TraceKind::kPreempt, "server");
  const std::string vcd = to_vcd(t, {"server", "tau1"});
  EXPECT_NE(vcd.find("$timescale 1us $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! server $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 \" tau1 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, TransitionsMatchBusyIntervals) {
  Timeline t;
  t.record(at(100), TraceKind::kResume, "a");
  t.record(at(300), TraceKind::kPreempt, "a");
  const std::string vcd = to_vcd(t, {"a"});
  // Initial zero, rising edge at 100, falling at 300.
  EXPECT_NE(vcd.find("#0\n0!"), std::string::npos);
  EXPECT_NE(vcd.find("#100\n1!"), std::string::npos);
  EXPECT_NE(vcd.find("#300\n0!"), std::string::npos);
}

TEST(Vcd, BackToBackHandoffOrdersFallBeforeRise) {
  // b takes over from a at the same instant: the falling edge of a must be
  // emitted before the rising edge of b under the same timestamp.
  Timeline t;
  t.record(at(0), TraceKind::kResume, "a");
  t.record(at(50), TraceKind::kPreempt, "a");
  t.record(at(50), TraceKind::kResume, "b");
  t.record(at(90), TraceKind::kPreempt, "b");
  const std::string vcd = to_vcd(t, {"a", "b"});
  const auto ts = vcd.find("#50");
  ASSERT_NE(ts, std::string::npos);
  const auto fall = vcd.find("0!", ts);
  const auto rise = vcd.find("1\"", ts);
  ASSERT_NE(fall, std::string::npos);
  ASSERT_NE(rise, std::string::npos);
  EXPECT_LT(fall, rise);
}

TEST(Vcd, SpacesInNamesSanitised) {
  Timeline t;
  t.record(at(0), TraceKind::kResume, "my task");
  t.record(at(1), TraceKind::kPreempt, "my task");
  const std::string vcd = to_vcd(t, {"my task"});
  EXPECT_NE(vcd.find("my_task"), std::string::npos);
}

}  // namespace
}  // namespace tsf::common
