#include "common/time.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tsf::common {
namespace {

TEST(Duration, TickAndTimeUnitConstructors) {
  EXPECT_EQ(Duration::ticks(1000), Duration::time_units(1));
  EXPECT_EQ(Duration::time_units(3).count(), 3000);
  EXPECT_EQ(Duration::zero().count(), 0);
}

TEST(Duration, FromTuRoundsToNearestTick) {
  EXPECT_EQ(Duration::from_tu(0.1), Duration::ticks(100));
  EXPECT_EQ(Duration::from_tu(0.0004), Duration::ticks(0));
  EXPECT_EQ(Duration::from_tu(0.0006), Duration::ticks(1));
  EXPECT_EQ(Duration::from_tu(-1.5), Duration::ticks(-1500));
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::time_units(3);
  const Duration b = Duration::time_units(2);
  EXPECT_EQ(a + b, Duration::time_units(5));
  EXPECT_EQ(a - b, Duration::time_units(1));
  EXPECT_EQ(-b, Duration::time_units(-2));
  EXPECT_EQ(a * 4, Duration::time_units(12));
  EXPECT_EQ(3 * b, Duration::time_units(6));
  EXPECT_EQ(a / b, 1);
  EXPECT_EQ(a % b, Duration::time_units(1));
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::time_units(1);
  d += Duration::time_units(2);
  EXPECT_EQ(d, Duration::time_units(3));
  d -= Duration::time_units(5);
  EXPECT_EQ(d, Duration::time_units(-2));
  EXPECT_TRUE(d.is_negative());
}

TEST(Duration, Ordering) {
  EXPECT_LT(Duration::ticks(1), Duration::ticks(2));
  EXPECT_LE(Duration::ticks(2), Duration::ticks(2));
  EXPECT_GT(Duration::time_units(1), Duration::ticks(999));
}

TEST(Duration, InfiniteSentinel) {
  EXPECT_TRUE(Duration::infinite().is_infinite());
  EXPECT_FALSE(Duration::time_units(1'000'000).is_infinite());
  // Adding a reasonable offset keeps it recognisably infinite.
  EXPECT_TRUE((Duration::infinite() + Duration::time_units(5)).is_infinite());
}

TEST(Duration, ToTu) {
  EXPECT_DOUBLE_EQ(Duration::ticks(1500).to_tu(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::zero().to_tu(), 0.0);
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::origin() + Duration::time_units(5);
  EXPECT_EQ(t.ticks(), 5000);
  EXPECT_EQ(t - TimePoint::origin(), Duration::time_units(5));
  EXPECT_EQ(t - Duration::time_units(2),
            TimePoint::origin() + Duration::time_units(3));
}

TEST(TimePoint, NeverSentinel) {
  EXPECT_TRUE(TimePoint::never().is_never());
  EXPECT_FALSE(TimePoint::origin().is_never());
  EXPECT_LT(TimePoint::origin() + Duration::time_units(1'000'000),
            TimePoint::never());
}

TEST(TimePoint, MinMaxHelpers) {
  const TimePoint a = TimePoint::at_ticks(5);
  const TimePoint b = TimePoint::at_ticks(9);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(min(Duration::ticks(3), Duration::ticks(1)), Duration::ticks(1));
  EXPECT_EQ(max(Duration::ticks(3), Duration::ticks(1)), Duration::ticks(3));
}

TEST(TimeFormatting, RendersTimeUnits) {
  EXPECT_EQ(to_string(Duration::time_units(3)), "3tu");
  EXPECT_EQ(to_string(Duration::ticks(3250)), "3.25tu");
  EXPECT_EQ(to_string(Duration::ticks(-500)), "-0.5tu");
  EXPECT_EQ(to_string(Duration::infinite()), "inf");
  EXPECT_EQ(to_string(TimePoint::never()), "never");
  std::ostringstream oss;
  oss << Duration::ticks(100) << " " << TimePoint::at_ticks(2000);
  EXPECT_EQ(oss.str(), "0.1tu 2tu");
}

}  // namespace
}  // namespace tsf::common
