// Streaming consumers attached to the per-core record streams must observe
// exactly the trace the engines materialize. The lock-step VMs retract a
// provisional horizon-pause record at every epoch boundary, so these suites
// exercise the retraction path continuously — across the partitioned
// baseline with channel traffic, the global pool, semi-partitioned
// stealing, and the online rebalancer.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/trace_sink.h"
#include "common/trace_stream.h"
#include "mp/mp_system.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

model::SystemSpec busy_spec(int cores) {
  model::SystemSpec spec;
  spec.name = "stream-eq";
  spec.cores = cores;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < cores; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(3);
    t.priority = 10;
    spec.periodic_tasks.push_back(t);
  }
  for (int j = 0; j < 8; ++j) {
    model::AperiodicJobSpec job;
    job.name = "a" + std::to_string(j);
    job.release = at_tu(1 + 2 * j);
    job.cost = tu(1);
    spec.aperiodic_jobs.push_back(job);
  }
  // Channel traffic: a remote fire chain and a migratable job.
  spec.aperiodic_jobs[0].fires = "trig";
  model::AperiodicJobSpec trig;
  trig.name = "trig";
  trig.triggered = true;
  trig.cost = tu(1);
  spec.aperiodic_jobs.push_back(trig);
  model::AperiodicJobSpec roam;
  roam.name = "roam";
  roam.release = at_tu(5);
  roam.cost = tu(1);
  roam.migrate = true;
  spec.aperiodic_jobs.push_back(roam);
  spec.horizon = at_tu(24);
  return spec;
}

void expect_streams_match(const model::SystemSpec& spec,
                          MpRunOptions options) {
  std::vector<std::unique_ptr<common::StreamingFingerprint>> prints;
  for (int c = 0; c < spec.cores; ++c) {
    prints.push_back(std::make_unique<common::StreamingFingerprint>());
    options.core_trace_sinks.push_back(prints.back().get());
  }
  const auto run = mp::run(spec, options);
  ASSERT_EQ(run.per_core.size(), prints.size());
  for (std::size_t c = 0; c < prints.size(); ++c) {
    EXPECT_EQ(prints[c]->digest(),
              common::fingerprint(run.per_core[c].timeline))
        << "core " << c;
    EXPECT_EQ(prints[c]->records(), run.per_core[c].timeline.records().size())
        << "core " << c;
  }
}

TEST(StreamEquivalence, PartitionedLockstepWithChannels) {
  expect_streams_match(busy_spec(2), MpRunOptions{});
}

TEST(StreamEquivalence, GlobalPool) {
  MpRunOptions options;
  options.policy = SchedPolicy::kGlobal;
  expect_streams_match(busy_spec(2), options);
}

TEST(StreamEquivalence, SemiPartitionedStealing) {
  MpRunOptions options;
  options.policy = SchedPolicy::kSemiPartitioned;
  expect_streams_match(busy_spec(3), options);
}

TEST(StreamEquivalence, DriftRebalance) {
  MpRunOptions options;
  options.rebalance.mode = RebalanceMode::kDrift;
  options.rebalance.drift = 0.05;
  options.rebalance.period = tu(4);
  expect_streams_match(busy_spec(2), options);
}

TEST(StreamEquivalence, StreamingMetricsAgreeWithBusyIntervals) {
  const auto spec = busy_spec(2);
  MpRunOptions options;
  common::StreamingTraceMetrics metrics;
  options.core_trace_sinks.push_back(&metrics);
  const auto run = mp::run(spec, options);
  metrics.finish();

  const auto& timeline = run.per_core[0].timeline;
  std::int64_t busy = 0;
  for (const auto& entity : timeline.entities()) {
    for (const auto& iv : timeline.busy_intervals(entity)) {
      busy += (iv.end - iv.begin).count();
    }
  }
  EXPECT_EQ(metrics.busy_ticks(), busy);
  EXPECT_EQ(metrics.records(), timeline.records().size());
  EXPECT_EQ(metrics.entity_count(), timeline.entities().size());
}

}  // namespace
}  // namespace tsf::mp
