// The cross-core channel fabric: mailbox ordering, routing, latency
// eligibility, least-loaded migration, and the end-to-end semantics of
// remote fires through mp::run's exec engine (delivery at epoch boundaries,
// no fire from an interrupted sender, channel metrics).
#include "mp/channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/trace.h"
#include "exp/metrics.h"
#include "mp/mp_system.h"
#include "mp/partition.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(double n) { return Duration::from_tu(n); }
TimePoint at_tu(double n) { return TimePoint::origin() + tu(n); }

// A scriptable endpoint: records what the fabric delivers.
class FakeEndpoint : public exp::CoreEndpoint {
 public:
  explicit FakeEndpoint(bool serves = true, std::size_t depth = 0)
      : serves_(serves), depth_(depth) {}

  bool deliver_fire(const std::string& job) override {
    fires.push_back(job);
    return known_jobs.empty() ||
           std::find(known_jobs.begin(), known_jobs.end(), job) !=
               known_jobs.end();
  }
  void deliver_migrated(const exp::MigratedJob& job) override {
    migrated.push_back(job.name);
  }
  bool serves_aperiodics() const override { return serves_; }
  std::size_t queue_depth() const override { return depth_; }

  std::vector<std::string> fires;
  std::vector<std::string> migrated;
  std::vector<std::string> known_jobs;  // empty: accept everything

 private:
  bool serves_;
  std::size_t depth_;
};

TEST(Mailbox, TakeDueReturnsDuePrefixInPostOrder) {
  Mailbox box;
  for (int i = 0; i < 4; ++i) {
    Mailbox::Message m;
    m.job = "j" + std::to_string(i);
    m.posted = at_tu(i);
    m.due = at_tu(i);
    m.seq = static_cast<std::uint64_t>(i);
    box.push(m);
  }
  const auto due = box.take_due(at_tu(2));
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].job, "j0");
  EXPECT_EQ(due[1].job, "j1");
  EXPECT_EQ(due[2].job, "j2");
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.take_due(at_tu(10)).front().job, "j3");
}

// Post order is core order, not time order: a message posted by a
// later-run core with an earlier virtual post time (hence earlier due
// time) must not be stuck behind the queue head (regression: take_due
// used to stop at the first not-yet-due message).
TEST(Mailbox, DueMessageBehindNotYetDueHeadStillLeaves) {
  Mailbox box;
  Mailbox::Message head;  // core 0 fired late in the epoch
  head.job = "late";
  head.posted = at_tu(5.7);
  head.due = at_tu(6.7);
  head.seq = 1;
  box.push(head);
  Mailbox::Message tail;  // core 1 fired earlier in virtual time
  tail.job = "early";
  tail.posted = at_tu(5.2);
  tail.due = at_tu(6.2);
  tail.seq = 2;
  box.push(tail);

  const auto due = box.take_due(at_tu(6.5));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].job, "early");
  ASSERT_EQ(box.size(), 1u);
  EXPECT_EQ(box.take_due(at_tu(7)).front().job, "late");
}

// A fire posted to an expected-but-unbound name (a ready-pool job before
// its dispatch, a migratable before its delivery) is deferred, not failed:
// bind() flushes it into the new home's mailbox and the next drain
// delivers it (regression: it used to be recorded as a terminal routing
// failure, silently dropping a release the partitioned baseline delivers).
TEST(ChannelFabric, FireToExpectedUnboundNameWaitsForTheBind) {
  ChannelFabric fabric(2);
  FakeEndpoint e0, e1;
  fabric.connect(0, &e0);
  fabric.connect(1, &e1);
  fabric.expect("pool_job");

  fabric.port(0)->fire_remote("pool_job", at_tu(1.5));
  EXPECT_TRUE(fabric.deliveries().empty()) << "must not fail terminally";
  EXPECT_EQ(fabric.in_flight(), 1u);
  EXPECT_EQ(fabric.drain(at_tu(2)), 0u);  // still homeless: stays parked
  EXPECT_EQ(fabric.in_flight(), 1u);

  fabric.bind(1, "pool_job");  // the pool dispatched it to core 1
  EXPECT_EQ(fabric.drain(at_tu(2.5)), 1u);
  ASSERT_EQ(e1.fires.size(), 1u);
  EXPECT_EQ(e1.fires[0], "pool_job");
  ASSERT_EQ(fabric.deliveries().size(), 1u);
  EXPECT_TRUE(fabric.deliveries()[0].ok);
  EXPECT_EQ(fabric.deliveries()[0].posted, at_tu(1.5));
  EXPECT_EQ(fabric.deliveries()[0].delivered, at_tu(2.5));
  EXPECT_EQ(fabric.in_flight(), 0u);
}

TEST(ChannelFabric, RoutesFireToBoundCoreAtNextDrain) {
  ChannelFabric fabric(2);
  FakeEndpoint e0, e1;
  fabric.connect(0, &e0);
  fabric.connect(1, &e1);
  fabric.bind(1, "pong");

  fabric.port(0)->fire_remote("pong", at_tu(1.5));
  EXPECT_TRUE(e1.fires.empty());  // nothing until a boundary drain
  EXPECT_EQ(fabric.in_flight(), 1u);

  EXPECT_EQ(fabric.drain(at_tu(2)), 1u);
  ASSERT_EQ(e1.fires.size(), 1u);
  EXPECT_EQ(e1.fires[0], "pong");
  EXPECT_TRUE(e0.fires.empty());
  EXPECT_EQ(fabric.in_flight(), 0u);

  ASSERT_EQ(fabric.deliveries().size(), 1u);
  const auto& d = fabric.deliveries()[0];
  EXPECT_TRUE(d.ok);
  EXPECT_EQ(d.from_core, 0u);
  EXPECT_EQ(d.to_core, 1u);
  EXPECT_EQ(d.posted, at_tu(1.5));
  EXPECT_EQ(d.delivered, at_tu(2));
  EXPECT_EQ(d.latency(), tu(0.5));
}

TEST(ChannelFabric, UnboundTargetIsATerminalFailedDelivery) {
  ChannelFabric fabric(2);
  FakeEndpoint e0, e1;
  fabric.connect(0, &e0);
  fabric.connect(1, &e1);

  fabric.port(0)->fire_remote("ghost", at_tu(1));
  ASSERT_EQ(fabric.deliveries().size(), 1u);
  EXPECT_FALSE(fabric.deliveries()[0].ok);
  EXPECT_EQ(fabric.in_flight(), 0u);
  EXPECT_EQ(fabric.drain(at_tu(5)), 0u);
}

TEST(ChannelFabric, LatencyDefersEligibilityToALaterBoundary) {
  ChannelConfig config;
  config.latency = tu(1);
  ChannelFabric fabric(2, config);
  FakeEndpoint e0, e1;
  fabric.connect(0, &e0);
  fabric.connect(1, &e1);
  fabric.bind(1, "pong");

  fabric.port(0)->fire_remote("pong", at_tu(1.5));
  EXPECT_EQ(fabric.drain(at_tu(2)), 0u);  // due at 2.5, not yet
  EXPECT_EQ(fabric.in_flight(), 1u);
  EXPECT_EQ(fabric.drain(at_tu(3)), 1u);
  ASSERT_EQ(fabric.deliveries().size(), 1u);
  EXPECT_EQ(fabric.deliveries()[0].delivered, at_tu(3));
  EXPECT_EQ(fabric.deliveries()[0].latency(), tu(1.5));
}

TEST(ChannelFabric, MigrationPicksLeastLoadedServingCore) {
  ChannelFabric fabric(3);
  FakeEndpoint busy(/*serves=*/true, /*depth=*/5);
  FakeEndpoint idle(/*serves=*/true, /*depth=*/1);
  FakeEndpoint no_server(/*serves=*/false, /*depth=*/0);
  fabric.connect(0, &busy);
  fabric.connect(1, &no_server);
  fabric.connect(2, &idle);

  exp::MigratedJob job;
  job.name = "mig";
  job.declared_cost = tu(1);
  job.actual_cost = tu(1);
  fabric.add_migratable(job, at_tu(4));

  EXPECT_EQ(fabric.drain(at_tu(3)), 0u);  // not released yet
  EXPECT_EQ(fabric.drain(at_tu(4)), 1u);
  EXPECT_TRUE(busy.migrated.empty());
  EXPECT_TRUE(no_server.migrated.empty());
  ASSERT_EQ(idle.migrated.size(), 1u);
  EXPECT_EQ(idle.migrated[0], "mig");
  // Once homed, fires can route to the migrated job.
  fabric.port(0)->fire_remote("mig", at_tu(5));
  EXPECT_EQ(fabric.drain(at_tu(6)), 1u);
  ASSERT_EQ(idle.fires.size(), 1u);
  EXPECT_EQ(idle.fires[0], "mig");
}

TEST(ChannelFabric, MigrationTiesBreakToLowestCore) {
  ChannelFabric fabric(3);
  FakeEndpoint a(true, 2), b(true, 2), c(true, 2);
  fabric.connect(0, &a);
  fabric.connect(1, &b);
  fabric.connect(2, &c);
  exp::MigratedJob job;
  job.name = "mig";
  fabric.add_migratable(job, at_tu(0));
  fabric.drain(at_tu(1));
  EXPECT_EQ(a.migrated.size(), 1u);
  EXPECT_TRUE(b.migrated.empty() && c.migrated.empty());
}

TEST(ChannelFabric, MigrationWithoutAnyServingCoreFails) {
  ChannelFabric fabric(2);
  FakeEndpoint a(false), b(false);
  fabric.connect(0, &a);
  fabric.connect(1, &b);
  exp::MigratedJob job;
  job.name = "mig";
  fabric.add_migratable(job, at_tu(0));
  EXPECT_EQ(fabric.drain(at_tu(1)), 0u);
  ASSERT_EQ(fabric.deliveries().size(), 1u);
  EXPECT_FALSE(fabric.deliveries()[0].ok);
  EXPECT_EQ(fabric.in_flight(), 0u);  // terminal, not still pending
}

// --- end-to-end through the partitioned exec runner ---

model::SystemSpec ping_pong_spec() {
  model::SystemSpec spec;
  spec.name = "chan";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < 2; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(2);
    t.priority = 10;
    t.affinity = c;
    spec.periodic_tasks.push_back(t);
  }
  model::AperiodicJobSpec ping;
  ping.name = "ping";
  ping.release = at_tu(1);
  ping.cost = tu(1);
  ping.affinity = 0;
  ping.fires = "pong";
  spec.aperiodic_jobs.push_back(ping);
  model::AperiodicJobSpec pong;
  pong.name = "pong";
  pong.triggered = true;
  pong.cost = tu(1);
  pong.affinity = 1;
  spec.aperiodic_jobs.push_back(pong);
  spec.horizon = at_tu(24);
  return spec;
}

TEST(CrossCoreExec, FireOnCore0ServesTriggeredJobOnCore1) {
  const auto spec = ping_pong_spec();
  MpRunOptions options;
  options.quantum = tu(1);
  const auto run = mp::run(spec, options);

  ASSERT_EQ(run.merged.jobs.size(), 2u);
  const auto& ping = run.merged.jobs[0];
  const auto& pong = run.merged.jobs[1];
  EXPECT_TRUE(ping.served);
  EXPECT_TRUE(pong.served);
  // ping: released t=1 on core 0, served by the deferrable replica by t=2.
  // The fire posts at ping's completion and lands on core 1 at the next
  // whole-tu epoch boundary.
  ASSERT_EQ(run.channel_deliveries.size(), 1u);
  const auto& d = run.channel_deliveries[0];
  EXPECT_TRUE(d.ok);
  EXPECT_EQ(d.to_core, 1u);
  EXPECT_EQ(d.posted, ping.completion);
  EXPECT_EQ(pong.release, d.delivered);
  EXPECT_GE(pong.release, ping.completion);
  // The pong fire and its service show up on core 1's timeline.
  EXPECT_FALSE(run.merged.timeline.marks("c1/pong.e", common::TraceKind::kFire)
                   .empty());
  EXPECT_FALSE(run.merged.timeline.busy_intervals("c1/pong").empty());

  const auto metrics =
      exp::compute_channel_metrics(run.channel_deliveries, run.merged);
  EXPECT_EQ(metrics.delivered, 1u);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.e2e_samples, 1u);
  EXPECT_DOUBLE_EQ(metrics.latency_p99_tu, d.latency().to_tu());
  EXPECT_DOUBLE_EQ(metrics.e2e_p99_tu,
                   (pong.completion - d.posted).to_tu());
}

// The simulator engines have no channel fabric: a triggered job must end a
// sim run unserved, never released at its meaningless default instant
// (regression: the simulator used to release it at t=0).
TEST(CrossCoreSim, SimulatorLeavesTriggeredJobsUnserved) {
  const auto spec = ping_pong_spec();
  MpRunOptions sim_options;
  sim_options.engine = RunEngine::kSim;
  const auto run = mp::run(spec, sim_options);
  ASSERT_EQ(run.merged.jobs.size(), 2u);
  EXPECT_EQ(run.merged.jobs[0].name, "ping");
  EXPECT_TRUE(run.merged.jobs[0].served);
  EXPECT_EQ(run.merged.jobs[1].name, "pong");
  EXPECT_FALSE(run.merged.jobs[1].served);
}

TEST(CrossCoreExec, ChannelLatencyDelaysDelivery) {
  auto spec = ping_pong_spec();
  spec.channel_latency = tu(3);
  MpRunOptions options;
  options.quantum = tu(1);
  const auto run = mp::run(spec, options);
  ASSERT_EQ(run.channel_deliveries.size(), 1u);
  const auto& d = run.channel_deliveries[0];
  ASSERT_TRUE(d.ok);
  EXPECT_GE(d.latency(), tu(3));
  const auto& pong = run.merged.jobs[1];
  EXPECT_TRUE(pong.served);
  EXPECT_EQ(pong.release, d.delivered);
}

TEST(CrossCoreExec, InterruptedSenderNeverFires) {
  auto spec = ping_pong_spec();
  // Under-declare ping so the server dispatches it into a 2tu budget it
  // cannot finish in: the handler is interrupted before reaching the fire.
  spec.aperiodic_jobs[0].cost = tu(4);
  spec.aperiodic_jobs[0].declared_cost = tu(1);
  const auto run = mp::run(spec, MpRunOptions{});
  const auto& ping = run.merged.jobs[0];
  const auto& pong = run.merged.jobs[1];
  EXPECT_TRUE(ping.interrupted);
  EXPECT_FALSE(pong.served);
  EXPECT_TRUE(run.channel_deliveries.empty());
}

TEST(CrossCoreExec, MigratableJobLandsOnTheQuieterCore) {
  auto spec = ping_pong_spec();
  spec.aperiodic_jobs.clear();
  // Three same-instant jobs pinned to core 0 back its replica up; the
  // migratable job released just after must land on core 1.
  for (int i = 0; i < 3; ++i) {
    model::AperiodicJobSpec j;
    j.name = "load" + std::to_string(i);
    j.release = at_tu(1);
    j.cost = tu(1);
    j.affinity = 0;
    spec.aperiodic_jobs.push_back(j);
  }
  model::AperiodicJobSpec mig;
  mig.name = "mig";
  mig.release = at_tu(1.5);
  mig.cost = tu(1);
  mig.migrate = true;
  spec.aperiodic_jobs.push_back(mig);

  MpRunOptions options;
  options.quantum = tu(1);
  const auto run = mp::run(spec, options);
  const exp::ChannelDelivery* migration = nullptr;
  for (const auto& d : run.channel_deliveries) {
    if (d.kind == exp::ChannelDelivery::Kind::kMigrate) migration = &d;
  }
  ASSERT_NE(migration, nullptr);
  EXPECT_TRUE(migration->ok);
  EXPECT_EQ(migration->to_core, 1u);
  EXPECT_EQ(migration->delivered, at_tu(2));
  // The migrated job really ran on core 1.
  EXPECT_FALSE(run.merged.timeline.busy_intervals("c1/mig").empty());
  const auto& mig_outcome = run.merged.jobs.back();
  ASSERT_EQ(mig_outcome.name, "mig");
  EXPECT_TRUE(mig_outcome.served);
}

}  // namespace
}  // namespace tsf::mp
