// Cross-validation contract of the real-threads backend: for every spec in
// the determinism suites, `backend = threads` must produce the SAME
// served/missed job sets as the lock-step oracle, with response-time
// distributions (LogSketch) within the declared tolerance. Each threads run
// is repeated 3x to shake out host-scheduling ordering sensitivity.
//
// The declared contract is set equality + sketch-quantile tolerance; the
// suite additionally asserts trace-fingerprint equality, which the staged
// replay design makes achievable (the threads backend reconstructs the
// oracle's boundary order exactly) and which turns any future ordering
// regression into a hard failure instead of a tolerance-shaped soft one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include "common/sketch.h"
#include "common/trace.h"
#include "gen/storms.h"
#include "mp/mp_system.h"
#include "mp/overload.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

// Declared cross-validation tolerance on response-time quantiles, in time
// units. With equal served sets the distributions are identical and the
// observed difference is 0; the tolerance bounds how far a future
// relaxation of the replay ordering would be allowed to drift.
constexpr double kQuantileToleranceTu = 0.25;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

// The determinism suites' busy spec: per-core periodic load, a deferrable
// server, aperiodic traffic, a cross-core fire chain and a migratable job.
model::SystemSpec busy_spec(int cores) {
  model::SystemSpec spec;
  spec.name = "backend-eq";
  spec.cores = cores;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < cores; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(3);
    t.priority = 10;
    spec.periodic_tasks.push_back(t);
  }
  for (int j = 0; j < 8; ++j) {
    model::AperiodicJobSpec job;
    job.name = "a" + std::to_string(j);
    job.release = at_tu(1 + 2 * j);
    job.cost = tu(1);
    spec.aperiodic_jobs.push_back(job);
  }
  spec.aperiodic_jobs[0].fires = "trig";
  model::AperiodicJobSpec trig;
  trig.name = "trig";
  trig.triggered = true;
  trig.cost = tu(1);
  spec.aperiodic_jobs.push_back(trig);
  model::AperiodicJobSpec roam;
  roam.name = "roam";
  roam.release = at_tu(5);
  roam.cost = tu(1);
  roam.migrate = true;
  spec.aperiodic_jobs.push_back(roam);
  spec.horizon = at_tu(24);
  return spec;
}

// (job, release) identity sets plus the served-response distribution.
struct RunSignature {
  std::set<std::pair<std::string, std::int64_t>> served;
  std::set<std::pair<std::string, std::int64_t>> missed;
  std::set<std::pair<std::string, std::int64_t>> shed;
  common::LogSketch responses;
  std::uint64_t fingerprint = 0;
};

RunSignature signature_of(const MpRunResult& run) {
  RunSignature sig;
  for (const auto& job : run.merged.jobs) {
    const auto key = std::make_pair(
        job.name, (job.release - TimePoint::origin()).count());
    if (job.served) {
      sig.served.insert(key);
      sig.responses.add(job.response().to_tu());
    } else if (job.shed) {
      sig.shed.insert(key);
    } else {
      sig.missed.insert(key);
    }
  }
  sig.fingerprint = common::fingerprint(run.merged.timeline);
  return sig;
}

void expect_equivalent(const model::SystemSpec& spec,
                       MpRunOptions options, const char* label) {
  options.backend = ExecBackend::kLockstep;
  const auto oracle = signature_of(mp::run(spec, options));
  ASSERT_FALSE(oracle.served.empty()) << label << ": oracle served nothing";

  options.backend = ExecBackend::kThreads;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto threads = signature_of(mp::run(spec, options));
    SCOPED_TRACE(std::string(label) + " repeat " + std::to_string(repeat));
    // The contract: identical served/missed/shed sets...
    EXPECT_EQ(threads.served, oracle.served);
    EXPECT_EQ(threads.missed, oracle.missed);
    EXPECT_EQ(threads.shed, oracle.shed);
    // ...and response quantiles within the declared tolerance.
    for (const double q : {0.50, 0.95, 0.99}) {
      EXPECT_NEAR(threads.responses.quantile(q),
                  oracle.responses.quantile(q), kQuantileToleranceTu)
          << "quantile " << q;
    }
    // Stronger than the contract: the staged replay reconstructs the
    // oracle's boundary order, so the traces are bit-identical.
    EXPECT_EQ(threads.fingerprint, oracle.fingerprint);
  }
}

TEST(BackendEquivalence, PartitionedWithChannels) {
  expect_equivalent(busy_spec(2), MpRunOptions{}, "partitioned");
}

TEST(BackendEquivalence, GlobalPool) {
  MpRunOptions options;
  options.policy = SchedPolicy::kGlobal;
  expect_equivalent(busy_spec(2), options, "global");
}

TEST(BackendEquivalence, SemiPartitionedStealing) {
  MpRunOptions options;
  options.policy = SchedPolicy::kSemiPartitioned;
  expect_equivalent(busy_spec(3), options, "semi");
}

TEST(BackendEquivalence, DriftRebalance) {
  MpRunOptions options;
  options.rebalance.mode = RebalanceMode::kDrift;
  options.rebalance.drift = 0.05;
  options.rebalance.period = tu(4);
  expect_equivalent(busy_spec(2), options, "rebalance");
}

TEST(BackendEquivalence, SubQuantumEpochAndJitter) {
  // Fractional quantum plus execution-time jitter: the staged replay must
  // keep oracle order when posts land mid-epoch at non-integral instants.
  MpRunOptions options;
  options.policy = SchedPolicy::kSemiPartitioned;
  options.quantum = common::Duration::from_tu(0.5);
  options.exec.cost_jitter = 0.2;
  expect_equivalent(busy_spec(2), options, "sub-quantum+jitter");
}

// Overloaded storm cells: while the governor sheds (or D-over rejects and
// takes over), the threads backend must still replay the lock-step oracle
// bit-for-bit — equal served/missed/shed sets AND equal fingerprints, so a
// shed decision landing on a different epoch in either backend is a hard
// failure, not a tolerance-shaped soft one.
TEST(BackendEquivalence, OverloadStormShedding) {
  const gen::StormShape shapes[] = {gen::StormShape::kRouterPacketStorm,
                                    gen::StormShape::kMarketOpenBurst,
                                    gen::StormShape::kCascadingFaultBurst};
  for (const auto shape : shapes) {
    gen::StormParams params;
    params.shape = shape;
    params.server_capacity = tu(1);
    params.horizon_periods = 4;
    // Hot enough that the utilization governor actually trips on the
    // scaled-down 1tu replicas, not just the D-over admission test.
    params.overload_factor = 4.0;
    const auto spec = gen::make_storm(params);
    for (const auto mode :
         {exp::OverloadMode::kShed, exp::OverloadMode::kDover}) {
      MpRunOptions options;
      options.quantum = common::Duration::from_tu(0.5);
      options.exec.overload.mode = mode;
      options.exec.overload.threshold = 0.75;
      options.exec.overload.period = tu(6);
      const std::string label =
          std::string("storm ") + gen::to_string(shape) + "/" +
          exp::to_string(mode);
      expect_equivalent(spec, options, label.c_str());

      // The storm must actually exercise the policy in both backends.
      options.backend = ExecBackend::kThreads;
      const auto threads = mp::run(spec, options);
      EXPECT_FALSE(threads.merged.shed_events.empty()) << label;
      EXPECT_TRUE(check_overload_invariants(spec, threads).empty()) << label;
    }
  }
}

// Batched dispatch cells: with [run] batch > 1 the servers drain same-
// priority releases under one Timed section. The contract is unchanged —
// the threads backend must replay the batched lock-step oracle bit-for-bit,
// and every job must still land in exactly one of served/missed/shed.
TEST(BackendEquivalence, BatchedDispatch) {
  for (const int batch : {4, 16}) {
    MpRunOptions options;
    options.exec.batch = batch;
    const std::string label = "batch=" + std::to_string(batch);
    expect_equivalent(busy_spec(2), options, label.c_str());
  }
}

TEST(BackendEquivalence, BatchedDispatchUnderStealing) {
  // Stealing moves pending work between cores mid-epoch; a batch collected
  // on the victim must not double-serve or lose the stolen job.
  MpRunOptions options;
  options.policy = SchedPolicy::kSemiPartitioned;
  options.exec.batch = 4;
  expect_equivalent(busy_spec(3), options, "batch=4 semi");
}

TEST(BackendEquivalence, BatchedStormShedding) {
  // A shedding storm with batching on: aborted batch tails must requeue
  // identically in both backends, and the ledger stays exactly-once.
  gen::StormParams params;
  params.shape = gen::StormShape::kRouterPacketStorm;
  params.server_capacity = tu(1);
  params.horizon_periods = 4;
  params.overload_factor = 4.0;
  const auto spec = gen::make_storm(params);
  MpRunOptions options;
  options.quantum = common::Duration::from_tu(0.5);
  options.exec.batch = 8;
  options.exec.overload.mode = exp::OverloadMode::kShed;
  options.exec.overload.threshold = 0.75;
  options.exec.overload.period = tu(6);
  expect_equivalent(spec, options, "storm batch=8 shed");

  options.backend = ExecBackend::kThreads;
  const auto threads = mp::run(spec, options);
  EXPECT_FALSE(threads.merged.shed_events.empty());
  EXPECT_TRUE(check_overload_invariants(spec, threads).empty());
  // Exactly-once across batch boundaries: every aperiodic job of the spec
  // shows up exactly once in the merged ledger.
  std::multiset<std::string> seen;
  for (const auto& job : threads.merged.jobs) seen.insert(job.name);
  for (const auto& job : spec.aperiodic_jobs) {
    EXPECT_EQ(seen.count(job.name), 1u) << job.name;
  }
}

TEST(BackendEquivalence, BatchOfOneIsBitIdenticalToDefault) {
  // batch = 1 is not "a small batch" — it takes the historical per-event
  // dispatch path verbatim, so the fingerprint must equal the default run's.
  const auto spec = busy_spec(2);
  for (const auto backend : {ExecBackend::kLockstep, ExecBackend::kThreads}) {
    MpRunOptions options;
    options.backend = backend;
    const auto baseline = signature_of(mp::run(spec, options));
    options.exec.batch = 1;
    const auto explicit_one = signature_of(mp::run(spec, options));
    EXPECT_EQ(explicit_one.fingerprint, baseline.fingerprint);
    EXPECT_EQ(explicit_one.served, baseline.served);
  }
}

TEST(BackendEquivalence, ThreadsBackendIsRunToRunDeterministic) {
  // The threads backend is not just oracle-equivalent; it is deterministic
  // in its own right (sorted replay over deterministic per-core worlds).
  MpRunOptions options;
  options.policy = SchedPolicy::kGlobal;
  options.backend = ExecBackend::kThreads;
  const auto spec = busy_spec(3);
  const auto first = signature_of(mp::run(spec, options));
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto again = signature_of(mp::run(spec, options));
    EXPECT_EQ(again.fingerprint, first.fingerprint) << "repeat " << repeat;
    EXPECT_EQ(again.served, first.served);
  }
}

}  // namespace
}  // namespace tsf::mp
