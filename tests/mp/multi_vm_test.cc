// MultiVm lock-step semantics: advancing N per-core VMs in shared epochs
// must be observationally identical to running each core's VM on its own,
// and must be insensitive to the epoch size.
#include "mp/multi_vm.h"

#include <gtest/gtest.h>

#include "common/trace.h"
#include "mp/mp_system.h"
#include "mp/partition.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

model::SystemSpec two_core_spec() {
  model::SystemSpec spec;
  spec.name = "mv";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < 2; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(3);
    t.priority = 10;
    spec.periodic_tasks.push_back(t);
  }
  for (int j = 0; j < 6; ++j) {
    model::AperiodicJobSpec job;
    job.name = "a" + std::to_string(j);
    job.release = at_tu(1 + 3 * j);
    job.cost = tu(1);
    spec.aperiodic_jobs.push_back(job);
  }
  spec.horizon = at_tu(24);
  return spec;
}

TEST(MultiVm, LockstepMatchesIndependentRunExec) {
  const auto spec = two_core_spec();
  const auto partition = Partitioner().partition(spec);
  ASSERT_TRUE(partition.complete());
  const auto subs = split_spec(spec, partition);
  ASSERT_EQ(subs.size(), 2u);

  MultiVm machine(subs, exp::ExecOptions{});
  machine.start();
  machine.run_until(spec.horizon);
  const auto lockstep = machine.collect();

  for (std::size_t c = 0; c < subs.size(); ++c) {
    const auto solo = exp::run_exec(subs[c]);
    ASSERT_EQ(lockstep[c].jobs.size(), solo.jobs.size());
    for (std::size_t i = 0; i < solo.jobs.size(); ++i) {
      EXPECT_EQ(lockstep[c].jobs[i].name, solo.jobs[i].name);
      EXPECT_EQ(lockstep[c].jobs[i].served, solo.jobs[i].served);
      EXPECT_EQ(lockstep[c].jobs[i].start, solo.jobs[i].start);
      EXPECT_EQ(lockstep[c].jobs[i].completion, solo.jobs[i].completion);
    }
    EXPECT_EQ(common::fingerprint(lockstep[c].timeline),
              common::fingerprint(solo.timeline));
  }
}

TEST(MultiVm, EpochSizeDoesNotChangeBehaviour) {
  const auto spec = two_core_spec();
  const auto partition = Partitioner().partition(spec);
  const auto subs = split_spec(spec, partition);

  std::vector<std::uint64_t> hashes;
  for (const auto quantum : {tu(1), tu(5), tu(24)}) {
    MultiVm machine(subs, exp::ExecOptions{});
    machine.start();
    machine.run_until(spec.horizon, quantum);
    std::uint64_t combined = 0;
    for (auto& result : machine.collect()) {
      combined ^= common::fingerprint(result.timeline);
    }
    hashes.push_back(combined);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

// A driver pause must not rotate the running fiber behind equal-priority
// waiters: with two same-priority tasks on one core, lock-step epochs of
// any size must reproduce the solo run exactly (regression: the freeze
// path used to re-enqueue with a fresh ready_seq_, so every epoch boundary
// round-robined the two tasks).
TEST(MultiVm, EqualPriorityTasksSurviveEpochBoundaries) {
  model::SystemSpec spec;
  spec.name = "eq";
  spec.cores = 1;
  spec.server.policy = model::ServerPolicy::kNone;
  for (int i = 0; i < 2; ++i) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(i);
    t.period = tu(10);
    t.cost = tu(4);
    t.priority = 5;  // same priority on the same core
    spec.periodic_tasks.push_back(t);
  }
  spec.horizon = at_tu(20);

  const auto solo = exp::run_exec(spec);
  MultiVm machine({spec}, exp::ExecOptions{});
  machine.start();
  machine.run_until(spec.horizon, tu(1));  // pause at every single tu
  const auto lockstep = machine.collect();
  EXPECT_EQ(common::fingerprint(lockstep[0].timeline),
            common::fingerprint(solo.timeline));
  EXPECT_EQ(lockstep[0].timeline.busy_intervals("tau0"),
            solo.timeline.busy_intervals("tau0"));
}

// A fiber mid-work() at the final horizon must still close its busy
// interval there (regression: the seamless-freeze change used to leave the
// trace open, and busy_intervals drops unterminated intervals).
TEST(MultiVm, FrozenFiberIntervalClosesAtFinalHorizon) {
  model::SystemSpec spec;
  spec.name = "cut";
  spec.cores = 1;
  spec.server.policy = model::ServerPolicy::kNone;
  model::PeriodicTaskSpec t;
  t.name = "tau";
  t.period = tu(10);
  t.cost = tu(4);
  t.priority = 5;
  spec.periodic_tasks.push_back(t);
  spec.horizon = at_tu(3);  // cuts the first job mid-execution

  MultiVm machine({spec}, exp::ExecOptions{});
  machine.start();
  machine.run_until(spec.horizon, tu(1));
  const auto results = machine.collect();
  const auto busy = results[0].timeline.busy_intervals("tau");
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_EQ(busy[0].begin, at_tu(0));
  EXPECT_EQ(busy[0].end, at_tu(3));
}

TEST(MultiVm, ResumableAcrossMultipleRunUntilCalls) {
  const auto spec = two_core_spec();
  const auto partition = Partitioner().partition(spec);
  const auto subs = split_spec(spec, partition);

  MultiVm machine(subs, exp::ExecOptions{});
  machine.start();
  machine.run_until(at_tu(7));
  EXPECT_EQ(machine.vm(0).now(), at_tu(7));
  EXPECT_EQ(machine.vm(1).now(), at_tu(7));
  machine.run_until(spec.horizon);
  const auto results = machine.collect();

  MultiVm oneshot(subs, exp::ExecOptions{});
  oneshot.start();
  oneshot.run_until(spec.horizon);
  const auto expected = oneshot.collect();
  for (std::size_t c = 0; c < results.size(); ++c) {
    EXPECT_EQ(common::fingerprint(results[c].timeline),
              common::fingerprint(expected[c].timeline));
  }
}

}  // namespace
}  // namespace tsf::mp
