// MultiVm lock-step semantics: advancing N per-core VMs in shared epochs
// must be observationally identical to running each core's VM on its own,
// and must be insensitive to the epoch size.
#include "mp/multi_vm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/trace.h"
#include "mp/mp_system.h"
#include "mp/partition.h"
#include "support/artifact_dump.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

model::SystemSpec two_core_spec() {
  model::SystemSpec spec;
  spec.name = "mv";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < 2; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(3);
    t.priority = 10;
    spec.periodic_tasks.push_back(t);
  }
  for (int j = 0; j < 6; ++j) {
    model::AperiodicJobSpec job;
    job.name = "a" + std::to_string(j);
    job.release = at_tu(1 + 3 * j);
    job.cost = tu(1);
    spec.aperiodic_jobs.push_back(job);
  }
  spec.horizon = at_tu(24);
  return spec;
}

TEST(MultiVm, LockstepMatchesIndependentRunExec) {
  const auto spec = two_core_spec();
  const auto partition = Partitioner().partition(spec);
  ASSERT_TRUE(partition.complete());
  const auto subs = split_spec(spec, partition);
  ASSERT_EQ(subs.size(), 2u);

  MultiVm machine(subs, exp::ExecOptions{});
  machine.start();
  machine.run_until(spec.horizon);
  const auto lockstep = machine.collect();

  for (std::size_t c = 0; c < subs.size(); ++c) {
    const auto solo = exp::run_exec(subs[c]);
    ASSERT_EQ(lockstep[c].jobs.size(), solo.jobs.size());
    for (std::size_t i = 0; i < solo.jobs.size(); ++i) {
      EXPECT_EQ(lockstep[c].jobs[i].name, solo.jobs[i].name);
      EXPECT_EQ(lockstep[c].jobs[i].served, solo.jobs[i].served);
      EXPECT_EQ(lockstep[c].jobs[i].start, solo.jobs[i].start);
      EXPECT_EQ(lockstep[c].jobs[i].completion, solo.jobs[i].completion);
    }
    EXPECT_EQ(common::fingerprint(lockstep[c].timeline),
              common::fingerprint(solo.timeline));
  }
}

TEST(MultiVm, EpochSizeDoesNotChangeBehaviour) {
  const auto spec = two_core_spec();
  const auto partition = Partitioner().partition(spec);
  const auto subs = split_spec(spec, partition);

  std::vector<std::uint64_t> hashes;
  for (const auto quantum : {tu(1), tu(5), tu(24)}) {
    MultiVm machine(subs, exp::ExecOptions{});
    machine.start();
    machine.run_until(spec.horizon, quantum);
    std::uint64_t combined = 0;
    for (auto& result : machine.collect()) {
      combined ^= common::fingerprint(result.timeline);
    }
    hashes.push_back(combined);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

// A driver pause must not rotate the running fiber behind equal-priority
// waiters: with two same-priority tasks on one core, lock-step epochs of
// any size must reproduce the solo run exactly (regression: the freeze
// path used to re-enqueue with a fresh ready_seq_, so every epoch boundary
// round-robined the two tasks).
TEST(MultiVm, EqualPriorityTasksSurviveEpochBoundaries) {
  model::SystemSpec spec;
  spec.name = "eq";
  spec.cores = 1;
  spec.server.policy = model::ServerPolicy::kNone;
  for (int i = 0; i < 2; ++i) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(i);
    t.period = tu(10);
    t.cost = tu(4);
    t.priority = 5;  // same priority on the same core
    spec.periodic_tasks.push_back(t);
  }
  spec.horizon = at_tu(20);

  const auto solo = exp::run_exec(spec);
  MultiVm machine({spec}, exp::ExecOptions{});
  machine.start();
  machine.run_until(spec.horizon, tu(1));  // pause at every single tu
  const auto lockstep = machine.collect();
  EXPECT_EQ(common::fingerprint(lockstep[0].timeline),
            common::fingerprint(solo.timeline));
  EXPECT_EQ(lockstep[0].timeline.busy_intervals("tau0"),
            solo.timeline.busy_intervals("tau0"));
}

// A fiber mid-work() at the final horizon must still close its busy
// interval there (regression: the seamless-freeze change used to leave the
// trace open, and busy_intervals drops unterminated intervals).
TEST(MultiVm, FrozenFiberIntervalClosesAtFinalHorizon) {
  model::SystemSpec spec;
  spec.name = "cut";
  spec.cores = 1;
  spec.server.policy = model::ServerPolicy::kNone;
  model::PeriodicTaskSpec t;
  t.name = "tau";
  t.period = tu(10);
  t.cost = tu(4);
  t.priority = 5;
  spec.periodic_tasks.push_back(t);
  spec.horizon = at_tu(3);  // cuts the first job mid-execution

  MultiVm machine({spec}, exp::ExecOptions{});
  machine.start();
  machine.run_until(spec.horizon, tu(1));
  const auto results = machine.collect();
  const auto busy = results[0].timeline.busy_intervals("tau");
  ASSERT_EQ(busy.size(), 1u);
  EXPECT_EQ(busy[0].begin, at_tu(0));
  EXPECT_EQ(busy[0].end, at_tu(3));
}

// --- determinism regression suite: cross-core traffic ---

// Two cores exchanging fires both ways, a fire chain (ping -> pong ->
// peng), and a migratable job: the workload exercises every channel type.
model::SystemSpec cross_core_spec() {
  model::SystemSpec spec;
  spec.name = "det";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < 2; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(2);
    t.priority = 10;
    t.affinity = c;
    spec.periodic_tasks.push_back(t);
  }
  auto job = [&](const std::string& name, double release, double cost,
                 int affinity, const std::string& fires, bool triggered,
                 bool migrate) {
    model::AperiodicJobSpec j;
    j.name = name;
    j.release = TimePoint::origin() + common::Duration::from_tu(release);
    j.cost = common::Duration::from_tu(cost);
    j.affinity = affinity;
    j.fires = fires;
    j.triggered = triggered;
    j.migrate = migrate;
    spec.aperiodic_jobs.push_back(j);
  };
  job("ping", 1.0, 0.5, 0, "pong", false, false);
  job("pong", 0.0, 0.5, 1, "peng", true, false);
  job("peng", 0.0, 0.5, 0, "", true, false);
  job("back", 2.25, 0.5, 1, "echo", false, false);
  job("echo", 0.0, 0.5, 0, "", true, false);
  job("roam", 5.5, 1.0, -1, "", false, true);
  spec.horizon = at_tu(30);
  return spec;
}

TEST(MultiVmDeterminism, CrossCoreTrafficIsBitReproducible) {
  const auto spec = cross_core_spec();
  MpRunOptions options;
  options.quantum = Duration::from_tu(0.5);

  std::vector<MpRunResult> runs;
  for (int i = 0; i < 3; ++i) {
    runs.push_back(mp::run(spec, options));
  }
  // All traffic actually flowed: 3 fires + 1 migration, all delivered.
  ASSERT_EQ(runs[0].channel_deliveries.size(), 4u);
  for (const auto& d : runs[0].channel_deliveries) EXPECT_TRUE(d.ok);
  for (const auto& j : runs[0].merged.jobs) EXPECT_TRUE(j.served);

  const auto reference = common::fingerprint(runs[0].merged.timeline);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(common::fingerprint(runs[i].merged.timeline), reference)
        << testing::dump_timeline_mismatch(
               "cross_core_repeat_run" + std::to_string(i),
               runs[0].merged.timeline, runs[i].merged.timeline);
    ASSERT_EQ(runs[i].channel_deliveries.size(),
              runs[0].channel_deliveries.size());
    for (std::size_t d = 0; d < runs[i].channel_deliveries.size(); ++d) {
      EXPECT_EQ(runs[i].channel_deliveries[d].delivered,
                runs[0].channel_deliveries[d].delivered);
      EXPECT_EQ(runs[i].channel_deliveries[d].to_core,
                runs[0].channel_deliveries[d].to_core);
    }
  }
}

// Declaring the same jobs in a different order must not change the machine:
// routing is by affinity, releases are distinct instants, and channel
// deliveries are ordered by time — none of which see declaration order.
TEST(MultiVmDeterminism, HandlerDeclarationOrderDoesNotChangeTheRun) {
  const auto spec = cross_core_spec();
  auto permuted = spec;
  std::reverse(permuted.aperiodic_jobs.begin(), permuted.aperiodic_jobs.end());

  MpRunOptions options;
  options.quantum = Duration::from_tu(0.5);
  const auto a = mp::run(spec, options);
  const auto b = mp::run(permuted, options);

  EXPECT_EQ(common::fingerprint(a.merged.timeline),
            common::fingerprint(b.merged.timeline))
      << testing::dump_timeline_mismatch("cross_core_job_order",
                                         a.merged.timeline,
                                         b.merged.timeline);
  // Outcomes agree job by job (merged order differs with the spec, so
  // compare by name).
  ASSERT_EQ(a.merged.jobs.size(), b.merged.jobs.size());
  for (const auto& job_a : a.merged.jobs) {
    const auto it = std::find_if(
        b.merged.jobs.begin(), b.merged.jobs.end(),
        [&](const model::JobOutcome& j) { return j.name == job_a.name; });
    ASSERT_NE(it, b.merged.jobs.end()) << job_a.name;
    EXPECT_EQ(job_a.served, it->served) << job_a.name;
    EXPECT_EQ(job_a.release, it->release) << job_a.name;
    EXPECT_EQ(job_a.completion, it->completion) << job_a.name;
  }
}

// Epoch size changes *when* channel messages are delivered (that is the
// quantization delay), but any one quantum must reproduce itself exactly.
TEST(MultiVmDeterminism, EveryQuantumIsSelfReproducible) {
  const auto spec = cross_core_spec();
  for (const auto quantum : {Duration::from_tu(0.25), tu(1), tu(5)}) {
    MpRunOptions options;
    options.quantum = quantum;
    const auto a = mp::run(spec, options);
    const auto b = mp::run(spec, options);
    EXPECT_EQ(common::fingerprint(a.merged.timeline),
              common::fingerprint(b.merged.timeline))
        << "quantum " << common::to_string(quantum)
        << "; "
        << testing::dump_timeline_mismatch(
               "cross_core_quantum_" +
                   std::to_string(quantum.count()),
               a.merged.timeline, b.merged.timeline);
  }
}

// --- determinism regression suite: scheduling policies ---

// cross_core_spec plus an imbalanced unpinned burst: under semi the idle
// core steals from the backed-up one, under global the burst flows through
// the shared ready pool — on top of the cross-core fires and migration the
// base spec already exercises. Releases are distinct instants (the suite's
// standing precondition: simultaneous releases order the pending queue by
// timer-creation — i.e. declaration — order) but land within one epoch, so
// the burst still arrives as a burst.
model::SystemSpec policy_traffic_spec() {
  auto spec = cross_core_spec();
  for (int j = 0; j < 6; ++j) {
    model::AperiodicJobSpec job;
    job.name = "burst" + std::to_string(j);
    job.release = TimePoint::origin() + common::Duration::from_tu(8.0 + 0.05 * j);
    job.cost = common::Duration::from_tu(j % 2 == 0 ? 1.5 : 0.25);
    spec.aperiodic_jobs.push_back(job);
  }
  return spec;
}

class MultiVmPolicyDeterminism
    : public ::testing::TestWithParam<SchedPolicy> {};

INSTANTIATE_TEST_SUITE_P(Policies, MultiVmPolicyDeterminism,
                         ::testing::Values(SchedPolicy::kGlobal,
                                           SchedPolicy::kSemiPartitioned),
                         [](const auto& info) {
                           return info.param == SchedPolicy::kGlobal
                                      ? "Global"
                                      : "SemiPartitioned";
                         });

TEST_P(MultiVmPolicyDeterminism, ThreeRunsAreBitReproducible) {
  const auto spec = policy_traffic_spec();
  MpRunOptions options;
  options.policy = GetParam();
  options.quantum = Duration::from_tu(0.5);

  std::vector<MpRunResult> runs;
  for (int i = 0; i < 3; ++i) {
    runs.push_back(mp::run(spec, options));
  }
  // The policy actually moved work: steals under semi, pool dispatches
  // under global (otherwise this suite would pass vacuously).
  if (GetParam() == SchedPolicy::kSemiPartitioned) {
    EXPECT_GT(runs[0].steals, 0u);
  } else {
    EXPECT_GT(runs[0].pool_dispatches, 0u);
  }
  for (const auto& j : runs[0].merged.jobs) EXPECT_TRUE(j.served) << j.name;

  const auto reference = common::fingerprint(runs[0].merged.timeline);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(common::fingerprint(runs[i].merged.timeline), reference)
        << testing::dump_timeline_mismatch(
               std::string("policy_repeat_") + to_string(GetParam()) +
                   "_run" + std::to_string(i),
               runs[0].merged.timeline, runs[i].merged.timeline);
    ASSERT_EQ(runs[i].channel_deliveries.size(),
              runs[0].channel_deliveries.size());
    for (std::size_t d = 0; d < runs[i].channel_deliveries.size(); ++d) {
      EXPECT_EQ(runs[i].channel_deliveries[d].job,
                runs[0].channel_deliveries[d].job);
      EXPECT_EQ(runs[i].channel_deliveries[d].delivered,
                runs[0].channel_deliveries[d].delivered);
      EXPECT_EQ(runs[i].channel_deliveries[d].to_core,
                runs[0].channel_deliveries[d].to_core);
    }
    EXPECT_EQ(runs[i].steals, runs[0].steals);
    EXPECT_EQ(runs[i].pool_dispatches, runs[0].pool_dispatches);
  }
}

TEST_P(MultiVmPolicyDeterminism, JobDeclarationOrderDoesNotChangeTheRun) {
  const auto spec = policy_traffic_spec();
  auto permuted = spec;
  std::reverse(permuted.aperiodic_jobs.begin(), permuted.aperiodic_jobs.end());

  MpRunOptions options;
  options.policy = GetParam();
  options.quantum = Duration::from_tu(0.5);
  const auto a = mp::run(spec, options);
  const auto b = mp::run(permuted, options);

  // The pool / steal ordering key is (value, release, name) — never the
  // declaration index — so the machine must be identical.
  EXPECT_EQ(common::fingerprint(a.merged.timeline),
            common::fingerprint(b.merged.timeline))
      << testing::dump_timeline_mismatch(
             std::string("policy_job_order_") + to_string(GetParam()),
             a.merged.timeline, b.merged.timeline);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.pool_dispatches, b.pool_dispatches);
  ASSERT_EQ(a.merged.jobs.size(), b.merged.jobs.size());
  for (const auto& job_a : a.merged.jobs) {
    const auto it = std::find_if(
        b.merged.jobs.begin(), b.merged.jobs.end(),
        [&](const model::JobOutcome& j) { return j.name == job_a.name; });
    ASSERT_NE(it, b.merged.jobs.end()) << job_a.name;
    EXPECT_EQ(job_a.served, it->served) << job_a.name;
    EXPECT_EQ(job_a.release, it->release) << job_a.name;
    EXPECT_EQ(job_a.completion, it->completion) << job_a.name;
  }
}

TEST(MultiVm, ResumableAcrossMultipleRunUntilCalls) {
  const auto spec = two_core_spec();
  const auto partition = Partitioner().partition(spec);
  const auto subs = split_spec(spec, partition);

  MultiVm machine(subs, exp::ExecOptions{});
  machine.start();
  machine.run_until(at_tu(7));
  EXPECT_EQ(machine.vm(0).now(), at_tu(7));
  EXPECT_EQ(machine.vm(1).now(), at_tu(7));
  machine.run_until(spec.horizon);
  const auto results = machine.collect();

  MultiVm oneshot(subs, exp::ExecOptions{});
  oneshot.start();
  oneshot.run_until(spec.horizon);
  const auto expected = oneshot.collect();
  for (std::size_t c = 0; c < results.size(); ++c) {
    EXPECT_EQ(common::fingerprint(results[c].timeline),
              common::fingerprint(expected[c].timeline));
  }
}

}  // namespace
}  // namespace tsf::mp
