// The online rebalancer (mp/rebalance.h): drift-triggered migration of
// pending work, online admission of offline-rejected tasks, determinism,
// and the kRebalance ledger contract (every move exactly once).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.h"
#include "exp/metrics.h"
#include "mp/mp_system.h"
#include "mp/rebalance.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(double x) { return Duration::from_tu(x); }
TimePoint at_tu(double x) { return TimePoint::origin() + tu(x); }

// A sustained skewed load: bursts of six unpinned jobs every `spacing` tu.
// Round-robin routing walks the jobs in name order, so the even slots — the
// heavy ones — all land on core 0, which is offered more aperiodic work
// than its server replica was sized for while core 1 stays nearly idle.
// Exactly the "measured utilization drifts from the packed one" scenario
// the rebalancer exists for.
model::SystemSpec drift_spec(int bursts, double spacing = 8.0) {
  model::SystemSpec spec;
  spec.name = "drift";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < 2; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(2);
    t.priority = 10;
    t.affinity = c;
    spec.periodic_tasks.push_back(t);
  }
  for (int b = 0; b < bursts; ++b) {
    for (int j = 0; j < 6; ++j) {
      model::AperiodicJobSpec job;
      job.name = "b" + std::to_string(b) + "_" + std::to_string(j);
      job.release = at_tu(1.0 + spacing * b + 0.05 * j);
      job.cost = (j % 2 == 0) ? tu(2.0) : tu(0.25);
      spec.aperiodic_jobs.push_back(job);
    }
  }
  spec.horizon = at_tu(1.0 + spacing * bursts + 16);
  return spec;
}

MpRunOptions drift_options(RebalanceMode mode) {
  MpRunOptions options;
  options.strategy = PackingStrategy::kWorstFitDecreasing;
  options.quantum = tu(0.5);
  options.rebalance.mode = mode;
  options.rebalance.drift = 0.15;
  options.rebalance.period = tu(6);
  return options;
}

TEST(Rebalance, DriftRunsAreFingerprintIdenticalAcrossThreeRuns) {
  const auto spec = drift_spec(8);
  const auto options = drift_options(RebalanceMode::kDrift);
  const auto a = mp::run(spec, options);
  const auto b = mp::run(spec, options);
  const auto c = mp::run(spec, options);
  ASSERT_GT(a.rebalance_migrations, 0u)
      << "the drift workload must actually trigger migrations";
  EXPECT_GT(a.rebalance_passes, 0u);
  const auto fp = common::fingerprint(a.merged.timeline);
  EXPECT_EQ(fp, common::fingerprint(b.merged.timeline));
  EXPECT_EQ(fp, common::fingerprint(c.merged.timeline));
  EXPECT_EQ(a.rebalance_migrations, b.rebalance_migrations);
  EXPECT_EQ(a.rebalance_migrations, c.rebalance_migrations);
}

TEST(Rebalance, EveryMigrationAppearsExactlyOnceInTheLedger) {
  const auto spec = drift_spec(8);
  const auto run =
      mp::run(spec, drift_options(RebalanceMode::kDrift));
  ASSERT_GT(run.rebalance_migrations, 0u);

  std::uint64_t records = 0;
  std::set<std::pair<std::string, TimePoint>> moved;
  for (const auto& d : run.channel_deliveries) {
    if (d.kind != exp::ChannelDelivery::Kind::kRebalance) continue;
    ++records;
    ASSERT_TRUE(d.ok);
    ASSERT_NE(d.from_core, exp::ChannelDelivery::kNoCore)
        << "a drift-mode run must not record admissions";
    EXPECT_NE(d.from_core, d.to_core) << d.job;
    // Release-preserving like a steal, and never a boundary-coincident
    // (mid-bind) release: strictly earlier than the migration instant.
    EXPECT_LT(d.posted, d.delivered) << d.job;
    EXPECT_TRUE(moved.insert({d.job, d.posted}).second)
        << d.job << " migrated twice at the same release";
  }
  EXPECT_EQ(records, run.rebalance_migrations)
      << "counter and ledger drifted apart";

  // A migrated job completes on its new home; no unserved shadow of it may
  // survive the merge (the (job, release) dedupe of PR 3 extended to
  // kRebalance moves).
  std::map<std::pair<std::string, TimePoint>, int> outcomes;
  for (const auto& o : run.merged.jobs) ++outcomes[{o.name, o.release}];
  for (const auto& key : moved) {
    EXPECT_EQ(outcomes[key], 1)
        << key.first << ": a rebalanced job must have exactly one merged"
        << " outcome, shadows dropped";
  }

  // And the channel metrics see the moves.
  const auto ch =
      exp::compute_channel_metrics(run.channel_deliveries, run.merged);
  EXPECT_EQ(ch.rebalance_migrations, run.rebalance_migrations);
  EXPECT_EQ(ch.rebalance_admissions, 0u);
}

TEST(Rebalance, DriftModeImprovesTailResponseOverStatic) {
  const auto spec = drift_spec(8);
  const auto off =
      mp::run(spec, drift_options(RebalanceMode::kOff));
  const auto drift =
      mp::run(spec, drift_options(RebalanceMode::kDrift));
  const auto off_d = exp::compute_response_distribution({off.merged});
  const auto drift_d = exp::compute_response_distribution({drift.merged});
  EXPECT_LT(drift_d.p99_tu, off_d.p99_tu)
      << "rebalancing must beat the static partition on the drift workload";
  EXPECT_GE(drift_d.samples, off_d.samples)
      << "rebalancing must not serve fewer jobs";
}

TEST(Rebalance, OffIsTheExistingPartitionedBaseline) {
  const auto spec = drift_spec(4);
  MpRunOptions plain;
  plain.strategy = PackingStrategy::kWorstFitDecreasing;
  plain.quantum = tu(0.5);
  const auto baseline = mp::run(spec, plain);
  const auto off =
      mp::run(spec, drift_options(RebalanceMode::kOff));
  EXPECT_EQ(common::fingerprint(baseline.merged.timeline),
            common::fingerprint(off.merged.timeline));
  EXPECT_EQ(off.rebalance_migrations, 0u);
  EXPECT_EQ(off.rebalance_passes, 0u);
}

// Offline rejection, online admission: three unpinned tasks of 0.3 on two
// cores whose server replicas already hold 0.5 each — the packer places
// two and rejects the third. The live machine's measured aperiodic load is
// tiny, so measured headroom appears (0.3 + drift margin 0.25 + 0.3 fits
// under 1.0) and admit mode starts the rejected task mid-run on the
// chosen core — reclaiming server reservation the workload is not using.
TEST(Rebalance, AdmitsRejectedTaskOnceHeadroomAppears) {
  model::SystemSpec spec;
  spec.name = "admit";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int i = 0; i < 3; ++i) {
    model::PeriodicTaskSpec t;
    t.name = "t" + std::to_string(i);
    t.period = tu(10);
    t.cost = tu(3);
    t.priority = 10 + i;
    spec.periodic_tasks.push_back(t);
  }
  for (int j = 0; j < 2; ++j) {
    model::AperiodicJobSpec job;
    job.name = "j" + std::to_string(j);
    job.release = at_tu(1.0 + 10.0 * j);
    job.cost = tu(0.5);
    spec.aperiodic_jobs.push_back(job);
  }
  spec.horizon = at_tu(60);

  MpRunOptions options;
  options.quantum = tu(0.5);
  options.rebalance.mode = RebalanceMode::kAdmit;
  options.rebalance.drift = 0.25;
  options.rebalance.period = tu(6);

  const auto partition = Partitioner(options.strategy).partition(spec);
  ASSERT_EQ(partition.rejected.size(), 1u)
      << "the scenario must start with exactly one offline rejection";

  const auto run = mp::run(spec, partition, options);
  EXPECT_EQ(run.rebalance_admissions, 1u);
  EXPECT_EQ(run.rebalance_still_rejected, 0u);

  const std::string rejected_name = partition.rejected[0].item.name;
  const exp::ChannelDelivery* admission = nullptr;
  for (const auto& d : run.channel_deliveries) {
    if (d.kind == exp::ChannelDelivery::Kind::kRebalance &&
        d.from_core == exp::ChannelDelivery::kNoCore) {
      ASSERT_EQ(admission, nullptr) << "one admission, one record";
      admission = &d;
    }
  }
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->job, rejected_name);
  EXPECT_EQ(admission->posted, admission->delivered);
  EXPECT_TRUE(admission->ok);

  // The admitted task really runs from the admission instant onward.
  std::size_t completions = 0;
  for (const auto& p : run.merged.periodic_jobs) {
    if (p.task != rejected_name) continue;
    ++completions;
    EXPECT_GE(p.release, admission->delivered);
  }
  EXPECT_GT(completions, 0u) << rejected_name << " never ran after admission";

  // Deterministic like everything else at the boundaries.
  const auto rerun = mp::run(spec, partition, options);
  EXPECT_EQ(common::fingerprint(run.merged.timeline),
            common::fingerprint(rerun.merged.timeline));
  const auto ch =
      exp::compute_channel_metrics(run.channel_deliveries, run.merged);
  EXPECT_EQ(ch.rebalance_admissions, 1u);
}

TEST(RebalanceMode, ParseAndPrintRoundTrip) {
  for (const auto mode :
       {RebalanceMode::kOff, RebalanceMode::kDrift, RebalanceMode::kAdmit}) {
    const auto back = parse_rebalance_mode(to_string(mode));
    ASSERT_TRUE(back.has_value()) << to_string(mode);
    EXPECT_EQ(*back, mode);
  }
  EXPECT_FALSE(parse_rebalance_mode("sometimes").has_value());
}

}  // namespace
}  // namespace tsf::mp
