// Property fuzz of the threads backend's MPSC mailbox: 200 randomized
// multi-producer rounds, each checked for the three invariants the staged
// replay depends on — no lost messages, no duplicated messages, no torn
// messages — plus strict per-producer FIFO. Message payloads carry a
// checksum over their fields so a torn read (fields from two different
// messages) is detected even when both halves are individually valid.
//
// Sized to stay fast under ThreadSanitizer: the suite runs in the `mp`
// (and `threads`) ctest labels that the TSan CI job executes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "mp/mailbox.h"

namespace tsf::mp {
namespace {

struct Msg {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;
  std::uint64_t checksum = 0;

  static std::uint64_t expected_checksum(std::uint32_t producer,
                                         std::uint64_t seq,
                                         std::uint64_t payload) {
    // Cheap field mixer; any torn combination of two messages breaks it.
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    h ^= producer + 0x517cc1b727220a95ull + (h << 6) + (h >> 2);
    h ^= seq + 0x517cc1b727220a95ull + (h << 6) + (h >> 2);
    h ^= payload + 0x517cc1b727220a95ull + (h << 6) + (h >> 2);
    return h;
  }
};

// One randomized round: `producers` threads each push `per_producer`
// messages (with a seed-derived payload), the consumer drains after all
// producers joined — the same quiescent-drain discipline the epoch barrier
// gives ThreadedRuntime.
void run_round(std::uint32_t seed, std::uint32_t producers,
               std::uint64_t per_producer) {
  MpscQueue<Msg> queue;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::uint32_t p = 0; p < producers; ++p) {
    threads.emplace_back([&queue, &go, seed, p, per_producer] {
      std::mt19937_64 rng(seed * 1000003ull + p);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t s = 0; s < per_producer; ++s) {
        Msg m;
        m.producer = p;
        m.seq = s;
        m.payload = rng();
        m.checksum = Msg::expected_checksum(m.producer, m.seq, m.payload);
        queue.push(m);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  // Producers are quiescent and joined (ordered before this drain), so the
  // drain must see the complete batch — a false pop() here is a real loss.
  std::vector<std::uint64_t> next_seq(producers, 0);
  std::uint64_t drained = 0;
  Msg m;
  while (queue.pop(&m)) {
    ASSERT_LT(m.producer, producers) << "seed " << seed;
    ASSERT_EQ(m.checksum,
              Msg::expected_checksum(m.producer, m.seq, m.payload))
        << "torn message, seed " << seed;
    // Strict per-producer FIFO: each producer's messages arrive 0..n-1 in
    // order, which also rules out loss and duplication per producer.
    ASSERT_EQ(m.seq, next_seq[m.producer])
        << "producer " << m.producer << ", seed " << seed;
    ++next_seq[m.producer];
    ++drained;
  }
  ASSERT_EQ(drained, producers * per_producer) << "seed " << seed;
  for (std::uint32_t p = 0; p < producers; ++p) {
    ASSERT_EQ(next_seq[p], per_producer) << "producer " << p;
  }
}

TEST(MailboxProperty, TwoHundredRandomizedMultiProducerRounds) {
  std::mt19937 shape(42);
  for (std::uint32_t seed = 0; seed < 200; ++seed) {
    const std::uint32_t producers = 2 + shape() % 3;       // 2..4
    const std::uint64_t per_producer = 100 + shape() % 151;  // 100..250
    run_round(seed, producers, per_producer);
  }
}

TEST(MailboxProperty, InterleavedPushPopSingleProducer) {
  // With one producer the consumer may run concurrently (per-producer FIFO
  // needs no quiescence); exercises the pop-side link chase under load.
  MpscQueue<Msg> queue;
  constexpr std::uint64_t kCount = 20000;
  std::thread producer([&queue] {
    for (std::uint64_t s = 0; s < kCount; ++s) {
      Msg m;
      m.producer = 0;
      m.seq = s;
      m.payload = s * 2654435761ull;
      m.checksum = Msg::expected_checksum(m.producer, m.seq, m.payload);
      queue.push(m);
    }
  });
  std::uint64_t next = 0;
  Msg m;
  while (next < kCount) {
    if (queue.pop(&m)) {
      ASSERT_EQ(m.seq, next);
      ASSERT_EQ(m.checksum,
                Msg::expected_checksum(m.producer, m.seq, m.payload));
      ++next;
    }
  }
  producer.join();
  EXPECT_FALSE(queue.pop(&m));
}

TEST(MailboxProperty, DestructionReclaimsUnDrainedNodes) {
  // Leak-check path (ASan/valgrind in CI images that enable it): dropping a
  // queue with messages still inside must free every node.
  auto queue = std::make_unique<MpscQueue<Msg>>();
  for (std::uint64_t s = 0; s < 1000; ++s) {
    Msg m;
    m.seq = s;
    queue->push(m);
  }
  queue.reset();
}

TEST(MailboxProperty, SortReplayOrderReconstructsOracleOrder) {
  // (from_core, seq) sort is what re-creates the lock-step post order.
  std::vector<StagedFire> batch;
  const std::size_t cores[] = {2, 0, 1, 0, 2, 1, 0};
  const std::uint64_t seqs[] = {1, 0, 0, 1, 0, 1, 2};
  for (std::size_t i = 0; i < 7; ++i) {
    StagedFire f;
    f.job = "j" + std::to_string(i);
    f.from_core = cores[i];
    f.seq = seqs[i];
    batch.push_back(f);
  }
  sort_replay_order(&batch);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    const bool ordered =
        batch[i - 1].from_core < batch[i].from_core ||
        (batch[i - 1].from_core == batch[i].from_core &&
         batch[i - 1].seq < batch[i].seq);
    EXPECT_TRUE(ordered) << "index " << i;
  }
}

}  // namespace
}  // namespace tsf::mp
