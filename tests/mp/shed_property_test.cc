// Property fuzz of the overload subsystem: 200 random storm seeds (shape,
// seed and overload factor all varied) x all three overload modes, each run
// through the partitioned exec engine and held to the forbidden-behavior
// contract:
//
//   * the machine-checked invariants (common::InvariantChecker via
//     mp::check_overload_invariants) report nothing — never shed admitted
//     work, never serve shed work, exactly-once shed ledger, no admitted
//     deadline miss while sheddable work was served;
//   * outcome/ledger reconciliation — a job is never both served and shed,
//     every shed outcome has exactly one kShed ledger event and vice versa;
//   * determinism — rerunning the same cell reproduces the trace
//     fingerprint bit-for-bit (checked 3x on a rotating subset so the suite
//     stays inside the mp-label time budget).
//
// Storms here are scaled down from the bench's canonical parameters (short
// horizon, 1tu server replicas) so 600 runs stay fast; the full-size storms
// are exercised by bench/overload.cc and the golden integration tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/trace.h"
#include "gen/storms.h"
#include "mp/mp_system.h"
#include "mp/overload.h"

namespace tsf::mp {
namespace {

using common::Duration;

constexpr int kSeeds = 200;

MpRunOptions storm_options(exp::OverloadMode mode) {
  MpRunOptions options;
  options.quantum = Duration::from_tu(0.5);
  options.exec.overload.mode = mode;
  options.exec.overload.threshold = 0.75;
  options.exec.overload.period = Duration::time_units(6);
  return options;
}

TEST(ShedProperty, StormSeedsUnderAllModesKeepTheContract) {
  const gen::StormShape shapes[] = {gen::StormShape::kRouterPacketStorm,
                                    gen::StormShape::kMarketOpenBurst,
                                    gen::StormShape::kCascadingFaultBurst};
  const exp::OverloadMode modes[] = {exp::OverloadMode::kOff,
                                     exp::OverloadMode::kShed,
                                     exp::OverloadMode::kDover};
  for (int i = 0; i < kSeeds; ++i) {
    gen::StormParams params;
    params.shape = shapes[i % 3];
    params.seed = 40'000 + static_cast<std::uint64_t>(i);
    params.server_capacity = Duration::time_units(1);
    params.horizon_periods = 4;
    // Sweep from mild (1.25x) to brutal (3.25x) overload.
    params.overload_factor = 1.25 + 0.5 * (i % 5);
    const auto spec = gen::make_storm(params);

    for (const auto mode : modes) {
      SCOPED_TRACE("seed " + std::to_string(params.seed) + " shape " +
                   gen::to_string(params.shape) + " mode " +
                   exp::to_string(mode));
      const auto options = storm_options(mode);
      const auto run = mp::run(spec, options);

      // Machine-checked forbidden behaviors, straight off the trace.
      const auto violations = check_overload_invariants(spec, run);
      EXPECT_TRUE(violations.empty())
          << violations.size() << " violation(s), first: "
          << violations.front().name << " (" << violations.front().detail
          << ")";

      // Outcome-level: shed work is never served and vice versa.
      std::set<std::pair<std::string, std::int64_t>> shed_outcomes;
      for (const auto& job : run.merged.jobs) {
        EXPECT_FALSE(job.served && job.shed) << job.name;
        if (job.shed) {
          shed_outcomes.emplace(job.name, job.release.ticks());
        }
      }
      if (mode == exp::OverloadMode::kOff) {
        EXPECT_TRUE(shed_outcomes.empty());
        EXPECT_TRUE(run.merged.shed_events.empty());
      }

      // Exactly-once ledger: the kShed events and the shed outcomes are
      // the same set, with no duplicate entries.
      std::set<std::pair<std::string, std::int64_t>> ledger;
      for (const auto& event : run.merged.shed_events) {
        if (event.kind != model::ShedEvent::Kind::kShed) continue;
        const auto key =
            std::make_pair(event.job, event.release.ticks());
        EXPECT_TRUE(ledger.insert(key).second)
            << "duplicate shed ledger entry for " << event.job;
      }
      EXPECT_EQ(ledger, shed_outcomes);

      // Determinism: every 10th seed reruns the cell twice more and the
      // trace fingerprint must not move.
      if (i % 10 == 0) {
        const auto fp = common::fingerprint(run.merged.timeline);
        for (int repeat = 0; repeat < 2; ++repeat) {
          const auto again = mp::run(spec, options);
          EXPECT_EQ(common::fingerprint(again.merged.timeline), fp)
              << "repeat " << repeat;
        }
      }
    }
  }
}

}  // namespace
}  // namespace tsf::mp
