// Partitioner edge cases: empty tasksets, overloaded items, overloaded
// systems, pinning, heuristic differences, and determinism.
#include "mp/partition.h"

#include <gtest/gtest.h>

#include "gen/generator.h"

namespace tsf::mp {
namespace {

using common::Duration;

model::PeriodicTaskSpec task(const std::string& name, std::int64_t cost_tu,
                             std::int64_t period_tu, int affinity = -1) {
  model::PeriodicTaskSpec t;
  t.name = name;
  t.cost = Duration::time_units(cost_tu);
  t.period = Duration::time_units(period_tu);
  t.affinity = affinity;
  return t;
}

model::SystemSpec bare_spec(int cores) {
  model::SystemSpec spec;
  spec.name = "t";
  spec.cores = cores;
  spec.server.policy = model::ServerPolicy::kNone;
  return spec;
}

TEST(Partitioner, EmptyTasksetIsCompleteAndIdle) {
  const auto partition = Partitioner().partition(bare_spec(4));
  EXPECT_TRUE(partition.complete());
  ASSERT_EQ(partition.cores.size(), 4u);
  for (const auto& core : partition.cores) {
    EXPECT_TRUE(core.tasks.empty());
    EXPECT_FALSE(core.has_server);
    EXPECT_DOUBLE_EQ(core.utilization, 0.0);
  }
  EXPECT_DOUBLE_EQ(partition.total_utilization(), 0.0);
}

TEST(Partitioner, SingleTaskOverUtilizationIsRejected) {
  auto spec = bare_spec(4);
  spec.periodic_tasks.push_back(task("hog", 7, 6));  // u > 1: fits nowhere
  const auto partition = Partitioner().partition(spec);
  EXPECT_FALSE(partition.complete());
  ASSERT_EQ(partition.rejected.size(), 1u);
  EXPECT_EQ(partition.rejected[0].item.name, "hog");
  EXPECT_EQ(partition.rejected[0].reason, "does not fit on any core");
  for (const auto& core : partition.cores) EXPECT_TRUE(core.tasks.empty());
}

TEST(Partitioner, OverloadedSystemPopulatesRejectionList) {
  auto spec = bare_spec(2);
  for (int i = 0; i < 5; ++i) {
    spec.periodic_tasks.push_back(task("t" + std::to_string(i), 3, 6));
  }
  // 5 x 0.5 = 2.5 > 2 cores: exactly one task cannot be placed.
  const auto partition = Partitioner().partition(spec);
  EXPECT_FALSE(partition.complete());
  ASSERT_EQ(partition.rejected.size(), 1u);
  std::size_t placed = 0;
  for (const auto& core : partition.cores) placed += core.tasks.size();
  EXPECT_EQ(placed, 4u);
}

TEST(Partitioner, ServerReplicaOnEveryCore) {
  auto spec = bare_spec(3);
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = Duration::time_units(2);
  spec.server.period = Duration::time_units(6);
  const auto partition = Partitioner().partition(spec);
  EXPECT_TRUE(partition.complete());
  for (const auto& core : partition.cores) {
    EXPECT_TRUE(core.has_server);
    EXPECT_NEAR(core.utilization, 1.0 / 3.0, 1e-12);
  }
}

TEST(Partitioner, AffinityIsRespectedAndValidated) {
  auto spec = bare_spec(2);
  spec.periodic_tasks.push_back(task("pinned", 1, 6, 1));
  spec.periodic_tasks.push_back(task("free", 1, 6));
  spec.periodic_tasks.push_back(task("offgrid", 1, 6, 7));
  const auto partition = Partitioner().partition(spec);
  ASSERT_EQ(partition.rejected.size(), 1u);
  EXPECT_EQ(partition.rejected[0].item.name, "offgrid");
  EXPECT_EQ(partition.rejected[0].reason, "affinity beyond the last core");
  ASSERT_EQ(partition.cores[1].tasks.size(), 1u);
  EXPECT_EQ(partition.cores[1].tasks[0], 0u);  // "pinned"
}

TEST(Partitioner, PinnedTaskOnFullCoreIsRejected) {
  auto spec = bare_spec(2);
  spec.periodic_tasks.push_back(task("big", 6, 6, 0));    // fills core 0
  spec.periodic_tasks.push_back(task("late", 3, 6, 0));   // no room left
  const auto partition = Partitioner().partition(spec);
  ASSERT_EQ(partition.rejected.size(), 1u);
  EXPECT_EQ(partition.rejected[0].item.name, "late");
  EXPECT_EQ(partition.rejected[0].reason, "pinned core has no capacity left");
}

TEST(Partitioner, StrategiesPlaceDifferently) {
  auto spec = bare_spec(2);
  spec.periodic_tasks.push_back(task("a", 6, 10));  // 0.6
  spec.periodic_tasks.push_back(task("b", 6, 10));  // 0.6
  spec.periodic_tasks.push_back(task("c", 2, 10));  // 0.2
  spec.periodic_tasks.push_back(task("d", 2, 10));  // 0.2

  const auto ffd =
      Partitioner(PackingStrategy::kFirstFitDecreasing).partition(spec);
  const auto wfd =
      Partitioner(PackingStrategy::kWorstFitDecreasing).partition(spec);
  const auto bfd =
      Partitioner(PackingStrategy::kBestFitDecreasing).partition(spec);

  ASSERT_TRUE(ffd.complete());
  ASSERT_TRUE(wfd.complete());
  ASSERT_TRUE(bfd.complete());
  // First-fit piles the small tasks onto core 0; worst-fit balances them.
  EXPECT_NEAR(ffd.max_utilization(), 1.0, 1e-12);
  EXPECT_NEAR(wfd.max_utilization(), 0.8, 1e-12);
  EXPECT_NEAR(wfd.cores[0].utilization, wfd.cores[1].utilization, 1e-12);
  // Best-fit packs the fullest core that still has room.
  EXPECT_NEAR(bfd.max_utilization(), 1.0, 1e-12);
}

TEST(Partitioner, ExactlyFullCoreFitsDespiteRounding) {
  auto spec = bare_spec(1);
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = Duration::time_units(3);
  spec.server.period = Duration::time_units(6);
  spec.periodic_tasks.push_back(task("tau1", 2, 6));
  spec.periodic_tasks.push_back(task("tau2", 1, 6));
  // 3/6 + 2/6 + 1/6 == 1.0 exactly: must not be rejected by fp rounding.
  const auto partition = Partitioner().partition(spec);
  EXPECT_TRUE(partition.complete());
  EXPECT_NEAR(partition.cores[0].utilization, 1.0, 1e-12);
}

TEST(Partitioner, JobsRoundRobinOverServingCores) {
  auto spec = bare_spec(3);
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = Duration::time_units(1);
  spec.server.period = Duration::time_units(6);
  for (int i = 0; i < 7; ++i) {
    model::AperiodicJobSpec job;
    job.name = "a" + std::to_string(i);
    job.release = common::TimePoint::origin() + Duration::time_units(i);
    job.cost = Duration::time_units(1);
    spec.aperiodic_jobs.push_back(job);
  }
  spec.aperiodic_jobs[3].affinity = 2;  // pin one
  const auto partition = Partitioner().partition(spec);
  std::size_t routed = 0;
  for (const auto& core : partition.cores) routed += core.jobs.size();
  EXPECT_EQ(routed, 7u);
  // Pinned job on its core; the other six spread 2-2-2.
  EXPECT_EQ(partition.cores[0].jobs.size(), 2u);
  EXPECT_EQ(partition.cores[1].jobs.size(), 2u);
  EXPECT_EQ(partition.cores[2].jobs.size(), 3u);
}

TEST(Partitioner, AssignmentIsDeterministicAcrossRuns) {
  gen::MpGeneratorParams params;
  params.cores = 4;
  params.tasks_per_core = 5;
  params.task_density = 2.0;
  const auto spec = gen::generate_mp_system(params);
  for (const auto strategy :
       {PackingStrategy::kFirstFitDecreasing,
        PackingStrategy::kWorstFitDecreasing,
        PackingStrategy::kBestFitDecreasing}) {
    const auto first = Partitioner(strategy).partition(spec);
    const auto second = Partitioner(strategy).partition(spec);
    ASSERT_EQ(first.cores.size(), second.cores.size());
    for (std::size_t c = 0; c < first.cores.size(); ++c) {
      EXPECT_EQ(first.cores[c].tasks, second.cores[c].tasks);
      EXPECT_EQ(first.cores[c].jobs, second.cores[c].jobs);
      EXPECT_EQ(first.cores[c].has_server, second.cores[c].has_server);
      EXPECT_DOUBLE_EQ(first.cores[c].utilization,
                       second.cores[c].utilization);
    }
    ASSERT_EQ(first.rejected.size(), second.rejected.size());
  }
}

}  // namespace
}  // namespace tsf::mp
