// Property/fuzz suite for the taskset partitioner: seeded random systems
// pushed through all three packing heuristics, asserting the structural
// invariants every partition must satisfy regardless of workload:
//
//   P1  placements and rejections are a partition of the item set — every
//       task is placed exactly once XOR rejected exactly once;
//   P2  no core's packed utilization exceeds the bin bound;
//   P3  the recorded per-core utilization equals the sum of its members;
//   P4  pinned tasks land on their pinned core (or are rejected);
//   P5  every aperiodic job is routed to exactly one core, and unpinned
//       jobs only ever land on serving cores (when any exist);
//   P6  the partition is a pure function of (spec, strategy).
#include "mp/partition.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tsf::mp {
namespace {

using common::Duration;

constexpr double kEps = 1e-6;

model::SystemSpec random_spec(std::uint64_t seed) {
  common::Rng rng(seed);
  model::SystemSpec spec;
  spec.name = "fuzz" + std::to_string(seed);
  spec.cores = static_cast<int>(rng.uniform_i64(1, 8));

  // Sometimes a server, with a random (possibly hefty) replica size.
  if (rng.next_double() < 0.7) {
    spec.server.policy = rng.next_double() < 0.5
                             ? model::ServerPolicy::kPolling
                             : model::ServerPolicy::kDeferrable;
    spec.server.period = Duration::time_units(rng.uniform_i64(4, 12));
    spec.server.capacity = Duration::ticks(static_cast<std::int64_t>(
        spec.server.period.count() * rng.uniform(0.05, 0.6)));
  } else {
    spec.server.policy = model::ServerPolicy::kNone;
  }

  const int tasks = static_cast<int>(rng.uniform_i64(0, 24));
  for (int i = 0; i < tasks; ++i) {
    model::PeriodicTaskSpec t;
    t.name = "t" + std::to_string(i);
    t.period = Duration::time_units(rng.uniform_i64(5, 50));
    // Utilizations from comfortable to impossible (> 1 core), so rejection
    // paths are exercised too.
    t.cost = Duration::ticks(static_cast<std::int64_t>(
        t.period.count() * rng.uniform(0.01, 1.2)));
    if (t.cost.is_zero()) t.cost = Duration::ticks(1);
    t.priority = static_cast<int>(rng.uniform_i64(1, 20));
    if (rng.next_double() < 0.25) {
      // Pin some tasks; occasionally beyond the last core (must reject).
      t.affinity = static_cast<int>(rng.uniform_i64(0, spec.cores));
    }
    spec.periodic_tasks.push_back(t);
  }

  const int jobs = static_cast<int>(rng.uniform_i64(0, 16));
  for (int j = 0; j < jobs; ++j) {
    model::AperiodicJobSpec job;
    job.name = "j" + std::to_string(j);
    job.release = common::TimePoint::origin() +
                  Duration::ticks(rng.uniform_i64(0, 50000));
    job.cost = Duration::ticks(rng.uniform_i64(1, 3000));
    if (rng.next_double() < 0.2) {
      job.affinity = static_cast<int>(rng.uniform_i64(0, spec.cores - 1));
    }
    spec.aperiodic_jobs.push_back(job);
  }
  spec.horizon = common::TimePoint::origin() + Duration::time_units(100);
  return spec;
}

void check_invariants(const model::SystemSpec& spec,
                      const Partition& partition, const std::string& label) {
  ASSERT_EQ(partition.cores.size(), static_cast<std::size_t>(spec.cores))
      << label;

  // P1: every task index appears exactly once across placements+rejections.
  std::set<std::size_t> placed;
  for (const auto& core : partition.cores) {
    for (std::size_t i : core.tasks) {
      EXPECT_TRUE(placed.insert(i).second)
          << label << ": task " << i << " placed twice";
    }
  }
  std::set<std::size_t> rejected;
  for (const auto& r : partition.rejected) {
    if (r.item.kind != PartitionItem::Kind::kTask) continue;
    EXPECT_TRUE(rejected.insert(r.item.index).second)
        << label << ": task " << r.item.index << " rejected twice";
    EXPECT_EQ(placed.count(r.item.index), 0u)
        << label << ": task " << r.item.index << " both placed and rejected";
  }
  EXPECT_EQ(placed.size() + rejected.size(), spec.periodic_tasks.size())
      << label << ": tasks lost or invented";

  const bool has_server = spec.server.policy != model::ServerPolicy::kNone;
  const double server_u = has_server ? spec.server.utilization() : 0.0;

  for (std::size_t c = 0; c < partition.cores.size(); ++c) {
    const auto& core = partition.cores[c];
    // P2: bins are never overfull.
    EXPECT_LE(core.utilization, 1.0 + kEps)
        << label << ": core " << c << " overfull";
    // P3: the recorded utilization is the sum of the members'.
    double sum = core.has_server ? server_u : 0.0;
    for (std::size_t i : core.tasks) {
      sum += spec.periodic_tasks[i].utilization();
      // P4: pinned tasks are on their core.
      const int pin = spec.periodic_tasks[i].affinity;
      if (pin >= 0) {
        EXPECT_EQ(static_cast<std::size_t>(pin), c)
            << label << ": pinned task escaped its core";
      }
    }
    EXPECT_NEAR(core.utilization, sum, kEps) << label << ": core " << c;
    EXPECT_FALSE(core.has_server && !has_server) << label;
  }

  // P5: jobs are routed exactly once; unpinned jobs only to serving cores.
  std::vector<std::size_t> seen(spec.aperiodic_jobs.size(), 0);
  bool any_serving = false;
  for (const auto& core : partition.cores) any_serving |= core.has_server;
  for (std::size_t c = 0; c < partition.cores.size(); ++c) {
    for (std::size_t j : partition.cores[c].jobs) {
      ASSERT_LT(j, seen.size()) << label;
      ++seen[j];
      const int pin = spec.aperiodic_jobs[j].affinity;
      if (pin >= 0 && pin < spec.cores) {
        EXPECT_EQ(static_cast<std::size_t>(pin), c)
            << label << ": pinned job escaped its core";
      } else if (any_serving) {
        EXPECT_TRUE(partition.cores[c].has_server)
            << label << ": unpinned job routed to a serverless core";
      }
    }
  }
  for (std::size_t j = 0; j < seen.size(); ++j) {
    EXPECT_EQ(seen[j], 1u) << label << ": job " << j
                           << " routed " << seen[j] << " times";
  }
}

TEST(PartitionerProperty, InvariantsHoldOnSeededRandomSystems) {
  const PackingStrategy strategies[] = {
      PackingStrategy::kFirstFitDecreasing,
      PackingStrategy::kWorstFitDecreasing,
      PackingStrategy::kBestFitDecreasing,
  };
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto spec = random_spec(seed);
    for (const auto strategy : strategies) {
      const std::string label = "seed " + std::to_string(seed) + ", " +
                                std::string(to_string(strategy));
      const auto partition = Partitioner(strategy).partition(spec);
      check_invariants(spec, partition, label);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// P6: determinism — the same spec and strategy always produce the same
// assignment, independent of how often or in which order we ask.
TEST(PartitionerProperty, PartitionIsAPureFunctionOfSpecAndStrategy) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto spec = random_spec(seed);
    for (const auto strategy : {PackingStrategy::kFirstFitDecreasing,
                                PackingStrategy::kWorstFitDecreasing,
                                PackingStrategy::kBestFitDecreasing}) {
      const auto a = Partitioner(strategy).partition(spec);
      const auto b = Partitioner(strategy).partition(spec);
      ASSERT_EQ(a.cores.size(), b.cores.size());
      for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].tasks, b.cores[c].tasks);
        EXPECT_EQ(a.cores[c].jobs, b.cores[c].jobs);
        EXPECT_EQ(a.cores[c].has_server, b.cores[c].has_server);
      }
      ASSERT_EQ(a.rejected.size(), b.rejected.size());
      for (std::size_t r = 0; r < a.rejected.size(); ++r) {
        EXPECT_EQ(a.rejected[r].item.name, b.rejected[r].item.name);
      }
    }
  }
}

}  // namespace
}  // namespace tsf::mp
