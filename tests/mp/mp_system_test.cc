// Partitioned runtime end-to-end: split/merge, partitioned feasibility
// against per-core RTA, and the bit-reproducibility of multi-core runs.
#include "mp/mp_system.h"

#include <gtest/gtest.h>

#include "analysis/rta.h"
#include "common/trace.h"
#include "gen/generator.h"
#include "sim/simulator.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

// The paper's Table-1 scenario workload scaled to `cores`: per core one
// Polling Server replica (3/6), one tau1-class task (2/6) and one
// tau2-class task (1/6) — exactly 1.0 utilization per core — plus two
// h-style aperiodic events per core.
model::SystemSpec scenario_spec(int cores) {
  model::SystemSpec spec;
  spec.name = "scenario";
  spec.cores = cores;
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < cores; ++c) {
    model::PeriodicTaskSpec tau1;
    tau1.name = "tau1." + std::to_string(c);
    tau1.period = tu(6);
    tau1.cost = tu(2);
    tau1.priority = 20;
    spec.periodic_tasks.push_back(tau1);
    model::PeriodicTaskSpec tau2;
    tau2.name = "tau2." + std::to_string(c);
    tau2.period = tu(6);
    tau2.cost = tu(1);
    tau2.priority = 10;
    spec.periodic_tasks.push_back(tau2);
  }
  for (int c = 0; c < 2 * cores; ++c) {
    model::AperiodicJobSpec h;
    h.name = "h" + std::to_string(c);
    h.release = at_tu(2 + c);
    h.cost = tu(2);
    spec.aperiodic_jobs.push_back(h);
  }
  spec.horizon = at_tu(18);
  return spec;
}

TEST(SplitSpec, EveryTaskAndJobLandsOnExactlyOneCore) {
  const auto spec = scenario_spec(4);
  const auto partition = Partitioner().partition(spec);
  ASSERT_TRUE(partition.complete());
  const auto subs = split_spec(spec, partition);
  ASSERT_EQ(subs.size(), 4u);
  std::size_t tasks = 0, jobs = 0;
  for (const auto& sub : subs) {
    EXPECT_EQ(sub.cores, 1);
    EXPECT_EQ(sub.horizon, spec.horizon);
    EXPECT_EQ(sub.server.policy, model::ServerPolicy::kPolling);
    tasks += sub.periodic_tasks.size();
    jobs += sub.aperiodic_jobs.size();
  }
  EXPECT_EQ(tasks, spec.periodic_tasks.size());
  EXPECT_EQ(jobs, spec.aperiodic_jobs.size());
}

TEST(SplitSpec, CoreWithoutServerReplicaGetsPolicyNone) {
  model::SystemSpec spec;
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kNone;
  spec.horizon = at_tu(6);
  const auto partition = Partitioner().partition(spec);
  const auto subs = split_spec(spec, partition);
  for (const auto& sub : subs) {
    EXPECT_EQ(sub.server.policy, model::ServerPolicy::kNone);
  }
}

// Acceptance: the partitioned RTA verdict must agree with running the
// uniprocessor RTA independently on every split core.
TEST(MpFeasibility, AgreesWithPerCoreSingleVmRta) {
  gen::MpGeneratorParams params;
  params.cores = 4;
  params.tasks_per_core = 4;
  params.per_core_utilization = 0.45;
  params.task_density = 1.0;
  const auto spec = gen::generate_mp_system(params);

  const auto verdict = analyze(spec, PackingStrategy::kWorstFitDecreasing);
  ASSERT_TRUE(verdict.partition.complete());
  const auto subs = split_spec(spec, verdict.partition);
  ASSERT_EQ(verdict.per_core.cores.size(), subs.size());

  bool all_cores_feasible = true;
  for (std::size_t c = 0; c < subs.size(); ++c) {
    const model::ServerSpec* server =
        subs[c].server.policy == model::ServerPolicy::kNone
            ? nullptr
            : &subs[c].server;
    const auto expected =
        analysis::response_times(subs[c].periodic_tasks, server);
    const auto& got = verdict.per_core.cores[c].response_times;
    ASSERT_EQ(got.size(), expected.size());
    bool core_feasible = true;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(got[i].has_value(), expected[i].has_value());
      if (expected[i].has_value()) EXPECT_EQ(*got[i], *expected[i]);
      core_feasible = core_feasible && expected[i].has_value();
    }
    EXPECT_EQ(verdict.per_core.cores[c].feasible, core_feasible);
    all_cores_feasible = all_cores_feasible && core_feasible;
  }
  EXPECT_EQ(verdict.feasible, all_cores_feasible);
}

TEST(MpFeasibility, RejectionMakesSystemInfeasible) {
  auto spec = scenario_spec(2);
  model::PeriodicTaskSpec hog;
  hog.name = "hog";
  hog.period = tu(6);
  hog.cost = tu(7);  // u > 1
  spec.periodic_tasks.push_back(hog);
  const auto verdict = analyze(spec);
  EXPECT_FALSE(verdict.partition.complete());
  EXPECT_FALSE(verdict.feasible);
  // The placed cores can still each be feasible.
  EXPECT_TRUE(verdict.per_core.feasible);
}

// Acceptance: a partitioned 4-core run of the paper's scenario workload
// completes deterministically — same trace hash across two runs, on both
// engines.
TEST(MpRun, FourCoreScenarioIsDeterministic) {
  const auto spec = scenario_spec(4);
  const auto sim1 = run_partitioned_sim(spec);
  const auto sim2 = run_partitioned_sim(spec);
  EXPECT_EQ(common::fingerprint(sim1.merged.timeline),
            common::fingerprint(sim2.merged.timeline));
  ASSERT_EQ(sim1.merged.jobs.size(), sim2.merged.jobs.size());

  const auto exec1 = run_partitioned_exec(spec);
  const auto exec2 = run_partitioned_exec(spec);
  const auto hash1 = common::fingerprint(exec1.merged.timeline);
  const auto hash2 = common::fingerprint(exec2.merged.timeline);
  EXPECT_NE(exec1.merged.timeline.records().size(), 0u);
  EXPECT_EQ(hash1, hash2);
  ASSERT_EQ(exec1.merged.jobs.size(), exec2.merged.jobs.size());
  for (std::size_t i = 0; i < exec1.merged.jobs.size(); ++i) {
    EXPECT_EQ(exec1.merged.jobs[i].served, exec2.merged.jobs[i].served);
    EXPECT_EQ(exec1.merged.jobs[i].completion,
              exec2.merged.jobs[i].completion);
  }
}

TEST(MpRun, MergedJobsKeepSpecOrderAndEntitiesAreNamespaced) {
  const auto spec = scenario_spec(2);
  const auto run = run_partitioned_exec(spec);
  ASSERT_EQ(run.merged.jobs.size(), spec.aperiodic_jobs.size());
  for (std::size_t i = 0; i < spec.aperiodic_jobs.size(); ++i) {
    EXPECT_EQ(run.merged.jobs[i].name, spec.aperiodic_jobs[i].name);
  }
  bool saw_c0 = false, saw_c1 = false;
  for (const auto& who : run.merged.timeline.entities()) {
    saw_c0 = saw_c0 || who.rfind("c0/", 0) == 0;
    saw_c1 = saw_c1 || who.rfind("c1/", 0) == 0;
  }
  EXPECT_TRUE(saw_c0);
  EXPECT_TRUE(saw_c1);
}

// On the exactly-schedulable scenario the periodic tasks never miss, on
// any core, under either engine — the partitioned runtime preserves the
// paper's uniprocessor guarantees core-by-core.
TEST(MpRun, ScenarioPeriodicsMeetDeadlinesOnAllCores) {
  const auto spec = scenario_spec(4);
  const auto exec = run_partitioned_exec(spec);
  EXPECT_FALSE(exec.merged.periodic_jobs.empty());
  for (const auto& p : exec.merged.periodic_jobs) {
    EXPECT_FALSE(p.deadline_missed) << p.task;
  }
}

// Partitioned sim of a 1-core spec must match the plain simulator: the mp
// layer adds routing and namespacing, not behaviour.
TEST(MpRun, OneCorePartitionedSimMatchesUniprocessorSim) {
  auto spec = scenario_spec(1);
  const auto mp_run = run_partitioned_sim(spec);
  const auto flat = sim::simulate(spec);
  ASSERT_EQ(mp_run.merged.jobs.size(), flat.jobs.size());
  for (std::size_t i = 0; i < flat.jobs.size(); ++i) {
    EXPECT_EQ(mp_run.merged.jobs[i].served, flat.jobs[i].served);
    EXPECT_EQ(mp_run.merged.jobs[i].completion, flat.jobs[i].completion);
  }
}

}  // namespace
}  // namespace tsf::mp
