// Partitioned runtime end-to-end: split/merge, partitioned feasibility
// against per-core RTA, and the bit-reproducibility of multi-core runs.
#include "mp/mp_system.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "analysis/rta.h"
#include "common/trace.h"
#include "gen/generator.h"
#include "sim/simulator.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

MpRunOptions sim_options() {
  MpRunOptions o;
  o.engine = RunEngine::kSim;
  return o;
}

// The paper's Table-1 scenario workload scaled to `cores`: per core one
// Polling Server replica (3/6), one tau1-class task (2/6) and one
// tau2-class task (1/6) — exactly 1.0 utilization per core — plus two
// h-style aperiodic events per core.
model::SystemSpec scenario_spec(int cores) {
  model::SystemSpec spec;
  spec.name = "scenario";
  spec.cores = cores;
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < cores; ++c) {
    model::PeriodicTaskSpec tau1;
    tau1.name = "tau1." + std::to_string(c);
    tau1.period = tu(6);
    tau1.cost = tu(2);
    tau1.priority = 20;
    spec.periodic_tasks.push_back(tau1);
    model::PeriodicTaskSpec tau2;
    tau2.name = "tau2." + std::to_string(c);
    tau2.period = tu(6);
    tau2.cost = tu(1);
    tau2.priority = 10;
    spec.periodic_tasks.push_back(tau2);
  }
  for (int c = 0; c < 2 * cores; ++c) {
    model::AperiodicJobSpec h;
    h.name = "h" + std::to_string(c);
    h.release = at_tu(2 + c);
    h.cost = tu(2);
    spec.aperiodic_jobs.push_back(h);
  }
  spec.horizon = at_tu(18);
  return spec;
}

TEST(SplitSpec, EveryTaskAndJobLandsOnExactlyOneCore) {
  const auto spec = scenario_spec(4);
  const auto partition = Partitioner().partition(spec);
  ASSERT_TRUE(partition.complete());
  const auto subs = split_spec(spec, partition);
  ASSERT_EQ(subs.size(), 4u);
  std::size_t tasks = 0, jobs = 0;
  for (const auto& sub : subs) {
    EXPECT_EQ(sub.cores, 1);
    EXPECT_EQ(sub.horizon, spec.horizon);
    EXPECT_EQ(sub.server.policy, model::ServerPolicy::kPolling);
    tasks += sub.periodic_tasks.size();
    jobs += sub.aperiodic_jobs.size();
  }
  EXPECT_EQ(tasks, spec.periodic_tasks.size());
  EXPECT_EQ(jobs, spec.aperiodic_jobs.size());
}

TEST(SplitSpec, CoreWithoutServerReplicaGetsPolicyNone) {
  model::SystemSpec spec;
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kNone;
  spec.horizon = at_tu(6);
  const auto partition = Partitioner().partition(spec);
  const auto subs = split_spec(spec, partition);
  for (const auto& sub : subs) {
    EXPECT_EQ(sub.server.policy, model::ServerPolicy::kNone);
  }
}

// Acceptance: the partitioned RTA verdict must agree with running the
// uniprocessor RTA independently on every split core.
// Regression for the stealing-era merge: per-core outcomes are no longer
// disjoint. A job stolen mid-run can leave an unserved shadow with the same
// (name, release) on its home core (e.g. a partial bookkeeping path, or a
// steal whose thief recorded the preserved release) — the merge must keep
// the served record and drop the shadow instead of double-counting the job.
TEST(MergeResults, DedupesByJobAndRelease) {
  model::SystemSpec spec;
  spec.name = "dedupe";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  model::AperiodicJobSpec stolen;
  stolen.name = "stolen";
  stolen.release = at_tu(2);
  stolen.cost = tu(1);
  spec.aperiodic_jobs.push_back(stolen);
  model::AperiodicJobSpec local;
  local.name = "local";
  local.release = at_tu(3);
  local.cost = tu(1);
  spec.aperiodic_jobs.push_back(local);
  spec.horizon = at_tu(12);
  const auto partition = Partitioner().partition(spec);

  // Core 0 (the home core) booked "stolen" as unserved at its release;
  // core 1 (the thief) actually served it — same (name, release).
  std::vector<model::RunResult> per_core(2);
  model::JobOutcome shadow;
  shadow.name = "stolen";
  shadow.release = at_tu(2);
  shadow.cost = tu(1);
  per_core[0].jobs.push_back(shadow);
  model::JobOutcome served_local;
  served_local.name = "local";
  served_local.release = at_tu(3);
  served_local.cost = tu(1);
  served_local.served = true;
  served_local.start = at_tu(3);
  served_local.completion = at_tu(4);
  per_core[0].jobs.push_back(served_local);
  model::JobOutcome served_stolen;
  served_stolen.name = "stolen";
  served_stolen.release = at_tu(2);
  served_stolen.cost = tu(1);
  served_stolen.served = true;
  served_stolen.start = at_tu(5);
  served_stolen.completion = at_tu(6);
  per_core[1].jobs.push_back(served_stolen);

  const auto merged = merge_results(spec, partition, per_core);
  ASSERT_EQ(merged.jobs.size(), 2u) << "shadow outcome survived the merge";
  EXPECT_EQ(merged.jobs[0].name, "stolen");
  EXPECT_TRUE(merged.jobs[0].served) << "merge kept the shadow, not the"
                                        " served record";
  EXPECT_EQ(merged.jobs[0].completion, at_tu(6));
  EXPECT_EQ(merged.jobs[1].name, "local");
  EXPECT_TRUE(merged.jobs[1].served);
}

// The dedupe is strictly cross-core: two unserved shadows of one lost
// release on *different* cores collapse to a single record, but within one
// core nothing is merged — two genuine completions of a re-fired release,
// or two same-instant pending releases, are both kept (a core never lies
// about its own bookkeeping).
TEST(MergeResults, KeepsRepeatedCompletionsButCollapsesShadows) {
  model::SystemSpec spec;
  spec.name = "dedupe2";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  model::AperiodicJobSpec job;
  job.name = "j";
  job.release = at_tu(1);
  job.cost = tu(1);
  spec.aperiodic_jobs.push_back(job);
  spec.horizon = at_tu(12);
  const auto partition = Partitioner().partition(spec);

  {
    std::vector<model::RunResult> per_core(2);
    for (auto& result : per_core) {
      model::JobOutcome shadow;
      shadow.name = "j";
      shadow.release = at_tu(1);
      shadow.cost = tu(1);
      result.jobs.push_back(shadow);
    }
    const auto merged = merge_results(spec, partition, per_core);
    ASSERT_EQ(merged.jobs.size(), 1u);
    EXPECT_FALSE(merged.jobs[0].served);
  }
  {
    std::vector<model::RunResult> per_core(2);
    for (auto& result : per_core) {
      model::JobOutcome done;
      done.name = "j";
      done.release = at_tu(1);
      done.cost = tu(1);
      done.served = true;
      done.start = at_tu(2);
      done.completion = at_tu(3);
      result.jobs.push_back(done);
    }
    const auto merged = merge_results(spec, partition, per_core);
    ASSERT_EQ(merged.jobs.size(), 2u)
        << "a genuine repeated completion must not be deduped";
  }
  {
    // One core, two same-instant releases of a re-fired job: one served,
    // one still pending — both are real and both must survive (regression:
    // an unconditional (name, release) dedupe used to swallow the pending
    // one and under-report the released count).
    std::vector<model::RunResult> per_core(2);
    model::JobOutcome done;
    done.name = "j";
    done.release = at_tu(1);
    done.cost = tu(1);
    done.served = true;
    done.start = at_tu(2);
    done.completion = at_tu(3);
    per_core[0].jobs.push_back(done);
    model::JobOutcome pending;
    pending.name = "j";
    pending.release = at_tu(1);
    pending.cost = tu(1);
    per_core[0].jobs.push_back(pending);
    const auto merged = merge_results(spec, partition, per_core);
    ASSERT_EQ(merged.jobs.size(), 2u)
        << "same-core same-instant releases are distinct, not shadows";
    EXPECT_TRUE(merged.jobs[0].served);
    EXPECT_FALSE(merged.jobs[1].served);
  }
}

// End-to-end: a rebalanced run (drift mode) whose migrated jobs complete on
// their *new* home cores leaves no unserved shadow in the merge — the
// (job, release) dedupe holds for kRebalance moves exactly as for steals.
TEST(MergeResults, RebalancedJobCompletingOnNewHomeLeavesNoShadow) {
  model::SystemSpec spec;
  spec.name = "rebalance_dedupe";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int b = 0; b < 6; ++b) {
    for (int j = 0; j < 6; ++j) {
      model::AperiodicJobSpec job;
      job.name = "b" + std::to_string(b) + "_" + std::to_string(j);
      job.release =
          TimePoint::origin() + Duration::from_tu(1.0 + 8.0 * b + 0.05 * j);
      job.cost = Duration::from_tu(j % 2 == 0 ? 2.0 : 0.25);
      spec.aperiodic_jobs.push_back(job);
    }
  }
  spec.horizon = at_tu(65);  // 1 + 8 * 6 bursts + 16 drain

  MpRunOptions options;
  options.strategy = PackingStrategy::kWorstFitDecreasing;
  options.quantum = Duration::from_tu(0.5);
  options.rebalance.mode = RebalanceMode::kDrift;
  options.rebalance.drift = 0.15;
  options.rebalance.period = tu(6);
  const auto run = mp::run(spec, options);
  ASSERT_GT(run.rebalance_migrations, 0u)
      << "the workload must actually trigger rebalance migrations";

  std::map<std::pair<std::string, TimePoint>, std::size_t> outcomes;
  for (const auto& o : run.merged.jobs) ++outcomes[{o.name, o.release}];
  std::set<std::string> migrated;
  for (const auto& d : run.channel_deliveries) {
    if (d.kind != exp::ChannelDelivery::Kind::kRebalance) continue;
    migrated.insert(d.job);
    const auto key = std::make_pair(d.job, d.posted);
    ASSERT_EQ(outcomes[key], 1u)
        << d.job << ": the home core's unserved shadow survived the merge";
  }
  EXPECT_FALSE(migrated.empty());
  // And at least one migrated job was actually served on its new home.
  std::size_t served_after_move = 0;
  for (const auto& o : run.merged.jobs) {
    if (migrated.count(o.name) > 0 && o.served) ++served_after_move;
  }
  EXPECT_GT(served_after_move, 0u);
}

// End-to-end: a semi-partitioned run with a real steal produces exactly one
// outcome per job and books the stolen job as served.
TEST(MergeResults, StolenJobHasExactlyOneMergedOutcome) {
  model::SystemSpec spec;
  spec.name = "steal_e2e";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int j = 0; j < 6; ++j) {
    model::AperiodicJobSpec job;
    job.name = "b" + std::to_string(j);
    job.release = TimePoint::origin() + Duration::from_tu(1.0 + 0.05 * j);
    job.cost = Duration::from_tu(j % 2 == 0 ? 1.5 : 0.25);
    spec.aperiodic_jobs.push_back(job);
  }
  spec.horizon = at_tu(24);

  MpRunOptions options;
  options.policy = SchedPolicy::kSemiPartitioned;
  options.quantum = Duration::from_tu(0.5);
  const auto run = mp::run(spec, options);
  ASSERT_GT(run.steals, 0u) << "workload must actually trigger a steal";
  ASSERT_EQ(run.merged.jobs.size(), spec.aperiodic_jobs.size());
  std::set<std::string> names;
  for (const auto& outcome : run.merged.jobs) {
    EXPECT_TRUE(names.insert(outcome.name).second)
        << outcome.name << " merged twice";
    EXPECT_TRUE(outcome.served) << outcome.name;
  }
}

TEST(MpFeasibility, AgreesWithPerCoreSingleVmRta) {
  gen::MpGeneratorParams params;
  params.cores = 4;
  params.tasks_per_core = 4;
  params.per_core_utilization = 0.45;
  params.task_density = 1.0;
  const auto spec = gen::generate_mp_system(params);

  const auto verdict = analyze(spec, PackingStrategy::kWorstFitDecreasing);
  ASSERT_TRUE(verdict.partition.complete());
  const auto subs = split_spec(spec, verdict.partition);
  ASSERT_EQ(verdict.per_core.cores.size(), subs.size());

  bool all_cores_feasible = true;
  for (std::size_t c = 0; c < subs.size(); ++c) {
    const model::ServerSpec* server =
        subs[c].server.policy == model::ServerPolicy::kNone
            ? nullptr
            : &subs[c].server;
    const auto expected =
        analysis::response_times(subs[c].periodic_tasks, server);
    const auto& got = verdict.per_core.cores[c].response_times;
    ASSERT_EQ(got.size(), expected.size());
    bool core_feasible = true;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(got[i].has_value(), expected[i].has_value());
      if (expected[i].has_value()) EXPECT_EQ(*got[i], *expected[i]);
      core_feasible = core_feasible && expected[i].has_value();
    }
    EXPECT_EQ(verdict.per_core.cores[c].feasible, core_feasible);
    all_cores_feasible = all_cores_feasible && core_feasible;
  }
  EXPECT_EQ(verdict.feasible, all_cores_feasible);
}

TEST(MpFeasibility, RejectionMakesSystemInfeasible) {
  auto spec = scenario_spec(2);
  model::PeriodicTaskSpec hog;
  hog.name = "hog";
  hog.period = tu(6);
  hog.cost = tu(7);  // u > 1
  spec.periodic_tasks.push_back(hog);
  const auto verdict = analyze(spec);
  EXPECT_FALSE(verdict.partition.complete());
  EXPECT_FALSE(verdict.feasible);
  // The placed cores can still each be feasible.
  EXPECT_TRUE(verdict.per_core.feasible);
}

// Acceptance: a partitioned 4-core run of the paper's scenario workload
// completes deterministically — same trace hash across two runs, on both
// engines.
TEST(MpRun, FourCoreScenarioIsDeterministic) {
  const auto spec = scenario_spec(4);
  const auto sim1 = mp::run(spec, sim_options());
  const auto sim2 = mp::run(spec, sim_options());
  EXPECT_EQ(common::fingerprint(sim1.merged.timeline),
            common::fingerprint(sim2.merged.timeline));
  ASSERT_EQ(sim1.merged.jobs.size(), sim2.merged.jobs.size());

  const auto exec1 = mp::run(spec);
  const auto exec2 = mp::run(spec);
  const auto hash1 = common::fingerprint(exec1.merged.timeline);
  const auto hash2 = common::fingerprint(exec2.merged.timeline);
  EXPECT_NE(exec1.merged.timeline.records().size(), 0u);
  EXPECT_EQ(hash1, hash2);
  ASSERT_EQ(exec1.merged.jobs.size(), exec2.merged.jobs.size());
  for (std::size_t i = 0; i < exec1.merged.jobs.size(); ++i) {
    EXPECT_EQ(exec1.merged.jobs[i].served, exec2.merged.jobs[i].served);
    EXPECT_EQ(exec1.merged.jobs[i].completion,
              exec2.merged.jobs[i].completion);
  }
}

TEST(MpRun, MergedJobsKeepSpecOrderAndEntitiesAreNamespaced) {
  const auto spec = scenario_spec(2);
  const auto run = mp::run(spec);
  ASSERT_EQ(run.merged.jobs.size(), spec.aperiodic_jobs.size());
  for (std::size_t i = 0; i < spec.aperiodic_jobs.size(); ++i) {
    EXPECT_EQ(run.merged.jobs[i].name, spec.aperiodic_jobs[i].name);
  }
  bool saw_c0 = false, saw_c1 = false;
  for (const auto& who : run.merged.timeline.entities()) {
    saw_c0 = saw_c0 || who.rfind("c0/", 0) == 0;
    saw_c1 = saw_c1 || who.rfind("c1/", 0) == 0;
  }
  EXPECT_TRUE(saw_c0);
  EXPECT_TRUE(saw_c1);
}

// On the exactly-schedulable scenario the periodic tasks never miss, on
// any core, under either engine — the partitioned runtime preserves the
// paper's uniprocessor guarantees core-by-core.
TEST(MpRun, ScenarioPeriodicsMeetDeadlinesOnAllCores) {
  const auto spec = scenario_spec(4);
  const auto exec = mp::run(spec);
  EXPECT_FALSE(exec.merged.periodic_jobs.empty());
  for (const auto& p : exec.merged.periodic_jobs) {
    EXPECT_FALSE(p.deadline_missed) << p.task;
  }
}

// Partitioned sim of a 1-core spec must match the plain simulator: the mp
// layer adds routing and namespacing, not behaviour.
TEST(MpRun, OneCorePartitionedSimMatchesUniprocessorSim) {
  auto spec = scenario_spec(1);
  const auto mp_run = mp::run(spec, sim_options());
  const auto flat = sim::simulate(spec);
  ASSERT_EQ(mp_run.merged.jobs.size(), flat.jobs.size());
  for (std::size_t i = 0; i < flat.jobs.size(); ++i) {
    EXPECT_EQ(mp_run.merged.jobs[i].served, flat.jobs[i].served);
    EXPECT_EQ(mp_run.merged.jobs[i].completion, flat.jobs[i].completion);
  }
}

}  // namespace
}  // namespace tsf::mp
