// The memory-discipline contract of the batched-dispatch PR: once warmed
// up, the steady-state epoch loop performs ZERO heap allocations. The two
// pieces that compose into an epoch of either backend are asserted
// separately with a global operator-new interposer:
//
//   1. The per-core world (rtsj VM + ExecSystem): timer fires, server
//      dispatch (batched and unbatched), periodic re-releases, outcome
//      recording. This is the whole lock-step epoch and the worker-thread
//      body of the threads backend.
//   2. The threads backend's staging substrate (MpscQueue<StagedFire>):
//      after one warm epoch, push/drain/recycle cycles run entirely on
//      pooled nodes.
//
// The interposer replaces global operator new, so this TU must be the only
// one in the binary including alloc_interposer.h. Under ASan/TSan the
// sanitizer owns the allocator and the tests skip.
#include "support/alloc_interposer.h"

#include <gtest/gtest.h>

#include <string>

#include "common/time.h"
#include "common/trace.h"
#include "exp/exec_runner.h"
#include "model/spec.h"
#include "mp/mailbox.h"
#include "rtsj/vm/vm.h"

namespace tsf {
namespace {

using common::Duration;
using common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

// Swallows every record: the steady-state claim is about the engine, not
// about a trace consumer's buffering policy.
class NullSink final : public common::TraceSink {
 public:
  void record(TimePoint, common::TraceKind, std::string_view, std::int64_t,
              std::string_view) override {}
  bool retract(TimePoint, common::TraceKind, std::string_view) override {
    return true;
  }
};

// Steady periodic + aperiodic load with no fire chains, migration or
// triggered jobs (those cross cores and are exercised by the equivalence
// suites; the zero-alloc claim is about the per-core dispatch loop). Short
// job names stay within the small-string optimization on purpose.
model::SystemSpec steady_spec() {
  model::SystemSpec spec;
  spec.name = "za";
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  model::PeriodicTaskSpec task;
  task.name = "tau";
  task.period = tu(8);
  task.cost = tu(2);
  task.priority = 10;
  spec.periodic_tasks.push_back(task);
  for (int j = 0; j < 24; ++j) {
    model::AperiodicJobSpec job;
    job.name = "a" + std::to_string(j);
    job.release = at_tu(1 + 4 * j);
    job.cost = tu(1);
    spec.aperiodic_jobs.push_back(job);
  }
  spec.horizon = at_tu(100);
  return spec;
}

void expect_zero_alloc_world(int batch) {
  if (!testing::alloc_interposer_active()) {
    GTEST_SKIP() << "sanitizer build: interposer compiled out";
  }
  const model::SystemSpec spec = steady_spec();
  exp::ExecOptions options;
  options.dispatch_overhead = Duration::from_tu(0.05);
  options.poll_overhead = Duration::from_tu(0.01);
  options.batch = batch;

  rtsj::vm::VirtualMachine vm(options.kernel);
  NullSink null_sink;
  vm.set_trace_sink(&null_sink);
  exp::ExecSystem system(vm, spec, options);
  system.start();

  // Warm-up: first epochs size the event queue, the arena slabs, the
  // freelists and the reserved outcome vectors.
  vm.run_until(at_tu(40));

  const std::uint64_t before = testing::alloc_count();
  vm.run_until(at_tu(100));
  const std::uint64_t after = testing::alloc_count();
  EXPECT_EQ(after - before, 0u)
      << "batch=" << batch << ": steady-state epochs allocated "
      << (after - before) << " times";

  // The window did real work: releases past t=40 were actually served.
  const model::RunResult result = system.collect();
  int served_late = 0;
  for (const auto& job : result.jobs) {
    if (job.served && job.release >= at_tu(40)) ++served_late;
  }
  EXPECT_GT(served_late, 0);
}

TEST(ZeroAllocSteadyState, PerCoreWorldPerEventDispatch) {
  expect_zero_alloc_world(1);
}

TEST(ZeroAllocSteadyState, PerCoreWorldBatchedDispatch) {
  expect_zero_alloc_world(8);
}

TEST(ZeroAllocSteadyState, StagedFireMailboxRecyclesNodes) {
  if (!testing::alloc_interposer_active()) {
    GTEST_SKIP() << "sanitizer build: interposer compiled out";
  }
  mp::MpscQueue<mp::StagedFire> queue;
  auto epoch = [&queue](int posts) {
    for (int i = 0; i < posts; ++i) {
      mp::StagedFire fire;
      fire.job = "j";  // SSO, like real short job names
      fire.from_core = static_cast<std::size_t>(i % 4);
      fire.seq = static_cast<std::uint64_t>(i);
      queue.push(std::move(fire));
    }
    mp::StagedFire out;
    int drained = 0;
    while (queue.pop(&out)) ++drained;
    queue.recycle();
    return drained;
  };

  ASSERT_EQ(epoch(64), 64);  // warm-up populates the node pool

  const std::uint64_t before = testing::alloc_count();
  for (int e = 0; e < 100; ++e) {
    ASSERT_EQ(epoch(64), 64);
  }
  const std::uint64_t after = testing::alloc_count();
  EXPECT_EQ(after - before, 0u)
      << "pooled mailbox allocated " << (after - before)
      << " times across 100 steady epochs";
}

}  // namespace
}  // namespace tsf
