// Property/fuzz suite for the scheduling-policy layer: 200 seeded random
// multi-core systems run under the semi-partitioned and global policies,
// asserting the work-stealing / ready-pool invariants that must hold on
// every workload:
//
//   S1  a stolen job is never run twice — each (name, release) the steal
//       records touched has exactly one outcome in the merged result;
//   S2  a job is never stolen while running — the outcome of a stolen
//       release starts at or after the (last) steal boundary, and every
//       steal instant lies at or after the job's release;
//   S3  the shared pool respects priority order — within one boundary's
//       dispatch batch, records leave in schedules_before order;
//   S4  steal count == steal-record count (and pool dispatches == pool
//       records): the counters and the delivery ledger never drift apart;
//   S5  merged outcomes carry no duplicate (name, release) shadows —
//       the merge_results dedupe holds under arbitrary stealing.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mp/mp_system.h"

namespace tsf::mp {
namespace {

using common::Duration;
using common::TimePoint;

model::SystemSpec random_spec(std::uint64_t seed) {
  common::Rng rng(seed);
  model::SystemSpec spec;
  spec.name = "steal_fuzz" + std::to_string(seed);
  spec.cores = static_cast<int>(rng.uniform_i64(2, 4));

  spec.server.policy = rng.next_double() < 0.5
                           ? model::ServerPolicy::kPolling
                           : model::ServerPolicy::kDeferrable;
  spec.server.period = Duration::time_units(rng.uniform_i64(4, 8));
  spec.server.capacity = Duration::ticks(static_cast<std::int64_t>(
      spec.server.period.count() * rng.uniform(0.3, 0.6)));
  spec.server.priority = 30;

  const int tasks = static_cast<int>(rng.uniform_i64(0, 3));
  for (int i = 0; i < tasks; ++i) {
    model::PeriodicTaskSpec t;
    t.name = "t" + std::to_string(i);
    t.period = Duration::time_units(rng.uniform_i64(6, 20));
    t.cost = Duration::ticks(static_cast<std::int64_t>(
        t.period.count() * rng.uniform(0.05, 0.3)));
    if (t.cost.is_zero()) t.cost = Duration::ticks(1);
    t.priority = static_cast<int>(rng.uniform_i64(1, 20));
    spec.periodic_tasks.push_back(t);
  }

  // Mostly unpinned (stealable / poolable) jobs, some pinned, bursty
  // releases so queues actually back up while other cores idle.
  const int jobs = static_cast<int>(rng.uniform_i64(3, 10));
  for (int j = 0; j < jobs; ++j) {
    model::AperiodicJobSpec job;
    job.name = "j" + std::to_string(j);
    // Cluster releases around a few instants to create imbalance.
    const double burst = static_cast<double>(rng.uniform_i64(0, 3)) * 7.0;
    job.release = TimePoint::origin() +
                  Duration::ticks(static_cast<std::int64_t>(
                      burst * 1000.0 + rng.uniform_i64(0, 2000)));
    job.cost = Duration::ticks(rng.uniform_i64(
        100, spec.server.capacity.count() + 500));
    if (rng.next_double() < 0.2) {
      job.affinity = static_cast<int>(rng.uniform_i64(0, spec.cores - 1));
    }
    if (rng.next_double() < 0.3) {
      job.value = rng.uniform(0.5, 10.0);
    }
    spec.aperiodic_jobs.push_back(job);
  }
  spec.horizon = TimePoint::origin() + Duration::time_units(40);
  return spec;
}

// The scheduling key as the runtime computes it: raw value, declared-cost
// fallback.
double sched_value(const model::AperiodicJobSpec& job) {
  return job.value == 0.0 ? job.effective_declared_cost().to_tu() : job.value;
}

void check_invariants(const model::SystemSpec& spec, const MpRunResult& run,
                      const std::string& label) {
  // Index the spec and the merged outcomes.
  std::map<std::string, const model::AperiodicJobSpec*> spec_jobs;
  for (const auto& j : spec.aperiodic_jobs) spec_jobs[j.name] = &j;
  std::map<std::pair<std::string, TimePoint>, std::vector<const model::JobOutcome*>>
      outcomes;
  for (const auto& o : run.merged.jobs) {
    outcomes[{o.name, o.release}].push_back(&o);
  }

  // S5: no duplicate (name, release) records unless both are completions
  // (a re-fired triggered job) — and this workload has no triggered jobs,
  // so exactly one record per key.
  for (const auto& [key, records] : outcomes) {
    EXPECT_EQ(records.size(), 1u)
        << label << ": " << key.first << " released at "
        << common::to_string(key.second) << " has " << records.size()
        << " merged outcomes";
  }

  std::uint64_t steal_records = 0;
  std::uint64_t pool_records = 0;
  std::map<std::pair<std::string, TimePoint>, TimePoint> last_steal;
  for (const auto& d : run.channel_deliveries) {
    if (d.kind == exp::ChannelDelivery::Kind::kSteal) {
      ++steal_records;
      ASSERT_TRUE(d.ok) << label << ": steals are never undeliverable";
      // S2 (first half): a steal happens strictly after the job's release.
      // Strictly: a release landing exactly on the steal boundary is still
      // mid-bind (the home server's wake-up for it is in flight) and must
      // never be taken — see TaskServer::steal_pending_request.
      EXPECT_LT(d.posted, d.delivered) << label << ": " << d.job;
      auto& last = last_steal[{d.job, d.posted}];
      last = common::max(last, d.delivered);
    } else if (d.kind == exp::ChannelDelivery::Kind::kPool) {
      if (d.ok) ++pool_records;
    }
  }

  // S4: counters == ledger.
  EXPECT_EQ(run.steals, steal_records) << label;
  EXPECT_EQ(run.pool_dispatches, pool_records) << label;

  // S1 + S2: each stolen (name, release) ran at most once, and if it ran,
  // it started at or after the last steal that moved it.
  for (const auto& [key, boundary] : last_steal) {
    auto it = outcomes.find(key);
    ASSERT_NE(it, outcomes.end())
        << label << ": stolen job " << key.first << " lost its outcome";
    ASSERT_EQ(it->second.size(), 1u)
        << label << ": stolen job " << key.first << " ran twice";
    const auto* outcome = it->second.front();
    if (outcome->served || outcome->interrupted) {
      EXPECT_GE(outcome->start, boundary)
          << label << ": stolen job " << key.first
          << " started before its steal boundary";
    }
  }

  // S3: within one boundary's pool batch, dispatch order follows the
  // scheduling key.
  const exp::ChannelDelivery* prev = nullptr;
  for (const auto& d : run.channel_deliveries) {
    if (d.kind != exp::ChannelDelivery::Kind::kPool || !d.ok) {
      continue;
    }
    if (prev != nullptr && prev->delivered == d.delivered) {
      const auto* a = spec_jobs[prev->job];
      const auto* b = spec_jobs[d.job];
      ASSERT_NE(a, nullptr) << label;
      ASSERT_NE(b, nullptr) << label;
      EXPECT_FALSE(exp::schedules_before(sched_value(*b), b->release, b->name,
                                         sched_value(*a), a->release,
                                         a->name))
          << label << ": pool dispatched " << prev->job << " before "
          << d.job << " against the priority order";
    }
    prev = &d;
  }
}

TEST(StealProperty, InvariantsHoldOnSeededRandomSystems) {
  std::uint64_t total_steals = 0;
  std::uint64_t total_pool = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto spec = random_spec(seed);
    for (const auto policy :
         {SchedPolicy::kSemiPartitioned, SchedPolicy::kGlobal}) {
      MpRunOptions options;
      options.policy = policy;
      options.quantum = Duration::from_tu(0.5);
      const auto run = mp::run(spec, options);
      const std::string label =
          "seed " + std::to_string(seed) + ", " + to_string(policy);
      check_invariants(spec, run, label);
      if (::testing::Test::HasFatalFailure()) return;
      total_steals += run.steals;
      total_pool += run.pool_dispatches;
    }
  }
  // The suite must not pass vacuously: across 200 seeds the policies have
  // to have moved real work.
  EXPECT_GT(total_steals, 50u);
  EXPECT_GT(total_pool, 200u);
}

// Regression for the mid-bind steal: a release landing *exactly* on an
// epoch boundary is pushed into its home queue by that boundary's drain (or
// a boundary-coincident timer) while the home server's wake-up is still in
// flight — the same boundary's steal pass used to be able to take it out
// from under that wake-up. Every release here is aligned to the 0.5 tu
// quantum and clustered so queues back up and steals do fire; no steal may
// ever carry posted == delivered, and nothing may be lost.
TEST(StealProperty, BoundaryCoincidentReleasesAreNeverStolenMidBind) {
  model::SystemSpec spec;
  spec.name = "boundary_steal";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = Duration::time_units(3);
  spec.server.period = Duration::time_units(6);
  spec.server.priority = 30;
  for (int b = 0; b < 6; ++b) {
    for (int j = 0; j < 6; ++j) {
      model::AperiodicJobSpec job;
      job.name = "b" + std::to_string(b) + "_" + std::to_string(j);
      // Releases at exact multiples of the quantum, many per boundary.
      job.release = TimePoint::origin() +
                    Duration::from_tu(1.0 + 8.0 * b + 0.5 * (j % 2));
      job.cost = Duration::from_tu(j % 2 == 0 ? 1.5 : 0.25);
      spec.aperiodic_jobs.push_back(job);
    }
  }
  spec.horizon = TimePoint::origin() + Duration::time_units(64);

  MpRunOptions options;
  options.policy = SchedPolicy::kSemiPartitioned;
  options.quantum = Duration::from_tu(0.5);
  const auto run = mp::run(spec, options);
  ASSERT_GT(run.steals, 0u) << "the clustered workload must trigger steals";
  for (const auto& d : run.channel_deliveries) {
    if (d.kind != exp::ChannelDelivery::Kind::kSteal) continue;
    EXPECT_LT(d.posted, d.delivered)
        << d.job << " was stolen at its own release boundary (mid-bind)";
  }
  std::set<std::string> names;
  for (const auto& o : run.merged.jobs) {
    EXPECT_TRUE(names.insert(o.name).second) << o.name << " merged twice";
  }
  EXPECT_EQ(names.size(), spec.aperiodic_jobs.size());
}

// Stealing moves work but never loses or invents it: the merged released
// count equals the spec's job count on every seed (each job has exactly one
// timed release, stolen or not).
TEST(StealProperty, NoJobLostOrInvented) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto spec = random_spec(seed);
    MpRunOptions options;
    options.policy = SchedPolicy::kSemiPartitioned;
    options.quantum = Duration::from_tu(0.5);
    const auto run = mp::run(spec, options);
    std::set<std::string> names;
    for (const auto& o : run.merged.jobs) {
      EXPECT_TRUE(names.insert(o.name).second)
          << "seed " << seed << ": duplicate outcome for " << o.name;
    }
    EXPECT_EQ(names.size(), spec.aperiodic_jobs.size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tsf::mp
