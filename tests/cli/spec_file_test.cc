// Tests for the tsf_run spec-file parser and report generation.
#include "cli/spec_file.h"

#include <gtest/gtest.h>

#include "cli/report.h"

namespace tsf::cli {
namespace {

using common::Duration;
using common::TimePoint;

constexpr const char* kScenario = R"(
# comment
[server]
policy   = polling
capacity = 3
period   = 6
priority = 30
queue    = first-fit

[task tau1]
period   = 6
cost     = 2
priority = 20

[job h1]
release  = 2
cost     = 2
declared = 1.5

[run]
horizon  = 18
mode     = sim
overheads = ideal
gantt    = no
)";

TEST(SpecFile, ParsesFullScenario) {
  const auto outcome = parse_spec(kScenario);
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  const auto& spec = outcome.config.spec;
  EXPECT_EQ(spec.server.policy, model::ServerPolicy::kPolling);
  EXPECT_EQ(spec.server.capacity, Duration::time_units(3));
  EXPECT_EQ(spec.server.period, Duration::time_units(6));
  EXPECT_EQ(spec.server.priority, 30);
  EXPECT_EQ(spec.server.queue, model::QueueDiscipline::kFifoFirstFit);
  ASSERT_EQ(spec.periodic_tasks.size(), 1u);
  EXPECT_EQ(spec.periodic_tasks[0].name, "tau1");
  EXPECT_EQ(spec.periodic_tasks[0].cost, Duration::time_units(2));
  ASSERT_EQ(spec.aperiodic_jobs.size(), 1u);
  EXPECT_EQ(spec.aperiodic_jobs[0].name, "h1");
  EXPECT_EQ(spec.aperiodic_jobs[0].release,
            TimePoint::origin() + Duration::time_units(2));
  EXPECT_EQ(spec.aperiodic_jobs[0].declared_cost, Duration::ticks(1500));
  EXPECT_EQ(spec.horizon, TimePoint::origin() + Duration::time_units(18));
  EXPECT_EQ(outcome.config.mode, RunMode::kSim);
  EXPECT_FALSE(outcome.config.gantt);
}

TEST(SpecFile, FractionalTimesResolveToTicks) {
  const auto outcome = parse_spec(
      "[server]\npolicy=deferrable\ncapacity=0.5\nperiod=1.25\n"
      "[run]\nhorizon=10\n");
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  EXPECT_EQ(outcome.config.spec.server.capacity, Duration::ticks(500));
  EXPECT_EQ(outcome.config.spec.server.period, Duration::ticks(1250));
}

TEST(SpecFile, MissingHorizonIsAnError) {
  const auto outcome = parse_spec("[server]\npolicy=none\n");
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.errors.front().find("horizon"), std::string::npos);
}

TEST(SpecFile, UnknownKeysReportedWithLineNumbers) {
  const auto outcome =
      parse_spec("[server]\npolicy = polling\nbogus = 1\n[run]\nhorizon=5\n");
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.errors.front().find("line 3"), std::string::npos);
  EXPECT_NE(outcome.errors.front().find("bogus"), std::string::npos);
}

TEST(SpecFile, BadNumbersRejected) {
  const auto outcome = parse_spec(
      "[server]\npolicy=polling\ncapacity = lots\nperiod = 6\n"
      "[run]\nhorizon = 10\n");
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.errors.front().find("number"), std::string::npos);
}

TEST(SpecFile, NamelessTaskRejected) {
  const auto outcome = parse_spec("[task]\nperiod=5\ncost=1\n"
                                  "[run]\nhorizon=10\n");
  ASSERT_FALSE(outcome.ok());
}

TEST(SpecFile, KeyOutsideSectionRejected) {
  const auto outcome = parse_spec("period = 5\n[run]\nhorizon=10\n");
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.errors.front().find("outside"), std::string::npos);
}

TEST(SpecFile, ZeroCostTaskRejected) {
  const auto outcome = parse_spec(
      "[server]\npolicy=none\n[task t]\nperiod=5\n[run]\nhorizon=10\n");
  ASSERT_FALSE(outcome.ok());
}

TEST(SpecFile, ServerWithoutBudgetRejectedUnlessNone) {
  EXPECT_FALSE(parse_spec("[server]\npolicy=polling\n[run]\nhorizon=1\n").ok());
  EXPECT_TRUE(parse_spec("[server]\npolicy=none\n[run]\nhorizon=1\n").ok());
}

TEST(SpecFile, CollectsMultipleErrors) {
  const auto outcome = parse_spec(
      "[server]\npolicy = martian\nqueue = heap\n[run]\nmode = sideways\n");
  EXPECT_GE(outcome.errors.size(), 4u);  // policy, queue, mode, horizon
}

TEST(SpecFile, LoadMissingFileFails) {
  const auto outcome = load_spec_file("/nonexistent/path.tsf");
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.errors.front().find("cannot open"), std::string::npos);
}

TEST(Report, RendersScenarioTwoOnBothEngines) {
  auto outcome = parse_spec(kScenario);
  ASSERT_TRUE(outcome.ok());
  outcome.config.mode = RunMode::kBoth;
  const std::string report = run_and_report(outcome.config);
  EXPECT_NE(report.find("simulation (theoretical policies)"),
            std::string::npos);
  EXPECT_NE(report.find("execution (RTSJ-style runtime)"), std::string::npos);
  EXPECT_NE(report.find("h1"), std::string::npos);
  EXPECT_NE(report.find("served 1/1"), std::string::npos);
}

TEST(Report, GanttIncludedWhenRequested) {
  auto outcome = parse_spec(kScenario);
  ASSERT_TRUE(outcome.ok());
  outcome.config.gantt = true;
  outcome.config.mode = RunMode::kSim;
  const std::string report = run_and_report(outcome.config);
  EXPECT_NE(report.find('#'), std::string::npos);  // busy cells
}

constexpr const char* kMultiCore = R"(
[server]
policy   = polling
capacity = 2
period   = 6
priority = 30

[task tau1]
period   = 6
cost     = 2
priority = 20
affinity = 1

[task tau2]
period   = 12
cost     = 3
priority = 10

[job h1]
release  = 2
cost     = 1
affinity = 0

[run]
horizon  = 18
cores    = 2
partition = wfd
mode     = sim
gantt    = no
)";

TEST(SpecFile, ParsesCoresAndAffinity) {
  const auto outcome = parse_spec(kMultiCore);
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  const auto& config = outcome.config;
  EXPECT_EQ(config.spec.cores, 2);
  EXPECT_EQ(config.partition, mp::PackingStrategy::kWorstFitDecreasing);
  ASSERT_EQ(config.spec.periodic_tasks.size(), 2u);
  EXPECT_EQ(config.spec.periodic_tasks[0].affinity, 1);
  EXPECT_EQ(config.spec.periodic_tasks[1].affinity, -1);
  ASSERT_EQ(config.spec.aperiodic_jobs.size(), 1u);
  EXPECT_EQ(config.spec.aperiodic_jobs[0].affinity, 0);
}

TEST(SpecFile, DefaultsToOneCoreAndFfd) {
  const auto outcome = parse_spec(kScenario);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.config.spec.cores, 1);
  EXPECT_EQ(outcome.config.partition,
            mp::PackingStrategy::kFirstFitDecreasing);
}

TEST(SpecFile, RejectsAffinityBeyondCores) {
  std::string text = kMultiCore;
  const auto pos = text.find("cores    = 2");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "cores    = 1");
  const auto outcome = parse_spec(text);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.errors.front().find("pinned to core"), std::string::npos);
}

TEST(SpecFile, RejectsNegativeAffinityAndZeroCores) {
  const auto bad = parse_spec(
      "[server]\npolicy=none\n"
      "[task t]\nperiod=6\ncost=1\naffinity=-2\n[run]\nhorizon=6\ncores=0\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.errors.size(), 2u);
}

constexpr const char* kChannels = R"(
[server]
policy   = deferrable
capacity = 2
period   = 6
priority = 30
[job ping]
release  = 1
cost     = 1
affinity = 0
fires    = pong
[job pong]
triggered = yes
cost      = 1
affinity  = 1
[job roam]
release  = 3
cost     = 1
migrate  = yes
[run]
horizon  = 18
cores    = 2
quantum  = 0.5
channel_latency = 0.25
mode     = exec
gantt    = no
)";

TEST(SpecFile, ParsesChannelKeys) {
  const auto outcome = parse_spec(kChannels);
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  const auto& jobs = outcome.config.spec.aperiodic_jobs;
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].fires, "pong");
  EXPECT_FALSE(jobs[0].triggered);
  EXPECT_TRUE(jobs[1].triggered);
  EXPECT_TRUE(jobs[1].fires.empty());
  EXPECT_TRUE(jobs[2].migrate);
  EXPECT_TRUE(outcome.config.spec.uses_channels());
  EXPECT_EQ(outcome.config.quantum, Duration::ticks(500));
  EXPECT_EQ(outcome.config.spec.channel_latency, Duration::ticks(250));
}

TEST(SpecFile, RejectsUnknownFireTargetAndSelfFire) {
  std::string text = kChannels;
  auto pos = text.find("fires    = pong");
  text.replace(pos, 15, "fires    = gone");
  const auto unknown = parse_spec(text);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.errors.front().find("fires unknown job"),
            std::string::npos);

  text = kChannels;
  pos = text.find("fires    = pong");
  text.replace(pos, 15, "fires    = ping");
  const auto self = parse_spec(text);
  ASSERT_FALSE(self.ok());
  EXPECT_NE(self.errors.front().find("cannot fire itself"),
            std::string::npos);
}

TEST(SpecFile, RejectsInconsistentChannelRoles) {
  // triggered + release
  auto bad = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\ntriggered=yes\nrelease=2\ncost=1\n[run]\nhorizon=9\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("cannot also have a release"),
            std::string::npos);
  // migrate + affinity
  bad = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\nmigrate=yes\naffinity=1\ncost=1\n[run]\nhorizon=9\ncores=2\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("cannot both migrate and pin"),
            std::string::npos);
  // migrate + triggered
  bad = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\nmigrate=yes\ntriggered=yes\ncost=1\n[run]\nhorizon=9\n");
  ASSERT_FALSE(bad.ok());
  // channel jobs without a server
  bad = parse_spec(
      "[server]\npolicy=none\n"
      "[job a]\nrelease=1\ncost=1\nfires=b\n[job b]\ntriggered=yes\ncost=1\n"
      "[run]\nhorizon=9\ncores=2\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("need an aperiodic server"),
            std::string::npos);
  // duplicate job names (channels route by name)
  bad = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\nrelease=1\ncost=1\n[job a]\nrelease=2\ncost=1\n"
      "[run]\nhorizon=9\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("duplicate job name"), std::string::npos);
}

TEST(SpecFile, RejectsZeroQuantum) {
  const auto bad = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\nquantum=0\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("quantum must be positive"),
            std::string::npos);
}

TEST(SpecFile, ParsesSchedulingPolicyKey) {
  const auto base =
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\nrelease=1\ncost=1\n[run]\nhorizon=9\ncores=2\npolicy=";
  const auto def = parse_spec(std::string(base) + "partitioned\n");
  ASSERT_TRUE(def.ok()) << def.errors.front();
  EXPECT_EQ(def.config.policy, mp::SchedPolicy::kPartitioned);

  const auto global = parse_spec(std::string(base) + "global\n");
  ASSERT_TRUE(global.ok()) << global.errors.front();
  EXPECT_EQ(global.config.policy, mp::SchedPolicy::kGlobal);

  // Both spellings of semi-partitioned.
  for (const char* spelling : {"semi", "semi-partitioned"}) {
    const auto semi = parse_spec(std::string(base) + spelling + "\n");
    ASSERT_TRUE(semi.ok()) << semi.errors.front();
    EXPECT_EQ(semi.config.policy, mp::SchedPolicy::kSemiPartitioned)
        << spelling;
  }
}

TEST(SpecFile, RejectsUnknownAndUniprocessorSchedulingPolicy) {
  const auto unknown = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\ncores=2\npolicy=gang\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.errors.front().find("unknown scheduling policy"),
            std::string::npos);

  // global/semi are meaningless on one core: reject instead of silently
  // running the uniprocessor path.
  const auto uni = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\npolicy=semi\n");
  ASSERT_FALSE(uni.ok());
  EXPECT_NE(uni.errors.front().find("needs a multi-core run"),
            std::string::npos);
}

TEST(Report, ChannelSpecReportsLatencyAndResponse) {
  auto outcome = parse_spec(kChannels);
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  const std::string report = run_and_report(outcome.config);
  EXPECT_NE(report.find("cross-core channels:"), std::string::npos);
  EXPECT_NE(report.find("channel latency (quantum 0.5tu)"),
            std::string::npos);
  EXPECT_NE(report.find("cross-core response (post to completion)"),
            std::string::npos);
}

TEST(SpecFile, ParsesRebalanceKeys) {
  const auto outcome = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\nrelease=1\ncost=1\n"
      "[run]\nhorizon=18\ncores=2\n"
      "rebalance=drift\nrebalance_drift=0.2\nrebalance_period=4\n");
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  EXPECT_EQ(outcome.config.rebalance.mode, mp::RebalanceMode::kDrift);
  EXPECT_DOUBLE_EQ(outcome.config.rebalance.drift, 0.2);
  EXPECT_EQ(outcome.config.rebalance.period, Duration::time_units(4));

  const auto admit = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[run]\nhorizon=18\ncores=2\nrebalance=admit\n");
  ASSERT_TRUE(admit.ok()) << admit.errors.front();
  EXPECT_EQ(admit.config.rebalance.mode, mp::RebalanceMode::kAdmit);
  // Defaults stand when only the mode is given.
  EXPECT_DOUBLE_EQ(admit.config.rebalance.drift, mp::RebalanceConfig{}.drift);
  EXPECT_EQ(admit.config.rebalance.period, mp::RebalanceConfig{}.period);
}

TEST(SpecFile, RejectsBadRebalanceValues) {
  auto bad = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\ncores=2\nrebalance=always\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("unknown rebalance mode"),
            std::string::npos);

  bad = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\ncores=2\n"
      "rebalance=drift\nrebalance_drift=0\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("rebalance_drift must be positive"),
            std::string::npos);

  bad = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\ncores=2\n"
      "rebalance=drift\nrebalance_period=0\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("rebalance_period must be positive"),
            std::string::npos);

  // Rebalancing needs the multi-core runtime, like the policies.
  bad = parse_spec("[server]\npolicy=none\n[run]\nhorizon=9\nrebalance=drift\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("needs a multi-core run"),
            std::string::npos);
}

TEST(SpecFile, UnknownKeySuggestsNearestKnownKey) {
  // One edit away ("priorty" -> "priority") in a task section.
  auto bad = parse_spec(
      "[server]\npolicy=none\n[task t]\nperiod=6\ncost=1\npriorty=3\n"
      "[run]\nhorizon=9\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("did you mean 'priority'"),
            std::string::npos)
      << bad.errors.front();

  // A dropped letter in the run section ("bach" -> "batch").
  bad = parse_spec("[server]\npolicy=none\n[run]\nhorizon=9\nbach=4\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("did you mean 'batch'"),
            std::string::npos)
      << bad.errors.front();

  // Server and job sections suggest from their own vocabularies.
  bad = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\nmargn=1\n"
      "[run]\nhorizon=9\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("did you mean 'margin'"),
            std::string::npos);
  bad = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\nrelease=1\ncost=1\nmigrat=yes\n[run]\nhorizon=9\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("did you mean 'migrate'"),
            std::string::npos);
}

TEST(SpecFile, UnknownKeyFarFromEverythingGetsNoSuggestion) {
  const auto bad = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\nzzzzzzzz=1\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.errors.front().find("did you mean"), std::string::npos)
      << bad.errors.front();
}

TEST(SpecFile, EnumErrorsListTheValidValues) {
  const auto policy = parse_spec(
      "[server]\npolicy=martian\n[run]\nhorizon=9\n");
  ASSERT_FALSE(policy.ok());
  EXPECT_NE(policy.errors.front().find(
                "(none|background|polling|deferrable|sporadic)"),
            std::string::npos)
      << policy.errors.front();

  const auto mode = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\nmode=sideways\n");
  ASSERT_FALSE(mode.ok());
  EXPECT_NE(mode.errors.front().find("(sim|exec|both)"), std::string::npos);

  const auto queue = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\nqueue=heap\n"
      "[run]\nhorizon=9\n");
  ASSERT_FALSE(queue.ok());
  EXPECT_NE(queue.errors.front().find("(fifo|first-fit|list-of-lists)"),
            std::string::npos);

  const auto overheads = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\noverheads=cheap\n");
  ASSERT_FALSE(overheads.ok());
  EXPECT_NE(overheads.errors.front().find("(ideal|paper)"),
            std::string::npos);
}

TEST(SpecFile, ParsesBatchKey) {
  const auto outcome = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\nrelease=1\ncost=1\n"
      "[run]\nhorizon=9\nmode=exec\nbatch=16\n");
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  EXPECT_EQ(outcome.config.exec_options.batch, 16);
  // Default is per-event dispatch.
  const auto plain = parse_spec(kScenario);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.config.exec_options.batch, 1);
}

TEST(SpecFile, RejectsBadBatchValues) {
  auto bad = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\nmode=exec\nbatch=0\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("batch must be at least 1"),
            std::string::npos);

  // batch is an execution-engine knob; a sim-only run can't honour it.
  bad = parse_spec(
      "[server]\npolicy=none\n[run]\nhorizon=9\nmode=sim\nbatch=4\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("batch applies to the execution engine"),
            std::string::npos);
}

TEST(SpecFile, BatchSurvivesOverheadsPreset) {
  // `overheads = paper` replaces the whole ExecOptions block; batch (and
  // overload) set before it must survive the swap.
  const auto outcome = parse_spec(
      "[server]\npolicy=polling\ncapacity=2\nperiod=6\n"
      "[job a]\nrelease=1\ncost=1\n"
      "[run]\nhorizon=9\nmode=exec\nbatch=8\noverheads=paper\n");
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  EXPECT_EQ(outcome.config.exec_options.batch, 8);
}

TEST(Report, MultiCoreReportShowsPartitionAndVerdict) {
  auto outcome = parse_spec(kMultiCore);
  ASSERT_TRUE(outcome.ok()) << outcome.errors.front();
  const std::string report = run_and_report(outcome.config);
  EXPECT_NE(report.find("partition (worst-fit-decreasing, 2 cores)"),
            std::string::npos);
  EXPECT_NE(report.find("system verdict: feasible"), std::string::npos);
  EXPECT_NE(report.find("partitioned simulation"), std::string::npos);
  EXPECT_NE(report.find("h1"), std::string::npos);
}

}  // namespace
}  // namespace tsf::cli
