// Online rebalancing vs the static partition on a drifting workload — the
// acceptance gate of the rebalancing layer (mp/rebalance.h).
//
// The scenario: bursts of six unpinned jobs whose round-robin routing (name
// order) sends every heavy job to core 0 and every light one to core 1.
// Core 0 is thereby *offered* more aperiodic work per server period than
// its replica was packed for — measured utilization drifts above the packed
// one and its queue grows — while core 1 idles between bursts. Exactly the
// static-mapping rigidity ROADMAP's "load rebalancing" item (and Pinho's
// open-issues survey) names.
//
// Three runs per mode must be bit-reproducible (equal trace fingerprints);
// with `rebalance = drift` the p99 response time must beat the static
// partition, and every migration must appear exactly once in the channel
// ledger as a kRebalance record. --json emits the tsf-bench/1 document CI
// gates against bench/baselines/rebalance.json.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/table.h"
#include "common/trace.h"
#include "exp/bench_cli.h"
#include "exp/metrics.h"
#include "mp/mp_system.h"

namespace {

using namespace tsf;

common::Duration tu(double x) { return common::Duration::from_tu(x); }

model::SystemSpec drift_spec(int bursts) {
  model::SystemSpec spec;
  spec.name = "rebalance_bench";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < 2; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(2);
    t.priority = 10;
    t.affinity = c;
    spec.periodic_tasks.push_back(t);
  }
  for (int b = 0; b < bursts; ++b) {
    for (int j = 0; j < 6; ++j) {
      model::AperiodicJobSpec job;
      job.name = "b" + std::to_string(b) + "_" + std::to_string(j);
      job.release = common::TimePoint::origin() + tu(1.0 + 8.0 * b + 0.05 * j);
      // Even slots heavy, odd light: round-robin in name order piles every
      // heavy job onto core 0.
      job.cost = (j % 2 == 0) ? tu(2.0) : tu(0.25);
      spec.aperiodic_jobs.push_back(job);
    }
  }
  spec.horizon = common::TimePoint::origin() + tu(1.0 + 8.0 * bursts + 16);
  return spec;
}

struct Cell {
  exp::ResponseDistribution response;
  std::size_t served = 0;
  std::size_t released = 0;
  std::uint64_t migrations = 0;
  std::uint64_t passes = 0;
  bool stable = true;
  bool ledger_ok = true;
  std::vector<double> utilization;
};

Cell run_cell(const model::SystemSpec& spec, mp::RebalanceMode mode) {
  mp::MpRunOptions options;
  options.strategy = mp::PackingStrategy::kWorstFitDecreasing;
  options.quantum = tu(0.5);
  options.rebalance.mode = mode;
  options.rebalance.drift = 0.15;
  options.rebalance.period = tu(6);

  const auto run = mp::run(spec, options);
  Cell cell;
  cell.stable = true;
  const auto fp = common::fingerprint(run.merged.timeline);
  for (int rerun = 0; rerun < 2; ++rerun) {
    const auto again = mp::run(spec, options);
    cell.stable = cell.stable &&
                  fp == common::fingerprint(again.merged.timeline);
  }
  cell.response = exp::compute_response_distribution({run.merged});
  for (const auto& job : run.merged.jobs) {
    ++cell.released;
    cell.served += job.served;
  }
  cell.migrations = run.rebalance_migrations;
  cell.passes = run.rebalance_passes;
  cell.utilization = run.rebalance_utilization;

  // Ledger contract: every migration exactly once, as kRebalance.
  std::uint64_t records = 0;
  std::set<std::pair<std::string, common::TimePoint>> seen;
  for (const auto& d : run.channel_deliveries) {
    if (d.kind != exp::ChannelDelivery::Kind::kRebalance) continue;
    ++records;
    cell.ledger_ok = cell.ledger_ok && d.ok &&
                     d.from_core != d.to_core &&
                     seen.insert({d.job, d.posted}).second;
  }
  cell.ledger_ok = cell.ledger_ok && records == run.rebalance_migrations;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchCli cli(exp::BenchCli::kJson);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_rebalance");
  }
  const std::string& json_path = cli.json_path;

  constexpr int kBursts = 10;
  const auto spec = drift_spec(kBursts);
  std::cout << "=== online rebalancing vs static partition (drift scenario)"
               " ===\n"
            << "(" << kBursts << " skewed bursts across 2 cores; rebalance"
               " drift 0.15, period 6tu, quantum 0.5tu; 3 runs per mode"
               " must be fingerprint-identical)\n\n";

  const Cell off = run_cell(spec, mp::RebalanceMode::kOff);
  const Cell drift = run_cell(spec, mp::RebalanceMode::kDrift);

  common::TextTable table;
  table.add_row({"rebalance", "served", "p50", "p90", "p99", "max",
                 "migrations", "passes", "deterministic"});
  const auto row = [&table](const char* label, const Cell& cell) {
    table.add_row({label,
                   std::to_string(cell.served) + "/" +
                       std::to_string(cell.released),
                   common::fmt_fixed(cell.response.p50_tu, 2),
                   common::fmt_fixed(cell.response.p90_tu, 2),
                   common::fmt_fixed(cell.response.p99_tu, 2),
                   common::fmt_fixed(cell.response.max_tu, 2),
                   std::to_string(cell.migrations),
                   std::to_string(cell.passes),
                   cell.stable ? "yes" : "NO"});
  };
  row("off", off);
  row("drift", drift);
  std::cout << table.to_string() << '\n';
  if (!drift.utilization.empty()) {
    std::cout << "post-rebalance utilization:";
    for (std::size_t c = 0; c < drift.utilization.size(); ++c) {
      std::cout << " c" << c << "="
                << common::fmt_fixed(drift.utilization[c], 3);
    }
    std::cout << '\n';
  }

  bool ok = off.stable && drift.stable;
  if (!ok) std::cout << "FAIL: runs are not fingerprint-identical\n";
  if (drift.migrations == 0) {
    std::cout << "FAIL: the drift scenario triggered no migrations\n";
    ok = false;
  }
  if (!drift.ledger_ok) {
    std::cout << "FAIL: migrations and kRebalance ledger records disagree\n";
    ok = false;
  }
  if (drift.response.p99_tu >= off.response.p99_tu) {
    std::cout << "FAIL: rebalanced p99 ("
              << common::fmt_fixed(drift.response.p99_tu, 2)
              << "tu) does not beat static partitioned p99 ("
              << common::fmt_fixed(off.response.p99_tu, 2) << "tu)\n";
    ok = false;
  } else {
    std::cout << "rebalanced p99 " << common::fmt_fixed(drift.response.p99_tu, 2)
              << "tu beats static partitioned p99 "
              << common::fmt_fixed(off.response.p99_tu, 2) << "tu ("
              << drift.migrations << " migrations, " << drift.passes
              << " passes)\n";
  }
  if (drift.served < off.served) {
    std::cout << "FAIL: rebalancing served fewer jobs than the static"
                 " partition\n";
    ok = false;
  }
  std::cout << (ok ? "rebalance: deterministic, ledgered, and faster than"
                     " the static partition\n"
                   : "rebalance: FAILED\n");

  if (!json_path.empty()) {
    common::JsonWriter json;
    json.begin_object();
    json.key("schema").value("tsf-bench/1");
    json.key("bench").value("rebalance");
    json.key("metrics").begin_array();
    const auto metric = [&json](const std::string& name, double value,
                                bool higher_is_better) {
      json.begin_object();
      json.key("name").value(name);
      json.key("value").value(value);
      json.key("higher_is_better").value(higher_is_better);
      json.end_object();
    };
    metric("static/p99_tu", off.response.p99_tu, false);
    metric("static/served", static_cast<double>(off.served), true);
    metric("rebalanced/p99_tu", drift.response.p99_tu, false);
    metric("rebalanced/p50_tu", drift.response.p50_tu, false);
    metric("rebalanced/served", static_cast<double>(drift.served), true);
    metric("rebalanced/migrations", static_cast<double>(drift.migrations),
           true);
    json.end_array();
    json.end_object();
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write '" << json_path << "'\n";
      return 1;
    }
    out << json.take();
  }
  return ok ? 0 : 1;
}
