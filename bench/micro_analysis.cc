// Micro: feasibility-analysis throughput — RTA iterations, the EDF demand
// criterion, and the two §7 online equations.
#include <benchmark/benchmark.h>

#include "analysis/aperiodic.h"
#include "analysis/edf.h"
#include "analysis/rta.h"
#include "gen/taskset.h"

namespace {

using namespace tsf;
using common::Duration;

std::vector<model::PeriodicTaskSpec> taskset(std::size_t n, double u,
                                             std::uint64_t seed) {
  common::Rng rng(seed);
  gen::TaskSetParams p;
  p.count = n;
  p.total_utilization = u;
  return gen::make_task_set(p, rng);
}

void BM_ResponseTimeAnalysis(benchmark::State& state) {
  const auto tasks =
      taskset(static_cast<std::size_t>(state.range(0)), 0.75, 7);
  model::ServerSpec server;
  server.policy = model::ServerPolicy::kDeferrable;
  server.capacity = Duration::time_units(1);
  server.period = Duration::time_units(10);
  server.priority = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::response_times(tasks, &server));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResponseTimeAnalysis)->Arg(5)->Arg(20)->Arg(50);

void BM_EdfDemandCriterion(benchmark::State& state) {
  auto tasks = taskset(static_cast<std::size_t>(state.range(0)), 0.9, 11);
  for (auto& t : tasks) {
    // Snap periods to a 10tu grid to bound the hyperperiod, then constrain
    // deadlines to exercise the demand test (deadline = 0.8 T).
    const std::int64_t period_tu =
        std::max<std::int64_t>(10, t.period.count() / 10'000 * 10);
    t.period = Duration::time_units(period_tu);
    t.cost = common::min(t.cost, Duration::time_units(period_tu / 10));
    t.deadline = Duration::ticks(t.period.count() * 4 / 5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::edf_feasible_demand(tasks));
  }
}
BENCHMARK(BM_EdfDemandCriterion)->Arg(4)->Arg(8);

void BM_PsOnlineEquation(benchmark::State& state) {
  analysis::PsOnlineInputs in;
  in.capacity = Duration::time_units(4);
  in.period = Duration::time_units(6);
  in.t = common::TimePoint::origin() + Duration::time_units(17);
  in.release = common::TimePoint::origin() + Duration::time_units(16);
  in.remaining = Duration::time_units(1);
  in.demand = Duration::time_units(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::ps_online_response_time(in));
  }
}
BENCHMARK(BM_PsOnlineEquation);

void BM_ImplementationEquation5(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::implementation_response_time(
        3, Duration::time_units(6), Duration::time_units(2),
        Duration::time_units(1),
        common::TimePoint::origin() + Duration::time_units(5)));
  }
}
BENCHMARK(BM_ImplementationEquation5);

}  // namespace
