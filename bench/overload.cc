// Overload storm pack: admission + shedding vs head-in-the-sand — the
// acceptance gate of the overload subsystem (exp/overload.h, mp/overload.h,
// core/dover_queue.h).
//
// Three storm shapes (gen/storms.h) are each run under the three overload
// modes. Per cell: three runs must be bit-reproducible (equal trace
// fingerprints), the forbidden-behavior checker must come back clean, and
// the shed/takeover ledger must reconcile. Per shape, the value-accrual
// ratio against the offline clairvoyant bound (analysis/offline_value.h)
// must order the policies
//
//     dover >= shed >= off
//
// — value-density admission beats utilization-threshold shedding beats
// serving the queue blindly. --json emits the tsf-bench/1 document CI gates
// against bench/baselines/overload.json.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/offline_value.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "common/trace.h"
#include "exp/bench_cli.h"
#include "gen/storms.h"
#include "mp/mp_system.h"
#include "mp/overload.h"

namespace {

using namespace tsf;

common::Duration tu(double x) { return common::Duration::from_tu(x); }

struct Cell {
  double ratio = 0.0;
  double accrued = 0.0;
  std::size_t served = 0;
  std::size_t released = 0;
  std::uint64_t sheds = 0;
  std::uint64_t takeovers = 0;
  bool stable = true;
  std::size_t violations = 0;
};

Cell run_cell(const model::SystemSpec& spec, exp::OverloadMode mode) {
  mp::MpRunOptions options;
  options.quantum = tu(0.5);
  options.exec.overload.mode = mode;
  options.exec.overload.threshold = 0.75;
  options.exec.overload.period = tu(6);

  const auto run = mp::run(spec, options);
  Cell cell;
  const auto fp = common::fingerprint(run.merged.timeline);
  for (int rerun = 0; rerun < 2; ++rerun) {
    const auto again = mp::run(spec, options);
    cell.stable =
        cell.stable && fp == common::fingerprint(again.merged.timeline);
  }
  std::size_t serving = 0;
  for (const auto& core : run.partition.cores) serving += core.has_server;
  const auto accrual =
      analysis::compute_value_accrual(spec, run.merged, serving);
  cell.ratio = accrual.ratio;
  cell.accrued = accrual.accrued;
  for (const auto& job : run.merged.jobs) {
    ++cell.released;
    cell.served += job.served;
  }
  cell.sheds = run.sheds;
  cell.takeovers = run.takeovers;
  cell.violations = mp::check_overload_invariants(spec, run).size();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchCli cli(exp::BenchCli::kJson);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_overload");
  }
  const std::string& json_path = cli.json_path;

  const gen::StormShape shapes[] = {gen::StormShape::kRouterPacketStorm,
                                    gen::StormShape::kMarketOpenBurst,
                                    gen::StormShape::kCascadingFaultBurst};
  const exp::OverloadMode modes[] = {exp::OverloadMode::kOff,
                                     exp::OverloadMode::kShed,
                                     exp::OverloadMode::kDover};

  std::cout << "=== overload storms: off vs shed vs dover ===\n"
            << "(2 cores, threshold 0.75, period 6tu, quantum 0.5tu; 3 runs"
               " per cell must be fingerprint-identical; value-accrual"
               " ratio vs the offline clairvoyant bound must order"
               " dover >= shed >= off per storm)\n\n";

  bool ok = true;
  common::TextTable table;
  table.add_row({"storm", "mode", "ratio", "served", "sheds", "takeovers",
                 "deterministic", "invariants"});
  struct Row {
    std::string name;
    Cell cell;
  };
  std::vector<Row> rows;
  for (const auto shape : shapes) {
    gen::StormParams params;
    params.shape = shape;
    const auto spec = gen::make_storm(params);
    Cell cells[3];
    for (int m = 0; m < 3; ++m) {
      cells[m] = run_cell(spec, modes[m]);
      const Cell& cell = cells[m];
      table.add_row({gen::to_string(shape), exp::to_string(modes[m]),
                     common::fmt_fixed(cell.ratio, 3),
                     std::to_string(cell.served) + "/" +
                         std::to_string(cell.released),
                     std::to_string(cell.sheds),
                     std::to_string(cell.takeovers),
                     cell.stable ? "yes" : "NO",
                     cell.violations == 0
                         ? "clean"
                         : std::to_string(cell.violations) + " VIOLATIONS"});
      rows.push_back({std::string(gen::to_string(shape)) + "/" +
                          exp::to_string(modes[m]),
                      cell});
      ok = ok && cell.stable && cell.violations == 0;
      if (cell.ratio > 1.0) {
        std::cout << "FAIL: " << gen::to_string(shape) << "/"
                  << exp::to_string(modes[m])
                  << " accrued more than the clairvoyant bound\n";
        ok = false;
      }
    }
    const double off = cells[0].ratio;
    const double shed = cells[1].ratio;
    const double dover = cells[2].ratio;
    if (!(dover >= shed && shed >= off)) {
      std::cout << "FAIL: " << gen::to_string(shape)
                << " value-accrual ordering broken: dover "
                << common::fmt_fixed(dover, 3) << ", shed "
                << common::fmt_fixed(shed, 3) << ", off "
                << common::fmt_fixed(off, 3) << '\n';
      ok = false;
    }
  }
  std::cout << table.to_string() << '\n';
  std::cout << (ok ? "overload: deterministic, invariant-clean, and ordered"
                     " dover >= shed >= off on every storm\n"
                   : "overload: FAILED\n");

  if (!json_path.empty()) {
    common::JsonWriter json;
    json.begin_object();
    json.key("schema").value("tsf-bench/1");
    json.key("bench").value("overload");
    json.key("metrics").begin_array();
    for (const auto& row : rows) {
      json.begin_object();
      json.key("name").value(row.name + "/ratio");
      json.key("value").value(row.cell.ratio);
      json.key("higher_is_better").value(true);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write '" << json_path << "'\n";
      return 1;
    }
    out << json.take();
  }
  return ok ? 0 : 1;
}
