// Reproduces Table 3: "Measures on Polling Server executions".
#include "paper_table_main.h"

int main(int argc, char** argv) {
  tsf::bench::PaperReference ref;
  ref.label = "Table 3 — Polling Server, execution";
  ref.aart = {12.24, 20.80, 25.05, 6.55, 7.15, 12.54};
  ref.air = {0.01, 0.01, 0.00, 0.17, 0.24, 0.29};
  ref.asr = {0.75, 0.44, 0.30, 0.48, 0.34, 0.30};
  return tsf::bench::run_paper_table_bench(
      tsf::model::ServerPolicy::kPolling, tsf::exp::Mode::kExecution,
      ref, argc, argv);
}
