// Extension: the full policy spectrum on the paper's workloads.
//
// §2 surveys background servicing ("the easiest way ... does not offer
// satisfying response times"), the Polling Server, the Deferrable Server
// and the Sporadic Server. The paper implements PS and DS; this bench adds
// the background baseline and the SS extension on identical workloads with
// a periodic load (tau1/tau2 from Table 1) so background service actually
// competes with something.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/tables.h"

int main() {
  using namespace tsf;
  using common::Duration;
  using common::TimePoint;
  std::cout << "=== Extension: server policy comparison (executions) ===\n"
            << "(paper sets + Table 1's periodic tasks tau1(2,6), tau2(1,6);"
               " background server runs below them)\n\n";

  common::TextTable t;
  t.add_row({"set", "policy", "AART", "AIR", "ASR"});
  for (const auto& set : {exp::PaperSet{1, 0}, exp::PaperSet{2, 0},
                          exp::PaperSet{1, 2}, exp::PaperSet{2, 2}}) {
    for (const auto policy :
         {model::ServerPolicy::kBackground, model::ServerPolicy::kPolling,
          model::ServerPolicy::kDeferrable, model::ServerPolicy::kSporadic}) {
      auto params = exp::paper_generator_params(set, policy);
      params.periodic_tasks.push_back({"tau1", Duration::time_units(6),
                                       Duration::time_units(2),
                                       Duration::zero(), TimePoint::origin(),
                                       20});
      params.periodic_tasks.push_back({"tau2", Duration::time_units(6),
                                       Duration::time_units(1),
                                       Duration::zero(), TimePoint::origin(),
                                       10});
      if (policy == model::ServerPolicy::kBackground) {
        params.server_priority = 1;  // below the periodic tasks
      }
      const auto m = exp::run_set(params, exp::Mode::kExecution,
                                  exp::paper_execution_options());
      char key[64];
      std::snprintf(key, sizeof key, "(%g,%g)", set.density,
                    set.std_deviation);
      t.add_row({key, model::to_string(policy), common::fmt_fixed(m.aart, 2),
                 common::fmt_fixed(m.air, 2), common::fmt_fixed(m.asr, 2)});
    }
  }
  std::cout << t.to_string()
            << "\nReading: event-driven budgets (deferrable, sporadic) give"
               " the best response times; polling pays up to one period of"
               " latency; background service depends entirely on the idle"
               " time the periodic load leaves.\n";
  return 0;
}
