// Extension: the full policy spectrum on the paper's workloads.
//
// §2 surveys background servicing ("the easiest way ... does not offer
// satisfying response times"), the Polling Server, the Deferrable Server
// and the Sporadic Server. The paper implements PS and DS; this bench adds
// the background baseline and the SS extension on identical workloads with
// a periodic load (tau1/tau2 from Table 1) so background service actually
// competes with something. A thin cell-enumerator over the sharded harness
// (`--jobs N` parallelizes the 16 cells).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/bench_cli.h"
#include "exp/shard.h"

int main(int argc, char** argv) {
  using namespace tsf;
  using common::Duration;
  using common::TimePoint;
  exp::BenchCli cli(exp::BenchCli::kShard);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_ablation_policies");
  }
  const exp::ShardOptions& shard = cli.shard;
  std::cout << "=== Extension: server policy comparison (executions) ===\n"
            << "(paper sets + Table 1's periodic tasks tau1(2,6), tau2(1,6);"
               " background server runs below them)\n\n";

  std::vector<exp::WorkUnit> units;
  std::vector<std::pair<std::string, std::string>> rows;  // (set, policy)
  for (const auto& set : {exp::PaperSet{1, 0}, exp::PaperSet{2, 0},
                          exp::PaperSet{1, 2}, exp::PaperSet{2, 2}}) {
    for (const auto policy :
         {model::ServerPolicy::kBackground, model::ServerPolicy::kPolling,
          model::ServerPolicy::kDeferrable, model::ServerPolicy::kSporadic}) {
      exp::WorkUnit unit;
      char key[64];
      std::snprintf(key, sizeof key, "(%g,%g)", set.density,
                    set.std_deviation);
      unit.label = std::string(key) + "/" + model::to_string(policy);
      unit.params = exp::paper_generator_params(set, policy);
      unit.params.periodic_tasks.push_back({"tau1", Duration::time_units(6),
                                            Duration::time_units(2),
                                            Duration::zero(),
                                            TimePoint::origin(), 20});
      unit.params.periodic_tasks.push_back({"tau2", Duration::time_units(6),
                                            Duration::time_units(1),
                                            Duration::zero(),
                                            TimePoint::origin(), 10});
      if (policy == model::ServerPolicy::kBackground) {
        unit.params.server_priority = 1;  // below the periodic tasks
      }
      unit.mode = exp::Mode::kExecution;
      unit.exec_options = exp::paper_execution_options();
      units.push_back(std::move(unit));
      rows.emplace_back(key, model::to_string(policy));
    }
  }
  const exp::ShardOutcome outcome = exp::run_units(units, shard);
  if (!outcome.ok) {
    std::cerr << "error: " << outcome.error << '\n';
    return 1;
  }

  common::TextTable t;
  t.add_row({"set", "policy", "AART", "AIR", "ASR"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& m = outcome.cells[i].metrics;
    t.add_row({rows[i].first, rows[i].second, common::fmt_fixed(m.aart, 2),
               common::fmt_fixed(m.air, 2), common::fmt_fixed(m.asr, 2)});
  }
  std::cout << t.to_string()
            << "\nReading: event-driven budgets (deferrable, sporadic) give"
               " the best response times; polling pays up to one period of"
               " latency; background service depends entirely on the idle"
               " time the periodic load leaves.\n";
  return 0;
}
