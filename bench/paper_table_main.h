// Shared driver for the four table-reproduction benches: enumerates the six
// paper sets under one (policy, mode) pair, runs them through the sharded
// harness (`--jobs N` fans the cells out over worker processes) and prints
// our table next to the paper's published values.
#pragma once

#include <array>
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/bench_cli.h"
#include "exp/shard.h"

namespace tsf::bench {

struct PaperReference {
  const char* label;
  // AART/AIR/ASR for the six sets in table order:
  // (1,0) (2,0) (3,0) (1,2) (2,2) (3,2).
  std::array<double, 6> aart;
  std::array<double, 6> air;
  std::array<double, 6> asr;
};

inline int run_paper_table_bench(model::ServerPolicy policy,
                                 exp::Mode mode,
                                 const PaperReference& reference,
                                 int argc = 0, char** argv = nullptr) {
  exp::BenchCli cli(exp::BenchCli::kShard);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) {
      return cli.fail(argv != nullptr ? argv[0] : "bench_table");
    }
  }
  const exp::ShardOptions& shard = cli.shard;
  const exp::ExecOptions options = mode == exp::Mode::kExecution
                                       ? exp::paper_execution_options()
                                       : exp::ExecOptions{};
  const exp::PaperTable table =
      exp::run_paper_table(policy, mode, options, shard);

  std::cout << "=== " << reference.label << " ===\n";
  std::cout << "(6 sets x 10 systems, seed 1983, horizon 10 server periods;"
               " capacity 4tu, period 6tu, mean cost 3tu)\n\n";
  std::cout << exp::format_paper_table(table) << '\n';

  common::TextTable cmp;
  cmp.add_row({"set", "AART ours", "AART paper", "AIR ours", "AIR paper",
               "ASR ours", "ASR paper"});
  const auto sets = exp::paper_sets();
  for (std::size_t i = 0; i < sets.size(); ++i) {
    char key[64];
    std::snprintf(key, sizeof key, "(%g,%g)", sets[i].density,
                  sets[i].std_deviation);
    cmp.add_row({key, common::fmt_fixed(table.cells[i].aart, 2),
                 common::fmt_fixed(reference.aart[i], 2),
                 common::fmt_fixed(table.cells[i].air, 2),
                 common::fmt_fixed(reference.air[i], 2),
                 common::fmt_fixed(table.cells[i].asr, 2),
                 common::fmt_fixed(reference.asr[i], 2)});
  }
  std::cout << "Comparison with the paper's published values:\n"
            << cmp.to_string() << '\n';
  return 0;
}

}  // namespace tsf::bench
