// Ablation: pending-queue discipline.
//
// The paper attributes its execution-vs-simulation AART inversion to the
// first-fit chooseNextEvent (§6.2.2) and proposes the list-of-lists queue
// for O(1) online prediction (§7). This bench quantifies what each
// discipline costs/buys on the paper's six sets (Polling Server,
// execution mode, calibrated overheads).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/tables.h"

int main() {
  using namespace tsf;
  std::cout << "=== Ablation: pending-queue discipline (PS executions) ===\n\n";
  common::TextTable t;
  t.add_row({"set", "discipline", "AART", "AIR", "ASR"});
  for (const auto& set : exp::paper_sets()) {
    for (const auto queue : {model::QueueDiscipline::kStrictFifo,
                             model::QueueDiscipline::kFifoFirstFit,
                             model::QueueDiscipline::kListOfLists}) {
      auto params =
          exp::paper_generator_params(set, model::ServerPolicy::kPolling);
      params.queue = queue;
      const auto m = exp::run_set(params, exp::Mode::kExecution,
                                  exp::paper_execution_options());
      char key[64];
      std::snprintf(key, sizeof key, "(%g,%g)", set.density,
                    set.std_deviation);
      t.add_row({key, model::to_string(queue), common::fmt_fixed(m.aart, 2),
                 common::fmt_fixed(m.air, 2), common::fmt_fixed(m.asr, 2)});
    }
  }
  std::cout << t.to_string()
            << "\nReading: first-fit shortens AART on heterogeneous sets by"
               " serving cheap events opportunistically; strict FIFO wastes"
               " capacity behind oversized heads; list-of-lists trades a"
               " little responsiveness for O(1) admission (see"
               " online_admission).\n";
  return 0;
}
