// Ablation: pending-queue discipline.
//
// The paper attributes its execution-vs-simulation AART inversion to the
// first-fit chooseNextEvent (§6.2.2) and proposes the list-of-lists queue
// for O(1) online prediction (§7). This bench quantifies what each
// discipline costs/buys on the paper's six sets (Polling Server,
// execution mode, calibrated overheads). A thin cell-enumerator over the
// sharded harness: `--jobs N` runs the 18 cells in parallel.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/bench_cli.h"
#include "exp/shard.h"

int main(int argc, char** argv) {
  using namespace tsf;
  exp::BenchCli cli(exp::BenchCli::kShard);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_ablation_queue");
  }
  const exp::ShardOptions& shard = cli.shard;
  std::cout << "=== Ablation: pending-queue discipline (PS executions) ===\n\n";

  std::vector<exp::WorkUnit> units;
  std::vector<std::pair<std::string, std::string>> rows;  // (set, discipline)
  for (const auto& set : exp::paper_sets()) {
    for (const auto queue : {model::QueueDiscipline::kStrictFifo,
                             model::QueueDiscipline::kFifoFirstFit,
                             model::QueueDiscipline::kListOfLists}) {
      exp::WorkUnit unit;
      char key[64];
      std::snprintf(key, sizeof key, "(%g,%g)", set.density,
                    set.std_deviation);
      unit.label = std::string(key) + "/" + model::to_string(queue);
      unit.params =
          exp::paper_generator_params(set, model::ServerPolicy::kPolling);
      unit.params.queue = queue;
      unit.mode = exp::Mode::kExecution;
      unit.exec_options = exp::paper_execution_options();
      units.push_back(std::move(unit));
      rows.emplace_back(key, model::to_string(queue));
    }
  }
  const exp::ShardOutcome outcome = exp::run_units(units, shard);
  if (!outcome.ok) {
    std::cerr << "error: " << outcome.error << '\n';
    return 1;
  }

  common::TextTable t;
  t.add_row({"set", "discipline", "AART", "AIR", "ASR"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& m = outcome.cells[i].metrics;
    t.add_row({rows[i].first, rows[i].second, common::fmt_fixed(m.aart, 2),
               common::fmt_fixed(m.air, 2), common::fmt_fixed(m.asr, 2)});
  }
  std::cout << t.to_string()
            << "\nReading: first-fit shortens AART on heterogeneous sets by"
               " serving cheap events opportunistically; strict FIFO wastes"
               " capacity behind oversized heads; list-of-lists trades a"
               " little responsiveness for O(1) admission (see"
               " online_admission).\n";
  return 0;
}
