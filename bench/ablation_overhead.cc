// Ablation: kernel overhead sweep.
//
// §6.2.2/§7 attribute the interrupted-aperiodics ratio to overhead eating
// the Timed budget (timers run above the server; capacity accounting is
// wall-clock). Sweeping the timer-fire cost makes the mechanism visible:
// AIR climbs and ASR decays as overhead grows; homogeneous sets absorb the
// first ~1tu of interference in the capacity's slack.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/tables.h"

int main() {
  using namespace tsf;
  std::cout << "=== Ablation: timer-fire overhead sweep (PS executions) ===\n"
            << "(jitter fixed at the calibrated 15%)\n\n";
  common::TextTable t;
  t.add_row({"timer_fire", "set", "AART", "AIR", "ASR"});
  for (const int ticks : {0, 100, 250, 500, 1000}) {
    for (const auto& set : {exp::PaperSet{2, 0}, exp::PaperSet{2, 2}}) {
      auto options = exp::paper_execution_options();
      options.kernel.timer_fire = common::Duration::ticks(ticks);
      const auto m = exp::run_set(
          exp::paper_generator_params(set, model::ServerPolicy::kPolling),
          exp::Mode::kExecution, options);
      char key[64], oh[64];
      std::snprintf(key, sizeof key, "(%g,%g)", set.density,
                    set.std_deviation);
      std::snprintf(oh, sizeof oh, "%.2ftu", ticks / 1000.0);
      t.add_row({oh, key, common::fmt_fixed(m.aart, 2),
                 common::fmt_fixed(m.air, 2), common::fmt_fixed(m.asr, 2)});
    }
  }
  std::cout << t.to_string() << '\n';
  return 0;
}
