// Ablation: kernel overhead sweep.
//
// §6.2.2/§7 attribute the interrupted-aperiodics ratio to overhead eating
// the Timed budget (timers run above the server; capacity accounting is
// wall-clock). Sweeping the timer-fire cost makes the mechanism visible:
// AIR climbs and ASR decays as overhead grows; homogeneous sets absorb the
// first ~1tu of interference in the capacity's slack. A thin
// cell-enumerator over the sharded harness (`--jobs N`).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/bench_cli.h"
#include "exp/shard.h"

int main(int argc, char** argv) {
  using namespace tsf;
  exp::BenchCli cli(exp::BenchCli::kShard);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_ablation_overhead");
  }
  const exp::ShardOptions& shard = cli.shard;
  std::cout << "=== Ablation: timer-fire overhead sweep (PS executions) ===\n"
            << "(jitter fixed at the calibrated 15%)\n\n";

  std::vector<exp::WorkUnit> units;
  std::vector<std::pair<std::string, std::string>> rows;  // (overhead, set)
  for (const int ticks : {0, 100, 250, 500, 1000}) {
    for (const auto& set : {exp::PaperSet{2, 0}, exp::PaperSet{2, 2}}) {
      exp::WorkUnit unit;
      char key[64], oh[64];
      std::snprintf(key, sizeof key, "(%g,%g)", set.density,
                    set.std_deviation);
      std::snprintf(oh, sizeof oh, "%.2ftu", ticks / 1000.0);
      unit.label = std::string(oh) + "/" + key;
      unit.params =
          exp::paper_generator_params(set, model::ServerPolicy::kPolling);
      unit.mode = exp::Mode::kExecution;
      unit.exec_options = exp::paper_execution_options();
      unit.exec_options.kernel.timer_fire = common::Duration::ticks(ticks);
      units.push_back(std::move(unit));
      rows.emplace_back(oh, key);
    }
  }
  const exp::ShardOutcome outcome = exp::run_units(units, shard);
  if (!outcome.ok) {
    std::cerr << "error: " << outcome.error << '\n';
    return 1;
  }

  common::TextTable t;
  t.add_row({"timer_fire", "set", "AART", "AIR", "ASR"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& m = outcome.cells[i].metrics;
    t.add_row({rows[i].first, rows[i].second, common::fmt_fixed(m.aart, 2),
               common::fmt_fixed(m.air, 2), common::fmt_fixed(m.asr, 2)});
  }
  std::cout << t.to_string() << '\n';
  return 0;
}
