// Micro: end-to-end engine throughput on paper-style systems — how fast one
// table cell (10 systems) can be evaluated on either engine.
#include <benchmark/benchmark.h>

#include "exp/exec_runner.h"
#include "gen/generator.h"
#include "sim/simulator.h"

namespace {

using namespace tsf;

gen::GeneratorParams cell_params(double density, double sd,
                                 model::ServerPolicy policy) {
  gen::GeneratorParams p;
  p.task_density = density;
  p.std_deviation_tu = sd;
  p.policy = policy;
  p.nb_generation = 10;
  return p;
}

void BM_SimulateTableCell(benchmark::State& state) {
  const auto systems =
      gen::RandomSystemGenerator(
          cell_params(3, 2, model::ServerPolicy::kDeferrable))
          .generate();
  std::size_t jobs = 0;
  for (auto _ : state) {
    jobs = 0;
    for (const auto& spec : systems) {
      const auto r = sim::simulate(spec);
      jobs += r.jobs.size();
    }
    benchmark::DoNotOptimize(jobs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_SimulateTableCell)->Unit(benchmark::kMillisecond);

void BM_ExecuteTableCell(benchmark::State& state) {
  const auto systems =
      gen::RandomSystemGenerator(
          cell_params(3, 2, model::ServerPolicy::kDeferrable))
          .generate();
  const auto options = exp::paper_execution_options();
  std::size_t jobs = 0;
  for (auto _ : state) {
    jobs = 0;
    for (const auto& spec : systems) {
      const auto r = exp::run_exec(spec, options);
      jobs += r.jobs.size();
    }
    benchmark::DoNotOptimize(jobs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_ExecuteTableCell)->Unit(benchmark::kMillisecond);

void BM_SimulatePeriodicHeavy(benchmark::State& state) {
  // Periodic-task-dominated load: stresses the decision loop.
  model::SystemSpec spec;
  spec.server.policy = model::ServerPolicy::kNone;
  for (int i = 0; i < 8; ++i) {
    spec.periodic_tasks.push_back(
        {"t" + std::to_string(i), common::Duration::time_units(5 + 3 * i),
         common::Duration::time_units(1), common::Duration::zero(),
         common::TimePoint::origin(), 10 + i});
  }
  spec.horizon = common::TimePoint::origin() +
                 common::Duration::time_units(state.range(0));
  for (auto _ : state) {
    const auto r = sim::simulate(spec);
    benchmark::DoNotOptimize(r.periodic_jobs.size());
  }
}
BENCHMARK(BM_SimulatePeriodicHeavy)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
