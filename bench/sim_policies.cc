// Extension: the RTSS simulator's three scheduling policies under load.
//
// §5 lists Preemptive Fixed Priority, EDF and D-OVER. Firm-deadline job
// sets are swept from underload to 2x overload; EDF collapses under
// overload (the domino effect), D-OVER keeps a guaranteed fraction of the
// achievable value.
#include <cstdio>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "sim/dover.h"
#include "sim/edf.h"

namespace {

using namespace tsf;
using common::Duration;
using common::TimePoint;

std::vector<sim::DynJob> make_job_set(double load, common::Rng& rng,
                                      int count) {
  // Jobs of mean cost 3tu arriving with inter-arrival mean 3/load; firm
  // deadline = release + cost * uniform(1.5, 3).
  std::vector<sim::DynJob> jobs;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < count; ++i) {
    const double gap = rng.uniform(0.0, 2.0) * 3.0 / load;
    t += Duration::from_tu(gap);
    sim::DynJob j;
    j.name = "j" + std::to_string(i);
    j.release = t;
    j.cost = Duration::from_tu(rng.uniform(1.0, 5.0));
    j.deadline = j.release + Duration::from_tu(j.cost.to_tu() *
                                               rng.uniform(1.5, 3.0));
    j.value = j.cost.to_tu();  // uniform value density (k = 1)
    jobs.push_back(std::move(j));
  }
  return jobs;
}

}  // namespace

int main() {
  std::cout << "=== Extension: RTSS policies under overload (firm jobs) ===\n"
            << "(200 jobs per point, 10 seeds; value = cost, k = 1)\n\n";
  common::TextTable t;
  t.add_row({"load", "EDF value %", "D-OVER value %", "EDF misses",
             "D-OVER misses"});
  for (const double load : {0.5, 0.8, 1.0, 1.2, 1.5, 2.0}) {
    double edf_value = 0, dover_value = 0, offered = 0;
    std::size_t edf_missed = 0, dover_missed = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      common::Rng rng(1983 + seed);
      const auto jobs = make_job_set(load, rng, 200);
      offered += sim::total_value(jobs);
      sim::EdfOptions firm;
      firm.firm = true;
      const auto edf = sim::simulate_edf(jobs, firm);
      const auto dover = sim::simulate_dover(jobs);
      edf_value += edf.total_value;
      dover_value += dover.total_value;
      edf_missed += edf.missed;
      dover_missed += dover.missed;
    }
    char l[64];
    std::snprintf(l, sizeof l, "%.1f", load);
    t.add_row({l, common::fmt_fixed(100.0 * edf_value / offered, 1),
               common::fmt_fixed(100.0 * dover_value / offered, 1),
               std::to_string(edf_missed), std::to_string(dover_missed)});
  }
  std::cout << t.to_string()
            << "\nReading: both policies are optimal below load 1; past it,"
               " firm EDF wastes work on jobs it then abandons while D-OVER"
               " abandons early and completes what it starts.\n";
  return 0;
}
