// Throughput and memory ceiling of the streaming trace pipeline.
//
// Synthesizes a horizon-scale record stream (release/start/complete per
// job, with the VM's provisional-preempt/retract churn mixed in) and pushes
// it through the production sink stack — binary tsf-trace/1 writer,
// streaming fingerprint, streaming metrics — without ever materializing a
// Timeline. At the default 10^6 jobs that is 3×10^6 records; CI runs 10^7
// jobs under a hard address-space ulimit to prove the pipeline stays
// O(entities) where the materialized path would need gigabytes.
//
// Before the timed pass, a 50k-job prefix is run through both the streaming
// and the materialized paths and must agree: streaming fingerprint ==
// fingerprint(Timeline), and a binary write/read round trip must reproduce
// the materialized fingerprint exactly.
//
//   bench_trace_stream [--count N] [--entities M] [--out FILE]
//                      [--rss-limit-mb N] [--json FILE]
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/trace.h"
#include "common/trace_io.h"
#include "common/trace_sink.h"
#include "common/trace_stream.h"
#include "exp/bench_cli.h"

namespace {

using namespace tsf;

// Swallows writes so the default run measures the pipeline, not the disk.
class NullBuf : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

// Deterministic synthetic workload: one processor, `entities` servers used
// round-robin, each job released and started at the same instant and
// completed 1..7 ticks later. Every 64th job appends a provisional kPreempt
// at the completion instant and immediately retracts it — the VM's
// horizon-pause pattern — so retraction stays on the measured path.
void generate(common::TraceSink* sink, std::uint64_t jobs,
              std::uint64_t entities,
              const std::vector<std::string>& names) {
  std::int64_t t = 0;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    const std::string& who = names[j % entities];
    const std::int64_t cost = 1 + static_cast<std::int64_t>(j % 7);
    const auto release = common::TimePoint::at_ticks(t);
    const auto done = common::TimePoint::at_ticks(t + cost);
    sink->record(release, common::TraceKind::kRelease, who,
                 static_cast<std::int64_t>(j));
    sink->record(release, common::TraceKind::kStart, who);
    sink->record(done, common::TraceKind::kComplete, who);
    if (j % 64 == 63) {
      sink->record(done, common::TraceKind::kPreempt, who);
      sink->retract(done, common::TraceKind::kPreempt, who);
    }
    t += cost + 1;
  }
}

double max_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KB
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t count = 1'000'000;
  std::uint64_t entities = 64;
  std::string out_path;
  double rss_limit_mb = 0.0;
  tsf::exp::BenchCli cli(tsf::exp::BenchCli::kJson);
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--count") == 0) {
      count = std::strtoull(next("--count"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--entities") == 0) {
      entities = std::strtoull(next("--entities"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--rss-limit-mb") == 0) {
      rss_limit_mb = std::strtod(next("--rss-limit-mb"), nullptr);
    } else if (!cli.consume(argc, argv, &i)) {
      return cli.fail("bench_trace_stream",
                      " [--count N] [--entities M] [--out FILE]"
                      " [--rss-limit-mb N]");
    }
  }
  const std::string& json_path = cli.json_path;
  if (count == 0 || entities == 0) {
    std::cerr << "--count and --entities must be positive\n";
    return 2;
  }

  std::vector<std::string> names;
  names.reserve(entities);
  for (std::uint64_t e = 0; e < entities; ++e) {
    names.push_back("srv" + std::to_string(e));
  }

  // Correctness prefix: streaming vs materialized, plus a binary round trip.
  const std::uint64_t prefix_jobs = std::min<std::uint64_t>(count, 50'000);
  common::Timeline materialized;
  common::StreamingFingerprint prefix_digest;
  std::ostringstream prefix_bytes;
  {
    common::BinaryTraceWriter writer(prefix_bytes);
    common::TeeSink tee;
    tee.add(&materialized);
    tee.add(&prefix_digest);
    tee.add(&writer);
    generate(&tee, prefix_jobs, entities, names);
  }
  const std::uint64_t want = common::fingerprint(materialized);
  const bool fingerprint_ok = prefix_digest.digest() == want;
  bool roundtrip_ok = false;
  {
    common::Timeline replayed;
    std::istringstream in(prefix_bytes.str());
    std::string error;
    roundtrip_ok = common::read_trace(in, &replayed, &error) &&
                   common::fingerprint(replayed) == want;
    if (!roundtrip_ok && !error.empty()) {
      std::cerr << "round trip failed: " << error << '\n';
    }
  }
  if (!fingerprint_ok || !roundtrip_ok) {
    std::cerr << "self-check failed: fingerprint_ok=" << fingerprint_ok
              << " roundtrip_ok=" << roundtrip_ok << '\n';
  }

  // Timed pass through the full sink stack.
  NullBuf null_buf;
  std::ofstream out_file;
  std::ostream* out = nullptr;
  if (out_path.empty()) {
    out = new std::ostream(&null_buf);
  } else {
    out_file.open(out_path, std::ios::binary);
    if (!out_file) {
      std::cerr << "error: cannot write '" << out_path << "'\n";
      return 2;
    }
    out = &out_file;
  }
  common::BinaryTraceWriter writer(*out);
  common::StreamingFingerprint digest;
  common::StreamingTraceMetrics metrics;
  common::TeeSink tee;
  tee.add(&writer);
  tee.add(&digest);
  tee.add(&metrics);

  const auto begin = std::chrono::steady_clock::now();
  generate(&tee, count, entities, names);
  metrics.finish();
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
          .count();
  if (out != &out_file) delete out;

  const double records = static_cast<double>(metrics.records());
  const double events_per_sec = seconds > 0.0 ? records / seconds : 0.0;
  const double bytes_per_record =
      records > 0.0 ? static_cast<double>(writer.bytes_written()) / records
                    : 0.0;
  const double rss_mb = max_rss_mb();

  std::printf("jobs            %llu\n", static_cast<unsigned long long>(count));
  std::printf("records         %.0f\n", records);
  std::printf("retractions     %llu\n",
              static_cast<unsigned long long>(metrics.retractions()));
  std::printf("bytes/record    %.3f\n", bytes_per_record);
  std::printf("events/sec      %.3g\n", events_per_sec);
  std::printf("max rss         %.1f MB\n", rss_mb);
  std::printf("fingerprint     %016llx\n",
              static_cast<unsigned long long>(digest.digest()));
  std::printf("self-check      fingerprint=%s roundtrip=%s\n",
              fingerprint_ok ? "ok" : "FAIL", roundtrip_ok ? "ok" : "FAIL");

  if (!json_path.empty()) {
    common::JsonWriter json;
    json.begin_object();
    json.key("schema").value("tsf-bench/1");
    json.key("bench").value("trace_stream");
    json.key("metrics").begin_array();
    auto metric = [&json](const std::string& name, double value,
                          bool higher_is_better) {
      json.begin_object();
      json.key("name").value(name);
      json.key("value").value(value);
      json.key("higher_is_better").value(higher_is_better);
      json.end_object();
    };
    metric("records", records, true);
    metric("bytes_per_record", bytes_per_record, false);
    metric("fingerprint_ok", fingerprint_ok ? 1.0 : 0.0, true);
    metric("roundtrip_ok", roundtrip_ok ? 1.0 : 0.0, true);
    metric("events_per_sec", events_per_sec, true);
    json.end_array();
    json.end_object();
    std::ofstream json_out(json_path, std::ios::binary);
    json_out << json.take();
  }

  if (!fingerprint_ok || !roundtrip_ok) return 1;
  if (rss_limit_mb > 0.0 && rss_mb > rss_limit_mb) {
    std::cerr << "max rss " << rss_mb << " MB exceeds limit " << rss_limit_mb
              << " MB\n";
    return 1;
  }
  return 0;
}
