// Ablation: ProcessingGroupParameters vs a task server (§1/§3).
//
// The paper rejects PGP because it provides a budget without a policy. We
// make that concrete: the same aperiodic stream is handled either by a
// Polling Server (capacity 4 / period 6) or by a high-priority handler
// thread whose work is metered by an *enforced* PGP with the same budget.
// The PGP run caps utilisation identically but admits every event eagerly;
// its periodic neighbours see bursty interference (response-time spikes),
// and aperiodic completions stall wherever the group budget dies.
#include <iostream>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "exp/exec_runner.h"
#include "gen/generator.h"
#include "rtsj/pgp.h"
#include "rtsj/realtime_thread.h"
#include "rtsj/vm/vm.h"

namespace {

using namespace tsf;
using common::Duration;
using common::TimePoint;

struct PgpRun {
  double mean_response = 0.0;
  double served_ratio = 0.0;
  double tau_max_response = 0.0;
};

// Serves the jobs in a dedicated top-priority thread metered by a PGP.
PgpRun run_with_pgp(const model::SystemSpec& spec, bool enforce) {
  rtsj::vm::VirtualMachine vm;
  rtsj::ProcessingGroupParameters pgp(vm, TimePoint::origin(),
                                      spec.server.period,
                                      spec.server.capacity, enforce);
  // Periodic victim task below the event thread.
  common::Accumulator tau_responses;
  rtsj::RealtimeThread tau(
      vm, "tau", rtsj::PriorityParameters(20),
      rtsj::PeriodicParameters(TimePoint::origin(), Duration::time_units(6),
                               Duration::time_units(2)),
      [&](rtsj::RealtimeThread& self) {
        for (;;) {
          const TimePoint release = TimePoint::origin() +
                                    Duration::time_units(6) *
                                        self.release_index();
          self.work(Duration::time_units(2));
          tau_responses.add((self.now() - release).to_tu());
          self.wait_for_next_period();
        }
      });

  // The event thread: FIFO queue, every arrival processed eagerly, all work
  // charged to the group.
  struct Pending {
    TimePoint release;
    Duration cost;
  };
  auto queue = std::make_shared<std::vector<Pending>>();
  common::Accumulator responses;
  std::size_t served = 0;
  rtsj::RealtimeThread worker(
      vm, "events", rtsj::PriorityParameters(30),
      rtsj::PeriodicParameters(TimePoint::origin(), Duration::time_units(1)),
      [&, queue](rtsj::RealtimeThread& self) {
        for (;;) {
          while (!queue->empty()) {
            const Pending job = queue->front();
            queue->erase(queue->begin());
            self.work(job.cost);  // charged via the PGP
            responses.add((self.now() - job.release).to_tu());
            ++served;
          }
          self.wait_for_next_period();
        }
      });
  worker.set_processing_group(&pgp);

  std::vector<rtsj::vm::VirtualMachine::TimerHandle> arrivals;
  for (const auto& job : spec.aperiodic_jobs) {
    arrivals.push_back(vm.schedule_timer(
        job.release, [queue, &job, &vm](/*kernel*/) {
          (void)vm;
          queue->push_back({job.release, job.cost});
        }));
  }
  tau.start();
  worker.start();
  vm.run_until(spec.horizon);

  PgpRun out;
  out.mean_response = responses.mean();
  out.served_ratio = spec.aperiodic_jobs.empty()
                         ? 0.0
                         : static_cast<double>(served) /
                               static_cast<double>(spec.aperiodic_jobs.size());
  out.tau_max_response = tau_responses.max();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: enforced PGP vs Polling Server ===\n"
            << "(same budget 4tu/6tu; tau(2,6) is the periodic victim)\n\n";

  gen::GeneratorParams params;
  params.task_density = 2;
  params.std_deviation_tu = 2;
  params.nb_generation = 10;
  params.policy = model::ServerPolicy::kPolling;
  params.periodic_tasks.push_back({"tau", Duration::time_units(6),
                                   Duration::time_units(2), Duration::zero(),
                                   TimePoint::origin(), 20});

  common::Accumulator ps_resp, ps_sr, ps_tau;
  common::Accumulator pgp_resp, pgp_sr, pgp_tau;
  common::Accumulator raw_tau;
  for (const auto& spec : gen::RandomSystemGenerator(params).generate()) {
    const auto exec = exp::run_exec(spec, exp::ideal_execution_options());
    common::Accumulator responses;
    std::size_t served = 0;
    for (const auto& j : exec.jobs) {
      if (j.served) {
        responses.add(j.response().to_tu());
        ++served;
      }
    }
    ps_resp.add(responses.mean());
    ps_sr.add(static_cast<double>(served) /
              static_cast<double>(exec.jobs.size()));
    double tau_max = 0.0;
    for (const auto& j : exec.periodic_jobs) {
      tau_max = std::max(tau_max, (j.completion - j.release).to_tu());
    }
    ps_tau.add(tau_max);

    const auto enforced = run_with_pgp(spec, /*enforce=*/true);
    pgp_resp.add(enforced.mean_response);
    pgp_sr.add(enforced.served_ratio);
    pgp_tau.add(enforced.tau_max_response);

    const auto unenforced = run_with_pgp(spec, /*enforce=*/false);
    raw_tau.add(unenforced.tau_max_response);
  }

  common::TextTable t;
  t.add_row({"scheme", "mean response (tu)", "served ratio",
             "tau worst response (tu)"});
  t.add_row({"PollingTaskServer", common::fmt_fixed(ps_resp.mean(), 2),
             common::fmt_fixed(ps_sr.mean(), 2),
             common::fmt_fixed(ps_tau.mean(), 2)});
  t.add_row({"PGP (enforced)", common::fmt_fixed(pgp_resp.mean(), 2),
             common::fmt_fixed(pgp_sr.mean(), 2),
             common::fmt_fixed(pgp_tau.mean(), 2)});
  t.add_row({"PGP (no enforcement, RI behaviour)", "-", "-",
             common::fmt_fixed(raw_tau.mean(), 2)});
  std::cout << t.to_string()
            << "\nReading: without enforcement (the RI the paper used) the"
               " event thread starves the periodic task outright; with"
               " enforcement the budget holds, but no admission policy"
               " exists — events start and stall mid-service wherever the"
               " group budget dies, which a task server never does.\n";
  return 0;
}
