// Micro: virtual-machine engine costs — fiber handoffs, timer processing,
// and work slicing under kernel interference.
#include <benchmark/benchmark.h>

#include "rtsj/vm/vm.h"

namespace {

using namespace tsf::rtsj::vm;
using tsf::common::Duration;
using tsf::common::TimePoint;


// Two alternating fibers: each iteration of the pattern is two context
// switches plus two sleep timers.
void BM_FiberPingPong(benchmark::State& state) {
  const std::int64_t rounds = state.range(0);
  for (auto _ : state) {
    VirtualMachine m;
    auto body = [&m](std::int64_t phase) {
      return [&m, phase] {
        for (;;) {
          m.work(Duration::ticks(100));
          m.sleep_until(m.now() + Duration::ticks(100 + phase));
        }
      };
    };
    Fiber* a = m.create_fiber("a", 10, body(0));
    Fiber* b = m.create_fiber("b", 10, body(50));
    m.start_fiber(a);
    m.start_fiber(b);
    m.run_until(TimePoint::origin() + Duration::ticks(200 * rounds));
    benchmark::DoNotOptimize(m.context_switches());
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_FiberPingPong)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

// Timer throughput: N timers fired through one run.
void BM_TimerDrain(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    VirtualMachine m;
    std::int64_t fired = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      m.schedule_silent(TimePoint::origin() + Duration::ticks(i + 1),
                        [&fired] { ++fired; });
    }
    m.run_until(TimePoint::origin() + Duration::ticks(n + 1));
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TimerDrain)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

// A long work() sliced by periodic kernel timers: measures the engine's
// event-slicing overhead (the hot path of every table experiment).
void BM_WorkSlicedByTimers(benchmark::State& state) {
  const std::int64_t slices = state.range(0);
  for (auto _ : state) {
    VirtualMachine m;
    Fiber* f = m.create_fiber("w", 10, [&m, slices] {
      m.work(Duration::ticks(10 * slices));
    });
    m.start_fiber(f);
    for (std::int64_t i = 1; i < slices; ++i) {
      m.schedule_silent(TimePoint::origin() + Duration::ticks(10 * i),
                        [] {});
    }
    m.run_until(TimePoint::origin() + Duration::ticks(10 * slices + 1));
  }
  state.SetItemsProcessed(state.iterations() * slices);
}
BENCHMARK(BM_WorkSlicedByTimers)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
