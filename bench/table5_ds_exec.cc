// Reproduces Table 5: "Measures on Deferrable Server executions".
#include "paper_table_main.h"

int main(int argc, char** argv) {
  tsf::bench::PaperReference ref;
  ref.label = "Table 5 — Deferrable Server, execution";
  ref.aart = {6.90, 14.55, 20.58, 8.02, 13.47, 16.91};
  ref.air = {0.00, 0.00, 0.00, 0.14, 0.26, 0.27};
  ref.asr = {0.84, 0.56, 0.39, 0.66, 0.43, 0.30};
  return tsf::bench::run_paper_table_bench(
      tsf::model::ServerPolicy::kDeferrable, tsf::exp::Mode::kExecution,
      ref, argc, argv);
}
