// Channel-induced latency of cross-core event fires vs. the lock-step
// quantum of mp::MultiVm.
//
// Cross-core messages are delivered only at epoch boundaries, so on top of
// the spec's channel_latency every message waits out the remainder of its
// epoch — an average of ~quantum/2 and a worst case approaching the full
// quantum. This bench makes that quantization delay measurable: a fixed
// ping/pong workload (handlers on core 0 fire triggered jobs on core 1) is
// run at several quanta and the delivered-message latency distribution
// (p50/p95/p99) plus the end-to-end cross-core response time are reported.
// The quantum is thereby a tuning knob with a visible cost curve: small
// epochs approximate a shared-memory machine, large epochs amortize
// synchronization but stretch the channel tail.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/table.h"
#include "common/trace.h"
#include "exp/bench_cli.h"
#include "exp/metrics.h"
#include "mp/mp_system.h"

namespace {

using namespace tsf;

common::Duration tu(double x) { return common::Duration::from_tu(x); }

// Two cores, a deferrable replica each, and a stream of ping jobs on core 0
// whose completions fire triggered pong jobs pinned to core 1.
model::SystemSpec ping_pong_spec(int pairs) {
  model::SystemSpec spec;
  spec.name = "cross_core_bench";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(2);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < 2; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(2);
    t.priority = 10;
    t.affinity = c;
    spec.periodic_tasks.push_back(t);
  }
  for (int i = 0; i < pairs; ++i) {
    model::AperiodicJobSpec ping;
    ping.name = "ping" + std::to_string(i);
    ping.release = common::TimePoint::origin() + tu(1.0 + 5.0 * i);
    ping.cost = tu(0.5);
    ping.affinity = 0;
    ping.fires = "pong" + std::to_string(i);
    spec.aperiodic_jobs.push_back(ping);

    model::AperiodicJobSpec pong;
    pong.name = "pong" + std::to_string(i);
    pong.triggered = true;
    pong.cost = tu(0.5);
    pong.affinity = 1;
    spec.aperiodic_jobs.push_back(pong);
  }
  spec.horizon =
      common::TimePoint::origin() + tu(1.0 + 5.0 * pairs + 20.0);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  // --json FILE: emit the per-quantum latency quantiles in the tsf-bench/1
  // schema so CI can gate regressions against bench/baselines/.
  exp::BenchCli cli(exp::BenchCli::kJson);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_cross_core");
  }
  const std::string& json_path = cli.json_path;
  constexpr int kPairs = 40;
  const auto spec = ping_pong_spec(kPairs);
  const auto partition =
      mp::Partitioner(mp::PackingStrategy::kWorstFitDecreasing)
          .partition(spec);

  std::cout << "=== cross-core channel latency vs lock-step quantum ===\n"
            << "(" << kPairs << " ping->pong pairs across 2 cores;"
               " channel_latency 0; latency = fire post to delivery;"
               " e2e = post to pong completion)\n\n";

  common::TextTable table;
  table.add_row({"quantum", "delivered", "lat p50", "lat p95", "lat p99",
                 "e2e p50", "e2e p99", "deterministic"});
  bool ok = true;
  std::vector<double> p99s;
  std::vector<std::pair<double, exp::ChannelMetrics>> sweep;
  for (const double quantum : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    mp::MpRunOptions options;
    options.quantum = tu(quantum);
    const auto run = mp::run(spec, partition, options);
    const auto rerun = mp::run(spec, partition, options);
    const bool stable = common::fingerprint(run.merged.timeline) ==
                        common::fingerprint(rerun.merged.timeline);
    const auto ch =
        exp::compute_channel_metrics(run.channel_deliveries, run.merged);

    table.add_row({common::to_string(tu(quantum)),
                   std::to_string(ch.delivered),
                   common::fmt_fixed(ch.latency_p50_tu, 3),
                   common::fmt_fixed(ch.latency_p95_tu, 3),
                   common::fmt_fixed(ch.latency_p99_tu, 3),
                   common::fmt_fixed(ch.e2e_p50_tu, 3),
                   common::fmt_fixed(ch.e2e_p99_tu, 3),
                   stable ? "yes" : "NO"});
    ok = ok && stable && ch.delivered == kPairs;
    p99s.push_back(ch.latency_p99_tu);
    sweep.emplace_back(quantum, ch);
  }
  std::cout << table.to_string() << '\n';

  // Acceptance: the channel tail must track the quantum — the largest epoch
  // strictly worse than the smallest, and no shrink anywhere in between.
  for (std::size_t i = 1; i < p99s.size(); ++i) {
    if (p99s[i] + 1e-9 < p99s[i - 1]) {
      std::cout << "FAIL: latency p99 shrank when the quantum grew\n";
      ok = false;
    }
  }
  if (!p99s.empty() && p99s.back() <= p99s.front()) {
    std::cout << "FAIL: latency p99 flat across a 32x quantum sweep\n";
    ok = false;
  }
  std::cout << (ok ? "cross-core: latency tail tracks the quantum,"
                     " all runs deterministic\n"
                   : "cross-core: FAILED\n");

  if (!json_path.empty()) {
    common::JsonWriter json;
    json.begin_object();
    json.key("schema").value("tsf-bench/1");
    json.key("bench").value("cross_core");
    json.key("metrics").begin_array();
    auto metric = [&json](const std::string& name, double value,
                          bool higher_is_better) {
      json.begin_object();
      json.key("name").value(name);
      json.key("value").value(value);
      json.key("higher_is_better").value(higher_is_better);
      json.end_object();
    };
    for (const auto& [quantum, ch] : sweep) {
      char prefix[64];
      std::snprintf(prefix, sizeof prefix, "quantum_%g/", quantum);
      metric(prefix + std::string("delivered"),
             static_cast<double>(ch.delivered), true);
      metric(prefix + std::string("latency_p50_tu"), ch.latency_p50_tu,
             false);
      metric(prefix + std::string("latency_p95_tu"), ch.latency_p95_tu,
             false);
      metric(prefix + std::string("latency_p99_tu"), ch.latency_p99_tu,
             false);
      metric(prefix + std::string("e2e_p99_tu"), ch.e2e_p99_tu, false);
    }
    json.end_array();
    json.end_object();
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write '" << json_path << "'\n";
      return 1;
    }
    out << json.take();
  }
  return ok ? 0 : 1;
}
