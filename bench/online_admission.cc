// §7 end-to-end: O(1) online response-time prediction and admission.
//
// Random paper-style workloads run on a Polling Server with the
// list-of-lists queue. Every release is predicted (equation (5)) at release
// time; after the run the prediction error against the measured completion
// is reported, along with what an admission controller with a relative
// deadline would have accepted.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/response_time_predictor.h"
#include "core/servable_async_event.h"
#include "gen/generator.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

int main() {
  using namespace tsf;
  using common::Duration;
  std::cout << "=== §7: online prediction & admission (list-of-lists PS) ==="
            << "\n(10 random systems, density 2, sd 2, ideal machine)\n\n";

  gen::GeneratorParams params;
  params.task_density = 2;
  params.std_deviation_tu = 2;
  params.nb_generation = 10;
  params.queue = model::QueueDiscipline::kListOfLists;

  common::Accumulator abs_error_tu;
  common::Ratio exact;
  common::Ratio admitted_6tu, admitted_12tu, met_12tu;
  std::size_t predicted = 0, oversized = 0;

  for (const auto& spec : gen::RandomSystemGenerator(params).generate()) {
    rtsj::vm::VirtualMachine vm;
    core::TaskServerParameters sp("PS", spec.server.capacity,
                                  spec.server.period, spec.server.priority);
    sp.set_queue_discipline(model::QueueDiscipline::kListOfLists);
    core::PollingTaskServer server(vm, sp);
    core::ResponseTimePredictor predictor(server);

    struct Tracked {
      std::string name;
      Duration predicted;
      bool admissible12 = false;
    };
    auto predictions = std::make_shared<std::vector<Tracked>>();

    std::vector<std::unique_ptr<core::ServableAsyncEventHandler>> handlers;
    std::vector<std::unique_ptr<core::ServableAsyncEvent>> events;
    std::vector<std::unique_ptr<rtsj::OneShotTimer>> timers;
    for (const auto& job : spec.aperiodic_jobs) {
      handlers.push_back(std::make_unique<core::ServableAsyncEventHandler>(
          core::ServableAsyncEventHandler::pure_work(job.name, job.cost,
                                                     job.cost)));
      handlers.back()->set_server(&server);
      events.push_back(
          std::make_unique<core::ServableAsyncEvent>(vm, job.name + ".e"));
      events.back()->add_handler(handlers.back().get());
      // Predict at the release instant, from kernel context, right before
      // the fire registers the release (exactly §7's admission point).
      auto* event = events.back().get();
      const Duration cost = job.cost;
      const std::string name = job.name;
      timers.push_back(std::make_unique<rtsj::OneShotTimer>(
          vm, job.release, event));
      vm.schedule_silent(job.release, [&, cost, name] {
        if (const auto p = predictor.predict(cost)) {
          predictions->push_back(
              {name, *p,
               predictor.admissible(cost, Duration::time_units(12))});
        }
      });
      timers.back()->start();
    }
    server.start();
    vm.run_until(spec.horizon);

    for (const auto& outcome : server.final_outcomes()) {
      const auto it = std::find_if(
          predictions->begin(), predictions->end(),
          [&](const Tracked& t) { return t.name == outcome.name; });
      if (it == predictions->end()) {
        ++oversized;  // cost above capacity: predict() refused, never served
        continue;
      }
      ++predicted;
      admitted_6tu.add(it->predicted <= Duration::time_units(6));
      admitted_12tu.add(it->admissible12);
      if (outcome.served) {
        const Duration err = outcome.response() > it->predicted
                                 ? outcome.response() - it->predicted
                                 : it->predicted - outcome.response();
        abs_error_tu.add(err.to_tu());
        exact.add(err.is_zero());
        if (it->admissible12) {
          met_12tu.add(outcome.response() <= Duration::time_units(12));
        }
      }
    }
  }

  common::TextTable t;
  t.add_row({"metric", "value"});
  t.add_row({"releases predicted", std::to_string(predicted)});
  t.add_row({"releases above capacity (rejected outright)",
             std::to_string(oversized)});
  t.add_row({"mean |prediction error| (tu)",
             common::fmt_fixed(abs_error_tu.mean(), 3)});
  t.add_row({"exact predictions", common::fmt_fixed(exact.value() * 100, 1) +
                                      "%"});
  t.add_row({"would admit (deadline 6tu)",
             common::fmt_fixed(admitted_6tu.value() * 100, 1) + "%"});
  t.add_row({"would admit (deadline 12tu)",
             common::fmt_fixed(admitted_12tu.value() * 100, 1) + "%"});
  t.add_row({"admitted@12tu that met the deadline",
             common::fmt_fixed(met_12tu.value() * 100, 1) + "%"});
  std::cout << t.to_string()
            << "\nPredictions are exact for every release that is served in"
               " the instance it was packed into; errors appear only when a"
               " served-late event benefits from an earlier instance's"
               " leftover room.\n";
  return 0;
}
