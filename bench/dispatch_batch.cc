// Batched-dispatch throughput: the PR-proving bench for `[run] batch`.
//
// A saturating aperiodic storm (two releases per tu, 0.1tu jobs) hammers a
// deferrable server whose dispatch overhead (0.9tu) dwarfs the job cost —
// the regime the batching tentpole targets. At batch=1 every dispatch pays
// the overhead, so each job costs 1.0tu of wall time against a 0.5tu
// inter-arrival gap and the server falls behind, serving roughly half the
// storm. Batched, the overhead amortizes across the burst (0.9 + 0.1n per
// n jobs keeps up from n = 3) and the server is arrival-bound. Both effects
// are pure virtual-time quantities, so the headline metric — served jobs at
// each batch level and the batch=16/batch=1 speedup — is deterministic and
// gated exactly by bench_gate.
//
// Self-checks (the bench exits non-zero itself):
//   - every batch level is 3-run fingerprint-deterministic;
//   - batch=1 serves something (the baseline is meaningful);
//   - the batch=16 speedup is >= 1.5x (the PR's acceptance floor).
//
// events_per_sec is wall-clock (served jobs per second of run_exec time,
// best of 3) — its committed baseline is a conservative floor, not a
// measured number.
//
//   bench_dispatch_batch [--batch N] [--json FILE]
//
// --batch N adds one extra measured level beyond the standard 1/4/16 sweep.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/trace.h"
#include "exp/bench_cli.h"
#include "exp/exec_runner.h"
#include "model/spec.h"

namespace {

using namespace tsf;

common::Duration tu(std::int64_t n) { return common::Duration::time_units(n); }

// Two 0.1tu jobs per tu against a 4tu/8tu deferrable server: arrivals
// outrun what per-event dispatch (1.0tu wall per job at 0.9tu overhead) can
// serve, while a 16-batch (16 * 0.1 + 0.9 = 2.5tu) drains backlogs whole.
model::SystemSpec storm_spec() {
  model::SystemSpec spec;
  spec.name = "dispatch-batch";
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(4);
  spec.server.period = tu(8);
  spec.server.priority = 30;
  model::PeriodicTaskSpec task;
  task.name = "tau";
  task.period = tu(16);
  task.cost = tu(2);
  task.priority = 10;
  spec.periodic_tasks.push_back(task);
  const std::int64_t horizon_tu = 1500;
  for (std::int64_t j = 0; j < 2 * (horizon_tu - 4); ++j) {
    model::AperiodicJobSpec job;
    job.name = "a" + std::to_string(j);
    job.release = common::TimePoint::origin() + common::Duration::ticks(
        1000 + j * 500);  // two releases per tu from t=1
    job.cost = common::Duration::ticks(100);  // 0.1tu
    spec.aperiodic_jobs.push_back(job);
  }
  spec.horizon = common::TimePoint::origin() + tu(horizon_tu);
  return spec;
}

struct Level {
  int batch = 1;
  std::uint64_t served = 0;
  double best_seconds = 0.0;
  bool deterministic = true;
};

Level measure(const model::SystemSpec& spec, int batch) {
  exp::ExecOptions options;
  options.dispatch_overhead = common::Duration::ticks(900);  // 0.9tu
  options.poll_overhead = common::Duration::ticks(50);
  options.batch = batch;

  Level level;
  level.batch = batch;
  std::uint64_t fingerprint = 0;
  level.best_seconds = 1e100;
  for (int run = 0; run < 3; ++run) {
    const auto begin = std::chrono::steady_clock::now();
    const model::RunResult result = exp::run_exec(spec, options);
    const auto end = std::chrono::steady_clock::now();
    level.best_seconds = std::min(
        level.best_seconds,
        std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
            .count());
    std::uint64_t served = 0;
    for (const auto& job : result.jobs) {
      if (job.served) ++served;
    }
    const std::uint64_t fp = common::fingerprint(result.timeline);
    if (run == 0) {
      level.served = served;
      fingerprint = fp;
    } else if (fp != fingerprint || served != level.served) {
      level.deterministic = false;
    }
  }
  return level;
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchCli cli(exp::BenchCli::kJson | exp::BenchCli::kBatch);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_dispatch_batch");
  }

  std::vector<int> batches = {1, 4, 16};
  if (cli.batch != 1 &&
      std::find(batches.begin(), batches.end(), cli.batch) == batches.end()) {
    batches.push_back(cli.batch);
  }

  const model::SystemSpec spec = storm_spec();
  std::printf("%-8s %10s %12s %14s %s\n", "batch", "served", "events/sec",
              "speedup", "3-run");
  std::vector<Level> levels;
  for (const int batch : batches) {
    levels.push_back(measure(spec, batch));
  }
  const Level& base = levels.front();  // batch = 1
  bool all_deterministic = true;
  bool ok = base.served > 0;
  double speedup16 = 0.0;
  for (const Level& level : levels) {
    all_deterministic = all_deterministic && level.deterministic;
    ok = ok && level.deterministic;
    const double speedup =
        base.served > 0
            ? static_cast<double>(level.served) / static_cast<double>(base.served)
            : 0.0;
    if (level.batch == 16) speedup16 = speedup;
    const double events_per_sec =
        level.best_seconds > 0.0
            ? static_cast<double>(level.served) / level.best_seconds
            : 0.0;
    std::printf("%-8d %10llu %12.3g %13.2fx %s\n", level.batch,
                static_cast<unsigned long long>(level.served), events_per_sec,
                speedup, level.deterministic ? "ok" : "DIVERGED");
  }
  if (speedup16 < 1.5) {
    std::cerr << "self-check failed: batch=16 speedup " << speedup16
              << " < 1.5\n";
    ok = false;
  }
  if (!ok) {
    std::cerr << "self-check failed (see above)\n";
  }

  if (!cli.json_path.empty()) {
    common::JsonWriter json;
    json.begin_object();
    json.key("schema").value("tsf-bench/1");
    json.key("bench").value("dispatch_batch");
    json.key("metrics").begin_array();
    auto metric = [&json](const std::string& name, double value,
                          bool higher_is_better) {
      json.begin_object();
      json.key("name").value(name);
      json.key("value").value(value);
      json.key("higher_is_better").value(higher_is_better);
      json.end_object();
    };
    for (const Level& level : levels) {
      metric("served_batch" + std::to_string(level.batch),
             static_cast<double>(level.served), true);
    }
    metric("speedup_batch16", speedup16, true);
    // Wall clock: the committed baseline is a conservative floor.
    const Level& top = levels[2];  // batch = 16
    metric("events_per_sec_batch16",
           top.best_seconds > 0.0
               ? static_cast<double>(top.served) / top.best_seconds
               : 0.0,
           true);
    metric("deterministic_ok", all_deterministic ? 1.0 : 0.0, true);
    json.end_array();
    json.end_object();
    std::ofstream out(cli.json_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write '" << cli.json_path << "'\n";
      return 1;
    }
    out << json.take();
  }
  return ok ? 0 : 1;
}
