// Reproduces Table 2: "Measures on Polling Server simulations".
#include "paper_table_main.h"

int main(int argc, char** argv) {
  tsf::bench::PaperReference ref;
  ref.label = "Table 2 — Polling Server, simulation";
  ref.aart = {8.86, 17.52, 23.76, 10.24, 20.58, 25.50};
  ref.air = {0.00, 0.00, 0.00, 0.00, 0.00, 0.00};
  ref.asr = {0.89, 0.63, 0.43, 0.85, 0.50, 0.35};
  return tsf::bench::run_paper_table_bench(
      tsf::model::ServerPolicy::kPolling, tsf::exp::Mode::kSimulation,
      ref, argc, argv);
}
