// Partitioned vs global vs semi-partitioned scheduling on the same
// workloads — the comparison chart the paper's evaluation section never
// had, and the acceptance gate of the scheduling-policy layer.
//
// Two workloads:
//  * PR 1 generator tasksets (gen::generate_mp_system, 4 cores) at two
//    aperiodic densities — the synthetic traffic the partitioned runtime
//    was sized with;
//  * a bursty-aperiodic two-core taskset: clusters of simultaneously
//    released jobs with heterogeneous costs. Round-robin routing balances
//    counts, not work, so the partitioned baseline piles the heavy jobs
//    onto one core while the other drains and idles — exactly the
//    imbalance work stealing exists for.
//
// For every (workload, policy) cell the run is executed twice and must be
// bit-reproducible (equal trace fingerprints); the bench fails otherwise.
// Acceptance: on the bursty taskset, semi-partitioned p99 response must
// not exceed the partitioned p99.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/trace.h"
#include "exp/metrics.h"
#include "gen/generator.h"
#include "mp/mp_system.h"

namespace {

using namespace tsf;

common::Duration tu(double x) { return common::Duration::from_tu(x); }

// Bursts of `heavy + light` unpinned jobs every `spacing` tu: the heavy
// jobs land round-robin on alternating cores, so one core's queue backs up
// while its neighbour idles between bursts.
model::SystemSpec bursty_spec(int bursts) {
  model::SystemSpec spec;
  spec.name = "bursty";
  spec.cores = 2;
  spec.server.policy = model::ServerPolicy::kDeferrable;
  spec.server.capacity = tu(3);
  spec.server.period = tu(6);
  spec.server.priority = 30;
  for (int c = 0; c < 2; ++c) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(c);
    t.period = tu(8);
    t.cost = tu(2);
    t.priority = 10;
    t.affinity = c;
    spec.periodic_tasks.push_back(t);
  }
  const double spacing = 12.0;
  for (int b = 0; b < bursts; ++b) {
    for (int j = 0; j < 6; ++j) {
      model::AperiodicJobSpec job;
      job.name = "b" + std::to_string(b) + "_" + std::to_string(j);
      job.release = common::TimePoint::origin() + tu(1.0 + spacing * b);
      // Even slots are heavy, odd slots light: round-robin sends all the
      // heavy ones to one core and all the light ones to the other.
      job.cost = (j % 2 == 0) ? tu(1.5) : tu(0.25);
      spec.aperiodic_jobs.push_back(job);
    }
  }
  spec.horizon = common::TimePoint::origin() + tu(1.0 + spacing * bursts + 12);
  return spec;
}

struct Cell {
  exp::ResponseDistribution response;
  std::size_t served = 0;
  std::size_t released = 0;
  std::uint64_t steals = 0;
  std::uint64_t pool = 0;
  bool stable = true;
};

Cell run_cell(const model::SystemSpec& spec, mp::SchedPolicy policy) {
  mp::MpRunOptions options;
  options.strategy = mp::PackingStrategy::kWorstFitDecreasing;
  options.policy = policy;
  options.quantum = tu(0.5);
  const auto run = mp::run(spec, options);
  const auto rerun = mp::run(spec, options);

  Cell cell;
  cell.stable = common::fingerprint(run.merged.timeline) ==
                common::fingerprint(rerun.merged.timeline);
  cell.response = exp::compute_response_distribution({run.merged});
  for (const auto& job : run.merged.jobs) {
    ++cell.released;
    cell.served += job.served;
  }
  cell.steals = run.steals;
  cell.pool = run.pool_dispatches;
  return cell;
}

constexpr mp::SchedPolicy kPolicies[] = {
    mp::SchedPolicy::kPartitioned,
    mp::SchedPolicy::kGlobal,
    mp::SchedPolicy::kSemiPartitioned,
};

bool compare_on(const std::string& label, const model::SystemSpec& spec,
                double* partitioned_p99, double* semi_p99) {
  std::cout << "--- " << label << " ---\n";
  common::TextTable table;
  table.add_row({"policy", "served", "p50", "p90", "p99", "max", "steals",
                 "pool", "deterministic"});
  bool ok = true;
  for (const auto policy : kPolicies) {
    const Cell cell = run_cell(spec, policy);
    table.add_row({mp::to_string(policy),
                   std::to_string(cell.served) + "/" +
                       std::to_string(cell.released),
                   common::fmt_fixed(cell.response.p50_tu, 2),
                   common::fmt_fixed(cell.response.p90_tu, 2),
                   common::fmt_fixed(cell.response.p99_tu, 2),
                   common::fmt_fixed(cell.response.max_tu, 2),
                   std::to_string(cell.steals), std::to_string(cell.pool),
                   cell.stable ? "yes" : "NO"});
    ok = ok && cell.stable;
    if (policy == mp::SchedPolicy::kPartitioned && partitioned_p99 != nullptr)
      *partitioned_p99 = cell.response.p99_tu;
    if (policy == mp::SchedPolicy::kSemiPartitioned && semi_p99 != nullptr)
      *semi_p99 = cell.response.p99_tu;
  }
  std::cout << table.to_string() << '\n';
  return ok;
}

}  // namespace

int main() {
  std::cout << "=== scheduling-policy comparison"
               " (partitioned | global | semi-partitioned) ===\n\n";
  bool ok = true;

  // PR 1 generator tasksets, 4 cores, moderate and saturating densities.
  for (const double density : {1.0, 4.0}) {
    gen::MpGeneratorParams params;
    params.cores = 4;
    params.task_density = density;
    params.average_cost_tu = 1.0;
    params.std_deviation_tu = 0.25;
    params.server_capacity = common::Duration::time_units(2);
    params.server_period = common::Duration::time_units(6);
    params.per_core_utilization = 0.3;
    params.tasks_per_core = 4;
    params.horizon_periods = 20;
    params.seed = 1983;
    char label[64];
    std::snprintf(label, sizeof label,
                  "generator taskset, 4 cores, density %.1f", density);
    ok = compare_on(label, gen::generate_mp_system(params), nullptr,
                    nullptr) && ok;
  }

  // The bursty workload — the acceptance case for work stealing.
  double partitioned_p99 = 0.0;
  double semi_p99 = 0.0;
  ok = compare_on("bursty aperiodics, 2 cores", bursty_spec(8),
                  &partitioned_p99, &semi_p99) && ok;

  if (semi_p99 > partitioned_p99) {
    std::cout << "FAIL: semi-partitioned p99 ("
              << common::fmt_fixed(semi_p99, 2)
              << "tu) exceeds partitioned p99 ("
              << common::fmt_fixed(partitioned_p99, 2) << "tu)"
              << " on the bursty taskset\n";
    ok = false;
  } else {
    std::cout << "semi-partitioned p99 " << common::fmt_fixed(semi_p99, 2)
              << "tu <= partitioned p99 "
              << common::fmt_fixed(partitioned_p99, 2)
              << "tu on the bursty taskset\n";
  }
  std::cout << (ok ? "policy comparison: all runs deterministic\n"
                   : "policy comparison: FAILED\n");
  return ok ? 0 : 1;
}
