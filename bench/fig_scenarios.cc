// Reproduces Table 1 and Figures 2-4: the paper's three worked scenarios,
// executed on the RTSJ-style runtime AND simulated with the theoretical
// Polling Server, rendered as ASCII Gantt charts.
#include <iostream>

#include "common/table.h"
#include "common/trace.h"
#include "exp/exec_runner.h"
#include "sim/simulator.h"

namespace {

using tsf::common::Duration;
using tsf::common::GanttOptions;
using tsf::common::TimePoint;

Duration tu(std::int64_t n) { return Duration::time_units(n); }
TimePoint at_tu(std::int64_t n) {
  return TimePoint::origin() + Duration::time_units(n);
}

// Table 1's task set: PS (3,6) high, tau1 (2,6) medium, tau2 (1,6) low.
tsf::model::SystemSpec scenario(std::int64_t e1_at, std::int64_t e2_at,
                                Duration h2_declared) {
  tsf::model::SystemSpec s;
  s.server.policy = tsf::model::ServerPolicy::kPolling;
  s.server.capacity = tu(3);
  s.server.period = tu(6);
  s.server.priority = 30;
  s.periodic_tasks.push_back({"tau1", tu(6), tu(2), Duration::zero(),
                              TimePoint::origin(), 20});
  s.periodic_tasks.push_back({"tau2", tu(6), tu(1), Duration::zero(),
                              TimePoint::origin(), 10});
  tsf::model::AperiodicJobSpec h1;
  h1.name = "h1";
  h1.release = at_tu(e1_at);
  h1.cost = tu(2);
  tsf::model::AperiodicJobSpec h2;
  h2.name = "h2";
  h2.release = at_tu(e2_at);
  h2.cost = tu(2);
  h2.declared_cost = h2_declared;
  s.aperiodic_jobs.push_back(h1);
  s.aperiodic_jobs.push_back(h2);
  s.horizon = at_tu(18);
  return s;
}

void show(const std::string& title, const tsf::model::SystemSpec& spec) {
  std::cout << "--- " << title << " ---\n";
  GanttOptions gantt;
  gantt.cell = Duration::ticks(500);
  gantt.end = at_tu(18);

  const auto exec =
      tsf::exp::run_exec(spec, tsf::exp::ideal_execution_options());
  std::cout << "execution (implemented PS, ideal machine):\n"
            << render_gantt(exec.timeline, {"h1", "h2", "tau1", "tau2"},
                            gantt);
  for (const auto& j : exec.jobs) {
    std::cout << "  " << j.name << ": released " << j.release << ", "
              << (j.interrupted
                      ? "INTERRUPTED"
                      : (j.served ? "served, completed " +
                                        tsf::common::to_string(j.completion)
                                  : "unserved"))
              << '\n';
  }

  const auto sim = tsf::sim::simulate(spec);
  std::cout << "simulation (theoretical PS):\n"
            << render_gantt(sim.timeline, {"h1", "h2", "tau1", "tau2"},
                            gantt);
  for (const auto& j : sim.jobs) {
    std::cout << "  " << j.name << ": released " << j.release << ", "
              << (j.served ? "served, completed " +
                                 tsf::common::to_string(j.completion)
                           : "unserved")
              << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Figures 2-4 — the paper's worked scenarios ===\n\n";

  tsf::common::TextTable t1;
  t1.add_row({"task", "priority", "cost/capacity", "period"});
  t1.add_row({"PS", "high", "3", "6"});
  t1.add_row({"tau1", "medium", "2", "6"});
  t1.add_row({"tau2", "low", "1", "6"});
  t1.add_row({"h1", "-", "2", "-"});
  t1.add_row({"h2", "-", "2", "-"});
  std::cout << "Table 1 — tasks' properties:\n" << t1.to_string() << '\n';
  std::cout << "legend: '#' executing, '^' release, '@' release while"
               " executing, '.' idle; one cell = 0.5tu\n\n";

  show("Scenario 1 (Figure 2): e1 at 0, e2 at 6 — both served at once",
       scenario(0, 6, tu(2)));
  show("Scenario 2 (Figure 3): e1 at 2, e2 at 4 — h2 deferred to t=12 in "
       "the execution, suspended/resumed in the simulation",
       scenario(2, 4, tu(2)));
  show("Scenario 3 (Figure 4): h2 declared cost lowered to 1 — dispatched "
       "at t=8 and interrupted at t=9 in the execution",
       scenario(2, 4, tu(1)));
  return 0;
}
