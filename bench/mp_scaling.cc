// Multi-core scaling of the partitioned runtime: served-event throughput at
// 1/2/4/8 cores under a saturating aperiodic load, for the Polling and
// Deferrable policies, on both engines.
//
// The workload offers `density` events per server period PER CORE, sized so
// each core's server replica is always backlogged — throughput is then
// capacity-bound and must grow with the core count. The bench verifies the
// growth is monotonic from 1 to 4 cores (the ISSUE-1 acceptance bar) and
// that every multi-core run is bit-reproducible (equal trace fingerprints
// across two runs).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/table.h"
#include "common/trace.h"
#include "exp/bench_cli.h"
#include "exp/metrics.h"
#include "gen/generator.h"
#include "mp/mp_system.h"

namespace {

using namespace tsf;

gen::MpGeneratorParams workload(int cores, model::ServerPolicy policy) {
  gen::MpGeneratorParams p;
  p.cores = cores;
  p.policy = policy;
  // Saturating: ~6 events x 1tu per 6tu period per core against a 2tu/6tu
  // server replica — three times more demand than serving capacity.
  p.task_density = 6.0;
  p.average_cost_tu = 1.0;
  p.std_deviation_tu = 0.25;
  p.server_capacity = common::Duration::time_units(2);
  p.server_period = common::Duration::time_units(6);
  p.per_core_utilization = 0.3;
  p.tasks_per_core = 4;
  p.horizon_periods = 50;
  p.seed = 1983;
  return p;
}

struct Sample {
  int cores = 0;
  std::size_t released = 0;
  std::size_t served_sim = 0;
  std::size_t served_exec = 0;
  bool fingerprint_stable = true;
};

std::size_t served_count(const model::RunResult& result) {
  std::size_t served = 0;
  for (const auto& job : result.jobs) served += job.served;
  return served;
}

}  // namespace

int main(int argc, char** argv) {
  // --json FILE: emit the per-(policy, cores) served-event counts in the
  // tsf-bench/1 schema so CI can gate regressions against bench/baselines/.
  exp::BenchCli cli(exp::BenchCli::kJson);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_mp_scaling");
  }
  const std::string& json_path = cli.json_path;
  std::cout << "=== partitioned multi-core scaling ===\n"
            << "(saturating aperiodic load: 6 ev/period/core x 1tu mean cost"
               " vs a 2tu/6tu server replica per core; 50 server periods;"
               " 1 tu = 1 virtual ms)\n\n";

  bool ok = true;
  std::vector<std::pair<std::string, Sample>> all_samples;
  for (const auto policy :
       {model::ServerPolicy::kPolling, model::ServerPolicy::kDeferrable}) {
    std::cout << "--- " << model::to_string(policy) << " ---\n";
    common::TextTable table;
    table.add_row({"cores", "released", "served(sim)", "ev/s(sim)",
                   "served(exec)", "ev/s(exec)", "speedup(exec)",
                   "deterministic"});
    std::vector<Sample> samples;
    for (const int cores : {1, 2, 4, 8}) {
      const auto spec = gen::generate_mp_system(workload(cores, policy));
      const double horizon_s = (spec.horizon - common::TimePoint::origin())
                                   .to_tu() / 1000.0;  // virtual seconds

      mp::MpRunOptions options;
      options.strategy = mp::PackingStrategy::kWorstFitDecreasing;
      mp::MpRunOptions sim_options = options;
      sim_options.engine = mp::RunEngine::kSim;
      const auto sim_run = mp::run(spec, sim_options);
      const auto exec_run = mp::run(spec, options);
      const auto exec_rerun = mp::run(spec, options);

      Sample s;
      s.cores = cores;
      s.released = spec.aperiodic_jobs.size();
      s.served_sim = served_count(sim_run.merged);
      s.served_exec = served_count(exec_run.merged);
      s.fingerprint_stable =
          common::fingerprint(exec_run.merged.timeline) ==
          common::fingerprint(exec_rerun.merged.timeline);
      samples.push_back(s);
      all_samples.emplace_back(model::to_string(policy), s);

      const double base = static_cast<double>(samples.front().served_exec);
      table.add_row(
          {std::to_string(cores), std::to_string(s.released),
           std::to_string(s.served_sim),
           common::fmt_fixed(static_cast<double>(s.served_sim) / horizon_s, 1),
           std::to_string(s.served_exec),
           common::fmt_fixed(static_cast<double>(s.served_exec) / horizon_s,
                             1),
           common::fmt_fixed(static_cast<double>(s.served_exec) / base, 2),
           s.fingerprint_stable ? "yes" : "NO"});
      ok = ok && s.fingerprint_stable;
    }
    std::cout << table.to_string();

    // Acceptance: throughput grows monotonically from 1 to 4 cores.
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i].cores > 4) continue;
      if (samples[i].served_exec <= samples[i - 1].served_exec ||
          samples[i].served_sim <= samples[i - 1].served_sim) {
        std::cout << "FAIL: throughput did not grow from "
                  << samples[i - 1].cores << " to " << samples[i].cores
                  << " cores\n";
        ok = false;
      }
    }
    std::cout << '\n';
  }
  std::cout << (ok ? "scaling: monotonic 1->4, all runs deterministic\n"
                   : "scaling: FAILED\n");

  if (!json_path.empty()) {
    common::JsonWriter json;
    json.begin_object();
    json.key("schema").value("tsf-bench/1");
    json.key("bench").value("mp_scaling");
    json.key("metrics").begin_array();
    for (const auto& [policy, s] : all_samples) {
      for (const auto& [metric, count] :
           {std::pair<const char*, std::size_t>{"served_sim", s.served_sim},
            {"served_exec", s.served_exec}}) {
        char name[96];
        std::snprintf(name, sizeof name, "%s/cores_%d/%s", policy.c_str(),
                      s.cores, metric);
        json.begin_object();
        json.key("name").value(name);
        json.key("value").value(static_cast<double>(count));
        json.key("higher_is_better").value(true);
        json.end_object();
      }
    }
    json.end_array();
    json.end_object();
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write '" << json_path << "'\n";
      return 1;
    }
    out << json.take();
  }
  return ok ? 0 : 1;
}
