// Micro: pending-queue operations, including the §7 claim that the
// list-of-lists structure supports constant-time response-time prediction
// while a FIFO scan is linear in the backlog.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pending_queue.h"
#include "core/servable_async_event_handler.h"

namespace {

using namespace tsf;
using common::Duration;

Duration tu(std::int64_t n) { return Duration::time_units(n); }

std::vector<std::unique_ptr<core::ServableAsyncEventHandler>> make_handlers(
    std::size_t n) {
  std::vector<std::unique_ptr<core::ServableAsyncEventHandler>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<core::ServableAsyncEventHandler>(
        "h" + std::to_string(i), Duration::ticks(500 + 250 * static_cast<std::int64_t>(i % 12)),
        [](rtsj::Timed&) {}));
  }
  return out;
}

void fill(core::PendingQueue& q,
          std::vector<std::unique_ptr<core::ServableAsyncEventHandler>>& hs) {
  for (std::size_t i = 0; i < hs.size(); ++i) {
    core::Request r;
    r.handler = hs[i].get();
    r.seq = i;
    q.push(std::move(r));
  }
}

void BM_PushPop_StrictFifo(benchmark::State& state) {
  auto handlers = make_handlers(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::StrictFifoQueue q;
    fill(q, handlers);
    const core::FitsFn fits = [](Duration) { return true; };
    while (auto r = q.pop_fitting(fits)) benchmark::DoNotOptimize(r->seq);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PushPop_StrictFifo)->Arg(64)->Arg(1024);

void BM_PushPop_ListOfLists(benchmark::State& state) {
  auto handlers = make_handlers(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::ListOfListsQueue q(tu(4));
    fill(q, handlers);
    const core::FitsFn fits = [](Duration) { return true; };
    while (!q.empty()) {
      q.begin_instance();
      while (auto r = q.pop_fitting(fits)) benchmark::DoNotOptimize(r->seq);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PushPop_ListOfLists)->Arg(64)->Arg(1024);

// First-fit selection cost in a backlog where nothing fits until the tail.
void BM_FirstFitScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto big = make_handlers(n);
  for (auto& h : big) h->set_cost(tu(4));
  core::ServableAsyncEventHandler small("small", Duration::ticks(100),
                                        [](rtsj::Timed&) {});
  core::FifoFirstFitQueue q;
  fill(q, big);
  core::Request r;
  r.handler = &small;
  q.push(r);
  const core::FitsFn fits = [](Duration cost) { return cost <= tu(1); };
  for (auto _ : state) {
    auto hit = q.pop_fitting(fits);  // scans past every oversized entry
    benchmark::DoNotOptimize(hit);
    q.push(*hit);  // put it back for the next iteration
  }
}
BENCHMARK(BM_FirstFitScan)->Arg(16)->Arg(256)->Arg(4096);

// The §7 placement query: O(1), flat across backlog sizes — contrast with
// the first-fit scan above.
void BM_PlacementQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto handlers = make_handlers(n);
  // Uniform cost 2: two per bucket; the query only inspects the last one.
  for (auto& h : handlers) h->set_cost(tu(2));
  core::ListOfListsQueue q(tu(4));
  fill(q, handlers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.placement_for(tu(2)));
  }
}
BENCHMARK(BM_PlacementQuery)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
