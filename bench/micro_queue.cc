// Micro: pending-queue operations, including the §7 claim that the
// list-of-lists structure supports constant-time response-time prediction
// while a FIFO scan is linear in the backlog.
//
// Two entry points share the workload definitions:
//   - default: google-benchmark (full statistical output, Arg sweeps);
//   - --json FILE: a self-timed pass that emits tsf-bench/1 metrics so the
//     bench-regression CI job can gate the queue layer with bench_gate.
//     The committed baseline values are conservative floors (~20x below a
//     dev machine), not measured numbers — wall-clock throughput is the
//     one quantity here that can't be gated exactly.
//
//   bench_micro_queue [--json FILE] [google-benchmark flags...]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "core/pending_queue.h"
#include "core/servable_async_event_handler.h"
#include "exp/bench_cli.h"

namespace {

using namespace tsf;
using common::Duration;

Duration tu(std::int64_t n) { return Duration::time_units(n); }

std::vector<std::unique_ptr<core::ServableAsyncEventHandler>> make_handlers(
    std::size_t n) {
  std::vector<std::unique_ptr<core::ServableAsyncEventHandler>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<core::ServableAsyncEventHandler>(
        "h" + std::to_string(i), Duration::ticks(500 + 250 * static_cast<std::int64_t>(i % 12)),
        [](rtsj::Timed&) {}));
  }
  return out;
}

void fill(core::PendingQueue& q,
          std::vector<std::unique_ptr<core::ServableAsyncEventHandler>>& hs) {
  for (std::size_t i = 0; i < hs.size(); ++i) {
    core::Request r;
    r.handler = hs[i].get();
    r.seq = i;
    q.push(std::move(r));
  }
}

void BM_PushPop_StrictFifo(benchmark::State& state) {
  auto handlers = make_handlers(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::StrictFifoQueue q;
    fill(q, handlers);
    const auto fits = [](Duration) { return true; };
    while (auto r = q.pop_fitting(fits)) benchmark::DoNotOptimize(r->seq);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PushPop_StrictFifo)->Arg(64)->Arg(1024);

void BM_PushPop_ListOfLists(benchmark::State& state) {
  auto handlers = make_handlers(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::ListOfListsQueue q(tu(4));
    fill(q, handlers);
    const auto fits = [](Duration) { return true; };
    while (!q.empty()) {
      q.begin_instance();
      while (auto r = q.pop_fitting(fits)) benchmark::DoNotOptimize(r->seq);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PushPop_ListOfLists)->Arg(64)->Arg(1024);

// First-fit selection cost in a backlog where nothing fits until the tail.
void BM_FirstFitScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto big = make_handlers(n);
  for (auto& h : big) h->set_cost(tu(4));
  core::ServableAsyncEventHandler small("small", Duration::ticks(100),
                                        [](rtsj::Timed&) {});
  core::FifoFirstFitQueue q;
  fill(q, big);
  core::Request r;
  r.handler = &small;
  q.push(r);
  const auto fits = [](Duration cost) { return cost <= tu(1); };
  for (auto _ : state) {
    auto hit = q.pop_fitting(fits);  // scans past every oversized entry
    benchmark::DoNotOptimize(hit);
    q.push(*hit);  // put it back for the next iteration
  }
}
BENCHMARK(BM_FirstFitScan)->Arg(16)->Arg(256)->Arg(4096);

// The §7 placement query: O(1), flat across backlog sizes — contrast with
// the first-fit scan above.
void BM_PlacementQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto handlers = make_handlers(n);
  // Uniform cost 2: two per bucket; the query only inspects the last one.
  for (auto& h : handlers) h->set_cost(tu(2));
  core::ListOfListsQueue q(tu(4));
  fill(q, handlers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.placement_for(tu(2)));
  }
}
BENCHMARK(BM_PlacementQuery)->Arg(16)->Arg(256)->Arg(4096);

// ---- self-timed path (--json): the same workloads, hand-rolled timing ----

// Runs `body` (which processes `items` items per call) repeatedly for at
// least 50 ms and returns items per second.
template <typename Body>
double ops_per_sec(std::size_t items, Body body) {
  using clock = std::chrono::steady_clock;
  const auto begin = clock::now();
  std::uint64_t done = 0;
  do {
    body();
    done += items;
  } while (clock::now() - begin < std::chrono::milliseconds(50));
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(clock::now() -
                                                                begin)
          .count();
  return seconds > 0.0 ? static_cast<double>(done) / seconds : 0.0;
}

int run_json(const std::string& json_path) {
  constexpr std::size_t kBacklog = 1024;
  auto handlers = make_handlers(kBacklog);

  const double fifo_ops = ops_per_sec(kBacklog, [&handlers] {
    core::StrictFifoQueue q;
    fill(q, handlers);
    const auto fits = [](Duration) { return true; };
    while (auto r = q.pop_fitting(fits)) benchmark::DoNotOptimize(r->seq);
  });

  const double lol_ops = ops_per_sec(kBacklog, [&handlers] {
    core::ListOfListsQueue q(tu(4));
    fill(q, handlers);
    const auto fits = [](Duration) { return true; };
    while (!q.empty()) {
      q.begin_instance();
      while (auto r = q.pop_fitting(fits)) benchmark::DoNotOptimize(r->seq);
    }
  });

  // Placement queries against a deep backlog — the §7 O(1) claim.
  auto uniform = make_handlers(4096);
  for (auto& h : uniform) h->set_cost(tu(2));
  core::ListOfListsQueue placement_queue(tu(4));
  fill(placement_queue, uniform);
  const double placement_ops = ops_per_sec(1, [&placement_queue] {
    benchmark::DoNotOptimize(placement_queue.placement_for(tu(2)));
  });

  std::printf("fifo push+pop     %10.3g items/sec\n", fifo_ops);
  std::printf("list-of-lists     %10.3g items/sec\n", lol_ops);
  std::printf("placement query   %10.3g ops/sec\n", placement_ops);

  common::JsonWriter json;
  json.begin_object();
  json.key("schema").value("tsf-bench/1");
  json.key("bench").value("micro_queue");
  json.key("metrics").begin_array();
  auto metric = [&json](const std::string& name, double value,
                        bool higher_is_better) {
    json.begin_object();
    json.key("name").value(name);
    json.key("value").value(value);
    json.key("higher_is_better").value(higher_is_better);
    json.end_object();
  };
  metric("fifo_items_per_sec", fifo_ops, true);
  metric("list_of_lists_items_per_sec", lol_ops, true);
  metric("placement_queries_per_sec", placement_ops, true);
  json.end_array();
  json.end_object();
  std::ofstream out(json_path, std::ios::binary);
  if (!out) {
    std::cerr << "error: cannot write '" << json_path << "'\n";
    return 1;
  }
  out << json.take();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --json takes the self-timed path; anything else falls through to
  // google-benchmark untouched (its own flags keep working).
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      exp::BenchCli cli(exp::BenchCli::kJson);
      for (int j = 1; j < argc; ++j) {
        if (!cli.consume(argc, argv, &j)) return cli.fail("bench_micro_queue");
      }
      return run_json(cli.json_path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
