// Reproduces Table 4: "Measures on Deferrable Server simulations".
#include "paper_table_main.h"

int main(int argc, char** argv) {
  tsf::bench::PaperReference ref;
  ref.label = "Table 4 — Deferrable Server, simulation";
  ref.aart = {5.30, 13.44, 19.83, 6.36, 17.40, 21.71};
  ref.air = {0.00, 0.00, 0.00, 0.00, 0.00, 0.00};
  ref.asr = {0.94, 0.67, 0.46, 0.94, 0.56, 0.38};
  return tsf::bench::run_paper_table_bench(
      tsf::model::ServerPolicy::kDeferrable, tsf::exp::Mode::kSimulation,
      ref, argc, argv);
}
