// Real-threads backend scaling: wall-clock throughput of `backend=threads`
// against the lock-step oracle at 1/2/4 cores under the saturating
// aperiodic load of bench_mp_scaling, Deferrable servers.
//
// Before timing anything the bench cross-validates each core count: the
// threads run must serve exactly the lock-step oracle's job set and produce
// an identical trace fingerprint (the backend's contract, enforced in depth
// by tests/mp/backend_equivalence_test.cc). Any divergence fails the bench.
//
// JSON metrics (tsf-bench/1, gated by bench_gate in CI):
//   cores_N/served            deterministic served count — identical across
//                             backends and runs, gated exactly in practice
//   cores_N/equivalent        1 iff threads == oracle (served set + trace)
//   cores_N/threads_events_per_sec
//                             wall-clock trace records/s of the threads run;
//                             the committed baseline is a conservative
//                             floor, not a measurement
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/table.h"
#include "common/trace.h"
#include "exp/bench_cli.h"
#include "gen/generator.h"
#include "mp/mp_system.h"

namespace {

using namespace tsf;

gen::MpGeneratorParams workload(int cores) {
  gen::MpGeneratorParams p;
  p.cores = cores;
  p.policy = model::ServerPolicy::kDeferrable;
  p.task_density = 6.0;
  p.average_cost_tu = 1.0;
  p.std_deviation_tu = 0.25;
  p.server_capacity = common::Duration::time_units(2);
  p.server_period = common::Duration::time_units(6);
  p.per_core_utilization = 0.3;
  p.tasks_per_core = 4;
  p.horizon_periods = 50;
  p.seed = 1983;
  return p;
}

std::set<std::pair<std::string, std::int64_t>> served_set(
    const model::RunResult& result) {
  std::set<std::pair<std::string, std::int64_t>> served;
  for (const auto& job : result.jobs) {
    if (job.served) {
      served.emplace(job.name,
                     (job.release - common::TimePoint::origin()).count());
    }
  }
  return served;
}

struct Sample {
  int cores = 0;
  std::size_t served = 0;
  std::size_t records = 0;
  bool equivalent = false;
  double lockstep_seconds = 0.0;
  double threads_seconds = 0.0;

  double threads_events_per_sec() const {
    return threads_seconds > 0.0 ? records / threads_seconds : 0.0;
  }
};

double time_run(const model::SystemSpec& spec, const mp::MpRunOptions& options,
                mp::MpRunResult* out) {
  const auto begin = std::chrono::steady_clock::now();
  *out = mp::run(spec, options);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchCli cli(exp::BenchCli::kJson);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_threads_scaling");
  }
  const std::string& json_path = cli.json_path;
  std::cout << "=== real-threads backend scaling ===\n"
            << "(saturating aperiodic load, Deferrable servers, 50 server"
               " periods; every threads run cross-validated against the"
               " lock-step oracle before timing)\n\n";

  bool ok = true;
  std::vector<Sample> samples;
  common::TextTable table;
  table.add_row({"cores", "served", "records", "equivalent", "lockstep_s",
                 "threads_s", "threads ev/s"});
  for (const int cores : {1, 2, 4}) {
    const auto spec = gen::generate_mp_system(workload(cores));
    mp::MpRunOptions options;
    options.strategy = mp::PackingStrategy::kWorstFitDecreasing;

    options.backend = mp::ExecBackend::kLockstep;
    mp::MpRunResult oracle;
    const double lockstep_seconds = time_run(spec, options, &oracle);

    options.backend = mp::ExecBackend::kThreads;
    mp::MpRunResult threads;
    const double threads_seconds = time_run(spec, options, &threads);

    Sample s;
    s.cores = cores;
    s.served = served_set(oracle.merged).size();
    s.records = threads.merged.timeline.records().size();
    s.equivalent =
        served_set(threads.merged) == served_set(oracle.merged) &&
        common::fingerprint(threads.merged.timeline) ==
            common::fingerprint(oracle.merged.timeline);
    s.lockstep_seconds = lockstep_seconds;
    s.threads_seconds = threads_seconds;
    samples.push_back(s);
    ok = ok && s.equivalent;

    table.add_row({std::to_string(cores), std::to_string(s.served),
                   std::to_string(s.records), s.equivalent ? "yes" : "NO",
                   common::fmt_fixed(lockstep_seconds, 3),
                   common::fmt_fixed(threads_seconds, 3),
                   common::fmt_fixed(s.threads_events_per_sec(), 0)});
  }
  std::cout << table.to_string() << '\n'
            << (ok ? "threads backend equivalent to the oracle at every"
                     " core count\n"
                   : "FAIL: threads backend diverged from the oracle\n");

  if (!json_path.empty()) {
    common::JsonWriter json;
    json.begin_object();
    json.key("schema").value("tsf-bench/1");
    json.key("bench").value("threads_scaling");
    json.key("metrics").begin_array();
    for (const auto& s : samples) {
      char name[64];
      std::snprintf(name, sizeof name, "cores_%d/served", s.cores);
      json.begin_object();
      json.key("name").value(name);
      json.key("value").value(static_cast<double>(s.served));
      json.key("higher_is_better").value(true);
      json.end_object();
      std::snprintf(name, sizeof name, "cores_%d/equivalent", s.cores);
      json.begin_object();
      json.key("name").value(name);
      json.key("value").value(s.equivalent ? 1.0 : 0.0);
      json.key("higher_is_better").value(true);
      json.end_object();
      std::snprintf(name, sizeof name, "cores_%d/threads_events_per_sec",
                    s.cores);
      json.begin_object();
      json.key("name").value(name);
      json.key("value").value(s.threads_events_per_sec());
      json.key("higher_is_better").value(true);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write '" << json_path << "'\n";
      return 1;
    }
    out << json.take();
  }
  return ok ? 0 : 1;
}
