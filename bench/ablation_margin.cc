// §7 future work, implemented: "We can avoid some interruptions in delaying
// the execution of events handlers with a cost too close of the remaining
// capacity."
//
// Sweeping the admission margin on the heterogeneous paper sets shows the
// trade the paper anticipated: AIR falls towards zero as the margin grows,
// at the cost of deferring (and eventually not serving) borderline events.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/tables.h"
#include "gen/generator.h"
#include "sim/simulator.h"

int main() {
  using namespace tsf;
  std::cout << "=== §7 extension: interruption-avoidance margin sweep ===\n"
            << "(PS executions, calibrated overheads)\n\n";
  common::TextTable t;
  t.add_row({"margin", "set", "AART", "AIR", "ASR"});
  for (const int margin_ticks : {0, 250, 500, 1000}) {
    for (const auto& set : {exp::PaperSet{1, 2}, exp::PaperSet{2, 2},
                            exp::PaperSet{3, 2}}) {
      auto params =
          exp::paper_generator_params(set, model::ServerPolicy::kPolling);
      gen::RandomSystemGenerator generator(params);
      std::vector<model::RunResult> runs;
      for (auto spec : generator.generate()) {
        spec.server.admission_margin = common::Duration::ticks(margin_ticks);
        runs.push_back(exp::run_exec(spec, exp::paper_execution_options()));
      }
      const auto m = exp::compute_set_metrics(runs);
      char key[64], mg[64];
      std::snprintf(key, sizeof key, "(%g,%g)", set.density,
                    set.std_deviation);
      std::snprintf(mg, sizeof mg, "%.2ftu", margin_ticks / 1000.0);
      t.add_row({mg, key, common::fmt_fixed(m.aart, 2),
                 common::fmt_fixed(m.air, 2), common::fmt_fixed(m.asr, 2)});
    }
  }
  std::cout << t.to_string()
            << "\nReading: a margin of ~0.5tu absorbs the calibrated"
               " overhead profile and removes most interruptions; beyond"
               " that, events are deferred for headroom that is never"
               " needed.\n";
  return 0;
}
