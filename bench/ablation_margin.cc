// §7 future work, implemented: "We can avoid some interruptions in delaying
// the execution of events handlers with a cost too close of the remaining
// capacity."
//
// Sweeping the admission margin on the heterogeneous paper sets shows the
// trade the paper anticipated: AIR falls towards zero as the margin grows,
// at the cost of deferring (and eventually not serving) borderline events.
// A thin cell-enumerator over the sharded harness: the margin rides on the
// WorkUnit (applied to every generated spec before the run), so `--jobs N`
// parallelizes the 12-cell sweep.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "exp/bench_cli.h"
#include "exp/shard.h"

int main(int argc, char** argv) {
  using namespace tsf;
  exp::BenchCli cli(exp::BenchCli::kShard);
  for (int i = 1; i < argc; ++i) {
    if (!cli.consume(argc, argv, &i)) return cli.fail("bench_ablation_margin");
  }
  const exp::ShardOptions& shard = cli.shard;
  std::cout << "=== §7 extension: interruption-avoidance margin sweep ===\n"
            << "(PS executions, calibrated overheads)\n\n";

  std::vector<exp::WorkUnit> units;
  std::vector<std::pair<std::string, std::string>> rows;  // (margin, set)
  for (const int margin_ticks : {0, 250, 500, 1000}) {
    for (const auto& set : {exp::PaperSet{1, 2}, exp::PaperSet{2, 2},
                            exp::PaperSet{3, 2}}) {
      exp::WorkUnit unit;
      char key[64], mg[64];
      std::snprintf(key, sizeof key, "(%g,%g)", set.density,
                    set.std_deviation);
      std::snprintf(mg, sizeof mg, "%.2ftu", margin_ticks / 1000.0);
      unit.label = std::string(mg) + "/" + key;
      unit.params =
          exp::paper_generator_params(set, model::ServerPolicy::kPolling);
      unit.mode = exp::Mode::kExecution;
      unit.exec_options = exp::paper_execution_options();
      unit.admission_margin = common::Duration::ticks(margin_ticks);
      units.push_back(std::move(unit));
      rows.emplace_back(mg, key);
    }
  }
  const exp::ShardOutcome outcome = exp::run_units(units, shard);
  if (!outcome.ok) {
    std::cerr << "error: " << outcome.error << '\n';
    return 1;
  }

  common::TextTable t;
  t.add_row({"margin", "set", "AART", "AIR", "ASR"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& m = outcome.cells[i].metrics;
    t.add_row({rows[i].first, rows[i].second, common::fmt_fixed(m.aart, 2),
               common::fmt_fixed(m.air, 2), common::fmt_fixed(m.asr, 2)});
  }
  std::cout << t.to_string()
            << "\nReading: a margin of ~0.5tu absorbs the calibrated"
               " overhead profile and removes most interruptions; beyond"
               " that, events are deferred for headroom that is never"
               " needed.\n";
  return 0;
}
