// Packet gateway: bursty event-based traffic against a periodic base load —
// which aperiodic service policy should a gateway use?
//
// Packets arrive in Poisson bursts; each needs 0.2-1.2tu of processing.
// Two periodic tasks (routing table refresh, health reporting) must stay
// schedulable no matter what. The example compares background service with
// the Polling, Deferrable and Sporadic servers on the same trace.
//
// Build & run:   ./build/examples/packet_gateway
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "exp/exec_runner.h"
#include "exp/metrics.h"

using namespace tsf;
using common::Duration;
using common::TimePoint;

namespace {

std::vector<model::AperiodicJobSpec> make_burst_trace(std::uint64_t seed,
                                                      TimePoint horizon) {
  common::Rng rng(seed);
  std::vector<model::AperiodicJobSpec> trace;
  TimePoint t = TimePoint::origin();
  int id = 0;
  while (true) {
    // Bursts every ~20tu; 1-6 packets per burst, back to back.
    t += Duration::from_tu(rng.uniform(8.0, 32.0));
    if (t >= horizon) break;
    const std::uint64_t burst = 1 + rng.uniform_u64(6);
    TimePoint p = t;
    for (std::uint64_t i = 0; i < burst && p < horizon; ++i) {
      model::AperiodicJobSpec pkt;
      pkt.name = "pkt" + std::to_string(id++);
      pkt.release = p;
      pkt.cost = Duration::from_tu(rng.uniform(0.2, 1.2));
      trace.push_back(pkt);
      p += Duration::from_tu(rng.uniform(0.0, 0.5));
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const auto& a, const auto& b) { return a.release < b.release; });
  return trace;
}

}  // namespace

int main() {
  const TimePoint horizon = TimePoint::origin() + Duration::time_units(2000);

  model::SystemSpec gateway;
  gateway.name = "packet-gateway";
  gateway.periodic_tasks = {
      {"route-refresh", Duration::time_units(20), Duration::time_units(6),
       Duration::zero(), TimePoint::origin(), 20},
      {"health-report", Duration::time_units(50), Duration::time_units(10),
       Duration::zero(), TimePoint::origin(), 15},
  };
  gateway.aperiodic_jobs = make_burst_trace(42, horizon);
  gateway.horizon = horizon;

  std::cout << "=== packet gateway: " << gateway.aperiodic_jobs.size()
            << " packets, periodic load "
            << common::fmt_fixed(gateway.periodic_utilization() * 100, 0)
            << "% ===\n\n";

  common::TextTable t;
  t.add_row({"policy", "served", "mean (tu)", "p90 (tu)", "worst (tu)"});
  for (const auto policy :
       {model::ServerPolicy::kBackground, model::ServerPolicy::kPolling,
        model::ServerPolicy::kDeferrable, model::ServerPolicy::kSporadic}) {
    auto spec = gateway;
    spec.server.policy = policy;
    spec.server.capacity = Duration::time_units(4);
    spec.server.period = Duration::time_units(10);
    spec.server.priority =
        policy == model::ServerPolicy::kBackground ? 1 : 30;
    std::vector<model::RunResult> runs;
    runs.push_back(exp::run_exec(spec, exp::ideal_execution_options()));
    const auto d = exp::compute_response_distribution(runs);
    t.add_row({model::to_string(policy),
               std::to_string(d.samples) + "/" +
                   std::to_string(runs.front().jobs.size()),
               common::fmt_fixed(d.mean_tu, 2),
               common::fmt_fixed(d.p90_tu, 2),
               common::fmt_fixed(d.max_tu, 2)});
  }
  std::cout << t.to_string()
            << "\nThe budgeted servers keep packet latency bounded while the"
               " routing tasks keep their priorities; background service"
               " rides the idle gaps and its tail explodes whenever a burst"
               " lands on a busy period.\n";
  return 0;
}
