// Online admission control — §7 as an application.
//
// A Polling Server with the list-of-lists queue serves requests with firm
// relative deadlines. At each release the ResponseTimePredictor computes the
// exact response time in O(1) (equation 5); requests that would miss their
// deadline are rejected at the door ("possibly to cancel its execution",
// §7) instead of wasting server capacity.
//
// Build & run:   ./build/examples/admission_control
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "core/response_time_predictor.h"
#include "core/servable_async_event.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

using namespace tsf;
using common::Duration;
using common::TimePoint;

int main() {
  rtsj::vm::VirtualMachine vm;
  core::TaskServerParameters params("PS", Duration::time_units(4),
                                    Duration::time_units(6), 30);
  params.set_queue_discipline(model::QueueDiscipline::kListOfLists);
  core::PollingTaskServer server(vm, params);
  core::ResponseTimePredictor predictor(server);

  struct RequestLog {
    std::string name;
    TimePoint release;
    Duration cost;
    Duration deadline;
    bool admitted = false;
    Duration predicted = Duration::zero();
  };
  auto log = std::make_shared<std::vector<RequestLog>>();

  // Request stream: every ~2tu, cost 1-4tu, relative deadline 6-20tu.
  common::Rng rng(7);
  std::vector<std::unique_ptr<core::ServableAsyncEventHandler>> handlers;
  std::vector<std::unique_ptr<core::ServableAsyncEvent>> events;
  std::vector<std::unique_ptr<rtsj::OneShotTimer>> timers;
  TimePoint t = TimePoint::origin();
  const TimePoint horizon = TimePoint::origin() + Duration::time_units(120);
  int id = 0;
  while ((t += Duration::from_tu(rng.uniform(0.5, 3.5))) < horizon) {
    RequestLog entry;
    entry.name = "req" + std::to_string(id++);
    entry.release = t;
    entry.cost = Duration::from_tu(rng.uniform(1.0, 4.0));
    entry.deadline = Duration::from_tu(rng.uniform(6.0, 20.0));
    log->push_back(entry);

    const std::size_t index = log->size() - 1;
    handlers.push_back(std::make_unique<core::ServableAsyncEventHandler>(
        core::ServableAsyncEventHandler::pure_work(entry.name, entry.cost,
                                                   entry.cost)));
    handlers.back()->set_server(&server);
    events.push_back(
        std::make_unique<core::ServableAsyncEvent>(vm, entry.name + ".e"));
    events.back()->add_handler(handlers.back().get());

    // The admission decision runs at the release instant, in kernel
    // context, *before* the event would register: rejected requests are
    // simply never fired.
    auto* event = events.back().get();
    vm.schedule_silent(entry.release, [log, index, event, &predictor] {
      RequestLog& r = (*log)[index];
      if (const auto predicted = predictor.predict(r.cost);
          predicted && *predicted <= r.deadline) {
        r.admitted = true;
        r.predicted = *predicted;
        event->fire();
      }
    });
  }

  server.start();
  vm.run_until(horizon + Duration::time_units(30));

  const auto outcomes = server.final_outcomes();
  common::TextTable table;
  table.add_row({"request", "cost", "deadline", "decision", "predicted",
                 "actual", "on time"});
  std::size_t admitted = 0, met = 0, exact = 0;
  for (const auto& r : *log) {
    std::string actual = "-", on_time = "-";
    if (r.admitted) {
      ++admitted;
      for (const auto& o : outcomes) {
        if (o.name != r.name) continue;
        if (o.served) {
          actual = common::to_string(o.response());
          const bool ok = o.response() <= r.deadline;
          on_time = ok ? "yes" : "NO";
          met += ok ? 1u : 0u;
          exact += (o.response() == r.predicted) ? 1u : 0u;
        }
      }
    }
    table.add_row({r.name, common::to_string(r.cost),
                   common::to_string(r.deadline),
                   r.admitted ? "admit" : "reject",
                   r.admitted ? common::to_string(r.predicted) : "-", actual,
                   on_time});
  }
  std::cout << table.to_string() << '\n';
  std::cout << admitted << "/" << log->size() << " admitted; " << met
            << " met their deadline; " << exact
            << " completed exactly at the predicted time\n";
  std::cout << "(admission is O(1) per request: one look at the last open"
               " instance bucket)\n";
  return 0;
}
