// Alarm monitoring: the workload the paper's introduction motivates —
// a hard-periodic control system that must also react to event-based
// traffic (operator alarms) without breaking its feasibility analysis.
//
// Three control loops run under fixed priorities. Operator alarms arrive
// sporadically and are served by a Deferrable Server at the top priority.
// Before anything runs, the offline analysis (response-time analysis with
// the DS's back-to-back interference) proves the control loops keep their
// deadlines; the execution then confirms the bound.
//
// Build & run:   ./build/examples/alarm_monitoring
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/rta.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/deferrable_task_server.h"
#include "core/servable_async_event.h"
#include "exp/exec_runner.h"
#include "gen/generator.h"

using namespace tsf;
using common::Duration;
using common::TimePoint;

int main() {
  // --- the system ---
  model::SystemSpec plant;
  plant.name = "alarm-monitoring";
  plant.periodic_tasks = {
      {"attitude", Duration::time_units(10), Duration::time_units(2),
       Duration::zero(), TimePoint::origin(), 20},
      {"telemetry", Duration::time_units(25), Duration::time_units(5),
       Duration::zero(), TimePoint::origin(), 15},
      {"logging", Duration::time_units(50), Duration::time_units(8),
       Duration::zero(), TimePoint::origin(), 10},
  };
  plant.server.policy = model::ServerPolicy::kDeferrable;
  plant.server.capacity = Duration::time_units(3);
  plant.server.period = Duration::time_units(15);
  plant.server.priority = 30;
  plant.horizon = TimePoint::origin() + Duration::time_units(1000);

  // Sporadic alarms: ~1 per 12tu, 0.5-2.5tu of handling each.
  common::Rng rng(2026);
  TimePoint t = TimePoint::origin();
  int id = 0;
  while (true) {
    t += Duration::from_tu(rng.uniform(4.0, 20.0));
    if (t >= plant.horizon) break;
    model::AperiodicJobSpec alarm;
    alarm.name = "alarm" + std::to_string(id++);
    alarm.release = t;
    alarm.cost = Duration::from_tu(rng.uniform(0.5, 2.5));
    plant.aperiodic_jobs.push_back(alarm);
  }

  // --- offline feasibility, before running anything ---
  std::cout << "=== offline analysis (RTA, DS back-to-back interference) ==="
            << "\n\n";
  common::TextTable analysis_table;
  analysis_table.add_row({"task", "C", "T", "response bound", "deadline",
                          "verdict"});
  for (const auto& task : plant.periodic_tasks) {
    const auto r =
        analysis::response_time(task, plant.periodic_tasks, &plant.server);
    analysis_table.add_row(
        {task.name, common::to_string(task.cost),
         common::to_string(task.period),
         r ? common::to_string(*r) : "unbounded",
         common::to_string(task.effective_deadline()),
         r && *r <= task.effective_deadline() ? "ok" : "INFEASIBLE"});
  }
  std::cout << analysis_table.to_string() << '\n';
  if (!analysis::feasible(plant.periodic_tasks, &plant.server)) {
    std::cout << "system infeasible — aborting\n";
    return 1;
  }

  // --- execution ---
  const auto result = exp::run_exec(plant, exp::ideal_execution_options());

  common::Accumulator alarm_response;
  std::size_t served = 0;
  for (const auto& job : result.jobs) {
    if (job.served) {
      alarm_response.add(job.response().to_tu());
      ++served;
    }
  }
  common::Accumulator control_response[3];
  bool any_miss = false;
  for (const auto& job : result.periodic_jobs) {
    for (std::size_t i = 0; i < plant.periodic_tasks.size(); ++i) {
      if (job.task == plant.periodic_tasks[i].name) {
        control_response[i].add((job.completion - job.release).to_tu());
      }
    }
    any_miss |= job.deadline_missed;
  }

  std::cout << "=== execution over " << plant.horizon << " ===\n\n";
  common::TextTable run_table;
  run_table.add_row({"task", "jobs", "mean response", "worst response",
                     "bound"});
  for (std::size_t i = 0; i < plant.periodic_tasks.size(); ++i) {
    const auto& task = plant.periodic_tasks[i];
    const auto bound =
        analysis::response_time(task, plant.periodic_tasks, &plant.server);
    run_table.add_row({task.name,
                       std::to_string(control_response[i].count()),
                       common::fmt_fixed(control_response[i].mean(), 2) + "tu",
                       common::fmt_fixed(control_response[i].max(), 2) + "tu",
                       common::to_string(*bound)});
  }
  std::cout << run_table.to_string() << '\n';
  std::cout << "alarms: " << served << "/" << result.jobs.size()
            << " served, mean response "
            << common::fmt_fixed(alarm_response.mean(), 2)
            << "tu, worst " << common::fmt_fixed(alarm_response.max(), 2)
            << "tu\n";
  std::cout << "control deadlines " << (any_miss ? "MISSED" : "all met")
            << " — as the offline analysis promised.\n";
  return any_miss ? 1 : 0;
}
