// Quickstart: a Polling Server serving two asynchronous events next to two
// periodic tasks — the paper's Figure 2 scenario, in ~60 lines of API use.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>

#include "core/polling_task_server.h"
#include "core/servable_async_event.h"
#include "core/servable_async_event_handler.h"
#include "rtsj/realtime_thread.h"
#include "rtsj/timer.h"
#include "rtsj/vm/vm.h"

using namespace tsf;
using common::Duration;
using common::TimePoint;

int main() {
  // The virtual machine stands in for an RTSJ runtime: deterministic
  // virtual time, preemptive fixed priorities.
  rtsj::vm::VirtualMachine vm;

  // A Polling Server: capacity 3tu every 6tu, highest priority (30).
  core::PollingTaskServer server(
      vm, core::TaskServerParameters("PS", Duration::time_units(3),
                                     Duration::time_units(6), 30));

  // Two periodic tasks below it.
  auto periodic_body = [](Duration cost) {
    return [cost](rtsj::RealtimeThread& self) {
      for (;;) {
        self.work(cost);
        self.wait_for_next_period();
      }
    };
  };
  rtsj::RealtimeThread tau1(
      vm, "tau1", rtsj::PriorityParameters(20),
      rtsj::PeriodicParameters(TimePoint::origin(), Duration::time_units(6),
                               Duration::time_units(2)),
      periodic_body(Duration::time_units(2)));
  rtsj::RealtimeThread tau2(
      vm, "tau2", rtsj::PriorityParameters(10),
      rtsj::PeriodicParameters(TimePoint::origin(), Duration::time_units(6),
                               Duration::time_units(1)),
      periodic_body(Duration::time_units(1)));

  // Two servable events, each bound to a handler with a 2tu body, served
  // under the Polling Server's budget.
  auto h1 = core::ServableAsyncEventHandler::pure_work(
      "h1", Duration::time_units(2), Duration::time_units(2));
  auto h2 = core::ServableAsyncEventHandler::pure_work(
      "h2", Duration::time_units(2), Duration::time_units(2));
  h1.set_server(&server);
  h2.set_server(&server);
  core::ServableAsyncEvent e1(vm, "e1"), e2(vm, "e2");
  e1.add_handler(&h1);
  e2.add_handler(&h2);

  // Fire e1 at t=0 and e2 at t=6.
  rtsj::OneShotTimer t1(vm, TimePoint::origin(), &e1);
  rtsj::OneShotTimer t2(vm, TimePoint::origin() + Duration::time_units(6),
                        &e2);
  t1.start();
  t2.start();

  server.start();
  tau1.start();
  tau2.start();
  vm.run_until(TimePoint::origin() + Duration::time_units(18));

  std::cout << "Timeline (one cell = 0.5tu; '#' running, '^' release):\n\n"
            << render_gantt(vm.timeline(), {"h1", "h2", "tau1", "tau2"},
                            common::GanttOptions{
                                .cell = Duration::ticks(500),
                                .begin = TimePoint::origin(),
                                .end = TimePoint::origin() +
                                       Duration::time_units(18),
                                .show_releases = true,
                            })
            << '\n';
  for (const auto& outcome : server.final_outcomes()) {
    std::cout << outcome.name << ": released at " << outcome.release
              << ", response time " << outcome.response() << '\n';
  }
  std::cout << "served " << server.served_count() << "/"
            << server.released_count() << " events, "
            << server.interrupted_count() << " interrupted\n";
  return 0;
}
