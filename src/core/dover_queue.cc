#include "core/dover_queue.h"

#include <algorithm>
#include <cmath>

#include "common/diag.h"
#include "core/servable_async_event_handler.h"

namespace tsf::core {

namespace {

// Declared cost, the same signal the other disciplines schedule on.
rtsj::RelativeTime declared(const Request& r) { return r.handler->cost(); }

}  // namespace

DOverQueue::DOverQueue(Config config) : config_(std::move(config)) {
  TSF_ASSERT(config_.bandwidth_num > 0 && config_.bandwidth_den > 0,
             "dover queue needs a positive server bandwidth");
  TSF_ASSERT(config_.now && config_.meta && config_.on_admit &&
                 config_.on_demote && config_.on_shed,
             "dover queue needs every callback wired");
  const double k = std::max(1.0, config_.importance_ratio);
  takeover_factor_ = 1.0 + std::sqrt(k);
}

rtsj::RelativeTime DOverQueue::scaled(rtsj::RelativeTime cost) const {
  const std::int64_t ticks =
      (cost.count() * config_.bandwidth_num + config_.bandwidth_den - 1) /
      config_.bandwidth_den;
  return rtsj::RelativeTime::ticks(ticks);
}

rtsj::AbsoluteTime DOverQueue::latest_start(const Entry& e) const {
  return e.deadline - scaled(declared(e.request));
}

bool DOverQueue::feasible_with(const Entry& candidate,
                               rtsj::AbsoluteTime now) const {
  // Processor-demand test over the privileged set plus the candidate, in
  // server time: cumulative scaled demand served EDF from `now` must meet
  // every firm deadline.
  std::vector<const Entry*> set;
  for (const auto& e : entries_) {
    if (e.privileged) set.push_back(&e);
  }
  set.push_back(&candidate);
  std::sort(set.begin(), set.end(), [](const Entry* a, const Entry* b) {
    if (a->deadline != b->deadline) return a->deadline < b->deadline;
    return a->request.seq < b->request.seq;
  });
  rtsj::AbsoluteTime t = now;
  for (const Entry* e : set) {
    t += scaled(declared(e->request));
    if (!e->deadline.is_never() && t > e->deadline) return false;
  }
  return true;
}

void DOverQueue::push(Request r) {
  Entry e;
  const JobMeta meta = config_.meta(r);
  e.deadline = meta.relative_deadline.is_zero()
                   ? rtsj::AbsoluteTime::never()
                   : r.release + meta.relative_deadline;
  e.value = meta.value;
  e.request = std::move(r);
  entries_.push_back(std::move(e));
  reconcile();
}

void DOverQueue::reconcile() {
  const rtsj::AbsoluteTime now = config_.now();
  // The decision sweeps run in server time at discrete instants (every push
  // and every dispatch attempt), not at exact LST timers: a waiting entry's
  // takeover decision fires once it could not survive to the next server
  // period. `changed` loops until a sweep alters nothing.
  const rtsj::RelativeTime period =
      rtsj::RelativeTime::ticks(config_.bandwidth_num);
  bool changed = true;
  while (changed) {
    changed = false;

    // 1. Privileged firm entries that can no longer complete even if started
    //    immediately: demote out of the set, then shed.
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->privileged && !it->deadline.is_never() &&
          now > latest_start(*it)) {
        config_.on_demote(it->request);
        config_.on_shed(it->request, "missed-lst");
        it = entries_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }

    // 2. Waiting entries, earliest deadline first: admit any that pass the
    //    feasibility test against the current privileged set. Soft entries
    //    (deadline = never) always pass — they cannot constrain the test.
    std::vector<std::size_t> waiting;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].privileged) waiting.push_back(i);
    }
    std::sort(waiting.begin(), waiting.end(),
              [&](std::size_t a, std::size_t b) {
                if (entries_[a].deadline != entries_[b].deadline) {
                  return entries_[a].deadline < entries_[b].deadline;
                }
                return entries_[a].request.seq < entries_[b].request.seq;
              });
    for (std::size_t idx : waiting) {
      Entry& e = entries_[idx];
      if (now > latest_start(e)) continue;  // handled by step 3
      if (feasible_with(e, now)) {
        e.privileged = true;
        config_.on_admit(e.request, /*takeover=*/false);
        changed = true;
      }
    }
    if (changed) continue;

    // 3. The LST rule, one critical entry per sweep: a waiting firm entry
    //    that cannot survive until the next server period must start now or
    //    never. If its value beats (1 + sqrt(k)) times the privileged
    //    firm value, the privileged set is demoted and it takes over;
    //    otherwise (or when it could not complete anyway, or it already
    //    used its one LST decision) it is shed.
    for (std::size_t idx : waiting) {
      Entry& e = entries_[idx];
      if (e.deadline.is_never()) continue;
      const rtsj::AbsoluteTime lst = latest_start(e);
      if (lst >= now + period) continue;  // not critical yet
      const bool completable = now <= lst;
      if (completable && !e.lst_fired) {
        e.lst_fired = true;
        double privileged_value = 0.0;
        for (const auto& p : entries_) {
          if (p.privileged && !p.deadline.is_never()) {
            privileged_value += p.value;
          }
        }
        if (e.value > takeover_factor_ * privileged_value) {
          for (auto& p : entries_) {
            if (p.privileged && !p.deadline.is_never()) {
              p.privileged = false;
              config_.on_demote(p.request);
            }
          }
          e.privileged = true;
          config_.on_admit(e.request, /*takeover=*/true);
          changed = true;
          break;
        }
      }
      config_.on_shed(e.request, "lst");
      entries_.erase(entries_.begin() +
                     static_cast<std::ptrdiff_t>(idx));
      changed = true;
      break;
    }
  }
}

std::optional<Request> DOverQueue::pop_fitting(const FitsFn& fits) {
  reconcile();
  // EDF over the privileged set, first-fit on the server's capacity rule.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].privileged) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (entries_[a].deadline != entries_[b].deadline) {
      return entries_[a].deadline < entries_[b].deadline;
    }
    return entries_[a].request.seq < entries_[b].request.seq;
  });
  for (std::size_t idx : order) {
    if (!fits(declared(entries_[idx].request))) continue;
    Request r = std::move(entries_[idx].request);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(idx));
    return r;
  }
  return std::nullopt;
}

std::vector<Request> DOverQueue::drain() {
  std::vector<Request> out;
  out.reserve(entries_.size());
  for (auto& e : entries_) out.push_back(std::move(e.request));
  entries_.clear();
  return out;
}

std::optional<Request> DOverQueue::steal(const StealEligibleFn& eligible,
                                         const StealBeforeFn& before) {
  std::size_t best = entries_.size();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!eligible(entries_[i].request)) continue;
    if (best == entries_.size() ||
        before(entries_[i].request, entries_[best].request)) {
      best = i;
    }
  }
  if (best == entries_.size()) return std::nullopt;
  // A privileged entry leaving for another core exits the admitted set
  // first, so the invariant checker never sees admitted work vanish.
  if (entries_[best].privileged) config_.on_demote(entries_[best].request);
  Request r = std::move(entries_[best].request);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
  return r;
}

void DOverQueue::visit(const std::function<void(const Request&)>& fn) const {
  for (const auto& e : entries_) fn(e.request);
}

std::size_t DOverQueue::privileged_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.privileged) ++n;
  }
  return n;
}

}  // namespace tsf::core
