// TaskServerParameters — "a subclass of ReleaseParameters to construct a
// TaskServer" (paper §3, Figure 1).
#pragma once

#include <string>

#include "model/spec.h"
#include "rtsj/params.h"
#include "rtsj/time.h"

namespace tsf::core {

class TaskServerParameters : public rtsj::ReleaseParameters {
 public:
  TaskServerParameters(std::string name, rtsj::RelativeTime capacity,
                       rtsj::RelativeTime period, int priority)
      : rtsj::ReleaseParameters(capacity, period),
        name_(std::move(name)),
        period_(period),
        priority_(priority) {}

  const std::string& name() const { return name_; }
  rtsj::RelativeTime capacity() const { return cost(); }
  rtsj::RelativeTime period() const { return period_; }
  int priority() const { return priority_; }

  rtsj::AbsoluteTime start() const { return start_; }
  TaskServerParameters& set_start(rtsj::AbsoluteTime s) {
    start_ = s;
    return *this;
  }

  model::QueueDiscipline queue_discipline() const { return queue_; }
  TaskServerParameters& set_queue_discipline(model::QueueDiscipline q) {
    queue_ = q;
    return *this;
  }

  // §4.2: tightens the Deferrable Server's boundary-spanning budget rule.
  bool strict_capacity() const { return strict_capacity_; }
  TaskServerParameters& set_strict_capacity(bool v) {
    strict_capacity_ = v;
    return *this;
  }

  // §7's proposed interruption-avoidance: "We can avoid some interruptions
  // in delaying the execution of events handlers with a cost too close of
  // the remaining capacity." A handler is dispatched only when its declared
  // cost plus this margin fits the budget, leaving headroom for overhead
  // and execution-time jitter. Zero reproduces the paper's implementation.
  rtsj::RelativeTime admission_margin() const { return admission_margin_; }
  TaskServerParameters& set_admission_margin(rtsj::RelativeTime m) {
    admission_margin_ = m;
    return *this;
  }

  // Framework bookkeeping cost charged (at server priority) once per
  // activation and once per handler dispatch. Zero models an ideal runtime.
  rtsj::RelativeTime poll_overhead() const { return poll_overhead_; }
  rtsj::RelativeTime dispatch_overhead() const { return dispatch_overhead_; }
  TaskServerParameters& set_poll_overhead(rtsj::RelativeTime d) {
    poll_overhead_ = d;
    return *this;
  }
  TaskServerParameters& set_dispatch_overhead(rtsj::RelativeTime d) {
    dispatch_overhead_ = d;
    return *this;
  }

  // Burst batching: up to this many pending releases are served under one
  // Timed section per dispatch, charging dispatch_overhead once per batch
  // instead of once per event. 1 (the default) reproduces today's per-event
  // dispatch bit-for-bit; it only groups requests that individually and
  // cumulatively fit the capacity rule, so admission semantics are
  // unchanged. Applies to the polling, deferrable and background servers;
  // the sporadic server's per-dispatch replenishment is inherently
  // per-event and ignores it.
  int batch_limit() const { return batch_limit_; }
  TaskServerParameters& set_batch_limit(int n) {
    batch_limit_ = n < 1 ? 1 : n;
    return *this;
  }

 private:
  std::string name_;
  rtsj::RelativeTime period_;
  int priority_;
  rtsj::AbsoluteTime start_ = rtsj::AbsoluteTime::origin();
  model::QueueDiscipline queue_ = model::QueueDiscipline::kFifoFirstFit;
  bool strict_capacity_ = false;
  rtsj::RelativeTime admission_margin_ = rtsj::RelativeTime::zero();
  rtsj::RelativeTime poll_overhead_ = rtsj::RelativeTime::zero();
  rtsj::RelativeTime dispatch_overhead_ = rtsj::RelativeTime::zero();
  int batch_limit_ = 1;
};

}  // namespace tsf::core
