// Pending-event queues for task servers.
//
// The paper uses a FIFO list whose chooseNextEvent() returns "the first
// handler in the list which has a cost lower than the remaining capacity"
// (§4.1) — our kFifoFirstFit. kStrictFifo is the head-blocking variant the
// theoretical servers use, and kListOfLists is the §7 proposal: handlers are
// packed into per-server-instance buckets so that the response time of a new
// release is computable in constant time (equation (5)).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/annotations.h"
#include "common/arena.h"
#include "common/function_ref.h"
#include "model/spec.h"
#include "rtsj/time.h"

namespace tsf::core {

class ServableAsyncEventHandler;

// One release of a servable event bound to a handler.
struct Request {
  ServableAsyncEventHandler* handler = nullptr;
  rtsj::AbsoluteTime release;
  std::uint64_t seq = 0;  // global release order
};

// Predicate deciding whether a request with the given declared cost can be
// dispatched right now (the servers encode their capacity rules here).
// Non-owning (common::FunctionRef): the servers rebuild these per
// activation on the hot path, so binding must never allocate — pass
// lambdas in the call expression or keep the lambda alive alongside.
using FitsFn = common::FunctionRef<bool(rtsj::RelativeTime declared_cost)>;

// Work-stealing selectors (mp semi-partitioned policy): which pending
// requests may leave this core, and which of two ranks first.
using StealEligibleFn = common::FunctionRef<bool(const Request&)>;
using StealBeforeFn =
    common::FunctionRef<bool(const Request&, const Request&)>;

// The request containers: deque chunks come from the owning server's arena
// (freelist-recycled, so steady-state push/pop touches no heap); with a
// null arena they fall back to the global heap.
using RequestDeque = std::deque<Request, common::ArenaAllocator<Request>>;

class PendingQueue {
 public:
  virtual ~PendingQueue() = default;

  // push / requeue / pop_fitting / begin_instance run inside the serve
  // loop (every release, every activation): TSF_REALTIME — arena-backed
  // storage keeps the steady state off the heap. drain / steal only run at
  // epoch boundaries or end-of-run: TSF_BARRIER_ONLY.
  TSF_REALTIME
  virtual void push(Request r) = 0;
  // Returns a popped-but-unserved request to the *front* of the service
  // order (the batched dispatcher's interrupted-tail path: requests behind
  // an interrupted batch member never started and must not lose their
  // place). Call in reverse pop order to restore the original sequence.
  // Default: plain push (disciplines without a meaningful front).
  TSF_REALTIME
  virtual void requeue(Request r) { push(std::move(r)); }
  // Removes and returns the next dispatchable request, or nullopt when no
  // queued request satisfies `fits`.
  TSF_REALTIME
  virtual std::optional<Request> pop_fitting(const FitsFn& fits) = 0;
  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
  // Removes and returns everything still pending (end-of-run accounting).
  TSF_BARRIER_ONLY
  virtual std::vector<Request> drain() = 0;
  // Removes and returns the request that `before` ranks first among those
  // `eligible`, or nullopt when none is eligible — the victim side of the
  // semi-partitioned work stealer. Only pending (never running) requests
  // live in the queue, so a stolen job can never be mid-dispatch. A request
  // can, however, be mid-*bind*: released at this very instant (an epoch
  // boundary), with the home server's wake-up for it still in flight —
  // TaskServer::steal_pending_request therefore excludes boundary-
  // coincident releases from `eligible` before delegating here.
  TSF_BARRIER_ONLY
  virtual std::optional<Request> steal(const StealEligibleFn& eligible,
                                       const StealBeforeFn& before) = 0;
  // Read-only walk over every request steal() could reach, in queue order
  // (the list-of-lists queue skips its parked unservable requests, exactly
  // like steal does). The online rebalancer snapshots queues through this
  // before deciding what — if anything — to move, so nothing is ever
  // popped and re-pushed just to be put back.
  virtual void visit(const std::function<void(const Request&)>& fn) const = 0;
  // Called by instance-based servers at each activation; only the
  // list-of-lists queue reacts (it rotates to the next instance bucket).
  TSF_REALTIME
  virtual void begin_instance() {}

  // `arena`, when non-null, backs the queue's request storage (one arena
  // per owning server; the queue must not outlive it).
  static std::unique_ptr<PendingQueue> make(model::QueueDiscipline discipline,
                                            rtsj::RelativeTime capacity,
                                            common::Arena* arena = nullptr);
};

// Serve strictly in release order; an oversized head blocks everything.
class StrictFifoQueue : public PendingQueue {
 public:
  explicit StrictFifoQueue(common::Arena* arena = nullptr)
      : q_(common::ArenaAllocator<Request>(arena)) {}
  TSF_REALTIME
  void push(Request r) override { q_.push_back(std::move(r)); }
  TSF_REALTIME
  void requeue(Request r) override { q_.push_front(std::move(r)); }
  TSF_REALTIME
  std::optional<Request> pop_fitting(const FitsFn& fits) override;
  bool empty() const override { return q_.empty(); }
  std::size_t size() const override { return q_.size(); }
  TSF_BARRIER_ONLY
  std::vector<Request> drain() override;
  TSF_BARRIER_ONLY
  std::optional<Request> steal(const StealEligibleFn& eligible,
                               const StealBeforeFn& before) override;
  void visit(const std::function<void(const Request&)>& fn) const override;

 private:
  RequestDeque q_;
};

// The paper's chooseNextEvent(): first request (in release order) that fits.
class FifoFirstFitQueue : public PendingQueue {
 public:
  explicit FifoFirstFitQueue(common::Arena* arena = nullptr)
      : q_(common::ArenaAllocator<Request>(arena)) {}
  TSF_REALTIME
  void push(Request r) override { q_.push_back(std::move(r)); }
  TSF_REALTIME
  void requeue(Request r) override { q_.push_front(std::move(r)); }
  TSF_REALTIME
  std::optional<Request> pop_fitting(const FitsFn& fits) override;
  bool empty() const override { return q_.empty(); }
  std::size_t size() const override { return q_.size(); }
  TSF_BARRIER_ONLY
  std::vector<Request> drain() override;
  TSF_BARRIER_ONLY
  std::optional<Request> steal(const StealEligibleFn& eligible,
                               const StealBeforeFn& before) override;
  void visit(const std::function<void(const Request&)>& fn) const override;

 private:
  RequestDeque q_;
};

// §7: a list of lists of handlers, each inner list holding at most one
// server instance worth of declared cost, plus the parallel list of
// cumulative costs. Releases append to the last open instance (or open a
// new one), so registration and the placement query are O(1) — the paper's
// constant-time response-time claim — and global FIFO order is preserved
// (a later release never jumps into an earlier instance). The bucket index
// and the cumulative cost before a request give its response time via
// equation (5) (see ResponseTimePredictor).
class ListOfListsQueue : public PendingQueue {
 public:
  explicit ListOfListsQueue(rtsj::RelativeTime capacity,
                            common::Arena* arena = nullptr);

  TSF_REALTIME
  void push(Request r) override;
  // Back to the front of the active instance (batched-dispatch tail).
  TSF_REALTIME
  void requeue(Request r) override;
  // Serves only the active instance's list (detached at begin_instance).
  TSF_REALTIME
  std::optional<Request> pop_fitting(const FitsFn& fits) override;
  bool empty() const override;
  std::size_t size() const override;
  TSF_BARRIER_ONLY
  std::vector<Request> drain() override;
  // Scans the active list and every future bucket (bucket loads are
  // adjusted; an underfull bucket is harmless). Unservable requests are
  // excluded — the thief's server replica has the same capacity, so they
  // could not be served there either.
  TSF_BARRIER_ONLY
  std::optional<Request> steal(const StealEligibleFn& eligible,
                               const StealBeforeFn& before) override;
  // Active list, then every future bucket; parked unservable requests are
  // skipped (they are outside steal's reach too).
  void visit(const std::function<void(const Request&)>& fn) const override;
  // Rotates: unserved leftovers of the active list are re-registered, then
  // the first future bucket becomes the active list.
  TSF_REALTIME
  void begin_instance() override;

  // --- the §7 prediction interface ---
  // Where would a request with this declared cost land, were it released
  // now? Returns {instances_from_next_activation, cumulative_cost_before}.
  struct Placement {
    std::int64_t instance_offset = 0;
    rtsj::RelativeTime cumulative_before = rtsj::RelativeTime::zero();
  };
  Placement placement_for(rtsj::RelativeTime declared_cost) const;

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  struct Bucket {
    RequestDeque items;
    rtsj::RelativeTime load = rtsj::RelativeTime::zero();
    explicit Bucket(common::ArenaAllocator<Request> alloc)
        : items(std::move(alloc)) {}
  };

  void append(Request r);

  rtsj::RelativeTime capacity_;
  common::ArenaAllocator<Request> alloc_;
  RequestDeque active_;  // the instance currently being served
  // Future instances, in order (the buckets' own deque chunks come from
  // the same arena as their items).
  std::deque<Bucket, common::ArenaAllocator<Bucket>> buckets_;
  // Requests whose declared cost exceeds the capacity violate the
  // framework's §4 constraint and can never be served; they are parked here
  // (reported by size()/drain()) instead of wasting a whole instance.
  std::vector<Request> unservable_;
};

}  // namespace tsf::core
