// Pending-event queues for task servers.
//
// The paper uses a FIFO list whose chooseNextEvent() returns "the first
// handler in the list which has a cost lower than the remaining capacity"
// (§4.1) — our kFifoFirstFit. kStrictFifo is the head-blocking variant the
// theoretical servers use, and kListOfLists is the §7 proposal: handlers are
// packed into per-server-instance buckets so that the response time of a new
// release is computable in constant time (equation (5)).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "model/spec.h"
#include "rtsj/time.h"

namespace tsf::core {

class ServableAsyncEventHandler;

// One release of a servable event bound to a handler.
struct Request {
  ServableAsyncEventHandler* handler = nullptr;
  rtsj::AbsoluteTime release;
  std::uint64_t seq = 0;  // global release order
};

// Predicate deciding whether a request with the given declared cost can be
// dispatched right now (the servers encode their capacity rules here).
using FitsFn = std::function<bool(rtsj::RelativeTime declared_cost)>;

// Work-stealing selectors (mp semi-partitioned policy): which pending
// requests may leave this core, and which of two ranks first.
using StealEligibleFn = std::function<bool(const Request&)>;
using StealBeforeFn = std::function<bool(const Request&, const Request&)>;

class PendingQueue {
 public:
  virtual ~PendingQueue() = default;

  virtual void push(Request r) = 0;
  // Removes and returns the next dispatchable request, or nullopt when no
  // queued request satisfies `fits`.
  virtual std::optional<Request> pop_fitting(const FitsFn& fits) = 0;
  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
  // Removes and returns everything still pending (end-of-run accounting).
  virtual std::vector<Request> drain() = 0;
  // Removes and returns the request that `before` ranks first among those
  // `eligible`, or nullopt when none is eligible — the victim side of the
  // semi-partitioned work stealer. Only pending (never running) requests
  // live in the queue, so a stolen job can never be mid-dispatch. A request
  // can, however, be mid-*bind*: released at this very instant (an epoch
  // boundary), with the home server's wake-up for it still in flight —
  // TaskServer::steal_pending_request therefore excludes boundary-
  // coincident releases from `eligible` before delegating here.
  virtual std::optional<Request> steal(const StealEligibleFn& eligible,
                                       const StealBeforeFn& before) = 0;
  // Read-only walk over every request steal() could reach, in queue order
  // (the list-of-lists queue skips its parked unservable requests, exactly
  // like steal does). The online rebalancer snapshots queues through this
  // before deciding what — if anything — to move, so nothing is ever
  // popped and re-pushed just to be put back.
  virtual void visit(const std::function<void(const Request&)>& fn) const = 0;
  // Called by instance-based servers at each activation; only the
  // list-of-lists queue reacts (it rotates to the next instance bucket).
  virtual void begin_instance() {}

  static std::unique_ptr<PendingQueue> make(model::QueueDiscipline discipline,
                                            rtsj::RelativeTime capacity);
};

// Serve strictly in release order; an oversized head blocks everything.
class StrictFifoQueue : public PendingQueue {
 public:
  void push(Request r) override { q_.push_back(std::move(r)); }
  std::optional<Request> pop_fitting(const FitsFn& fits) override;
  bool empty() const override { return q_.empty(); }
  std::size_t size() const override { return q_.size(); }
  std::vector<Request> drain() override;
  std::optional<Request> steal(const StealEligibleFn& eligible,
                               const StealBeforeFn& before) override;
  void visit(const std::function<void(const Request&)>& fn) const override;

 private:
  std::deque<Request> q_;
};

// The paper's chooseNextEvent(): first request (in release order) that fits.
class FifoFirstFitQueue : public PendingQueue {
 public:
  void push(Request r) override { q_.push_back(std::move(r)); }
  std::optional<Request> pop_fitting(const FitsFn& fits) override;
  bool empty() const override { return q_.empty(); }
  std::size_t size() const override { return q_.size(); }
  std::vector<Request> drain() override;
  std::optional<Request> steal(const StealEligibleFn& eligible,
                               const StealBeforeFn& before) override;
  void visit(const std::function<void(const Request&)>& fn) const override;

 private:
  std::deque<Request> q_;
};

// §7: a list of lists of handlers, each inner list holding at most one
// server instance worth of declared cost, plus the parallel list of
// cumulative costs. Releases append to the last open instance (or open a
// new one), so registration and the placement query are O(1) — the paper's
// constant-time response-time claim — and global FIFO order is preserved
// (a later release never jumps into an earlier instance). The bucket index
// and the cumulative cost before a request give its response time via
// equation (5) (see ResponseTimePredictor).
class ListOfListsQueue : public PendingQueue {
 public:
  explicit ListOfListsQueue(rtsj::RelativeTime capacity);

  void push(Request r) override;
  // Serves only the active instance's list (detached at begin_instance).
  std::optional<Request> pop_fitting(const FitsFn& fits) override;
  bool empty() const override;
  std::size_t size() const override;
  std::vector<Request> drain() override;
  // Scans the active list and every future bucket (bucket loads are
  // adjusted; an underfull bucket is harmless). Unservable requests are
  // excluded — the thief's server replica has the same capacity, so they
  // could not be served there either.
  std::optional<Request> steal(const StealEligibleFn& eligible,
                               const StealBeforeFn& before) override;
  // Active list, then every future bucket; parked unservable requests are
  // skipped (they are outside steal's reach too).
  void visit(const std::function<void(const Request&)>& fn) const override;
  // Rotates: unserved leftovers of the active list are re-registered, then
  // the first future bucket becomes the active list.
  void begin_instance() override;

  // --- the §7 prediction interface ---
  // Where would a request with this declared cost land, were it released
  // now? Returns {instances_from_next_activation, cumulative_cost_before}.
  struct Placement {
    std::int64_t instance_offset = 0;
    rtsj::RelativeTime cumulative_before = rtsj::RelativeTime::zero();
  };
  Placement placement_for(rtsj::RelativeTime declared_cost) const;

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  struct Bucket {
    std::deque<Request> items;
    rtsj::RelativeTime load = rtsj::RelativeTime::zero();
  };

  void append(Request r);

  rtsj::RelativeTime capacity_;
  std::deque<Request> active_;  // the instance currently being served
  std::deque<Bucket> buckets_;  // future instances, in order
  // Requests whose declared cost exceeds the capacity violate the
  // framework's §4 constraint and can never be served; they are parked here
  // (reported by size()/drain()) instead of wasting a whole instance.
  std::vector<Request> unservable_;
};

}  // namespace tsf::core
