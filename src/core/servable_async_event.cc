#include "core/servable_async_event.h"

#include <algorithm>

#include "common/diag.h"
#include "core/task_server.h"

namespace tsf::core {

void ServableAsyncEvent::add_handler(ServableAsyncEventHandler* handler) {
  TSF_ASSERT(handler != nullptr, "null servable handler added to " << name());
  if (std::find(servable_handlers_.begin(), servable_handlers_.end(),
                handler) == servable_handlers_.end()) {
    servable_handlers_.push_back(handler);
  }
}

void ServableAsyncEvent::remove_handler(ServableAsyncEventHandler* handler) {
  auto it = std::find(servable_handlers_.begin(), servable_handlers_.end(),
                      handler);
  if (it != servable_handlers_.end()) servable_handlers_.erase(it);
}

void ServableAsyncEvent::fire() {
  rtsj::AsyncEvent::fire();  // plain handlers + the kFire trace record
  for (ServableAsyncEventHandler* h : servable_handlers_) {
    TSF_ASSERT(h->server() != nullptr,
               "servable handler " << h->name() << " has no task server");
    h->server()->servable_event_released(h);
  }
}

}  // namespace tsf::core
