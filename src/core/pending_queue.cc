#include "core/pending_queue.h"

#include <algorithm>

#include "common/diag.h"
#include "core/servable_async_event_handler.h"

namespace tsf::core {

namespace {
rtsj::RelativeTime declared(const Request& r) {
  return r.handler->cost();
}

// Shared steal scan over one deque: removes the request `before` ranks
// first among the `eligible` ones.
std::optional<Request> steal_from(RequestDeque& q,
                                  const StealEligibleFn& eligible,
                                  const StealBeforeFn& before) {
  auto best = q.end();
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (!eligible(*it)) continue;
    if (best == q.end() || before(*it, *best)) best = it;
  }
  if (best == q.end()) return std::nullopt;
  Request r = std::move(*best);
  q.erase(best);
  return r;
}
}  // namespace

std::unique_ptr<PendingQueue> PendingQueue::make(
    model::QueueDiscipline discipline, rtsj::RelativeTime capacity,
    common::Arena* arena) {
  switch (discipline) {
    case model::QueueDiscipline::kStrictFifo:
      return std::make_unique<StrictFifoQueue>(arena);
    case model::QueueDiscipline::kFifoFirstFit:
      return std::make_unique<FifoFirstFitQueue>(arena);
    case model::QueueDiscipline::kListOfLists:
      return std::make_unique<ListOfListsQueue>(capacity, arena);
  }
  TSF_PANIC("unknown queue discipline");
}

std::optional<Request> StrictFifoQueue::pop_fitting(const FitsFn& fits) {
  if (q_.empty() || !fits(declared(q_.front()))) return std::nullopt;
  Request r = std::move(q_.front());
  q_.pop_front();
  return r;
}

std::vector<Request> StrictFifoQueue::drain() {
  std::vector<Request> out(q_.begin(), q_.end());
  q_.clear();
  return out;
}

std::optional<Request> StrictFifoQueue::steal(const StealEligibleFn& eligible,
                                              const StealBeforeFn& before) {
  return steal_from(q_, eligible, before);
}

void StrictFifoQueue::visit(
    const std::function<void(const Request&)>& fn) const {
  for (const auto& r : q_) fn(r);
}

std::optional<Request> FifoFirstFitQueue::pop_fitting(const FitsFn& fits) {
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (fits(declared(*it))) {
      Request r = std::move(*it);
      q_.erase(it);
      return r;
    }
  }
  return std::nullopt;
}

std::vector<Request> FifoFirstFitQueue::drain() {
  std::vector<Request> out(q_.begin(), q_.end());
  q_.clear();
  return out;
}

std::optional<Request> FifoFirstFitQueue::steal(
    const StealEligibleFn& eligible, const StealBeforeFn& before) {
  return steal_from(q_, eligible, before);
}

void FifoFirstFitQueue::visit(
    const std::function<void(const Request&)>& fn) const {
  for (const auto& r : q_) fn(r);
}

ListOfListsQueue::ListOfListsQueue(rtsj::RelativeTime capacity,
                                   common::Arena* arena)
    : capacity_(capacity),
      alloc_(arena),
      active_(alloc_),
      buckets_(common::ArenaAllocator<Bucket>(arena)) {
  TSF_ASSERT(capacity_ > rtsj::RelativeTime::zero(),
             "list-of-lists queue needs a positive capacity");
}

void ListOfListsQueue::append(Request r) {
  // O(1): only the last open instance is considered, so registration cost
  // does not grow with the backlog and FIFO order is never violated.
  const rtsj::RelativeTime c = declared(r);
  if (c > capacity_) {
    unservable_.push_back(std::move(r));
    return;
  }
  if (buckets_.empty() || buckets_.back().load + c > capacity_) {
    buckets_.emplace_back(alloc_);
  }
  buckets_.back().load += c;
  buckets_.back().items.push_back(std::move(r));
}

void ListOfListsQueue::push(Request r) { append(std::move(r)); }

void ListOfListsQueue::requeue(Request r) {
  // The batched dispatcher only requeues requests it popped from the active
  // instance this very activation, so the front of the active list is their
  // original place (requeue happens in reverse pop order).
  active_.push_front(std::move(r));
}

std::optional<Request> ListOfListsQueue::pop_fitting(const FitsFn& fits) {
  if (active_.empty() || !fits(declared(active_.front()))) return std::nullopt;
  Request r = std::move(active_.front());
  active_.pop_front();
  return r;
}

bool ListOfListsQueue::empty() const {
  // Unservable requests are deliberately excluded: they must not make an
  // event-driven server wake up for work it can never dispatch.
  return active_.empty() && buckets_.empty();
}

std::size_t ListOfListsQueue::size() const {
  std::size_t n = active_.size() + unservable_.size();
  for (const auto& b : buckets_) n += b.items.size();
  return n;
}

std::vector<Request> ListOfListsQueue::drain() {
  std::vector<Request> out(active_.begin(), active_.end());
  active_.clear();
  for (auto& b : buckets_) {
    out.insert(out.end(), b.items.begin(), b.items.end());
  }
  buckets_.clear();
  out.insert(out.end(), unservable_.begin(), unservable_.end());
  unservable_.clear();
  return out;
}

std::optional<Request> ListOfListsQueue::steal(
    const StealEligibleFn& eligible, const StealBeforeFn& before) {
  // Two passes keep every untaken request exactly where it was: first find
  // the winner across the active list and all future buckets, then remove
  // it by its (unique) release seq.
  const Request* best = nullptr;
  for (const auto& r : active_) {
    if (eligible(r) && (best == nullptr || before(r, *best))) best = &r;
  }
  for (const auto& bucket : buckets_) {
    for (const auto& r : bucket.items) {
      if (eligible(r) && (best == nullptr || before(r, *best))) best = &r;
    }
  }
  if (best == nullptr) return std::nullopt;
  const std::uint64_t seq = best->seq;
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->seq != seq) continue;
    Request r = std::move(*it);
    active_.erase(it);
    return r;
  }
  for (auto bucket = buckets_.begin(); bucket != buckets_.end(); ++bucket) {
    for (auto it = bucket->items.begin(); it != bucket->items.end(); ++it) {
      if (it->seq != seq) continue;
      Request r = std::move(*it);
      bucket->load -= declared(r);
      bucket->items.erase(it);
      if (bucket->items.empty()) buckets_.erase(bucket);
      return r;
    }
  }
  return std::nullopt;  // unreachable: the winner was just seen above
}

void ListOfListsQueue::visit(
    const std::function<void(const Request&)>& fn) const {
  for (const auto& r : active_) fn(r);
  for (const auto& bucket : buckets_) {
    for (const auto& r : bucket.items) fn(r);
  }
}

void ListOfListsQueue::begin_instance() {
  // Leftovers of the previous instance (possible only under overhead or
  // under-declared costs) are re-registered like fresh releases.
  RequestDeque leftovers(alloc_);
  leftovers.swap(active_);
  for (auto& r : leftovers) append(std::move(r));
  if (!buckets_.empty()) {
    active_ = std::move(buckets_.front().items);
    buckets_.pop_front();
  }
}

ListOfListsQueue::Placement ListOfListsQueue::placement_for(
    rtsj::RelativeTime declared_cost) const {
  // O(1): a new release can only land in the last open instance or a fresh
  // one (mirrors append()).
  Placement p;
  if (!buckets_.empty() &&
      buckets_.back().load + declared_cost <= capacity_) {
    p.instance_offset = static_cast<std::int64_t>(buckets_.size()) - 1;
    p.cumulative_before = buckets_.back().load;
    return p;
  }
  p.instance_offset = static_cast<std::int64_t>(buckets_.size());
  p.cumulative_before = rtsj::RelativeTime::zero();
  return p;
}

}  // namespace tsf::core
