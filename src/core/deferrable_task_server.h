// DeferrableTaskServer — paper §4.2.
//
// "Unlike the PS, the DS can serve an aperiodic task at any time as it has
// enough capacity. So the run() method can no longer be delegated to a
// periodic real-time thread. Instead, it is delegated to an AEH bound to a
// specific AE we call wakeUp. Each time an aperiodic event occurs, if the
// server is not already running, this event is fired. Moreover, we add a
// periodic timer which fires wakeUp if the server is not already running."
//
// Boundary-spanning rule (verbatim from §4.2): chooseNextEvent() compares
// the current date with the next period — if now + cost crosses the next
// replenishment, the Timed budget becomes remaining + full capacity. The
// `strict_capacity` parameter additionally requires the span until the
// boundary to fit in the remaining capacity (see DESIGN.md §5.4).
#pragma once

#include "core/servable_async_event.h"
#include "core/task_server.h"
#include "rtsj/async_event.h"

namespace tsf::core {

class DeferrableTaskServer : public TaskServer {
 public:
  DeferrableTaskServer(rtsj::vm::VirtualMachine& machine,
                       TaskServerParameters params);

  void start() override;

  rtsj::AbsoluteTime next_replenish() const { return next_replenish_; }
  bool serving() const { return serving_; }

  // Deferred execution makes the DS worse than a periodic task for the
  // periodic-task analysis: back-to-back interference, modelled as a
  // periodic task with release jitter T - C (Strosnider et al., the
  // "modified feasibility analysis" of §2.2).
  rtsj::RelativeTime interference(rtsj::RelativeTime window) const override;

 private:
  void on_release(const Request& request) override;
  void serve();
  void arm_replenish_timer(rtsj::AbsoluteTime at);
  void on_replenish();

  rtsj::AsyncEvent wake_up_;
  rtsj::AsyncEventHandler wake_handler_;
  bool serving_ = false;
  rtsj::AbsoluteTime last_replenish_;
  rtsj::AbsoluteTime next_replenish_;
};

}  // namespace tsf::core
