#include "core/sporadic_task_server.h"

namespace tsf::core {

SporadicTaskServer::SporadicTaskServer(rtsj::vm::VirtualMachine& machine,
                                       TaskServerParameters params)
    : TaskServer(machine, std::move(params)),
      wake_up_(machine, params_.name() + ".wakeUp"),
      wake_handler_(
          machine, params_.name(),
          rtsj::PriorityParameters(priority()),
          [this](rtsj::AsyncEventHandler&) { serve(); }) {
  wake_up_.add_handler(&wake_handler_);
}

void SporadicTaskServer::start() {
  remaining_ = params_.capacity();
  ++activations_;
}

void SporadicTaskServer::on_release(const Request& request) {
  (void)request;
  if (!serving_) wake_up_.fire();
}

void SporadicTaskServer::serve() {
  serving_ = true;
  if (!params_.poll_overhead().is_zero()) vm_.work(params_.poll_overhead());
  // No batching here: SS replenishment is per-dispatch (the consumed amount
  // returns one period after each burst began), so grouping dispatches
  // would change the replenishment schedule itself — batch_limit is
  // documented as inapplicable to the sporadic policy.
  for (;;) {
    const auto fits = [this](rtsj::RelativeTime cost) {
      return cost + params_.admission_margin() <= remaining_;
    };
    auto request = queue_->pop_fitting(fits);
    if (!request) break;

    const rtsj::AbsoluteTime t0 = vm_.now();
    const DispatchResult r = dispatch(*request, remaining_);
    const rtsj::RelativeTime consumed = common::min(r.elapsed, remaining_);
    remaining_ -= consumed;
    vm_.trace().record(vm_.now(), common::TraceKind::kCapacity,
                          params_.name(), remaining_.count());
    // SS replenishment: the consumed amount returns one period after the
    // burst began.
    vm_.schedule_timer(t0 + params_.period(), [this, consumed] {
      remaining_ = common::min(remaining_ + consumed, params_.capacity());
      ++replenishments_;
      ++activations_;
      vm_.trace().record(vm_.now(), common::TraceKind::kReplenish,
                            params_.name(), remaining_.count());
      if (!serving_ && !queue_->empty()) wake_up_.fire();
    });
  }
  serving_ = false;
}

}  // namespace tsf::core
