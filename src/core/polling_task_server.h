// PollingTaskServer — paper §4.1.
//
// "Our class PollingTaskServer encapsulates a RealtimeThread with
// PeriodicParameters. ... At each periodic activation, a method
// chooseNextEvent() is called. ... While the chosen event is not null, it is
// executed (with the method doInterruptible() of Timed), the capacity is
// decreased and the chooseNextEvent() method is called again."
//
// Implementation constraints reproduced from the paper:
//  - a handler is dispatched only if its declared cost fits the remaining
//    capacity (Java threads cannot be suspended/resumed);
//  - the Timed budget is the whole remaining capacity, so a handler gets
//    whatever slack the capacity still holds before being interrupted
//    (scenario 3 / §6.2.2);
//  - unspent capacity is lost as soon as no pending event fits (polling).
#pragma once

#include <optional>

#include "core/task_server.h"
#include "rtsj/realtime_thread.h"

namespace tsf::core {

class PollingTaskServer : public TaskServer {
 public:
  PollingTaskServer(rtsj::vm::VirtualMachine& machine,
                    TaskServerParameters params);

  void start() override;

  rtsj::RealtimeThread& thread() { return thread_; }
  // Index of the next activation (for the §7 response-time predictor).
  std::int64_t next_activation_index() const { return next_activation_; }
  rtsj::AbsoluteTime activation_time(std::int64_t index) const {
    return params_.start() + params_.period() * index;
  }
  const PendingQueue& queue() const { return *queue_; }

 private:
  void on_release(const Request& request) override;
  void run(rtsj::RealtimeThread& thread);

  rtsj::RealtimeThread thread_;
  std::int64_t next_activation_ = 0;
};

}  // namespace tsf::core
