// BackgroundServer — the baseline the paper's §2 opens with: "The easiest
// way to achieve this is to schedule all non-periodic tasks at a lower
// priority. If it is very simple to implement, it does not offer satisfying
// response times for non-periodic tasks, especially if the periodic traffic
// is important."
//
// No capacity, no budget, no interruption: pending handlers run whenever no
// higher-priority (periodic) work wants the processor. Construct it with the
// lowest priority in the system.
#pragma once

#include "core/task_server.h"
#include "rtsj/async_event.h"

namespace tsf::core {

class BackgroundServer : public TaskServer {
 public:
  BackgroundServer(rtsj::vm::VirtualMachine& machine,
                   TaskServerParameters params);

  void start() override;

  // Runs below everything else, so it interferes with nothing.
  rtsj::RelativeTime interference(rtsj::RelativeTime window) const override {
    (void)window;
    return rtsj::RelativeTime::zero();
  }

 private:
  void on_release(const Request& request) override;
  void serve();

  rtsj::AsyncEvent wake_up_;
  rtsj::AsyncEventHandler wake_handler_;
  bool serving_ = false;
};

}  // namespace tsf::core
