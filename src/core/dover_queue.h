// D-over as a pending-queue discipline — Koren & Shasha's optimal on-line
// overload scheduler (the discipline seeded in src/sim/dover.cc, lifted here
// into the execution path as a PendingQueue the TaskServer can run).
//
// The queue maintains a *privileged set*: entries that passed a
// processor-demand feasibility test at admission and are guaranteed (up to
// the server-bandwidth approximation below) to meet their deadlines. A new
// release is admitted iff the privileged set stays feasible with it;
// otherwise it waits. When a waiting entry's latest start time (LST) expires
// it either *takes over* — if its value exceeds (1 + sqrt(k)) times the
// total privileged value, the whole privileged set is demoted and the
// challenger admitted, k being the importance ratio of value densities —
// or it is shed, never to be dispatched. This gives D-over's
// 1/(1+sqrt(k))^2 competitive bound on accrued value.
//
// The feasibility test runs in *server time*: a request of cost c occupies
// roughly c * period/capacity of wall-clock time on a bandwidth-limited
// server, so demands are scaled by that ratio (integer arithmetic, rounded
// up). Entries with a zero relative deadline are soft: always admitted
// (they never constrain the test — an infinite deadline cannot be missed)
// and never shed.
//
// Admission, demotion and shedding are reported through callbacks so the
// owning TaskServer can emit the kAdmit/kDemote/kShed trace records and the
// exactly-once ledger entries the invariant checker reconciles
// (FORBIDDEN_BEHAVIOR_CATALOG.md).
#pragma once

#include <functional>
#include <string>

#include "core/pending_queue.h"

namespace tsf::core {

class DOverQueue : public PendingQueue {
 public:
  struct JobMeta {
    double value = 0.0;
    // Zero = soft (no deadline).
    rtsj::RelativeTime relative_deadline = rtsj::RelativeTime::zero();
  };

  struct Config {
    // k: max/min ratio of value densities across the job set (>= 1).
    double importance_ratio = 1.0;
    // Server-time scaling: serving cost c takes ~ c * num/den wall-clock
    // (num = server period ticks, den = server capacity ticks).
    std::int64_t bandwidth_num = 1;
    std::int64_t bandwidth_den = 1;
    std::function<rtsj::AbsoluteTime()> now;
    std::function<JobMeta(const Request&)> meta;
    // takeover = admitted by demoting the privileged set.
    std::function<void(const Request&, bool takeover)> on_admit;
    std::function<void(const Request&)> on_demote;
    // reason: "lst" (waiting entry expired, lost the takeover test) or
    // "missed-lst" (privileged entry could no longer make its deadline).
    std::function<void(const Request&, const std::string& reason)> on_shed;
  };

  explicit DOverQueue(Config config);

  TSF_REALTIME
  void push(Request r) override;
  // Earliest-deadline privileged entry that satisfies `fits` (EDF with
  // first-fit skipping, mirroring the paper's chooseNextEvent adaptation).
  TSF_REALTIME
  std::optional<Request> pop_fitting(const FitsFn& fits) override;
  bool empty() const override { return entries_.empty(); }
  std::size_t size() const override { return entries_.size(); }
  TSF_BARRIER_ONLY
  std::vector<Request> drain() override;
  TSF_BARRIER_ONLY
  std::optional<Request> steal(const StealEligibleFn& eligible,
                               const StealBeforeFn& before) override;
  void visit(const std::function<void(const Request&)>& fn) const override;

  std::size_t privileged_count() const;

 private:
  struct Entry {
    Request request;
    rtsj::AbsoluteTime deadline;  // never() = soft
    double value = 0.0;
    bool privileged = false;
    // The LST takeover test fires at most once per entry; an entry demoted
    // after its takeover is shed at its next critical instant.
    bool lst_fired = false;
  };

  // Wall-clock service-time upper bound for a declared cost.
  rtsj::RelativeTime scaled(rtsj::RelativeTime cost) const;
  rtsj::AbsoluteTime latest_start(const Entry& e) const;
  // Would the privileged set stay feasible with `candidate` added?
  bool feasible_with(const Entry& candidate,
                     rtsj::AbsoluteTime now) const;
  // Admission / takeover / shedding sweep at the current instant.
  void reconcile();

  Config config_;
  double takeover_factor_ = 2.0;  // 1 + sqrt(k)
  std::vector<Entry> entries_;    // arrival order
};

}  // namespace tsf::core
