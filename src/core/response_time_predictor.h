// On-line response-time prediction and admission — paper §7, equation (5).
//
// With the list-of-lists pending queue, the position a new release would
// take is a (bucket index, cumulative-cost-before) pair available in O(1)
// amortised time, and the implemented Polling Server's response time is
//
//     Ra = (Ia * Ts + Cpa + Ca) - ra                         (eq. 5)
//
// where Ia is the absolute index of the serving instance, Cpa the cumulative
// cost of earlier handlers in the same instance, Ca the declared cost and ra
// the release instant. This enables constant-time admission control — and
// cancellation of releases that cannot meet their deadline.
#pragma once

#include <optional>

#include "core/polling_task_server.h"

namespace tsf::core {

class ResponseTimePredictor {
 public:
  // The server must use QueueDiscipline::kListOfLists; the predictor reads
  // the queue's placement structures without modifying them.
  explicit ResponseTimePredictor(const PollingTaskServer& server);

  // Response time of a request with the given declared cost, were it
  // released at the current virtual time. nullopt if the cost exceeds the
  // server capacity (never servable, §4's first constraint).
  std::optional<rtsj::RelativeTime> predict(
      rtsj::RelativeTime declared_cost) const;

  // Constant-time admission test against a relative deadline.
  bool admissible(rtsj::RelativeTime declared_cost,
                  rtsj::RelativeTime relative_deadline) const;

 private:
  const PollingTaskServer& server_;
  const ListOfListsQueue& queue_;
};

}  // namespace tsf::core
