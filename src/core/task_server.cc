#include "core/task_server.h"

#include "common/diag.h"

namespace tsf::core {

TaskServer::TaskServer(rtsj::vm::VirtualMachine& machine,
                       TaskServerParameters params)
    : vm_(machine), params_(std::move(params)) {
  TSF_ASSERT(params_.capacity() > rtsj::RelativeTime::zero(),
             "server " << params_.name() << " needs a positive capacity");
  TSF_ASSERT(params_.period() >= params_.capacity(),
             "server " << params_.name() << " capacity exceeds its period");
  queue_ = PendingQueue::make(params_.queue_discipline(), params_.capacity());
  remaining_ = params_.capacity();
}

void TaskServer::servable_event_released(
    ServableAsyncEventHandler* handler) {
  servable_event_released(handler, vm_.now());
}

void TaskServer::servable_event_released(ServableAsyncEventHandler* handler,
                                         rtsj::AbsoluteTime release) {
  TSF_ASSERT(handler != nullptr, "null handler released");
  Request r;
  r.handler = handler;
  r.release = release;
  r.seq = next_seq_++;
  ++released_;
  released_cost_ += handler->cost();
  vm_.trace().record(vm_.now(), common::TraceKind::kRelease,
                        handler->name());
  queue_->push(r);
  on_release(r);
}

std::optional<Request> TaskServer::steal_pending_request(
    const StealEligibleFn& eligible, const StealBeforeFn& before) {
  // A release landing exactly on the current instant is still mid-bind: at
  // an epoch boundary the fabric drain (or a boundary-coincident timer)
  // just pushed it and the home server's wake-up is still in flight, so the
  // stealer must not take it out from under that wake-up. Strictly earlier
  // releases only.
  const rtsj::AbsoluteTime now = vm_.now();
  return queue_->steal(
      [&](const Request& r) { return r.release < now && eligible(r); },
      before);
}

TaskServer::DispatchResult TaskServer::dispatch(const Request& request,
                                                rtsj::RelativeTime budget) {
  ++dispatches_;
  if (!params_.dispatch_overhead().is_zero()) {
    vm_.work(params_.dispatch_overhead());
  }
  // Attribute the service window to the handler so traces and figures show
  // h1/h2 execution the way the paper draws them.
  vm_.set_label(request.handler->name());
  const rtsj::AbsoluteTime t0 = vm_.now();

  rtsj::Timed timed(vm_, budget);
  rtsj::InterruptibleFn body(
      [&](rtsj::Timed& t) { request.handler->run_logic(t); });
  const bool completed = timed.do_interruptible(body);

  const rtsj::AbsoluteTime t1 = vm_.now();
  vm_.set_label(params_.name());

  model::JobOutcome out;
  out.name = request.handler->name();
  out.release = request.release;
  out.cost = request.handler->cost();
  out.start = t0;
  if (completed) {
    out.served = true;
    out.completion = t1;
    ++served_;
  } else {
    out.interrupted = true;
    ++interrupted_;
    vm_.trace().record(t1, common::TraceKind::kAbort,
                          request.handler->name());
  }
  outcomes_.push_back(out);

  DispatchResult result;
  result.elapsed = t1 - t0;
  result.served = completed;
  return result;
}

std::vector<model::JobOutcome> TaskServer::final_outcomes() {
  std::vector<model::JobOutcome> out = outcomes_;
  for (const Request& r : queue_->drain()) {
    model::JobOutcome o;
    o.name = r.handler->name();
    o.release = r.release;
    o.cost = r.handler->cost();
    o.served = false;
    out.push_back(o);
  }
  return out;
}

rtsj::RelativeTime TaskServer::interference(rtsj::RelativeTime window) const {
  if (window <= rtsj::RelativeTime::zero()) return rtsj::RelativeTime::zero();
  const std::int64_t releases =
      (window.count() + params_.period().count() - 1) /
      params_.period().count();
  return params_.capacity() * releases;
}

}  // namespace tsf::core
