#include "core/task_server.h"

#include "common/diag.h"

namespace tsf::core {

TaskServer::TaskServer(rtsj::vm::VirtualMachine& machine,
                       TaskServerParameters params)
    : vm_(machine), params_(std::move(params)) {
  TSF_ASSERT(params_.capacity() > rtsj::RelativeTime::zero(),
             "server " << params_.name() << " needs a positive capacity");
  TSF_ASSERT(params_.period() >= params_.capacity(),
             "server " << params_.name() << " capacity exceeds its period");
  queue_ = PendingQueue::make(params_.queue_discipline(), params_.capacity(),
                              &arena_);
  remaining_ = params_.capacity();
  batch_.reserve(static_cast<std::size_t>(params_.batch_limit()));
}

void TaskServer::reserve(std::size_t expected_requests) {
  outcomes_.reserve(expected_requests);
}

void TaskServer::servable_event_released(
    ServableAsyncEventHandler* handler) {
  servable_event_released(handler, vm_.now());
}

void TaskServer::servable_event_released(ServableAsyncEventHandler* handler,
                                         rtsj::AbsoluteTime release) {
  TSF_ASSERT(handler != nullptr, "null handler released");
  Request r;
  r.handler = handler;
  r.release = release;
  r.seq = next_seq_++;
  ++released_;
  released_cost_ += handler->cost();
  vm_.trace().record(vm_.now(), common::TraceKind::kRelease,
                        handler->name());
  queue_->push(r);
  on_release(r);
}

void TaskServer::enable_dover(DOverParams dover) {
  TSF_ASSERT(queue_->empty(), "enable_dover on server " << params_.name()
                                  << " after requests were queued");
  TSF_ASSERT(dover.meta, "enable_dover needs a job-meta callback");
  DOverQueue::Config config;
  config.importance_ratio = dover.importance_ratio;
  // Serving cost c on a bandwidth-limited server takes ~ c * period/capacity
  // of wall-clock virtual time — the scale of the feasibility test.
  config.bandwidth_num = params_.period().count();
  config.bandwidth_den = params_.capacity().count();
  config.now = [this] { return vm_.now(); };
  config.meta = std::move(dover.meta);
  config.on_admit = [this](const Request& r, bool takeover) {
    vm_.trace().record(vm_.now(), common::TraceKind::kAdmit,
                       r.handler->name(), r.release.ticks(),
                       takeover ? std::string_view{"takeover"}
                                : std::string_view{});
    if (takeover) {
      model::ShedEvent ev;
      ev.kind = model::ShedEvent::Kind::kTakeover;
      ev.job = r.handler->name();
      ev.release = r.release;
      ev.at = vm_.now();
      ev.reason = "takeover";
      shed_events_.push_back(std::move(ev));
    }
  };
  config.on_demote = [this](const Request& r) {
    vm_.trace().record(vm_.now(), common::TraceKind::kDemote,
                       r.handler->name(), r.release.ticks());
  };
  config.on_shed = [this](const Request& r, const std::string& reason) {
    record_shed(r, reason);
  };
  queue_ = std::make_unique<DOverQueue>(std::move(config));
  dover_enabled_ = true;
}

void TaskServer::record_shed(const Request& request,
                             const std::string& reason) {
  ++shed_count_;
  model::JobOutcome out;
  out.name = request.handler->name();
  out.release = request.release;
  out.cost = request.handler->cost();
  out.shed = true;
  outcomes_.push_back(std::move(out));
  vm_.trace().record(vm_.now(), common::TraceKind::kShed,
                     request.handler->name(), request.release.ticks(),
                     reason);
  model::ShedEvent ev;
  ev.kind = model::ShedEvent::Kind::kShed;
  ev.job = request.handler->name();
  ev.release = request.release;
  ev.at = vm_.now();
  ev.reason = reason;
  shed_events_.push_back(std::move(ev));
}

bool TaskServer::shed_pending_request(const std::string& job,
                                      rtsj::AbsoluteTime release) {
  // The same mid-bind guard as stealing: a request released at this very
  // boundary instant still has its server wake-up in flight.
  const rtsj::AbsoluteTime now = vm_.now();
  std::optional<Request> taken = queue_->steal(
      [&](const Request& r) {
        return r.release < now && r.release == release &&
               r.handler->name() == job;
      },
      [](const Request&, const Request&) { return false; });
  if (!taken.has_value()) return false;
  record_shed(*taken, "overload");
  return true;
}

std::optional<Request> TaskServer::steal_pending_request(
    const StealEligibleFn& eligible, const StealBeforeFn& before) {
  // A release landing exactly on the current instant is still mid-bind: at
  // an epoch boundary the fabric drain (or a boundary-coincident timer)
  // just pushed it and the home server's wake-up is still in flight, so the
  // stealer must not take it out from under that wake-up. Strictly earlier
  // releases only.
  const rtsj::AbsoluteTime now = vm_.now();
  return queue_->steal(
      [&](const Request& r) { return r.release < now && eligible(r); },
      before);
}

TaskServer::DispatchResult TaskServer::dispatch(const Request& request,
                                                rtsj::RelativeTime budget) {
  ++dispatches_;
  if (!params_.dispatch_overhead().is_zero()) {
    vm_.work(params_.dispatch_overhead());
  }
  // Attribute the service window to the handler so traces and figures show
  // h1/h2 execution the way the paper draws them.
  vm_.set_label(request.handler->name());
  const rtsj::AbsoluteTime t0 = vm_.now();

  rtsj::Timed timed(vm_, budget);
  rtsj::InterruptibleFn body(
      [&](rtsj::Timed& t) { request.handler->run_logic(t); });
  const bool completed = timed.do_interruptible(body);

  const rtsj::AbsoluteTime t1 = vm_.now();
  vm_.set_label(params_.name());

  model::JobOutcome out;
  out.name = request.handler->name();
  out.release = request.release;
  out.cost = request.handler->cost();
  out.start = t0;
  // Completion records carry the release instant so the invariant checker
  // can match a dispatch back to the exact (job, release) it served. Both
  // land after set_label restored the server label, so busy_intervals sees
  // the job's window already closed and ignores them.
  if (completed) {
    out.served = true;
    out.completion = t1;
    ++served_;
    vm_.trace().record(t1, common::TraceKind::kComplete,
                       request.handler->name(), request.release.ticks());
  } else {
    out.interrupted = true;
    ++interrupted_;
    vm_.trace().record(t1, common::TraceKind::kAbort,
                       request.handler->name(), request.release.ticks());
  }
  outcomes_.push_back(out);

  DispatchResult result;
  result.elapsed = t1 - t0;
  result.served = completed;
  return result;
}

std::size_t TaskServer::collect_batch(const FitsFn& head_fits,
                                      const BatchFitsFn& follow_fits) {
  batch_.clear();
  const std::size_t limit = static_cast<std::size_t>(params_.batch_limit());
  rtsj::RelativeTime planned = rtsj::RelativeTime::zero();
  while (batch_.size() < limit) {
    std::optional<Request> r =
        batch_.empty()
            ? queue_->pop_fitting(head_fits)
            : queue_->pop_fitting([&](rtsj::RelativeTime cost) {
                return follow_fits(cost, planned);
              });
    if (!r.has_value()) break;
    planned += r->handler->cost();
    batch_.push_back(std::move(*r));
  }
  return batch_.size();
}

TaskServer::DispatchResult TaskServer::dispatch_batch(
    std::size_t count, rtsj::RelativeTime budget) {
  TSF_ASSERT(count >= 1 && count <= batch_.size(),
             "dispatch_batch of " << count << " with " << batch_.size()
                                  << " collected");
  // One collected request is exactly the classic path — same call sequence,
  // same trace, so batch = 1 keeps today's fingerprints bit-for-bit.
  if (count == 1) return dispatch(batch_[0], budget);

  ++dispatches_;
  if (!params_.dispatch_overhead().is_zero()) {
    vm_.work(params_.dispatch_overhead());
  }
  const rtsj::AbsoluteTime batch_t0 = vm_.now();
  std::size_t started = 0;    // members whose label window opened
  std::size_t completed = 0;  // members whose body ran to the end
  rtsj::AbsoluteTime member_t0 = batch_t0;

  rtsj::Timed timed(vm_, budget);
  rtsj::InterruptibleFn body([&](rtsj::Timed& t) {
    for (std::size_t i = 0; i < count; ++i) {
      const Request& r = batch_[i];
      vm_.set_label(r.handler->name());
      member_t0 = vm_.now();
      started = i + 1;
      r.handler->run_logic(t);
      const rtsj::AbsoluteTime t1 = vm_.now();
      vm_.set_label(params_.name());
      model::JobOutcome out;
      out.name = r.handler->name();
      out.release = r.release;
      out.cost = r.handler->cost();
      out.start = member_t0;
      out.served = true;
      out.completion = t1;
      ++served_;
      // At the member's true instant, after its label window closed — the
      // same ordering dispatch() produces.
      vm_.trace().record(t1, common::TraceKind::kComplete,
                         r.handler->name(), r.release.ticks());
      outcomes_.push_back(std::move(out));
      completed = i + 1;
    }
  });
  const bool all = timed.do_interruptible(body);
  const rtsj::AbsoluteTime t_end = vm_.now();
  vm_.set_label(params_.name());

  if (!all) {
    // The member that was running when the budget expired.
    TSF_ASSERT(started == completed + 1, "interrupted batch bookkeeping");
    const Request& r = batch_[completed];
    model::JobOutcome out;
    out.name = r.handler->name();
    out.release = r.release;
    out.cost = r.handler->cost();
    out.start = member_t0;
    out.interrupted = true;
    ++interrupted_;
    vm_.trace().record(t_end, common::TraceKind::kAbort,
                       r.handler->name(), r.release.ticks());
    outcomes_.push_back(std::move(out));
    // The unstarted tail never began service: back to the front of the
    // queue, reverse order restoring the original sequence. Exactly-once
    // ledgers are untouched — these requests were neither served nor shed.
    for (std::size_t i = count; i > started; --i) {
      queue_->requeue(std::move(batch_[i - 1]));
    }
  }

  DispatchResult result;
  result.elapsed = t_end - batch_t0;
  result.served = all;
  return result;
}

std::vector<model::JobOutcome> TaskServer::final_outcomes() {
  std::vector<model::JobOutcome> out = outcomes_;
  for (const Request& r : queue_->drain()) {
    model::JobOutcome o;
    o.name = r.handler->name();
    o.release = r.release;
    o.cost = r.handler->cost();
    o.served = false;
    out.push_back(o);
  }
  return out;
}

rtsj::RelativeTime TaskServer::interference(rtsj::RelativeTime window) const {
  if (window <= rtsj::RelativeTime::zero()) return rtsj::RelativeTime::zero();
  const std::int64_t releases =
      (window.count() + params_.period().count() - 1) /
      params_.period().count();
  return params_.capacity() * releases;
}

}  // namespace tsf::core
