// ServableAsyncEvent (SAE) — paper §3.
//
// "This AsyncEvent subclass represents a servable event. Like a normal AE,
// a SAE can be bound to one or several standard handlers ... We overload
// [addHandler] with the method addHandler(ServableAsyncEventHandler) and we
// redefine the method fire()": firing releases the plain AsyncEventHandlers
// as usual *and* registers each bound SAEH with its task server.
#pragma once

#include <vector>

#include "core/servable_async_event_handler.h"
#include "rtsj/async_event.h"

namespace tsf::core {

class ServableAsyncEvent : public rtsj::AsyncEvent {
 public:
  using rtsj::AsyncEvent::AsyncEvent;

  using rtsj::AsyncEvent::add_handler;  // keep the AEH overload visible
  void add_handler(ServableAsyncEventHandler* handler);
  void remove_handler(ServableAsyncEventHandler* handler);

  void fire() override;

 private:
  std::vector<ServableAsyncEventHandler*> servable_handlers_;
};

}  // namespace tsf::core
