#include "core/polling_task_server.h"

namespace tsf::core {

PollingTaskServer::PollingTaskServer(rtsj::vm::VirtualMachine& machine,
                                     TaskServerParameters params)
    : TaskServer(machine, std::move(params)),
      thread_(machine, params_.name(), rtsj::PriorityParameters(priority()),
              rtsj::PeriodicParameters(params_.start(), params_.period(),
                                       params_.capacity()),
              [this](rtsj::RealtimeThread& t) { run(t); }) {}

void PollingTaskServer::start() { thread_.start(); }

void PollingTaskServer::on_release(const Request& request) {
  // Polling: nothing happens until the next periodic activation.
  (void)request;
}

void PollingTaskServer::run(rtsj::RealtimeThread& thread) {
  for (;;) {
    // ---- periodic activation: full capacity ----
    ++activations_;
    ++next_activation_;
    remaining_ = params_.capacity();
    vm_.trace().record(vm_.now(), common::TraceKind::kReplenish,
                          params_.name(), remaining_.count());
    if (!params_.poll_overhead().is_zero()) vm_.work(params_.poll_overhead());
    queue_->begin_instance();

    // §7's interruption-avoidance margin keeps headroom between the
    // declared cost and the budget (zero by default). Followers of a batch
    // see the burst's cumulative declared cost, so a group obeys exactly
    // the rule each member would alone.
    const auto fits = [this](rtsj::RelativeTime declared_cost) {
      return declared_cost + params_.admission_margin() <= remaining_;
    };
    const auto follow_fits = [this](rtsj::RelativeTime declared_cost,
                                    rtsj::RelativeTime planned) {
      return planned + declared_cost + params_.admission_margin() <=
             remaining_;
    };
    while (const std::size_t n = collect_batch(fits, follow_fits)) {
      // The Timed budget is the remaining capacity: the burst may overrun
      // its declared cost up to the capacity's slack before the AIE fires.
      const DispatchResult r = dispatch_batch(n, remaining_);
      remaining_ = common::max(remaining_ - r.elapsed,
                               rtsj::RelativeTime::zero());
      vm_.trace().record(vm_.now(), common::TraceKind::kCapacity,
                            params_.name(), remaining_.count());
    }
    // Polling policy: whatever capacity is left is lost until the next
    // activation.
    remaining_ = rtsj::RelativeTime::zero();
    thread.wait_for_next_period();
  }
}

}  // namespace tsf::core
