// SporadicTaskServer — the Sporadic Server policy (Sprunt, Sha & Lehoczky
// 1989), cited in the paper's §2 survey. Extension beyond the paper's two
// implemented policies.
//
// Event-driven like the Deferrable Server, but replenishment is *amount
// based*: capacity consumed from the start of a service burst is returned
// one period after that burst began. This removes the DS's back-to-back
// effect, so the SS counts as a plain periodic task in the feasibility
// analysis while matching the DS's responsiveness.
//
// Simplification (documented): replenishments are scheduled per dispatch
// (amount = wall-clock time consumed by that dispatch, at dispatch start +
// period) rather than per busy interval. This is the common textbook
// simplification; it is never more aggressive than the exact SS rule.
#pragma once

#include "core/task_server.h"
#include "rtsj/async_event.h"

namespace tsf::core {

class SporadicTaskServer : public TaskServer {
 public:
  SporadicTaskServer(rtsj::vm::VirtualMachine& machine,
                     TaskServerParameters params);

  void start() override;

  std::uint64_t replenishment_count() const { return replenishments_; }

 private:
  void on_release(const Request& request) override;
  void serve();

  rtsj::AsyncEvent wake_up_;
  rtsj::AsyncEventHandler wake_handler_;
  bool serving_ = false;
  std::uint64_t replenishments_ = 0;
};

}  // namespace tsf::core
