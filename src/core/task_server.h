// TaskServer — the abstract server of the paper's framework (§3).
//
// "This abstract class represents a task server. It implements Schedulable
// and extends Scheduler. It is a schedulable object since it is in fact a
// periodic real-time thread and it is a scheduler since it has to schedule
// SAEHs. It has a method servableEventReleased() which ... is called by the
// AE fire() method."
//
// Concrete policies (PollingTaskServer, DeferrableTaskServer, and the
// extension servers) differ in *when* they serve and *how* capacity is
// replenished; the shared machinery here covers the pending queue, the
// Timed-bounded dispatch with wall-clock capacity accounting, per-request
// outcome records, and the feasibility interface (including the paper's
// getInterference() proposal).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "core/dover_queue.h"
#include "core/pending_queue.h"
#include "core/servable_async_event_handler.h"
#include "core/task_server_parameters.h"
#include "model/run_result.h"
#include "model/spec.h"
#include "rtsj/schedulable.h"
#include "rtsj/vm/vm.h"

namespace tsf::core {

class TaskServer : public rtsj::Schedulable, public rtsj::Scheduler {
 public:
  TaskServer(rtsj::vm::VirtualMachine& machine, TaskServerParameters params);
  ~TaskServer() override = default;

  // Begins the server's activity (thread / timers). Call before run_until.
  virtual void start() = 0;

  // Called by ServableAsyncEvent::fire() for each bound servable handler.
  // Release is the hot path: it runs at every event fire, inside the fiber
  // quantum, and must neither block nor allocate past the reserve() mark.
  // (Annotations merge across overloads of the same name.)
  TSF_WORKER_PHASE TSF_REALTIME
  void servable_event_released(ServableAsyncEventHandler* handler);
  // Same, but the request carries an explicit release instant instead of
  // the VM clock — the delivery half of cross-core pool dispatch / work
  // stealing, where the job's true release happened elsewhere (or earlier).
  void servable_event_released(ServableAsyncEventHandler* handler,
                               rtsj::AbsoluteTime release);

  // The victim half of the semi-partitioned work stealer: removes the
  // pending request `before` ranks first among the `eligible` ones. Only
  // queued (never running) requests can be taken; the caller re-creates the
  // job on the thief core. Returns nullopt when nothing is eligible.
  //
  // Requests whose release coincides with the current VM instant are never
  // eligible: at a lock-step epoch boundary such a request was bound into
  // the queue by this very boundary's fabric drain (or a timer firing at
  // it), and the server's own wake-up for it is still in flight — stealing
  // it mid-bind would leave the home core reacting to a request that no
  // longer exists. Only strictly earlier releases can be taken.
  TSF_BARRIER_ONLY
  std::optional<Request> steal_pending_request(const StealEligibleFn& eligible,
                                               const StealBeforeFn& before);

  // Read-only walk over the stealable queue (same reach as
  // steal_pending_request, including requests the mid-bind rule would
  // reject) — the online rebalancer snapshots pending work through this
  // before deciding what to move.
  void visit_pending(const std::function<void(const Request&)>& fn) const {
    queue_->visit(fn);
  }

  // Swaps the pending queue for the D-over overload discipline
  // (core/dover_queue.h): privileged-set admission on every release plus the
  // LST takeover rule, with kAdmit/kDemote/kShed trace records and the
  // exactly-once shed ledger emitted from here. `meta` maps a request to its
  // scheduling value and firm deadline. Call before start() and before any
  // release — the queue must still be empty.
  struct DOverParams {
    double importance_ratio = 1.0;  // k = dmax/dmin of value densities
    std::function<DOverQueue::JobMeta(const Request&)> meta;
  };
  void enable_dover(DOverParams dover);
  bool dover_enabled() const { return dover_enabled_; }

  // The utilization governor's shed hook (overload = shed): drops the
  // pending request matching (job, release) — removed from the queue,
  // outcome marked shed, kShed trace record and ledger event emitted with
  // reason "overload". Returns false when no such request is pending.
  TSF_BARRIER_ONLY
  bool shed_pending_request(const std::string& job,
                            rtsj::AbsoluteTime release);

  // Every overload decision taken on this server, in decision order — the
  // exactly-once ledger half the invariant checker reconciles.
  const std::vector<model::ShedEvent>& shed_events() const {
    return shed_events_;
  }
  std::uint64_t shed_count() const { return shed_count_; }

  const TaskServerParameters& params() const { return params_; }
  rtsj::RelativeTime remaining_capacity() const { return remaining_; }
  std::size_t pending_count() const { return queue_->size(); }
  // Cumulative declared cost of every request released so far — the load
  // signal the online rebalancer (mp/rebalance.h) samples at epoch
  // boundaries to measure this core's offered aperiodic utilization.
  rtsj::RelativeTime released_cost() const { return released_cost_; }

  // --- statistics / experiment extraction ---
  std::uint64_t released_count() const { return released_; }
  std::uint64_t served_count() const { return served_; }
  std::uint64_t interrupted_count() const { return interrupted_; }
  std::uint64_t activation_count() const { return activations_; }
  std::uint64_t dispatch_count() const { return dispatches_; }
  // Outcomes of all completed (served or interrupted) requests so far.
  const std::vector<model::JobOutcome>& outcomes() const { return outcomes_; }
  // outcomes() plus everything still pending, marked unserved. Destructive
  // on the queue; call once, after the run.
  std::vector<model::JobOutcome> final_outcomes();

  // --- Schedulable ---
  const std::string& name() const override { return params_.name(); }
  int priority() const override { return params_.priority(); }
  const rtsj::ReleaseParameters* release_parameters() const override {
    return &params_;
  }
  rtsj::RelativeTime deadline() const override { return params_.period(); }
  rtsj::RelativeTime cost() const override { return params_.capacity(); }
  // Default: periodic-task interference ceil(w/T)*C (exact for the Polling
  // Server, which "can be included in the feasibility analysis like any
  // periodic task", §2.1). Deferred policies override with their modified
  // bound — the point of the paper's getInterference() proposal.
  rtsj::RelativeTime interference(rtsj::RelativeTime window) const override;
  double utilization() const override {
    return params_.capacity().to_tu() / params_.period().to_tu();
  }

  // --- Scheduler --- (the server schedules its SAEHs; the queue is the
  // policy, so the server-as-scheduler is feasible iff its own analysis
  // holds, delegated to the owning PriorityScheduler in practice.)
  bool is_feasible() const override { return true; }

  rtsj::vm::VirtualMachine& machine() { return vm_; }
  const rtsj::vm::VirtualMachine& machine() const { return vm_; }

 public:
  // Pre-sizes the outcome ledgers for an expected request count so the
  // steady-state serve loop never grows a vector mid-run (the zero-alloc
  // contract the interposer test asserts). Optional; vectors still grow
  // past the reservation as usual.
  void reserve(std::size_t expected_requests);

 protected:
  struct DispatchResult {
    rtsj::RelativeTime elapsed = rtsj::RelativeTime::zero();
    bool served = false;
  };

  // Runs one request under Timed(budget) in the calling fiber (the server's
  // own thread), measuring elapsed wall-clock virtual time exactly the way
  // the paper's implementation does. Records the outcome.
  TSF_REALTIME
  DispatchResult dispatch(const Request& request, rtsj::RelativeTime budget);

  // Pops up to params_.batch_limit() requests into batch_: the head via
  // `head_fits` (the policy's full single-request rule), followers via
  // `follow_fits`, which sees the batch's cumulative declared cost so the
  // group as a whole still obeys the capacity rule. Returns batch_.size().
  using BatchFitsFn =
      common::FunctionRef<bool(rtsj::RelativeTime declared_cost,
                               rtsj::RelativeTime planned)>;
  TSF_REALTIME
  std::size_t collect_batch(const FitsFn& head_fits,
                            const BatchFitsFn& follow_fits);

  // Serves batch_[0..count) under ONE Timed(budget) section, charging
  // dispatch_overhead once for the whole burst — the §7 bind/dispatch
  // amortization. Each member gets its own label window, start/completion
  // instants and kComplete record, emitted at its true instant inside the
  // section. count == 1 is exactly dispatch(). If the section's budget
  // expires mid-batch, the running member is recorded interrupted and the
  // unstarted tail goes back to the front of the queue untouched.
  TSF_REALTIME
  DispatchResult dispatch_batch(std::size_t count, rtsj::RelativeTime budget);

  // Policy hook invoked on every release (after queueing). The Polling
  // Server ignores it; event-driven servers wake up.
  virtual void on_release(const Request& request) = 0;

  // Shared shed bookkeeping (dover callbacks + the governor hook): outcome,
  // trace record and ledger event, exactly once per dropped request.
  void record_shed(const Request& request, const std::string& reason);

  rtsj::vm::VirtualMachine& vm_;
  TaskServerParameters params_;
  // Backs the pending queue's request storage; declared before queue_ so
  // the queue (whose deques deallocate into it) dies first.
  common::Arena arena_;
  std::unique_ptr<PendingQueue> queue_;
  std::vector<Request> batch_;  // collect_batch scratch, reused per burst
  rtsj::RelativeTime remaining_ = rtsj::RelativeTime::zero();
  std::uint64_t released_ = 0;
  rtsj::RelativeTime released_cost_ = rtsj::RelativeTime::zero();
  std::uint64_t served_ = 0;
  std::uint64_t interrupted_ = 0;
  std::uint64_t activations_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<model::JobOutcome> outcomes_;
  bool dover_enabled_ = false;
  std::uint64_t shed_count_ = 0;
  std::vector<model::ShedEvent> shed_events_;
};

}  // namespace tsf::core
