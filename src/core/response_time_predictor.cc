#include "core/response_time_predictor.h"

#include "common/diag.h"

namespace tsf::core {

ResponseTimePredictor::ResponseTimePredictor(const PollingTaskServer& server)
    : server_(server),
      queue_(*[&]() -> const ListOfListsQueue* {
        const auto* q =
            dynamic_cast<const ListOfListsQueue*>(&server.queue());
        TSF_ASSERT(q != nullptr,
                   "ResponseTimePredictor requires the list-of-lists queue");
        return q;
      }()) {}

std::optional<rtsj::RelativeTime> ResponseTimePredictor::predict(
    rtsj::RelativeTime declared_cost) const {
  if (declared_cost > server_.params().capacity()) return std::nullopt;
  const auto placement = queue_.placement_for(declared_cost);
  // Bucket 0 is served at the next activation.
  const std::int64_t instance =
      server_.next_activation_index() + placement.instance_offset;
  const rtsj::AbsoluteTime served_from = server_.activation_time(instance);
  const rtsj::AbsoluteTime completion =
      served_from + placement.cumulative_before + declared_cost;
  return completion - server_.machine().now();
}

bool ResponseTimePredictor::admissible(
    rtsj::RelativeTime declared_cost,
    rtsj::RelativeTime relative_deadline) const {
  const auto r = predict(declared_cost);
  return r.has_value() && *r <= relative_deadline;
}

}  // namespace tsf::core
