#include "core/background_server.h"

namespace tsf::core {

BackgroundServer::BackgroundServer(rtsj::vm::VirtualMachine& machine,
                                   TaskServerParameters params)
    : TaskServer(machine, std::move(params)),
      wake_up_(machine, params_.name() + ".wakeUp"),
      wake_handler_(
          machine, params_.name(),
          rtsj::PriorityParameters(priority()),
          [this](rtsj::AsyncEventHandler&) { serve(); }) {
  wake_up_.add_handler(&wake_handler_);
}

void BackgroundServer::start() {
  // Nothing to arm: a background server is purely event-driven.
  remaining_ = params_.capacity();
}

void BackgroundServer::on_release(const Request& request) {
  (void)request;
  if (!serving_) wake_up_.fire();
}

void BackgroundServer::serve() {
  serving_ = true;
  const auto everything = [](rtsj::RelativeTime) { return true; };
  const auto follow = [](rtsj::RelativeTime, rtsj::RelativeTime) {
    return true;
  };
  while (const std::size_t n = collect_batch(everything, follow)) {
    // Unbounded budget: background execution is never interrupted, it is
    // merely preempted by every other task in the system. Batching still
    // pays off — the per-dispatch overhead is charged once per burst.
    dispatch_batch(n, rtsj::RelativeTime::infinite());
  }
  serving_ = false;
}

}  // namespace tsf::core
