#include "core/deferrable_task_server.h"

namespace tsf::core {

DeferrableTaskServer::DeferrableTaskServer(rtsj::vm::VirtualMachine& machine,
                                           TaskServerParameters params)
    : TaskServer(machine, std::move(params)),
      wake_up_(machine, params_.name() + ".wakeUp"),
      wake_handler_(
          machine, params_.name(),
          rtsj::PriorityParameters(priority()),
          [this](rtsj::AsyncEventHandler&) { serve(); }),
      last_replenish_(params_.start()),
      next_replenish_(params_.start() + params_.period()) {
  wake_up_.add_handler(&wake_handler_);
}

void DeferrableTaskServer::start() {
  remaining_ = params_.capacity();
  ++activations_;
  arm_replenish_timer(next_replenish_);
}

void DeferrableTaskServer::arm_replenish_timer(rtsj::AbsoluteTime at) {
  // A kernel timer, so each replenishment pays the timer-fire overhead just
  // like the real implementation's periodic timer.
  vm_.schedule_timer(at, [this] { on_replenish(); });
}

void DeferrableTaskServer::on_replenish() {
  // Full replenishment every period (§2.2: "It recovers its capacity every
  // period").
  remaining_ = params_.capacity();
  last_replenish_ = vm_.now();
  next_replenish_ = vm_.now() + params_.period();
  ++activations_;
  vm_.trace().record(vm_.now(), common::TraceKind::kReplenish,
                        params_.name(), remaining_.count());
  queue_->begin_instance();
  arm_replenish_timer(next_replenish_);
  if (!serving_ && !queue_->empty()) wake_up_.fire();
}

void DeferrableTaskServer::on_release(const Request& request) {
  (void)request;
  if (!serving_) wake_up_.fire();
}

void DeferrableTaskServer::serve() {
  serving_ = true;
  if (!params_.poll_overhead().is_zero()) vm_.work(params_.poll_overhead());
  for (;;) {
    const rtsj::AbsoluteTime now = vm_.now();
    // §4.2's chooseNextEvent: an event fits if it fits the remaining
    // capacity, or if its execution would span the next replenishment, in
    // which case the budget is remaining + full capacity.
    const auto budget_for = [&](rtsj::RelativeTime cost) {
      return (now + cost > next_replenish_)
                 ? remaining_ + params_.capacity()
                 : remaining_;
    };
    const auto fits = [&](rtsj::RelativeTime cost) {
      // §7's interruption-avoidance margin (zero by default).
      const rtsj::RelativeTime padded = cost + params_.admission_margin();
      if (padded <= remaining_) return true;
      // "activated as soon as an aperiodic event occurs (if it has enough
      // capacity)": with nothing left, the server is simply not eligible
      // until the replenishment.
      if (remaining_.is_zero()) return false;
      if (padded > budget_for(cost)) return false;
      if (params_.strict_capacity() && next_replenish_ - now > remaining_) {
        return false;
      }
      return true;
    };
    // Followers may only join a burst that stays strictly within the
    // remaining capacity — a boundary-spanning head (extended budget) is
    // always served solo, preserving §4.2's one-event spanning rule.
    const auto follow_fits = [&](rtsj::RelativeTime cost,
                                 rtsj::RelativeTime planned) {
      return planned + cost + params_.admission_margin() <= remaining_;
    };
    const std::size_t n = collect_batch(fits, follow_fits);
    if (n == 0) break;

    const rtsj::RelativeTime budget =
        n == 1 ? budget_for(batch_[0].handler->cost()) : remaining_;
    const rtsj::AbsoluteTime t0 = vm_.now();
    const DispatchResult r = dispatch_batch(n, budget);
    // Wall-clock capacity accounting across a possible replenishment: only
    // consumption after the most recent replenishment matters.
    if (last_replenish_ > t0) {
      remaining_ = common::max(
          params_.capacity() - (vm_.now() - last_replenish_),
          rtsj::RelativeTime::zero());
    } else {
      remaining_ =
          common::max(remaining_ - r.elapsed, rtsj::RelativeTime::zero());
    }
    vm_.trace().record(vm_.now(), common::TraceKind::kCapacity,
                          params_.name(), remaining_.count());
  }
  serving_ = false;
}

rtsj::RelativeTime DeferrableTaskServer::interference(
    rtsj::RelativeTime window) const {
  if (window <= rtsj::RelativeTime::zero()) return rtsj::RelativeTime::zero();
  // Periodic task with jitter J = T - C: ceil((w + J) / T) * C.
  const rtsj::RelativeTime jitter = params_.period() - params_.capacity();
  const std::int64_t releases =
      ((window + jitter).count() + params_.period().count() - 1) /
      params_.period().count();
  return params_.capacity() * releases;
}

}  // namespace tsf::core
