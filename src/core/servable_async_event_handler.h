// ServableAsyncEventHandler (SAEH) — paper §3.
//
// "This class does not extend AsyncEventHandler, nor implement Schedulable.
// It embodies the code which can be associated with an SAE. It can be bound
// with one or many SAE but associated with a unique TaskServer, and when one
// of the events it is bound with is released, it is added to the
// pending-events list of this server."
//
// The handler's logic executes *inside the server's thread*, under a Timed
// section; the declared cost is what the server's chooseNextEvent() checks
// against its remaining capacity.
#pragma once

#include <functional>
#include <string>

#include "rtsj/interruptible.h"
#include "rtsj/time.h"

namespace tsf::core {

class TaskServer;

class ServableAsyncEventHandler {
 public:
  // The handler body; call timed.work(...) for its CPU demand.
  using Logic = std::function<void(rtsj::Timed&)>;

  ServableAsyncEventHandler(std::string name, rtsj::RelativeTime declared_cost,
                            Logic logic)
      : name_(std::move(name)),
        declared_cost_(declared_cost),
        logic_(std::move(logic)) {}

  // Convenience: a handler whose body is a pure computation of `actual`
  // service time (the paper's scenario 3 uses actual > declared).
  static ServableAsyncEventHandler pure_work(std::string name,
                                             rtsj::RelativeTime declared_cost,
                                             rtsj::RelativeTime actual_cost) {
    return ServableAsyncEventHandler(
        std::move(name), declared_cost,
        [actual_cost](rtsj::Timed& timed) { timed.work(actual_cost); });
  }

  const std::string& name() const { return name_; }
  // Declared worst-case cost (the admission currency).
  rtsj::RelativeTime cost() const { return declared_cost_; }
  void set_cost(rtsj::RelativeTime c) { declared_cost_ = c; }

  // Unique server association (paper: "associated with a unique TaskServer").
  void set_server(TaskServer* server) { server_ = server; }
  TaskServer* server() const { return server_; }

  void run_logic(rtsj::Timed& timed) { logic_(timed); }

 private:
  std::string name_;
  rtsj::RelativeTime declared_cost_;
  Logic logic_;
  TaskServer* server_ = nullptr;
};

}  // namespace tsf::core
