// Streaming statistics used by the experiment harness and the benches.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tsf::common {

// Welford-style accumulator: numerically stable mean/variance plus extrema.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  // Mean of the added samples; 0 for an empty accumulator.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// A counted ratio (e.g. served events / released events). Distinguishes
// "no denominator" from a true zero.
class Ratio {
 public:
  void add(bool hit) {
    den_ += 1;
    num_ += hit ? 1 : 0;
  }
  void add(std::uint64_t num, std::uint64_t den) {
    num_ += num;
    den_ += den;
  }
  std::uint64_t numerator() const { return num_; }
  std::uint64_t denominator() const { return den_; }
  bool defined() const { return den_ != 0; }
  // Value in [0,1]; 0 when undefined.
  double value() const {
    return den_ == 0 ? 0.0
                     : static_cast<double>(num_) / static_cast<double>(den_);
  }

 private:
  std::uint64_t num_ = 0;
  std::uint64_t den_ = 0;
};

}  // namespace tsf::common
