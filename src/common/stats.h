// Streaming statistics used by the experiment harness and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsf::common {

// Welford-style accumulator: numerically stable mean/variance plus extrema.
// The sum is tracked exactly (Kahan-compensated) rather than reconstructed
// from the mean, so mixed-magnitude sequences don't lose mass to rounding.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  // Mean of the added samples; 0 for an empty accumulator.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_ + sum_c_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;    // Kahan-compensated running sum
  double sum_c_ = 0.0;  // compensation term
};

// Quantile estimation over a stream of samples.
//
// Exact while the sample count stays within `capacity`; beyond that it
// degrades to uniform reservoir sampling (Vitter's algorithm R) driven by a
// fixed-seed deterministic RNG, so results are reproducible run-to-run.
// capacity == 0 means "unbounded": keep everything, always exact.
class QuantileReservoir {
 public:
  explicit QuantileReservoir(std::size_t capacity = 0,
                             std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  void add(double x);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool exact() const { return count_ <= samples_.size() || capacity_ == 0; }

  // Nearest-rank quantile of the retained samples, q in [0,1]; 0 when empty.
  // Sorts on demand (cached until the next add).
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::size_t capacity_;
  std::uint64_t rng_state_;
  std::size_t count_ = 0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// A counted ratio (e.g. served events / released events). Distinguishes
// "no denominator" from a true zero.
class Ratio {
 public:
  void add(bool hit) {
    den_ += 1;
    num_ += hit ? 1 : 0;
  }
  void add(std::uint64_t num, std::uint64_t den) {
    num_ += num;
    den_ += den;
  }
  std::uint64_t numerator() const { return num_; }
  std::uint64_t denominator() const { return den_; }
  bool defined() const { return den_ != 0; }
  // Value in [0,1]; 0 when undefined.
  double value() const {
    return den_ == 0 ? 0.0
                     : static_cast<double>(num_) / static_cast<double>(den_);
  }

 private:
  std::uint64_t num_ = 0;
  std::uint64_t den_ = 0;
};

}  // namespace tsf::common
