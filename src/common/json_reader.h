// Minimal JSON parsing — the consuming half of common/json_writer.
//
// Exists so the bench-regression gate and the round-trip tests can read the
// documents this repo emits without an external dependency. It is a strict
// recursive-descent parser over the full JSON grammar (objects, arrays,
// strings with escapes, numbers, booleans, null); it is not meant to be
// fast or to handle adversarial depth (recursion is bounded by kMaxDepth).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tsf::common {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; asserting the type is the caller's job (they return
  // the zero value on mismatch so probing code stays short).
  bool as_bool() const { return type_ == Type::kBool && bool_; }
  double as_number() const { return type_ == Type::kNumber ? number_ : 0.0; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }

  // Object member by key; nullptr when absent or not an object. Duplicate
  // keys keep the last occurrence (matching common parsers).
  const JsonValue* find(std::string_view key) const;
  // Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses one complete JSON document (trailing whitespace allowed, trailing
// garbage is an error). On failure returns false and sets `error` to a
// message with the byte offset.
bool json_parse(std::string_view text, JsonValue* out, std::string* error);

}  // namespace tsf::common
