// The tolerance check behind tools/bench_gate.cc, extracted so it can be
// unit-tested (tests/common/gate_check_test.cc).
//
// A tracked metric regresses when it moves past the baseline in its bad
// direction by more than the tolerance. The margin is *relative* to the
// baseline magnitude — |baseline| * tolerance — so a negative baseline
// (e.g. a signed drift or delta cell) keeps a sane band instead of the
// degenerate one naive baseline * (1 ± tolerance) arithmetic produces
// (which flips the band to the wrong side of a negative baseline and
// rejects even current == baseline). A zero baseline has no magnitude to
// scale, so the tolerance becomes an absolute bound — in both directions:
// a lower-is-better metric that legitimately measures 0 (a latency cell on
// an idle path) may rise to at most +tolerance, and a higher-is-better
// zero baseline may fall to at most -tolerance.
#pragma once

#include <cmath>

namespace tsf::common {

struct GateVerdict {
  double limit = 0.0;    // the current value's last admissible value
  bool regressed = false;
};

inline GateVerdict gate_check(double baseline, double current,
                              double tolerance, bool higher_is_better) {
  const double margin =
      baseline == 0.0 ? tolerance : std::abs(baseline) * tolerance;
  GateVerdict v;
  if (higher_is_better) {
    v.limit = baseline - margin;
    v.regressed = current < v.limit;
  } else {
    v.limit = baseline + margin;
    v.regressed = current > v.limit;
  }
  return v;
}

}  // namespace tsf::common
