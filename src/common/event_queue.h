// A cancellable, deterministic event queue.
//
// Both engines (the discrete-event simulator and the RTSJ-style VM) pop timed
// callbacks from one of these. Ordering is total and deterministic: events
// fire by (time, insertion sequence), so two events scheduled for the same
// instant fire in the order they were scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace tsf::common {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Handles allow O(1) logical cancellation (lazy removal from the heap).
  class Handle {
   public:
    Handle() = default;
    // Cancelling an already-fired or empty handle is a no-op.
    void cancel() {
      if (auto e = entry_.lock()) e->cancelled = true;
    }
    bool active() const {
      auto e = entry_.lock();
      return e && !e->cancelled && !e->fired;
    }

   private:
    friend class EventQueue;
    struct Entry;
    explicit Handle(std::weak_ptr<Entry> e) : entry_(std::move(e)) {}
    std::weak_ptr<Entry> entry_;
  };

  Handle schedule(TimePoint at, Callback cb);

  // True when no live (non-cancelled) events remain.
  bool empty();

  // Time of the earliest live event; TimePoint::never() when empty.
  TimePoint next_time();

  // Pops the earliest live event and runs its callback. Must not be called
  // on an empty queue.
  void pop_and_run();

  std::size_t scheduled_count() const { return scheduled_count_; }

 private:
  struct Handle::Entry {
    TimePoint at;
    std::uint64_t seq = 0;
    Callback cb;
    bool cancelled = false;
    bool fired = false;
  };
  using Entry = Handle::Entry;

  struct Later {
    bool operator()(const std::shared_ptr<Entry>& a,
                    const std::shared_ptr<Entry>& b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  // Discards cancelled entries from the top of the heap.
  void purge();

  std::priority_queue<std::shared_ptr<Entry>,
                      std::vector<std::shared_ptr<Entry>>, Later>
      heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t scheduled_count_ = 0;
};

}  // namespace tsf::common
