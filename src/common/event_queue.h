// A cancellable, deterministic event queue.
//
// Both engines (the discrete-event simulator and the RTSJ-style VM) pop timed
// callbacks from one of these. Ordering is total and deterministic: events
// fire by (time, insertion sequence), so two events scheduled for the same
// instant fire in the order they were scheduled.
//
// Memory discipline: entries are pooled. A fired or purged entry goes back
// on a free list with its generation bumped (which inertly invalidates any
// outstanding Handle), so steady-state re-arming — the VM's replenishment
// timers, periodic releases — schedules onto recycled entries without
// touching the heap. Callbacks whose captures fit std::function's small-
// buffer optimization (a [this] lambda does) complete the zero-allocation
// path; the zero-alloc steady-state test holds the engines to it.
//
// Handles must not outlive the queue (entries are owned by the queue's
// pool; the engines destroy all schedulables before their queue).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/annotations.h"
#include "common/time.h"

namespace tsf::common {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Handles allow O(1) logical cancellation (lazy removal from the heap).
  // Generation-checked: a handle to a fired/recycled entry is inert even
  // after the entry is reused for a later event.
  class Handle {
   public:
    Handle() = default;
    // Cancelling an already-fired or empty handle is a no-op.
    TSF_REALTIME void cancel();
    TSF_REALTIME bool active() const;

   private:
    friend class EventQueue;
    struct Entry;
    Handle(Entry* e, std::uint64_t gen) : entry_(e), gen_(gen) {}
    Entry* entry_ = nullptr;
    std::uint64_t gen_ = 0;
  };

  // `taxed` entries run the fire tax immediately before their callback.
  // This is how the VM charges its timer_fire overhead without wrapping
  // every scheduled callback in a capturing closure (the wrapper held a
  // std::function by value — past the small-buffer limit, so it was a heap
  // allocation on every timer re-arm).
  TSF_REALTIME Handle schedule(TimePoint at, Callback cb, bool taxed = false);

  // The tax run before taxed entries' callbacks. One per queue, set once by
  // the owning engine.
  void set_fire_tax(Callback tax) { fire_tax_ = std::move(tax); }

  // True when no live (non-cancelled) events remain.
  TSF_REALTIME bool empty();

  // Time of the earliest live event; TimePoint::never() when empty.
  TSF_REALTIME TimePoint next_time();

  // Pops the earliest live event and runs its callback. Must not be called
  // on an empty queue.
  TSF_REALTIME void pop_and_run();

  std::size_t scheduled_count() const { return scheduled_count_; }

 private:
  struct Handle::Entry {
    TimePoint at;
    std::uint64_t seq = 0;
    // Bumped when the entry is recycled; handles carry the generation they
    // were issued under and go inert on mismatch.
    std::uint64_t generation = 0;
    Callback cb;
    bool cancelled = false;
    bool taxed = false;
  };
  using Entry = Handle::Entry;

  struct Later {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  // Discards cancelled entries from the top of the heap.
  TSF_REALTIME void purge();
  // Returns a pooled (or fresh) entry ready for reuse.
  Entry* acquire();
  // Invalidates outstanding handles and returns the entry to the pool.
  TSF_NO_ALLOC void recycle(Entry* e);

  // priority_queue with the underlying vector's reserve exposed, so
  // acquire() can keep capacity >= pool size (see below).
  struct Heap : std::priority_queue<Entry*, std::vector<Entry*>, Later> {
    void reserve(std::size_t n) { c.reserve(n); }
  };

  Heap heap_;
  // The pool: storage_ owns every entry ever created; free_ holds the
  // recyclable ones. Entries are never destroyed before the queue is.
  std::vector<std::unique_ptr<Entry>> storage_;
  std::vector<Entry*> free_;
  Callback fire_tax_;
  std::uint64_t next_seq_ = 0;
  std::size_t scheduled_count_ = 0;
};

inline void EventQueue::Handle::cancel() {
  if (entry_ != nullptr && entry_->generation == gen_) {
    entry_->cancelled = true;
  }
}

inline bool EventQueue::Handle::active() const {
  return entry_ != nullptr && entry_->generation == gen_ &&
         !entry_->cancelled;
}

}  // namespace tsf::common
