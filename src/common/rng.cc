#include "common/rng.h"

#include <cmath>

#include "common/diag.h"

namespace tsf::common {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  TSF_ASSERT(bound > 0, "uniform_u64 bound must be positive");
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  TSF_ASSERT(lo <= hi, "uniform_i64 requires lo <= hi, got " << lo << " > "
                                                             << hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 2^64 range.
  const std::uint64_t r = (span == 0) ? next_u64() : uniform_u64(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r);
}

double Rng::uniform(double lo, double hi) {
  TSF_ASSERT(lo <= hi, "uniform requires lo <= hi");
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  // Box–Muller. u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::uint64_t Rng::poisson(double lambda) {
  TSF_ASSERT(lambda >= 0.0, "poisson lambda must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the tails
  // we never exercise in the paper's parameter ranges.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

Rng Rng::split() { return Rng(next_u64() ^ 0x2545f4914f6cdd1dULL); }

}  // namespace tsf::common
