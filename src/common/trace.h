// Execution tracing shared by both engines.
//
// The simulator and the RTSJ-style VM emit the same record stream, which
// gives us one Gantt renderer for the paper's figures and one interval
// extractor for tests that assert exact execution windows (e.g. "h2 runs in
// [12,14) in scenario 2").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace tsf::common {

enum class TraceKind {
  kRelease,    // job/event released (arrival)
  kStart,      // entity begins executing on the processor
  kPreempt,    // entity loses the processor, will resume later
  kResume,     // entity regains the processor
  kComplete,   // entity finished its current job
  kAbort,      // entity's current job was abandoned (e.g. AIE interruption)
  kReplenish,  // server capacity replenished (value = new capacity, ticks)
  kCapacity,   // server capacity changed (value = remaining capacity, ticks)
  kFire,       // async event fired
  kNote,       // free-form annotation
};

const char* to_string(TraceKind kind);

struct TraceRecord {
  TimePoint at;
  TraceKind kind;
  std::string who;
  std::int64_t value = 0;
  std::string note;
};

// A contiguous window during which an entity held the processor.
struct Interval {
  TimePoint begin;
  TimePoint end;
  bool operator==(const Interval&) const = default;
};

class Timeline {
 public:
  void record(TimePoint at, TraceKind kind, std::string who,
              std::int64_t value = 0, std::string note = {});

  // Removes the most recent record matching (at, kind, who); returns whether
  // one was found. The VM uses this to retract a provisional horizon-pause
  // record when the paused fiber resumes seamlessly in a later run_until.
  bool retract(TimePoint at, TraceKind kind, const std::string& who);

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  // Stitches kStart/kResume..kPreempt/kComplete/kAbort into busy windows for
  // one entity. Zero-length windows are dropped.
  std::vector<Interval> busy_intervals(const std::string& who) const;

  // All instants at which `kind` was recorded for `who`.
  std::vector<TimePoint> marks(const std::string& who, TraceKind kind) const;

  // Distinct entity names in order of first appearance.
  std::vector<std::string> entities() const;

  // One record per line, "t kind who value note" — for debugging and CSV.
  std::string to_csv() const;

 private:
  std::vector<TraceRecord> records_;
};

// Renders an ASCII Gantt chart of the busy intervals, one row per entity,
// in the style of the paper's figures 2-4.
struct GanttOptions {
  // Virtual time per character cell.
  Duration cell = Duration::ticks(500);  // half a paper time unit
  TimePoint begin = TimePoint::origin();
  TimePoint end = TimePoint::at_ticks(60 * Duration::kTicksPerTimeUnit);
  bool show_releases = true;  // '^' marks under each row
};

std::string render_gantt(const Timeline& timeline,
                         const std::vector<std::string>& rows,
                         const GanttOptions& options = {});

// Order-sensitive 64-bit hash (FNV-1a) over every record field. Two runs of
// a deterministic engine must produce equal fingerprints; the mp tests and
// the scaling bench use this to assert bit-reproducibility of multi-core
// runs without storing full traces.
std::uint64_t fingerprint(const Timeline& timeline);

// Value-change-dump export (GTKWave & friends): one 1-bit wire per entity,
// high while the entity holds the processor. Timescale: 1 tick = 1 us
// (nominal; virtual time has no physical unit). Entities in `rows`; pass
// timeline.entities() for everything.
std::string to_vcd(const Timeline& timeline,
                   const std::vector<std::string>& rows);

}  // namespace tsf::common
