// Execution tracing shared by both engines.
//
// The simulator and the RTSJ-style VM emit the same record stream, which
// gives us one Gantt renderer for the paper's figures and one interval
// extractor for tests that assert exact execution windows (e.g. "h2 runs in
// [12,14) in scenario 2").
//
// Emission goes through the TraceSink interface: the engines call
// record()/retract() on a sink pointer, and the in-memory Timeline is just
// one implementation of it. The streaming sinks (common/trace_sink.h,
// common/trace_io.h, common/trace_stream.h) consume the same stream without
// materializing it, which is what keeps horizon-scale runs O(1) in trace
// length.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/time.h"

namespace tsf::common {

enum class TraceKind {
  kRelease,    // job/event released (arrival)
  kStart,      // entity begins executing on the processor
  kPreempt,    // entity loses the processor, will resume later
  kResume,     // entity regains the processor
  kComplete,   // entity finished its current job
  kAbort,      // entity's current job was abandoned (e.g. AIE interruption)
  kReplenish,  // server capacity replenished (value = new capacity, ticks)
  kCapacity,   // server capacity changed (value = remaining capacity, ticks)
  kFire,       // async event fired
  kNote,       // free-form annotation
  kAdmit,      // overload: job admitted to the privileged set (value =
               //           release ticks)
  kDemote,     // overload: job demoted out of the privileged set (value =
               //           release ticks)
  kShed,       // overload: job dropped, never to be served (value = release
               //           ticks, note = reason)
};

// One past the last TraceKind value — bounds kind counters and validates
// kinds read back from serialized traces.
inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::kShed) + 1;

const char* to_string(TraceKind kind);

// Inverse of to_string; returns false on an unknown kind name.
bool trace_kind_from_string(std::string_view name, TraceKind* kind);

struct TraceRecord {
  TimePoint at;
  TraceKind kind;
  std::string who;
  std::int64_t value = 0;
  std::string note;
};

// A contiguous window during which an entity held the processor.
struct Interval {
  TimePoint begin;
  TimePoint end;
  bool operator==(const Interval&) const = default;
};

// Consumer of a trace stream. Both engines emit records in non-decreasing
// time order and only ever retract a record at the current (maximum)
// instant — the VM's provisional horizon-pause record. Streaming sinks rely
// on that invariant: they may buffer only the records of the current
// instant and fold everything older into their running state, so a retract
// of an already-folded instant is not honoured (returns false). The
// materialized Timeline honours any retract its backward scan can reach.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void record(TimePoint at, TraceKind kind, std::string_view who,
                      std::int64_t value = 0, std::string_view note = {}) = 0;

  // Removes the most recent record matching (at, kind, who); returns
  // whether one was found.
  virtual bool retract(TimePoint at, TraceKind kind, std::string_view who) = 0;
};

class Timeline : public TraceSink {
 public:
  void record(TimePoint at, TraceKind kind, std::string_view who,
              std::int64_t value = 0, std::string_view note = {}) override;

  // The VM uses retract to drop a provisional horizon-pause record when the
  // paused fiber resumes seamlessly in a later run_until.
  bool retract(TimePoint at, TraceKind kind, std::string_view who) override;

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  // Stitches kStart/kResume..kPreempt/kComplete/kAbort into busy windows for
  // one entity. Zero-length windows are dropped.
  std::vector<Interval> busy_intervals(const std::string& who) const;

  // All instants at which `kind` was recorded for `who`.
  std::vector<TimePoint> marks(const std::string& who, TraceKind kind) const;

  // Distinct entity names in order of first appearance.
  std::vector<std::string> entities() const;

  // One record per line, "ticks,kind,who,value,note". Fields containing a
  // comma, quote or newline are quoted RFC-4180 style ('"' doubled), so
  // free-form notes round-trip through timeline_from_csv.
  std::string to_csv() const;

 private:
  std::vector<TraceRecord> records_;
};

// Parses the to_csv format back into a timeline (header line required).
// Returns false with a message in *error on malformed input.
bool timeline_from_csv(std::string_view csv, Timeline* out,
                       std::string* error);

// Renders an ASCII Gantt chart of the busy intervals, one row per entity,
// in the style of the paper's figures 2-4.
struct GanttOptions {
  // Virtual time per character cell.
  Duration cell = Duration::ticks(500);  // half a paper time unit
  TimePoint begin = TimePoint::origin();
  TimePoint end = TimePoint::at_ticks(60 * Duration::kTicksPerTimeUnit);
  bool show_releases = true;  // '^' marks under each row
};

std::string render_gantt(const Timeline& timeline,
                         const std::vector<std::string>& rows,
                         const GanttOptions& options = {});

// FNV-1a folding helpers shared by fingerprint(Timeline) and the streaming
// fingerprint sink — both must fold exactly the same bytes per record.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a_bytes(h, &v, sizeof v);
}

inline std::uint64_t fnv1a_str(std::uint64_t h, std::string_view s) {
  h = fnv1a_u64(h, s.size());
  return fnv1a_bytes(h, s.data(), s.size());
}

// Folds one trace record: (ticks, kind, who, value, note).
TSF_DETERMINISM_CRITICAL
std::uint64_t fnv1a_record(std::uint64_t h, TimePoint at, TraceKind kind,
                           std::string_view who, std::int64_t value,
                           std::string_view note);

// Order-sensitive 64-bit hash (FNV-1a) over every record field. Two runs of
// a deterministic engine must produce equal fingerprints; the mp tests and
// the scaling bench use this to assert bit-reproducibility of multi-core
// runs without storing full traces.
TSF_DETERMINISM_CRITICAL
std::uint64_t fingerprint(const Timeline& timeline);

// Identifier of the i-th VCD signal: bijective base-94 over the printable
// range '!'..'~' — one character for the first 94 signals (compatible with
// the historical single-char scheme), two for the next 94^2, and so on.
std::string vcd_identifier(std::size_t index);

// Value-change-dump export (GTKWave & friends): one 1-bit wire per entity,
// high while the entity holds the processor. Timescale: 1 tick = 1 us
// (nominal; virtual time has no physical unit). Entities in `rows`; pass
// timeline.entities() for everything.
std::string to_vcd(const Timeline& timeline,
                   const std::vector<std::string>& rows);

}  // namespace tsf::common
