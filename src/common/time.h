// Integer virtual time.
//
// Every engine in this repository (the RTSS-style discrete-event simulator and
// the RTSJ-style virtual machine) runs on the same integer clock. One paper
// "time unit" (tu) is 1000 ticks, so the generator's 0.1 tu cost floor
// (paper §6.2.1) is exactly 100 ticks and no floating point ever enters a
// scheduling decision or a capacity account.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace tsf::common {

// A span of virtual time, in ticks. 1 tu == 1000 ticks.
class Duration {
 public:
  static constexpr std::int64_t kTicksPerTimeUnit = 1000;

  constexpr Duration() = default;

  // Named constructors, so call sites state their unit.
  static constexpr Duration ticks(std::int64_t n) { return Duration(n); }
  static constexpr Duration time_units(std::int64_t tu) {
    return Duration(tu * kTicksPerTimeUnit);
  }
  // Rounds to the nearest tick (used at the generator/reporting boundary).
  static Duration from_tu(double tu);

  constexpr std::int64_t count() const { return ticks_; }
  double to_tu() const {
    return static_cast<double>(ticks_) / static_cast<double>(kTicksPerTimeUnit);
  }

  static constexpr Duration zero() { return Duration(0); }
  // A sentinel large enough to mean "never" yet safe to add to any TimePoint
  // reached in practice without overflowing.
  static constexpr Duration infinite() {
    return Duration(std::int64_t{1} << 60);
  }

  constexpr bool is_zero() const { return ticks_ == 0; }
  constexpr bool is_negative() const { return ticks_ < 0; }
  constexpr bool is_infinite() const { return *this >= infinite(); }

  constexpr Duration operator+(Duration o) const {
    return Duration(ticks_ + o.ticks_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(ticks_ - o.ticks_);
  }
  constexpr Duration operator-() const { return Duration(-ticks_); }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration(ticks_ * k);
  }
  // Integer division; truncates toward zero like the underlying i64.
  constexpr std::int64_t operator/(Duration o) const {
    return ticks_ / o.ticks_;
  }
  constexpr Duration operator%(Duration o) const {
    return Duration(ticks_ % o.ticks_);
  }
  Duration& operator+=(Duration o) {
    ticks_ += o.ticks_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    ticks_ -= o.ticks_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t t) : ticks_(t) {}
  std::int64_t ticks_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

// An instant of virtual time, in ticks since the start of a run.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint at_ticks(std::int64_t n) { return TimePoint(n); }
  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint never() {
    return TimePoint(Duration::infinite().count());
  }

  constexpr std::int64_t ticks() const { return ticks_; }
  double to_tu() const {
    return static_cast<double>(ticks_) /
           static_cast<double>(Duration::kTicksPerTimeUnit);
  }
  constexpr bool is_never() const { return *this >= never(); }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ticks_ + d.count());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ticks_ - d.count());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::ticks(ticks_ - o.ticks_);
  }
  TimePoint& operator+=(Duration d) {
    ticks_ += d.count();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(std::int64_t t) : ticks_(t) {}
  std::int64_t ticks_ = 0;
};

constexpr TimePoint min(TimePoint a, TimePoint b) { return a < b ? a : b; }
constexpr TimePoint max(TimePoint a, TimePoint b) { return a < b ? b : a; }
constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }
constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }

// "3.25tu"-style rendering, used by traces and tables.
std::string to_string(Duration d);
std::string to_string(TimePoint t);
std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace tsf::common
