#include "common/invariant_checker.h"

#include <sstream>

namespace tsf::common {

InvariantChecker::InvariantChecker() = default;
InvariantChecker::~InvariantChecker() = default;

struct InvariantChecker::CoreFeed : TraceSink {
  CoreFeed(InvariantChecker* owner, std::size_t core)
      : owner_(owner), core_(core) {}

  void record(TimePoint at, TraceKind kind, std::string_view who,
              std::int64_t value, std::string_view note) override {
    owner_->record_on_core(core_, at, kind, who, value, note);
  }

  bool retract(TimePoint, TraceKind, std::string_view) override {
    // The only retraction either engine issues is the VM's provisional
    // horizon-pause (kPreempt), which the checker never tracks.
    return false;
  }

  InvariantChecker* owner_;
  std::size_t core_;
};

void InvariantChecker::add_job(std::string_view name,
                               std::int64_t relative_deadline_ticks) {
  deadlines_[std::string(name)] = relative_deadline_ticks;
}

TraceSink* InvariantChecker::core_sink(std::size_t core) {
  feeds_.push_back(std::make_unique<CoreFeed>(this, core));
  return feeds_.back().get();
}

void InvariantChecker::note_shed_ledger(std::size_t core, std::string_view job,
                                        std::int64_t release_ticks,
                                        bool takeover) {
  auto& state = jobs_[Key{core, std::string(job), release_ticks}];
  if (takeover) {
    ++state.ledger_takeovers;
  } else {
    ++state.ledger_sheds;
  }
}

void InvariantChecker::record(TimePoint at, TraceKind kind,
                              std::string_view who, std::int64_t value,
                              std::string_view note) {
  record_on_core(core_, at, kind, who, value, note);
}

bool InvariantChecker::retract(TimePoint, TraceKind, std::string_view) {
  return false;
}

void InvariantChecker::add_violation(std::string_view name,
                                     std::string detail) {
  violations_.push_back(Violation{std::string(name), std::move(detail)});
}

void InvariantChecker::record_on_core(std::size_t core, TimePoint at,
                                      TraceKind kind, std::string_view who,
                                      std::int64_t value,
                                      std::string_view note) {
  switch (kind) {
    case TraceKind::kAdmit:
    case TraceKind::kDemote:
    case TraceKind::kShed:
    case TraceKind::kComplete:
    case TraceKind::kAbort:
      break;
    default:
      return;
  }
  const auto it = deadlines_.find(who);
  if (it == deadlines_.end()) return;  // not a registered job
  const bool firm = it->second > 0;
  auto& state = jobs_[Key{core, std::string(who), value}];

  std::ostringstream ctx;
  ctx << "core " << core << " job " << who << " release " << value
      << " at t=" << at.ticks() << " ticks";

  switch (kind) {
    case TraceKind::kAdmit:
      state.admitted = true;
      state.ever_admitted = true;
      state.last_admit = at;
      break;
    case TraceKind::kDemote:
      state.admitted = false;
      break;
    case TraceKind::kShed:
      if (state.admitted) {
        add_violation(kShedAdmittedWork,
                      ctx.str() + ": shed while in the privileged set");
      }
      if (state.completed) {
        add_violation(kShedAdmittedWork,
                      ctx.str() + ": shed after it already completed");
      }
      ++state.shed_count;
      (void)note;
      break;
    case TraceKind::kComplete:
    case TraceKind::kAbort:
      if (state.shed_count > 0) {
        add_violation(kServeAfterShed,
                      ctx.str() + ": dispatched after being shed");
      }
      if (!state.completed) {
        state.completed = true;
        state.completed_at = at;
        // A firm job finishing outside the privileged set is "sheddable
        // work served" — legal on its own (overload = off/shed have no
        // admission), but forbidden to displace an admitted job's deadline.
        if (kind == TraceKind::kComplete && firm && !state.admitted) {
          sheddable_served_[core].emplace_back(at, std::string(who));
        }
      }
      break;
    default:
      break;
  }
}

std::vector<InvariantChecker::Violation> InvariantChecker::finish() {
  for (const auto& [key, state] : jobs_) {
    const auto& [core, name, release] = key;
    const auto deadline_it = deadlines_.find(name);
    const std::int64_t rel =
        deadline_it == deadlines_.end() ? 0 : deadline_it->second;

    std::ostringstream ctx;
    ctx << "core " << core << " job " << name << " release " << release;

    // Exactly-once ledger: every kShed trace record has one non-takeover
    // ledger entry, and neither side may duplicate.
    if (state.shed_count != state.ledger_sheds) {
      std::ostringstream d;
      d << ctx.str() << ": " << state.shed_count << " shed record(s) vs "
        << state.ledger_sheds << " ledger entr(ies)";
      add_violation(kShedLedgerMismatch, d.str());
    } else if (state.shed_count > 1) {
      std::ostringstream d;
      d << ctx.str() << ": shed " << state.shed_count << " times";
      add_violation(kShedLedgerMismatch, d.str());
    }
    if (state.ledger_takeovers > 1) {
      std::ostringstream d;
      d << ctx.str() << ": " << state.ledger_takeovers
        << " takeover ledger entries";
      add_violation(kShedLedgerMismatch, d.str());
    }

    // Admitted deadline miss while sheddable work was served: the job ended
    // the run in the privileged set (never demoted away), its deadline
    // passed unmet, and some firm non-admitted job completed on the same
    // core between the admission and the deadline.
    if (!state.ever_admitted || !state.admitted || rel <= 0) continue;
    const TimePoint deadline =
        TimePoint::at_ticks(release + rel);
    const bool met = state.completed && state.completed_at <= deadline;
    if (met) continue;
    const auto served_it = sheddable_served_.find(core);
    if (served_it == sheddable_served_.end()) continue;
    for (const auto& [when, served_name] : served_it->second) {
      if (when > state.last_admit && when <= deadline) {
        std::ostringstream d;
        d << ctx.str() << ": missed deadline t=" << deadline.ticks()
          << " ticks while sheddable job " << served_name << " completed at t="
          << when.ticks() << " ticks";
        add_violation(kAdmittedDeadlineMiss, d.str());
        break;
      }
    }
  }
  return violations_;
}

}  // namespace tsf::common
