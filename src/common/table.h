// Fixed-width text tables, used by the bench harnesses to print
// paper-style result tables.
#pragma once

#include <string>
#include <vector>

namespace tsf::common {

class TextTable {
 public:
  // The first row added is treated as the header.
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-point decimal rendering ("12.34").
std::string fmt_fixed(double x, int precision);

}  // namespace tsf::common
