// Runtime counters, gauges and histograms surfaced by the engines.
//
// The registry is a plain in-process sink: the mp runtime bumps counters at
// epoch boundaries and the CLI serializes the whole registry once at the
// end of a run as a tsf-metrics/1 JSON document. Names are dotted paths
// ("mp.fabric.deliveries"); insertion order is preserved so emitted
// documents are deterministic for a deterministic run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/sketch.h"
#include "common/stats.h"

namespace tsf::common {

class MetricsRegistry {
 public:
  // Monotonic count of discrete events.
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  // Last-write-wins point-in-time value.
  void set_gauge(std::string_view name, double value);
  // Sample into a distribution (LogSketch quantiles + exact moments).
  void observe(std::string_view name, double value);

  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  // Null when the histogram has never been observed.
  const LogSketch* histogram(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // tsf-metrics/1 document:
  //   {
  //     "schema": "tsf-metrics/1",
  //     "counters": { "<name>": <u64>, ... },
  //     "gauges": { "<name>": <double>, ... },
  //     "histograms": [ { "name": ..., "count": ..., "mean": ...,
  //                       "min": ..., "max": ...,
  //                       "p50": ..., "p95": ..., "p99": ... }, ... ]
  //   }
  // Entries appear in first-touch order.
  TSF_DETERMINISM_CRITICAL
  std::string to_json() const;

 private:
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    LogSketch sketch;
    Accumulator stats;
  };

  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
  // Determinism audit: the three index maps are lookup-only (find/emplace,
  // never iterated). to_json() walks the vectors above, which preserve
  // first-touch order — that invariant is pinned by
  // tests/common/determinism_order_test.cc.
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
};

}  // namespace tsf::common
