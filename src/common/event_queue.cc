#include "common/event_queue.h"

#include "common/diag.h"

namespace tsf::common {

EventQueue::Entry* EventQueue::acquire() {
  if (!free_.empty()) {
    Entry* e = free_.back();
    free_.pop_back();
    return e;
  }
  // TSF_LINT_ALLOW[rt-alloc]: the pool's only growth point — steady state
  // pops the free list above and never reaches this line.
  storage_.push_back(std::make_unique<Entry>());
  // Every entry can be in the heap or on the free list, never both; keeping
  // both capacities at pool size here (the only growth point) means the
  // steady state — which by definition creates no fresh entries — never
  // reallocates either container.
  heap_.reserve(storage_.size());
  free_.reserve(storage_.size());
  return storage_.back().get();
}

void EventQueue::recycle(Entry* e) {
  e->cb = nullptr;      // release the callable (and anything it captured)
  ++e->generation;      // outstanding handles go inert
  e->cancelled = false;
  free_.push_back(e);
}

EventQueue::Handle EventQueue::schedule(TimePoint at, Callback cb,
                                        bool taxed) {
  Entry* entry = acquire();
  entry->at = at;
  entry->seq = next_seq_++;
  entry->cb = std::move(cb);
  entry->taxed = taxed;
  heap_.push(entry);
  ++scheduled_count_;
  return Handle(entry, entry->generation);
}

void EventQueue::purge() {
  while (!heap_.empty() && heap_.top()->cancelled) {
    Entry* e = heap_.top();
    heap_.pop();
    recycle(e);
  }
}

bool EventQueue::empty() {
  purge();
  return heap_.empty();
}

TimePoint EventQueue::next_time() {
  purge();
  return heap_.empty() ? TimePoint::never() : heap_.top()->at;
}

void EventQueue::pop_and_run() {
  purge();
  TSF_ASSERT(!heap_.empty(), "pop_and_run on empty event queue");
  Entry* entry = heap_.top();
  heap_.pop();
  const bool taxed = entry->taxed;
  Callback cb = std::move(entry->cb);
  // Recycle before running: the callback may schedule (possibly onto this
  // very entry) or cancel events; its own handle is already inert.
  recycle(entry);
  if (taxed && fire_tax_) fire_tax_();
  cb();
}

}  // namespace tsf::common
