#include "common/event_queue.h"

#include "common/diag.h"

namespace tsf::common {

EventQueue::Handle EventQueue::schedule(TimePoint at, Callback cb) {
  auto entry = std::make_shared<Entry>();
  entry->at = at;
  entry->seq = next_seq_++;
  entry->cb = std::move(cb);
  heap_.push(entry);
  ++scheduled_count_;
  return Handle(entry);
}

void EventQueue::purge() {
  while (!heap_.empty() && heap_.top()->cancelled) heap_.pop();
}

bool EventQueue::empty() {
  purge();
  return heap_.empty();
}

TimePoint EventQueue::next_time() {
  purge();
  return heap_.empty() ? TimePoint::never() : heap_.top()->at;
}

void EventQueue::pop_and_run() {
  purge();
  TSF_ASSERT(!heap_.empty(), "pop_and_run on empty event queue");
  auto entry = heap_.top();
  heap_.pop();
  entry->fired = true;
  // The callback may schedule or cancel events; entry is already detached.
  entry->cb();
}

}  // namespace tsf::common
