#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tsf::common {

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream oss;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << "  ";
      oss << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
    }
    oss << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < widths.size(); ++i) {
        total += widths[i] + (i > 0 ? 2 : 0);
      }
      oss << std::string(total, '-') << '\n';
    }
  }
  return oss.str();
}

std::string fmt_fixed(double x, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << x;
  return oss.str();
}

}  // namespace tsf::common
