#include "common/trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/diag.h"

namespace tsf::common {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRelease:
      return "release";
    case TraceKind::kStart:
      return "start";
    case TraceKind::kPreempt:
      return "preempt";
    case TraceKind::kResume:
      return "resume";
    case TraceKind::kComplete:
      return "complete";
    case TraceKind::kAbort:
      return "abort";
    case TraceKind::kReplenish:
      return "replenish";
    case TraceKind::kCapacity:
      return "capacity";
    case TraceKind::kFire:
      return "fire";
    case TraceKind::kNote:
      return "note";
    case TraceKind::kAdmit:
      return "admit";
    case TraceKind::kDemote:
      return "demote";
    case TraceKind::kShed:
      return "shed";
  }
  return "?";
}

bool trace_kind_from_string(std::string_view name, TraceKind* kind) {
  for (std::size_t k = 0; k < kTraceKindCount; ++k) {
    const auto candidate = static_cast<TraceKind>(k);
    if (name == to_string(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

void Timeline::record(TimePoint at, TraceKind kind, std::string_view who,
                      std::int64_t value, std::string_view note) {
  records_.push_back(
      TraceRecord{at, kind, std::string(who), value, std::string(note)});
}

bool Timeline::retract(TimePoint at, TraceKind kind, std::string_view who) {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->at < at) break;  // records are appended in time order
    if (it->at == at && it->kind == kind && it->who == who) {
      records_.erase(std::next(it).base());
      return true;
    }
  }
  return false;
}

std::vector<Interval> Timeline::busy_intervals(const std::string& who) const {
  std::vector<Interval> out;
  bool open = false;
  TimePoint begin;
  for (const auto& r : records_) {
    if (r.who != who) continue;
    switch (r.kind) {
      case TraceKind::kStart:
      case TraceKind::kResume:
        TSF_ASSERT(!open, "entity " << who << " started twice at " << r.at);
        open = true;
        begin = r.at;
        break;
      case TraceKind::kPreempt:
      case TraceKind::kComplete:
      case TraceKind::kAbort:
        if (open) {
          open = false;
          if (r.at > begin) out.push_back(Interval{begin, r.at});
        }
        break;
      default:
        break;
    }
  }
  return out;
}

std::vector<TimePoint> Timeline::marks(const std::string& who,
                                       TraceKind kind) const {
  std::vector<TimePoint> out;
  for (const auto& r : records_) {
    if (r.who == who && r.kind == kind) out.push_back(r.at);
  }
  return out;
}

std::vector<std::string> Timeline::entities() const {
  std::vector<std::string> out;
  for (const auto& r : records_) {
    if (std::find(out.begin(), out.end(), r.who) == out.end()) {
      out.push_back(r.who);
    }
  }
  return out;
}

namespace {

// RFC-4180-style quoting: only fields that would break the column structure
// get quoted, so the common case (plain identifiers) stays byte-identical
// to the historical format.
void append_csv_field(std::string* out, const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (const char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

// Splits one CSV line (quotes honoured) into fields. Returns false on a
// malformed quote sequence.
bool split_csv_line(std::string_view line, std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) return false;  // quote mid-field
      quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (quoted) return false;
  fields->push_back(std::move(current));
  return true;
}

}  // namespace

std::string Timeline::to_csv() const {
  std::string out = "ticks,kind,who,value,note\n";
  for (const auto& r : records_) {
    out += std::to_string(r.at.ticks());
    out.push_back(',');
    out += to_string(r.kind);
    out.push_back(',');
    append_csv_field(&out, r.who);
    out.push_back(',');
    out += std::to_string(r.value);
    out.push_back(',');
    append_csv_field(&out, r.note);
    out.push_back('\n');
  }
  return out;
}

bool timeline_from_csv(std::string_view csv, Timeline* out,
                       std::string* error) {
  auto fail = [error](std::size_t line_no, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return false;
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::vector<std::string> fields;
  while (pos <= csv.size()) {
    // A quoted note may contain newlines, so scan for the line end with the
    // quote state in mind.
    std::size_t end = pos;
    bool quoted = false;
    while (end < csv.size() && (quoted || csv[end] != '\n')) {
      if (csv[end] == '"') quoted = !quoted;
      ++end;
    }
    const std::string_view line = csv.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() && pos > csv.size()) break;  // trailing newline
    ++line_no;
    if (line_no == 1) {
      if (line != "ticks,kind,who,value,note") {
        return fail(line_no, "missing csv header");
      }
      continue;
    }
    if (line.empty()) continue;
    if (!split_csv_line(line, &fields)) {
      return fail(line_no, "malformed quoting");
    }
    if (fields.size() != 5) {
      return fail(line_no, "expected 5 fields, got " +
                               std::to_string(fields.size()));
    }
    errno = 0;
    char* endp = nullptr;
    const long long ticks = std::strtoll(fields[0].c_str(), &endp, 10);
    if (endp == fields[0].c_str() || *endp != '\0') {
      return fail(line_no, "bad ticks '" + fields[0] + "'");
    }
    TraceKind kind;
    if (!trace_kind_from_string(fields[1], &kind)) {
      return fail(line_no, "unknown kind '" + fields[1] + "'");
    }
    const long long value = std::strtoll(fields[3].c_str(), &endp, 10);
    if (endp == fields[3].c_str() || *endp != '\0') {
      return fail(line_no, "bad value '" + fields[3] + "'");
    }
    out->record(TimePoint::at_ticks(ticks), kind, fields[2], value,
                fields[4]);
  }
  return true;
}

std::uint64_t fnv1a_record(std::uint64_t h, TimePoint at, TraceKind kind,
                           std::string_view who, std::int64_t value,
                           std::string_view note) {
  h = fnv1a_u64(h, static_cast<std::uint64_t>(at.ticks()));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(kind));
  h = fnv1a_str(h, who);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(value));
  h = fnv1a_str(h, note);
  return h;
}

std::uint64_t fingerprint(const Timeline& timeline) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const auto& r : timeline.records()) {
    h = fnv1a_record(h, r.at, r.kind, r.who, r.value, r.note);
  }
  return h;
}

std::string vcd_identifier(std::size_t index) {
  // Bijective base-94: 0 → "!", 93 → "~", 94 → "!!", ... Every index maps
  // to a unique string and the first 94 keep the historical 1-char form.
  std::string id;
  std::size_t n = index + 1;
  while (n > 0) {
    n -= 1;
    id.insert(id.begin(), static_cast<char>('!' + n % 94));
    n /= 94;
  }
  return id;
}

std::string to_vcd(const Timeline& timeline,
                   const std::vector<std::string>& rows) {
  std::ostringstream oss;
  oss << "$timescale 1us $end\n$scope module tsf $end\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::string name = rows[i];
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    oss << "$var wire 1 " << vcd_identifier(i) << ' ' << name << " $end\n";
  }
  oss << "$upscope $end\n$enddefinitions $end\n";

  // Gather transitions: (time, signal, level).
  struct Edge {
    std::int64_t at;
    std::size_t signal;
    bool level;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const auto& iv : timeline.busy_intervals(rows[i])) {
      edges.push_back({iv.begin.ticks(), i, true});
      edges.push_back({iv.end.ticks(), i, false});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.signal != b.signal) return a.signal < b.signal;
    return a.level < b.level;  // falling edge before rising at the same time
  });

  oss << "#0\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    oss << '0' << vcd_identifier(i) << '\n';
  }
  std::int64_t current = 0;
  for (const auto& e : edges) {
    if (e.at != current) {
      current = e.at;
      oss << '#' << current << '\n';
    }
    oss << (e.level ? '1' : '0') << vcd_identifier(e.signal) << '\n';
  }
  return oss.str();
}

std::string render_gantt(const Timeline& timeline,
                         const std::vector<std::string>& rows,
                         const GanttOptions& options) {
  TSF_ASSERT(options.cell.count() > 0, "gantt cell must be positive");
  TSF_ASSERT(options.end > options.begin, "gantt window must be non-empty");
  const std::int64_t cells =
      ((options.end - options.begin).count() + options.cell.count() - 1) /
      options.cell.count();

  std::size_t label_width = 4;
  for (const auto& name : rows) label_width = std::max(label_width, name.size());
  label_width += 2;

  std::ostringstream oss;

  // Time ruler: one label every 5 cells, in time units.
  oss << std::string(label_width, ' ');
  for (std::int64_t c = 0; c < cells; ++c) {
    if (c % 5 == 0) {
      const double tu = (options.begin + options.cell * c).to_tu();
      std::ostringstream lbl;
      lbl << tu;
      std::string s = lbl.str();
      oss << s;
      // Skip the cells the label covered (minus one; loop increments).
      std::int64_t skip = static_cast<std::int64_t>(s.size()) - 1;
      c += skip;
      for (std::int64_t k = 0; k < skip; ++k) {
        if ((c - skip + k + 1) % 5 == 0) break;  // never overlap next label
      }
    } else {
      oss << ' ';
    }
  }
  oss << '\n';

  for (const auto& name : rows) {
    const auto intervals = timeline.busy_intervals(name);
    const auto releases = timeline.marks(name, TraceKind::kRelease);

    std::string row(static_cast<std::size_t>(cells), '.');
    for (const auto& iv : intervals) {
      const std::int64_t from =
          std::max<std::int64_t>(0, (iv.begin - options.begin).count() /
                                        options.cell.count());
      // End is exclusive; a window that merely touches a cell boundary does
      // not occupy the next cell.
      const std::int64_t to = std::min<std::int64_t>(
          cells, ((iv.end - options.begin).count() + options.cell.count() - 1) /
                     options.cell.count());
      for (std::int64_t c = from; c < to; ++c) {
        row[static_cast<std::size_t>(c)] = '#';
      }
    }
    if (options.show_releases) {
      for (const auto at : releases) {
        const std::int64_t c = (at - options.begin).count() / options.cell.count();
        if (c >= 0 && c < cells) {
          auto& ch = row[static_cast<std::size_t>(c)];
          ch = (ch == '#') ? '@' : '^';
        }
      }
    }

    oss << name << std::string(label_width - name.size(), ' ') << row << '\n';
  }
  return oss.str();
}

}  // namespace tsf::common
