#include "common/trace.h"

#include <algorithm>
#include <sstream>

#include "common/diag.h"

namespace tsf::common {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRelease:
      return "release";
    case TraceKind::kStart:
      return "start";
    case TraceKind::kPreempt:
      return "preempt";
    case TraceKind::kResume:
      return "resume";
    case TraceKind::kComplete:
      return "complete";
    case TraceKind::kAbort:
      return "abort";
    case TraceKind::kReplenish:
      return "replenish";
    case TraceKind::kCapacity:
      return "capacity";
    case TraceKind::kFire:
      return "fire";
    case TraceKind::kNote:
      return "note";
  }
  return "?";
}

void Timeline::record(TimePoint at, TraceKind kind, std::string who,
                      std::int64_t value, std::string note) {
  records_.push_back(
      TraceRecord{at, kind, std::move(who), value, std::move(note)});
}

bool Timeline::retract(TimePoint at, TraceKind kind, const std::string& who) {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->at < at) break;  // records are appended in time order
    if (it->at == at && it->kind == kind && it->who == who) {
      records_.erase(std::next(it).base());
      return true;
    }
  }
  return false;
}

std::vector<Interval> Timeline::busy_intervals(const std::string& who) const {
  std::vector<Interval> out;
  bool open = false;
  TimePoint begin;
  for (const auto& r : records_) {
    if (r.who != who) continue;
    switch (r.kind) {
      case TraceKind::kStart:
      case TraceKind::kResume:
        TSF_ASSERT(!open, "entity " << who << " started twice at " << r.at);
        open = true;
        begin = r.at;
        break;
      case TraceKind::kPreempt:
      case TraceKind::kComplete:
      case TraceKind::kAbort:
        if (open) {
          open = false;
          if (r.at > begin) out.push_back(Interval{begin, r.at});
        }
        break;
      default:
        break;
    }
  }
  return out;
}

std::vector<TimePoint> Timeline::marks(const std::string& who,
                                       TraceKind kind) const {
  std::vector<TimePoint> out;
  for (const auto& r : records_) {
    if (r.who == who && r.kind == kind) out.push_back(r.at);
  }
  return out;
}

std::vector<std::string> Timeline::entities() const {
  std::vector<std::string> out;
  for (const auto& r : records_) {
    if (std::find(out.begin(), out.end(), r.who) == out.end()) {
      out.push_back(r.who);
    }
  }
  return out;
}

std::string Timeline::to_csv() const {
  std::ostringstream oss;
  oss << "ticks,kind,who,value,note\n";
  for (const auto& r : records_) {
    oss << r.at.ticks() << ',' << to_string(r.kind) << ',' << r.who << ','
        << r.value << ',' << r.note << '\n';
  }
  return oss.str();
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof v); }

void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

}  // namespace

std::uint64_t fingerprint(const Timeline& timeline) {
  std::uint64_t h = kFnvOffset;
  for (const auto& r : timeline.records()) {
    fnv_u64(h, static_cast<std::uint64_t>(r.at.ticks()));
    fnv_u64(h, static_cast<std::uint64_t>(r.kind));
    fnv_str(h, r.who);
    fnv_u64(h, static_cast<std::uint64_t>(r.value));
    fnv_str(h, r.note);
  }
  return h;
}

std::string to_vcd(const Timeline& timeline,
                   const std::vector<std::string>& rows) {
  TSF_ASSERT(rows.size() < 94, "too many VCD signals for 1-char identifiers");
  std::ostringstream oss;
  oss << "$timescale 1us $end\n$scope module tsf $end\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::string name = rows[i];
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    oss << "$var wire 1 " << static_cast<char>('!' + i) << ' ' << name
        << " $end\n";
  }
  oss << "$upscope $end\n$enddefinitions $end\n";

  // Gather transitions: (time, signal, level).
  struct Edge {
    std::int64_t at;
    std::size_t signal;
    bool level;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const auto& iv : timeline.busy_intervals(rows[i])) {
      edges.push_back({iv.begin.ticks(), i, true});
      edges.push_back({iv.end.ticks(), i, false});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.signal != b.signal) return a.signal < b.signal;
    return a.level < b.level;  // falling edge before rising at the same time
  });

  oss << "#0\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    oss << '0' << static_cast<char>('!' + i) << '\n';
  }
  std::int64_t current = 0;
  for (const auto& e : edges) {
    if (e.at != current) {
      current = e.at;
      oss << '#' << current << '\n';
    }
    oss << (e.level ? '1' : '0') << static_cast<char>('!' + e.signal) << '\n';
  }
  return oss.str();
}

std::string render_gantt(const Timeline& timeline,
                         const std::vector<std::string>& rows,
                         const GanttOptions& options) {
  TSF_ASSERT(options.cell.count() > 0, "gantt cell must be positive");
  TSF_ASSERT(options.end > options.begin, "gantt window must be non-empty");
  const std::int64_t cells =
      ((options.end - options.begin).count() + options.cell.count() - 1) /
      options.cell.count();

  std::size_t label_width = 4;
  for (const auto& name : rows) label_width = std::max(label_width, name.size());
  label_width += 2;

  std::ostringstream oss;

  // Time ruler: one label every 5 cells, in time units.
  oss << std::string(label_width, ' ');
  for (std::int64_t c = 0; c < cells; ++c) {
    if (c % 5 == 0) {
      const double tu = (options.begin + options.cell * c).to_tu();
      std::ostringstream lbl;
      lbl << tu;
      std::string s = lbl.str();
      oss << s;
      // Skip the cells the label covered (minus one; loop increments).
      std::int64_t skip = static_cast<std::int64_t>(s.size()) - 1;
      c += skip;
      for (std::int64_t k = 0; k < skip; ++k) {
        if ((c - skip + k + 1) % 5 == 0) break;  // never overlap next label
      }
    } else {
      oss << ' ';
    }
  }
  oss << '\n';

  for (const auto& name : rows) {
    const auto intervals = timeline.busy_intervals(name);
    const auto releases = timeline.marks(name, TraceKind::kRelease);

    std::string row(static_cast<std::size_t>(cells), '.');
    for (const auto& iv : intervals) {
      const std::int64_t from =
          std::max<std::int64_t>(0, (iv.begin - options.begin).count() /
                                        options.cell.count());
      // End is exclusive; a window that merely touches a cell boundary does
      // not occupy the next cell.
      const std::int64_t to = std::min<std::int64_t>(
          cells, ((iv.end - options.begin).count() + options.cell.count() - 1) /
                     options.cell.count());
      for (std::int64_t c = from; c < to; ++c) {
        row[static_cast<std::size_t>(c)] = '#';
      }
    }
    if (options.show_releases) {
      for (const auto at : releases) {
        const std::int64_t c = (at - options.begin).count() / options.cell.count();
        if (c >= 0 && c < cells) {
          auto& ch = row[static_cast<std::size_t>(c)];
          ch = (ch == '#') ? '@' : '^';
        }
      }
    }

    oss << name << std::string(label_width - name.size(), ' ') << row << '\n';
  }
  return oss.str();
}

}  // namespace tsf::common
