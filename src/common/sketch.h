// Mergeable fixed-gamma log-bucket quantile sketch (DDSketch-style).
//
// Values are binned by ceil(log_gamma(x)) with gamma = (1+a)/(1-a), which
// guarantees every reported quantile is within relative error `a` of the
// exact nearest-rank sample. Bucket counts are integers, so merging two
// sketches with the same gamma is exact addition — the merged sketch is
// bit-identical whether samples were added to one sketch or sharded across
// many and merged in any order. That is the property the shard harness
// needs: per-worker response-time distributions pool exactly for any
// --jobs N, where a sampling reservoir could not.
//
// Values below kMinValue (including zero; responses are never negative
// here) land in a dedicated zero bucket and report as 0.0.
#pragma once

#include "common/annotations.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tsf::common {

class LogSketch {
 public:
  static constexpr double kMinValue = 1e-9;

  // `relative_accuracy` is the worst-case relative error of any quantile.
  explicit LogSketch(double relative_accuracy = 0.01);

  void add(double x);

  // Adds every bucket of `other`; both sketches must share the accuracy.
  TSF_DETERMINISM_CRITICAL
  void merge(const LogSketch& other);

  std::size_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  double relative_accuracy() const { return alpha_; }
  double gamma() const { return gamma_; }

  // Nearest-rank quantile, q in [0,1]; 0 when empty. The reported value is
  // the bucket midpoint 2*gamma^i/(gamma+1), within alpha of the exact
  // sample at that rank.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  // Deterministic single-line text form for the shard result pipe:
  //   "sketch <alpha-hexfloat> <zero-count> <n> <idx>:<count> ..."
  // with buckets in ascending index order. Exact round trip via decode.
  TSF_DETERMINISM_CRITICAL
  std::string encode() const;
  static bool decode(std::string_view text, LogSketch* out);

  const std::map<std::int32_t, std::uint64_t>& buckets() const {
    return buckets_;
  }
  std::uint64_t zero_count() const { return zero_; }

  // Exact equality — same accuracy and identical bucket counts.
  bool operator==(const LogSketch& other) const {
    return alpha_ == other.alpha_ && zero_ == other.zero_ &&
           buckets_ == other.buckets_;
  }

 private:
  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t zero_ = 0;
  std::size_t total_ = 0;
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace tsf::common
