#include "common/time.h"

#include <cmath>
#include <ostream>
#include <sstream>

namespace tsf::common {

Duration Duration::from_tu(double tu) {
  return Duration::ticks(static_cast<std::int64_t>(
      std::llround(tu * static_cast<double>(kTicksPerTimeUnit))));
}

namespace {

std::string format_ticks_as_tu(std::int64_t t) {
  std::ostringstream oss;
  if (t < 0) {
    oss << '-';
    t = -t;
  }
  const std::int64_t whole = t / Duration::kTicksPerTimeUnit;
  const std::int64_t frac = t % Duration::kTicksPerTimeUnit;
  oss << whole;
  if (frac != 0) {
    std::string digits = std::to_string(frac);
    digits.insert(digits.begin(), 3 - digits.size(), '0');
    while (!digits.empty() && digits.back() == '0') digits.pop_back();
    oss << '.' << digits;
  }
  oss << "tu";
  return oss.str();
}

}  // namespace

std::string to_string(Duration d) {
  if (d.is_infinite()) return "inf";
  return format_ticks_as_tu(d.count());
}

std::string to_string(TimePoint t) {
  if (t.is_never()) return "never";
  return format_ticks_as_tu(t.ticks());
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << to_string(d);
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << to_string(t);
}

}  // namespace tsf::common
