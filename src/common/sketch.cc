#include "common/sketch.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/diag.h"

namespace tsf::common {

LogSketch::LogSketch(double relative_accuracy) : alpha_(relative_accuracy) {
  TSF_ASSERT(alpha_ > 0.0 && alpha_ < 1.0,
             "sketch accuracy must be in (0,1), got " << alpha_);
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

void LogSketch::add(double x) {
  ++total_;
  if (!(x >= kMinValue)) {  // zero, negative, NaN
    ++zero_;
    return;
  }
  const auto index =
      static_cast<std::int32_t>(std::ceil(std::log(x) * inv_log_gamma_));
  ++buckets_[index];
}

void LogSketch::merge(const LogSketch& other) {
  TSF_ASSERT(alpha_ == other.alpha_,
             "merging sketches with different accuracies ("
                 << alpha_ << " vs " << other.alpha_ << ")");
  zero_ += other.zero_;
  total_ += other.total_;
  for (const auto& [index, count] : other.buckets_) {
    buckets_[index] += count;
  }
}

double LogSketch::quantile(double q) const {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank convention shared with QuantileReservoir: the sample at
  // sorted index floor(q * (n-1)).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cumulative = zero_;
  if (rank < cumulative) return 0.0;
  for (const auto& [index, count] : buckets_) {
    cumulative += count;
    if (rank < cumulative) {
      // Midpoint of (gamma^(i-1), gamma^i]: relative error <= alpha for any
      // point in the bucket.
      return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
    }
  }
  return 0.0;  // unreachable when counts are consistent
}

std::string LogSketch::encode() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "sketch %a %llu %zu", alpha_,
                static_cast<unsigned long long>(zero_), total_);
  std::string out = buf;
  for (const auto& [index, count] : buckets_) {
    std::snprintf(buf, sizeof buf, " %d:%llu", index,
                  static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

bool LogSketch::decode(std::string_view text, LogSketch* out) {
  const std::string s(text);
  const char* p = s.c_str();
  char* end = nullptr;
  if (s.rfind("sketch ", 0) != 0) return false;
  p += 7;
  const double alpha = std::strtod(p, &end);
  if (end == p || alpha <= 0.0 || alpha >= 1.0) return false;
  p = end;
  const unsigned long long zero = std::strtoull(p, &end, 10);
  if (end == p) return false;
  p = end;
  const unsigned long long total = std::strtoull(p, &end, 10);
  if (end == p) return false;
  p = end;

  LogSketch sketch(alpha);
  sketch.zero_ = zero;
  sketch.total_ = static_cast<std::size_t>(total);
  std::uint64_t bucket_sum = zero;
  while (*p != '\0') {
    while (*p == ' ') ++p;
    if (*p == '\0') break;
    const long index = std::strtol(p, &end, 10);
    if (end == p || *end != ':') return false;
    p = end + 1;
    const unsigned long long count = std::strtoull(p, &end, 10);
    if (end == p || count == 0) return false;
    p = end;
    if (!sketch.buckets_.emplace(static_cast<std::int32_t>(index), count)
             .second) {
      return false;  // duplicate bucket
    }
    bucket_sum += count;
  }
  if (bucket_sum != total) return false;
  *out = std::move(sketch);
  return true;
}

}  // namespace tsf::common
