#include "common/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/diag.h"

namespace tsf::common {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Appends the UTF-8 encoding of `cp` (<= U+10FFFF; astral code points come
// from decoded \uXXXX surrogate pairs).
static void append_utf8(std::string* out, unsigned cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// Reads the 4 hex digits of a \uXXXX escape at s[i+1..i+4] into *cp.
static bool read_hex4(std::string_view s, std::size_t i, unsigned* cp) {
  if (i + 4 >= s.size()) return false;
  *cp = 0;
  for (int k = 1; k <= 4; ++k) {
    const char h = s[i + static_cast<std::size_t>(k)];
    *cp <<= 4;
    if (h >= '0' && h <= '9') {
      *cp |= static_cast<unsigned>(h - '0');
    } else if (h >= 'a' && h <= 'f') {
      *cp |= static_cast<unsigned>(h - 'a' + 10);
    } else if (h >= 'A' && h <= 'F') {
      *cp |= static_cast<unsigned>(h - 'A' + 10);
    } else {
      return false;
    }
  }
  return true;
}

bool json_unescape(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out->push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case '/':
        out->push_back('/');
        break;
      case 'b':
        out->push_back('\b');
        break;
      case 'f':
        out->push_back('\f');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'u': {
        unsigned cp = 0;
        if (!read_hex4(s, i, &cp)) return false;
        i += 4;
        if (cp >= 0xDC00 && cp <= 0xDFFF) {
          return false;  // a lone low surrogate encodes nothing
        }
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // A high surrogate is only valid as the first half of a
          // \uXXXX\uXXXX pair encoding one astral code point (JSON strings
          // carry UTF-16 escapes; CESU-8-style independent encoding of the
          // halves would round-trip a spec name to garbage).
          unsigned lo = 0;
          if (i + 2 >= s.size() || s[i + 1] != '\\' || s[i + 2] != 'u' ||
              !read_hex4(s, i + 2, &lo) || lo < 0xDC00 || lo > 0xDFFF) {
            return false;
          }
          i += 6;
          cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        }
        append_utf8(out, cp);
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

std::string json_double(double x) {
  if (!std::isfinite(x)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, x);
  TSF_ASSERT(res.ec == std::errc(), "double to_chars overflow");
  return std::string(buf, res.ptr);
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  TSF_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject,
             "end_object outside an object");
  TSF_ASSERT(!pending_key_, "dangling key at end_object");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  TSF_ASSERT(!stack_.empty() && stack_.back() == Scope::kArray,
             "end_array outside an array");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  TSF_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject,
             "key outside an object");
  TSF_ASSERT(!pending_key_, "two keys in a row");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // document root
  if (stack_.back() == Scope::kObject) {
    TSF_ASSERT(pending_key_, "object value without a key");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double x) {
  before_value();
  out_ += json_double(x);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t x) {
  before_value();
  out_ += std::to_string(x);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t x) {
  before_value();
  out_ += std::to_string(x);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::take() {
  TSF_ASSERT(stack_.empty(), "take() with unclosed containers");
  out_ += '\n';
  return std::move(out_);
}

}  // namespace tsf::common
