// A non-owning callable reference — std::function minus the ownership and
// the heap.
//
// The servers rebuild their admission predicates (FitsFn) every activation
// and hand them to PendingQueue::pop_fitting for the duration of one call;
// std::function would copy the closure onto the heap whenever it outgrows
// the small-object buffer, which is exactly the per-event allocation the
// zero-alloc hot path forbids. FunctionRef stores two raw pointers
// (closure, trampoline), so binding is free and allocation-impossible.
//
// Lifetime contract: the referenced callable must outlive every call
// through the FunctionRef. Binding a temporary lambda in a call expression
// is fine (the temporary lives to the end of the full expression); storing
// a FunctionRef beyond the statement that created it is not.
#pragma once

#include <type_traits>
#include <utility>

namespace tsf::common {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = delete;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*call_)(void*, Args...);
};

}  // namespace tsf::common
