// tsf-trace/1 — compact binary append format for trace streams.
//
// Layout (all multi-byte integers little-endian; varints are LEB128):
//
//   magic    8 bytes        "tsftrc1\n"
//   entry*   one of:
//     0x01  define entity   varint name_len, name bytes
//                           (assigns the next sequential id, starting at 0)
//     0x02  record          varint zigzag(ticks - last_ticks)
//                           varint entity_id
//                           u8     kind
//                           8 bytes value (int64, little-endian, fixed)
//                           varint note_len, note bytes
//     0x03  retract         varint zigzag(ticks - last_ticks)
//                           varint entity_id
//                           u8     kind
//
// Timestamps are delta-encoded against the previous entry's ticks (records
// and retractions both advance the cursor), so the steady-state cost of a
// record with an interned name and an empty note is 5 + a few bytes.
// Retractions are tombstones: the writer appends them instead of seeking
// back, and replay applies them through TraceSink::retract — so the VM's
// provisional horizon-pause retract survives a round trip through a file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>

#include "common/annotations.h"
#include "common/trace.h"

namespace tsf::common {

inline constexpr char kTraceMagic[8] = {'t', 's', 'f', 't', 'r', 'c', '1',
                                        '\n'};

// Streams records into `out` as they arrive; O(entities) memory. The
// ostream must outlive the writer. Writes the magic on construction.
class BinaryTraceWriter final : public TraceSink {
 public:
  explicit BinaryTraceWriter(std::ostream& out);

  TSF_DETERMINISM_CRITICAL
  void record(TimePoint at, TraceKind kind, std::string_view who,
              std::int64_t value = 0, std::string_view note = {}) override;

  // Appends a tombstone. The writer cannot know whether a matching record
  // exists downstream; it reports true and lets replay decide.
  TSF_DETERMINISM_CRITICAL
  bool retract(TimePoint at, TraceKind kind, std::string_view who) override;

  std::uint64_t bytes_written() const { return bytes_; }
  std::uint64_t records_written() const { return records_; }

 private:
  std::uint64_t intern(std::string_view who);
  void put_varint(std::uint64_t v);
  void put_delta(std::int64_t ticks);
  void put_bytes(const void* data, std::size_t n);

  std::ostream& out_;
  // Determinism audit: lookup-only intern table (find/emplace, never
  // iterated). Entity ids are assigned by arrival order of first use, and
  // the emitted stream is ordered by the record stream itself, so the
  // unordered bucket order never reaches any output.
  std::unordered_map<std::string, std::uint64_t> ids_;
  std::int64_t last_ticks_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

// Replays a tsf-trace/1 stream into `sink` (records via record(),
// tombstones via retract()). Replaying into a Timeline materializes the
// post-retraction trace; replaying into the streaming sinks keeps the whole
// pass O(1) in trace length. Returns false with a message in *error on a
// malformed stream.
bool read_trace(std::istream& in, TraceSink* sink, std::string* error);

// Convenience: serializes an already-materialized timeline.
void write_trace(std::ostream& out, const Timeline& timeline);

}  // namespace tsf::common
