// A bump arena with size-class freelists — the allocation substrate of the
// exec hot path.
//
// The steady-state epoch loop must perform zero heap allocations (the
// "millions of users" prerequisite named in ROADMAP.md): per-event heap
// traffic — pending-queue deque chunks, mailbox nodes — is replaced by
// blocks carved out of chunked slabs and recycled through per-size-class
// freelists, the mem_list pooling idiom. Fresh demand bumps a pointer into
// the current slab (allocating a new slab only when the current one is
// exhausted); a released block is pushed onto its class's freelist and the
// next same-class request pops it back in O(1). After a short warm-up every
// allocate() is a freelist hit and the arena never touches the global heap
// again.
//
// Not thread-safe: one arena per owner (each TaskServer — and therefore
// each per-core VM world — owns its own). reset() recycles every slab at
// once for epoch-style reuse; it invalidates all outstanding blocks.
#pragma once

#include "common/annotations.h"

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace tsf::common {

class Arena {
 public:
  // Blocks are rounded up to the next power-of-two size class; requests
  // above the largest class get a dedicated slab (still recycled through
  // the freelists, so even jumbo blocks stop hitting the heap once warm).
  static constexpr std::size_t kMinClassBytes = 16;
  static constexpr std::size_t kMaxClassBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t slab_bytes = 64 * 1024);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Never returns nullptr (throws std::bad_alloc on slab exhaustion like
  // operator new). `align` must be a power of two <= 4096; blocks of a
  // class are always aligned to min(class size, 4096), so any type whose
  // alignment does not exceed its (rounded) size — i.e. every type — is
  // served correctly, including over-aligned ones.
  TSF_NO_ALLOC void* allocate(std::size_t bytes, std::size_t align);
  // Returns the block to its size class's freelist. `bytes` and `align`
  // must match the allocate() call (the std::allocator contract).
  TSF_NO_ALLOC void deallocate(void* p, std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  // Recycles every slab wholesale: freelists are dropped, bump pointers
  // rewind, slabs are retained. All outstanding blocks become invalid.
  void reset();

  // --- observability (asserted by tests, reported by benches) ---
  std::size_t slab_count() const { return slab_count_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  // allocate() calls served by popping a freelist vs by bumping a slab.
  std::uint64_t freelist_hits() const { return freelist_hits_; }
  std::uint64_t fresh_blocks() const { return fresh_blocks_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct Slab {
    Slab* next;
    std::size_t capacity;  // usable bytes after this header
    std::size_t used;
  };

  // 16, 32, ..., kMaxClassBytes, plus one overflow class per jumbo size
  // rounded to the next power of two (still indexable: log2 range).
  static constexpr int kMinShift = 4;
  static constexpr int kMaxShift = 26;  // 64 MiB single-block ceiling
  static constexpr int kNumClasses = kMaxShift - kMinShift + 1;

  static int class_of(std::size_t bytes);
  static std::size_t class_bytes(int cls) {
    return std::size_t{1} << (cls + kMinShift);
  }

  TSF_NO_ALLOC void* bump(std::size_t bytes, std::size_t align);
  Slab* new_slab(std::size_t min_capacity);

  std::size_t slab_bytes_;
  Slab* slabs_ = nullptr;  // current slab at the head
  FreeNode* free_[kNumClasses] = {};
  std::size_t slab_count_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::uint64_t freelist_hits_ = 0;
  std::uint64_t fresh_blocks_ = 0;
};

// std-compatible allocator adapter so containers (the pending queues'
// deques) draw from an Arena. With a null arena it degrades to the global
// heap — containers stay constructible before their owner has an arena.
// Allocators compare equal iff they share the arena, and propagate on
// move/swap, so container moves never mix arenas silently.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  TSF_NO_ALLOC T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    // TSF_LINT_ALLOW[rt-alloc]: null-arena degradation path — containers
    // constructed before their owner has an arena; never on the hot path.
    return static_cast<T*>(::operator new(bytes, std::align_val_t{alignof(T)}));
  }
  TSF_NO_ALLOC void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T), alignof(T));
      return;
    }
    // TSF_LINT_ALLOW[rt-alloc]: null-arena degradation path, see allocate().
    ::operator delete(p, n * sizeof(T), std::align_val_t{alignof(T)});
  }

  Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace tsf::common
