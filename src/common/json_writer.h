// Deterministic JSON emission for machine-readable experiment results.
//
// The experiment harness promises byte-identical output for identical
// metrics regardless of worker count or host, so this writer is strict
// about formatting: keys are emitted in call order (no map reordering),
// doubles use the shortest round-trip representation (std::to_chars), and
// there is exactly one spelling of every token — no locale, no trailing
// zeros, no whitespace options beyond the fixed two-space pretty-printer.
#pragma once

#include "common/annotations.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsf::common {

// `s` with JSON string escapes applied (quotes, backslash, \b \f \n \r \t,
// \u00XX for the remaining control bytes). Non-ASCII bytes pass through
// untouched: the writer treats strings as UTF-8 and never re-encodes.
TSF_DETERMINISM_CRITICAL
std::string json_escape(std::string_view s);

// Inverse of json_escape over well-formed escapes, \uXXXX included:
// BMP escapes decode directly, a \uXXXX\uXXXX surrogate pair decodes to
// its astral code point, and both are encoded back to UTF-8. Returns false
// on a malformed escape — including a lone (unpaired) surrogate half —
// and leaves `out` unspecified.
bool json_unescape(std::string_view s, std::string* out);

// Shortest representation that parses back to exactly `x`. Emits digits in
// to_chars general format; nan/inf (not valid JSON) are emitted as null.
TSF_DETERMINISM_CRITICAL
std::string json_double(double x);

// Streaming writer building a pretty-printed document in memory.
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("schema").value("tsf-tables/1");
//   w.key("cells").begin_array();
//   ...
//   w.end_array();
//   w.end_object();
//   std::string doc = w.take();  // ends with '\n'
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double x);
  JsonWriter& value(std::int64_t x);
  JsonWriter& value(std::uint64_t x);
  JsonWriter& value(int x) { return value(static_cast<std::int64_t>(x)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  // The finished document. Call once, after the last end_*; asserts that
  // every container was closed.
  std::string take();

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void newline_indent();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool pending_key_ = false;
};

}  // namespace tsf::common
