#include "common/trace_stream.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/diag.h"
#include "common/time.h"

namespace tsf::common {

namespace {

bool affects_interval(TraceKind kind) {
  switch (kind) {
    case TraceKind::kStart:
    case TraceKind::kResume:
    case TraceKind::kPreempt:
    case TraceKind::kComplete:
    case TraceKind::kAbort:
      return true;
    default:
      return false;
  }
}

bool opens_interval(TraceKind kind) {
  return kind == TraceKind::kStart || kind == TraceKind::kResume;
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamingVcd

std::size_t StreamingVcd::intern(std::string_view who) {
  const auto it = ids_.find(std::string(who));
  if (it != ids_.end()) return it->second;
  const std::size_t id = entities_.size();
  ids_.emplace(std::string(who), id);
  entities_.push_back(Entity{std::string(who), false, 0});
  return id;
}

void StreamingVcd::record(TimePoint at, TraceKind kind, std::string_view who,
                          std::int64_t /*value*/, std::string_view /*note*/) {
  // Intern on every kind: the header must list entities in first-appearance
  // order over the whole stream, exactly like Timeline::entities().
  const std::size_t id = intern(who);
  if (have_instant_ && at.ticks() != cur_at_) {
    TSF_ASSERT(at.ticks() > cur_at_,
               "trace stream went backwards: " << at.ticks() << " after "
                                               << cur_at_);
    flush();
  }
  cur_at_ = at.ticks();
  have_instant_ = true;
  if (affects_interval(kind)) held_.push_back(Held{kind, id});
}

bool StreamingVcd::retract(TimePoint at, TraceKind kind,
                           std::string_view who) {
  if (!have_instant_ || at.ticks() != cur_at_) return false;
  const auto it = ids_.find(std::string(who));
  if (it == ids_.end()) return false;
  for (auto h = held_.rbegin(); h != held_.rend(); ++h) {
    if (h->kind == kind && h->entity == it->second) {
      held_.erase(std::next(h).base());
      return true;
    }
  }
  return false;
}

void StreamingVcd::flush() {
  // Per entity, the records of one instant collapse to at most two edges: a
  // fall (the window open at instant start closed now) and a rise (a window
  // opened now is still open at instant end). Anything opened and closed
  // within the instant is a zero-length window, which busy_intervals drops.
  struct Touch {
    std::size_t entity;
    bool closed_nonzero = false;
  };
  std::vector<Touch> touched;
  for (const Held& h : held_) {
    Entity& e = entities_[h.entity];
    bool seen = false;
    for (const Touch& t : touched) {
      if (t.entity == h.entity) {
        seen = true;
        break;
      }
    }
    if (!seen) touched.push_back(Touch{h.entity});
    if (opens_interval(h.kind)) {
      TSF_ASSERT(!e.open,
                 "entity " << e.name << " started twice at " << cur_at_);
      e.open = true;
      e.begin = cur_at_;
    } else if (e.open) {
      e.open = false;
      if (cur_at_ > e.begin) {
        for (Touch& t : touched) {
          if (t.entity == h.entity) t.closed_nonzero = true;
        }
      }
    }
  }
  held_.clear();

  struct Edge {
    std::size_t signal;
    bool level;
  };
  std::vector<Edge> edges;
  for (const Touch& t : touched) {
    const Entity& e = entities_[t.entity];
    if (t.closed_nonzero) edges.push_back(Edge{t.entity, false});
    if (e.open && e.begin == cur_at_) edges.push_back(Edge{t.entity, true});
  }
  if (edges.empty()) return;
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.signal != b.signal) return a.signal < b.signal;
    return a.level < b.level;  // falling edge before rising at the same time
  });
  if (cur_at_ != emitted_at_) {
    emitted_at_ = cur_at_;
    body_ << '#' << cur_at_ << '\n';
  }
  for (const Edge& e : edges) {
    body_ << (e.level ? '1' : '0') << vcd_identifier(e.signal) << '\n';
  }
}

void StreamingVcd::finish() {
  if (!have_instant_) return;
  flush();
  have_instant_ = false;
}

std::string StreamingVcd::header() const {
  std::ostringstream oss;
  oss << "$timescale 1us $end\n$scope module tsf $end\n";
  for (std::size_t i = 0; i < entities_.size(); ++i) {
    std::string name = entities_[i].name;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    oss << "$var wire 1 " << vcd_identifier(i) << ' ' << name << " $end\n";
  }
  oss << "$upscope $end\n$enddefinitions $end\n#0\n";
  for (std::size_t i = 0; i < entities_.size(); ++i) {
    oss << '0' << vcd_identifier(i) << '\n';
  }
  return oss.str();
}

// ---------------------------------------------------------------------------
// StreamingTraceMetrics

std::size_t StreamingTraceMetrics::intern(std::string_view who) {
  const auto it = ids_.find(std::string(who));
  if (it != ids_.end()) return it->second;
  const std::size_t id = entities_.size();
  ids_.emplace(std::string(who), id);
  entities_.push_back(Entity{std::string(who), false, 0, {}});
  return id;
}

void StreamingTraceMetrics::record(TimePoint at, TraceKind kind,
                                   std::string_view who,
                                   std::int64_t /*value*/,
                                   std::string_view /*note*/) {
  const std::size_t id = intern(who);
  if (have_instant_ && at.ticks() != cur_at_) {
    TSF_ASSERT(at.ticks() > cur_at_,
               "trace stream went backwards: " << at.ticks() << " after "
                                               << cur_at_);
    flush();
  }
  cur_at_ = at.ticks();
  have_instant_ = true;
  held_.push_back(Held{kind, id});
}

bool StreamingTraceMetrics::retract(TimePoint at, TraceKind kind,
                                    std::string_view who) {
  if (!have_instant_ || at.ticks() != cur_at_) return false;
  const auto it = ids_.find(std::string(who));
  if (it == ids_.end()) return false;
  for (auto h = held_.rbegin(); h != held_.rend(); ++h) {
    if (h->kind == kind && h->entity == it->second) {
      held_.erase(std::next(h).base());
      ++retractions_;
      return true;
    }
  }
  return false;
}

void StreamingTraceMetrics::flush() {
  for (const Held& h : held_) {
    Entity& e = entities_[h.entity];
    ++records_;
    ++kind_counts_[static_cast<std::size_t>(h.kind)];
    if (!any_) {
      any_ = true;
      first_ticks_ = cur_at_;
    }
    last_ticks_ = cur_at_;
    switch (h.kind) {
      case TraceKind::kStart:
      case TraceKind::kResume:
        TSF_ASSERT(!e.open,
                   "entity " << e.name << " started twice at " << cur_at_);
        e.open = true;
        e.begin = cur_at_;
        break;
      case TraceKind::kPreempt:
      case TraceKind::kComplete:
      case TraceKind::kAbort:
        if (e.open) {
          e.open = false;
          busy_ticks_ += cur_at_ - e.begin;
        }
        break;
      default:
        break;
    }
    if (h.kind == TraceKind::kRelease) {
      e.outstanding_releases.push_back(cur_at_);
    } else if (h.kind == TraceKind::kComplete &&
               !e.outstanding_releases.empty()) {
      const std::int64_t released = e.outstanding_releases.front();
      e.outstanding_releases.pop_front();
      const double response_tu =
          static_cast<double>(cur_at_ - released) /
          static_cast<double>(Duration::kTicksPerTimeUnit);
      response_sketch_.add(response_tu);
      response_stats_.add(response_tu);
    }
  }
  held_.clear();
}

void StreamingTraceMetrics::finish() {
  if (!have_instant_) return;
  flush();
  have_instant_ = false;
}

}  // namespace tsf::common
