// Diagnostics: always-on assertions for engine invariants.
//
// The schedulers and capacity accounts in this library are full of invariants
// that must hold for the reproduction to be meaningful (capacity never
// negative, time never flows backwards, ...). These checks are cheap relative
// to the surrounding work, so they stay enabled in release builds.
#pragma once

#include <sstream>
#include <string>

namespace tsf::common {

[[noreturn]] void panic(const char* file, int line, const std::string& message);

}  // namespace tsf::common

// Assert `cond`; on failure aborts with file:line and the streamed message.
// Usage: TSF_ASSERT(x >= 0, "x must be non-negative, got " << x);
#define TSF_ASSERT(cond, msg)                                 \
  do {                                                        \
    if (!(cond)) {                                            \
      std::ostringstream tsf_assert_oss;                      \
      tsf_assert_oss << "assertion failed: " #cond " — "      \
                     << msg; /* NOLINT */                     \
      ::tsf::common::panic(__FILE__, __LINE__,                \
                           tsf_assert_oss.str());             \
    }                                                         \
  } while (false)

// Unconditional failure with message.
#define TSF_PANIC(msg)                                        \
  do {                                                        \
    std::ostringstream tsf_panic_oss;                         \
    tsf_panic_oss << msg; /* NOLINT */                        \
    ::tsf::common::panic(__FILE__, __LINE__,                  \
                         tsf_panic_oss.str());                \
  } while (false)
