#include "common/trace_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <vector>

namespace tsf::common {

namespace {

constexpr std::uint8_t kOpDefine = 0x01;
constexpr std::uint8_t kOpRecord = 0x02;
constexpr std::uint8_t kOpRetract = 0x03;

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out) : out_(out) {
  put_bytes(kTraceMagic, sizeof kTraceMagic);
}

void BinaryTraceWriter::put_bytes(const void* data, std::size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  bytes_ += n;
}

void BinaryTraceWriter::put_varint(std::uint64_t v) {
  char buf[10];
  std::size_t n = 0;
  do {
    std::uint8_t byte = v & 0x7f;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    buf[n++] = static_cast<char>(byte);
  } while (v != 0);
  put_bytes(buf, n);
}

void BinaryTraceWriter::put_delta(std::int64_t ticks) {
  put_varint(zigzag(ticks - last_ticks_));
  last_ticks_ = ticks;
}

std::uint64_t BinaryTraceWriter::intern(std::string_view who) {
  const auto it = ids_.find(std::string(who));
  if (it != ids_.end()) return it->second;
  const std::uint64_t id = ids_.size();
  ids_.emplace(std::string(who), id);
  const std::uint8_t op = kOpDefine;
  put_bytes(&op, 1);
  put_varint(who.size());
  put_bytes(who.data(), who.size());
  return id;
}

void BinaryTraceWriter::record(TimePoint at, TraceKind kind,
                               std::string_view who, std::int64_t value,
                               std::string_view note) {
  const std::uint64_t id = intern(who);
  const std::uint8_t op = kOpRecord;
  put_bytes(&op, 1);
  put_delta(at.ticks());
  put_varint(id);
  const auto k = static_cast<std::uint8_t>(kind);
  put_bytes(&k, 1);
  char v[8];
  const auto uv = static_cast<std::uint64_t>(value);
  for (std::size_t i = 0; i < 8; ++i) {
    v[i] = static_cast<char>((uv >> (8 * i)) & 0xff);
  }
  put_bytes(v, 8);
  put_varint(note.size());
  put_bytes(note.data(), note.size());
  ++records_;
}

bool BinaryTraceWriter::retract(TimePoint at, TraceKind kind,
                                std::string_view who) {
  const std::uint64_t id = intern(who);
  const std::uint8_t op = kOpRetract;
  put_bytes(&op, 1);
  put_delta(at.ticks());
  put_varint(id);
  const auto k = static_cast<std::uint8_t>(kind);
  put_bytes(&k, 1);
  return true;
}

namespace {

struct Reader {
  std::istream& in;
  std::string error;

  bool fail(const std::string& message) {
    error = message;
    return false;
  }

  bool get_byte(std::uint8_t* b) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) return false;
    *b = static_cast<std::uint8_t>(c);
    return true;
  }

  bool get_varint(std::uint64_t* v) {
    *v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      std::uint8_t byte;
      if (!get_byte(&byte)) return fail("truncated varint");
      *v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
    }
    return fail("varint overflow");
  }

  bool get_string(std::string* s) {
    std::uint64_t n;
    if (!get_varint(&n)) return false;
    if (n > (1u << 20)) return fail("string length implausible");
    s->resize(static_cast<std::size_t>(n));
    if (n > 0) {
      in.read(s->data(), static_cast<std::streamsize>(n));
      if (static_cast<std::uint64_t>(in.gcount()) != n) {
        return fail("truncated string");
      }
    }
    return true;
  }
};

}  // namespace

bool read_trace(std::istream& in, TraceSink* sink, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  char magic[sizeof kTraceMagic];
  in.read(magic, sizeof magic);
  if (in.gcount() != sizeof magic ||
      !std::equal(magic, magic + sizeof magic, kTraceMagic)) {
    return fail("not a tsf-trace/1 stream (bad magic)");
  }

  Reader r{in, {}};
  std::vector<std::string> entities;
  std::int64_t last_ticks = 0;
  std::string note;
  for (;;) {
    std::uint8_t op;
    if (!r.get_byte(&op)) break;  // clean EOF at an entry boundary
    if (op == kOpDefine) {
      std::string name;
      if (!r.get_string(&name)) return fail(r.error);
      entities.push_back(std::move(name));
      continue;
    }
    if (op != kOpRecord && op != kOpRetract) {
      return fail("unknown opcode " + std::to_string(op));
    }
    std::uint64_t delta, id;
    std::uint8_t kind;
    if (!r.get_varint(&delta)) return fail(r.error);
    if (!r.get_varint(&id)) return fail(r.error);
    if (id >= entities.size()) return fail("entity id out of range");
    if (!r.get_byte(&kind)) return fail("truncated entry");
    if (kind >= kTraceKindCount) return fail("kind out of range");
    last_ticks += unzigzag(delta);
    const TimePoint at = TimePoint::at_ticks(last_ticks);
    if (op == kOpRetract) {
      sink->retract(at, static_cast<TraceKind>(kind), entities[id]);
      continue;
    }
    std::uint64_t uv = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      std::uint8_t byte;
      if (!r.get_byte(&byte)) return fail("truncated value");
      uv |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    if (!r.get_string(&note)) return fail(r.error);
    sink->record(at, static_cast<TraceKind>(kind), entities[id],
                 static_cast<std::int64_t>(uv), note);
  }
  return true;
}

void write_trace(std::ostream& out, const Timeline& timeline) {
  BinaryTraceWriter writer(out);
  for (const auto& r : timeline.records()) {
    writer.record(r.at, r.kind, r.who, r.value, r.note);
  }
}

}  // namespace tsf::common
