// Composable trace sinks: fan-out and the streaming fingerprint.
//
// The streaming fingerprint is the proof-of-concept for the whole O(1)
// pipeline: fingerprint(Timeline) is an order-sensitive fold over the final
// record vector, and the engines mutate that vector in exactly one way —
// the VM retracts its provisional horizon-pause record, always at the
// current instant. Since records arrive in non-decreasing time order and
// retraction only ever targets the current (maximum) instant, a sink that
// buffers just the records of the current instant and folds older instants
// into a running hash reproduces the materialized fingerprint bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/trace.h"

namespace tsf::common {

// Fans every record/retract out to each attached sink (none owned). Used to
// keep the materialized Timeline while a streaming consumer listens in.
class TeeSink final : public TraceSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void record(TimePoint at, TraceKind kind, std::string_view who,
              std::int64_t value = 0, std::string_view note = {}) override {
    for (auto* sink : sinks_) sink->record(at, kind, who, value, note);
  }

  bool retract(TimePoint at, TraceKind kind, std::string_view who) override {
    bool any = false;
    for (auto* sink : sinks_) any = sink->retract(at, kind, who) || any;
    return any;
  }

 private:
  std::vector<TraceSink*> sinks_;
};

// Folds FNV-1a record by record; digest() is bit-identical to
// fingerprint(Timeline) over the same (post-retraction) stream. Memory is
// bounded by the records of the current instant, not the trace length.
class StreamingFingerprint final : public TraceSink {
 public:
  TSF_DETERMINISM_CRITICAL
  void record(TimePoint at, TraceKind kind, std::string_view who,
              std::int64_t value = 0, std::string_view note = {}) override;

  // Honoured only at the buffered (current) instant — the only retraction
  // the engines perform. Returns false for older instants.
  TSF_DETERMINISM_CRITICAL
  bool retract(TimePoint at, TraceKind kind, std::string_view who) override;

  // Records folded or buffered so far (post-retraction).
  std::uint64_t records() const { return folded_count_ + pending_.size(); }

  // The fingerprint of everything seen so far. Folds a copy of the pending
  // instant, so the sink stays usable afterwards.
  TSF_DETERMINISM_CRITICAL
  std::uint64_t digest() const;

 private:
  struct Pending {
    TraceKind kind;
    std::string who;
    std::int64_t value;
    std::string note;
  };

  void flush();

  std::uint64_t hash_ = kFnvOffsetBasis;
  std::uint64_t folded_count_ = 0;
  TimePoint pending_at_;
  std::vector<Pending> pending_;
};

}  // namespace tsf::common
