// Real-time-safety annotations — the static half of the repo's contracts.
//
// Every guarantee the runtime checkers enforce (the alloc interposer's
// zero-alloc window, TSan on the barrier hand-off, the forbidden-behavior
// checker, the fingerprint determinism suites) has a static counterpart
// here: a marker a maintainer puts on a function to state the contract, and
// a rule `tools/tsf_lint` enforces over the whole tree before anything
// runs. Under clang the markers also expand to [[clang::annotate]] so the
// contracts survive into the AST for IDE tooling; under every other
// compiler they compile away entirely — the tokens themselves are what the
// lint recognizes, so the checks do not depend on the compiler.
//
// The markers (see the static-rules table in FORBIDDEN_BEHAVIOR_CATALOG.md
// for the rule <-> runtime-checker mapping):
//
//   TSF_REALTIME             Bounded, non-blocking handler-path code: no
//                            heap traffic, no locks/sleeps, no IO, no
//                            throw — in the function or its direct callees
//                            (rules rt-alloc / rt-block / rt-io / rt-throw).
//   TSF_NO_ALLOC             The allocation subset of TSF_REALTIME, for
//                            code that may synchronize or report errors but
//                            must never touch the heap (rule rt-alloc).
//   TSF_DETERMINISM_CRITICAL Code whose output feeds fingerprints, trace
//                            streams or JSON documents: no wall clocks, no
//                            ambient randomness, no iteration over
//                            unordered containers (rules det-random /
//                            det-clock / det-unordered-iter).
//   TSF_BARRIER_ONLY         The epoch-boundary completion-step world of
//                            mp/threaded_runtime: runs on one thread while
//                            every worker is parked at the barrier. Must
//                            never be reachable from TSF_WORKER_PHASE code
//                            (rule phase-order).
//   TSF_WORKER_PHASE         Code running concurrently inside a core's
//                            epoch under `backend = threads`. The lint
//                            walks the call graph from every worker-phase
//                            root; reaching a barrier-only function is a
//                            phase-order violation unless the edge is in
//                            the reviewed allowlist (tools/tsf_lint.allow).
//
// Deliberate exceptions are written next to the offending line as
//
//   // TSF_LINT_ALLOW[rule-name]: justification
//
// (same line or the line above). The justification is mandatory — an empty
// one is itself a finding — and every suppression is recorded in the lint's
// JSON report, so exceptions stay reviewable instead of silent.
#pragma once

#if defined(__clang__)
#define TSF_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define TSF_ANNOTATE(tag)
#endif

#define TSF_REALTIME TSF_ANNOTATE("tsf::realtime")
#define TSF_NO_ALLOC TSF_ANNOTATE("tsf::no_alloc")
#define TSF_DETERMINISM_CRITICAL TSF_ANNOTATE("tsf::determinism_critical")
#define TSF_BARRIER_ONLY TSF_ANNOTATE("tsf::barrier_only")
#define TSF_WORKER_PHASE TSF_ANNOTATE("tsf::worker_phase")
