#include "common/diag.h"

#include <cstdlib>
#include <iostream>

namespace tsf::common {

void panic(const char* file, int line, const std::string& message) {
  std::cerr << "[tsf panic] " << file << ":" << line << ": " << message
            << std::endl;
  std::abort();
}

}  // namespace tsf::common
