// Deterministic, self-contained random number generation.
//
// The paper's evaluation (§6.1) fixes a seed "in order to generate the same
// systems on multiple platforms". std:: distributions are not guaranteed to
// produce identical streams across standard library implementations, so we
// carry our own generator (xoshiro256**, seeded through SplitMix64) and our
// own distribution transforms. Given a seed, every stream in this repository
// is identical on every platform.
#pragma once

#include <cstdint>

namespace tsf::common {

// Used to expand a single user seed into generator state (Blackman & Vigna's
// recommended seeding procedure for the xoshiro family).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 — fast, high-quality, and trivially reimplementable, which
// is exactly what a reproducibility-focused generator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform real in [0, 1) with 53 bits of randomness.
  double next_double();

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection
  // sampling, so the result is exactly uniform.
  std::uint64_t uniform_u64(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  // Normal deviate (Box–Muller; caches the spare deviate).
  double normal(double mean, double stddev);

  // Poisson deviate. Knuth's product method for small lambda, normal
  // approximation above 64 (well beyond anything the paper's workloads use).
  std::uint64_t poisson(double lambda);

  // Derives an independent, deterministic sub-stream (e.g. one per generated
  // system) without correlating with the parent stream.
  Rng split();

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace tsf::common
