#include "common/json_reader.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/json_writer.h"

namespace tsf::common {

const JsonValue* JsonValue::find(std::string_view key) const {
  const JsonValue* hit = nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) hit = &value;
  }
  return hit;
}

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after document");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_) *error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        if (!json_unescape(text_.substr(start, pos_ - start), out)) {
          return fail("bad escape in string");
        }
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      pos_ += (c == '\\' && pos_ + 1 < text_.size()) ? 2 : 1;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double x = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto res = std::from_chars(first, last, x);
    if (res.ec != std::errc() || res.ptr != last || first == last) {
      pos_ = start;
      return fail("bad number");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = x;
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("document too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        out->type_ = JsonValue::Type::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return fail("expected ':' after object key");
          }
          ++pos_;
          skip_ws();
          JsonValue value;
          if (!parse_value(&value, depth + 1)) return false;
          out->members_.emplace_back(std::move(key), std::move(value));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        out->type_ = JsonValue::Type::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          JsonValue value;
          if (!parse_value(&value, depth + 1)) return false;
          out->array_.push_back(std::move(value));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '"': {
        out->type_ = JsonValue::Type::kString;
        return parse_string(&out->string_);
      }
      case 't':
        if (!literal("true")) return fail("bad literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out->type_ = JsonValue::Type::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return JsonParser(text, error).parse(out);
}

}  // namespace tsf::common
