// Machine-checked forbidden-behavior invariants for the overload subsystem.
//
// The checker is a TraceSink: feed it the per-core record streams (live via
// core_sink(), or by replaying a materialized timeline after the run) plus
// the shed/takeover ledger, then call finish(). A conforming run produces
// zero violations BY CONSTRUCTION; the mutation tests in
// tests/common/invariant_checker_test.cc seed deliberately broken streams to
// prove the checker is not vacuously green. The catalog of checked behaviors
// lives in FORBIDDEN_BEHAVIOR_CATALOG.md at the repo root.
//
// Conventions the checker relies on (established by core/task_server and
// core/dover_queue):
//   kAdmit / kDemote / kShed   — who = job name, value = release ticks
//   kComplete / kAbort         — who = job name, value = release ticks
// Records whose name was never registered via add_job (periodic tasks,
// server fibers, annotations) are ignored by the firm-job checks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/trace.h"

namespace tsf::common {

class InvariantChecker : public TraceSink {
 public:
  InvariantChecker();
  ~InvariantChecker() override;  // CoreFeed is private to the .cc

  struct Violation {
    std::string name;    // one of the k* constants below
    std::string detail;  // human-readable context (core, job, instants)
  };

  // Violation names (stable identifiers; the mutation tests match these).
  static constexpr const char* kServeAfterShed = "serve-after-shed";
  static constexpr const char* kShedAdmittedWork = "shed-admitted-work";
  static constexpr const char* kShedLedgerMismatch = "shed-ledger-mismatch";
  static constexpr const char* kAdmittedDeadlineMiss =
      "admitted-deadline-miss-while-sheddable-served";

  // Registers a firm job: relative_deadline_ticks > 0 makes the job firm
  // (deadline = release + relative deadline); 0 registers a best-effort job
  // (tracked for serve-after-shed, exempt from the deadline-miss check).
  void add_job(std::string_view name, std::int64_t relative_deadline_ticks);

  // Tags subsequent record() calls with this core (default 0).
  void set_core(std::size_t core) { core_ = core; }

  // A sink view that feeds this checker with a fixed core tag regardless of
  // set_core — attach one per core for live (streaming) checking. Owned by
  // the checker; valid for its lifetime.
  TraceSink* core_sink(std::size_t core);

  // One shed (or takeover-admission) ledger entry. Every kShed trace record
  // must be matched by exactly one non-takeover ledger entry and vice versa.
  void note_shed_ledger(std::size_t core, std::string_view job,
                        std::int64_t release_ticks, bool takeover);

  // TraceSink. Records must arrive in non-decreasing time order per core.
  void record(TimePoint at, TraceKind kind, std::string_view who,
              std::int64_t value = 0, std::string_view note = {}) override;
  bool retract(TimePoint at, TraceKind kind, std::string_view who) override;

  // End-of-stream checks (ledger reconciliation + admitted-deadline-miss
  // scan) and every violation collected while streaming.
  std::vector<Violation> finish();

 private:
  struct CoreFeed;
  // Per (core, job, release) lifecycle state.
  struct JobState {
    bool admitted = false;       // currently in the privileged set
    bool ever_admitted = false;
    TimePoint last_admit;
    std::size_t shed_count = 0;  // kShed trace records seen
    bool completed = false;
    TimePoint completed_at;
    std::size_t ledger_sheds = 0;
    std::size_t ledger_takeovers = 0;
  };
  using Key = std::tuple<std::size_t, std::string, std::int64_t>;

  void add_violation(std::string_view name, std::string detail);
  void record_on_core(std::size_t core, TimePoint at, TraceKind kind,
                      std::string_view who, std::int64_t value,
                      std::string_view note);

  std::size_t core_ = 0;
  std::map<std::string, std::int64_t, std::less<>> deadlines_;
  std::map<Key, JobState> jobs_;
  // Completions of firm jobs that were NOT admitted at completion time —
  // "sheddable work served" — per core, in stream order.
  std::map<std::size_t, std::vector<std::pair<TimePoint, std::string>>>
      sheddable_served_;
  std::vector<Violation> violations_;
  std::vector<std::unique_ptr<CoreFeed>> feeds_;
};

}  // namespace tsf::common
