#include "common/trace_sink.h"

#include "common/diag.h"

namespace tsf::common {

void StreamingFingerprint::record(TimePoint at, TraceKind kind,
                                  std::string_view who, std::int64_t value,
                                  std::string_view note) {
  if (!pending_.empty() && at != pending_at_) {
    TSF_ASSERT(at > pending_at_,
               "streaming sink fed out of time order: " << at << " after "
                                                        << pending_at_);
    flush();
  }
  pending_at_ = at;
  pending_.push_back(
      Pending{kind, std::string(who), value, std::string(note)});
}

bool StreamingFingerprint::retract(TimePoint at, TraceKind kind,
                                   std::string_view who) {
  if (pending_.empty() || at != pending_at_) return false;
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    if (it->kind == kind && it->who == who) {
      pending_.erase(std::next(it).base());
      return true;
    }
  }
  return false;
}

void StreamingFingerprint::flush() {
  for (const auto& p : pending_) {
    hash_ = fnv1a_record(hash_, pending_at_, p.kind, p.who, p.value, p.note);
    ++folded_count_;
  }
  pending_.clear();
}

std::uint64_t StreamingFingerprint::digest() const {
  std::uint64_t h = hash_;
  for (const auto& p : pending_) {
    h = fnv1a_record(h, pending_at_, p.kind, p.who, p.value, p.note);
  }
  return h;
}

}  // namespace tsf::common
