#include "common/arena.h"

#include <bit>
#include <cstring>

#include "common/diag.h"

namespace tsf::common {

namespace {

constexpr std::size_t kSlabAlign = 4096;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t slab_bytes) : slab_bytes_(slab_bytes) {
  TSF_ASSERT(slab_bytes_ >= kMinClassBytes, "arena slab too small");
}

Arena::~Arena() {
  Slab* s = slabs_;
  while (s != nullptr) {
    Slab* next = s->next;
    ::operator delete(s, std::align_val_t{kSlabAlign});
    s = next;
  }
}

int Arena::class_of(std::size_t bytes) {
  if (bytes < kMinClassBytes) bytes = kMinClassBytes;
  const int shift = std::bit_width(bytes - 1) < kMinShift
                        ? kMinShift
                        : std::bit_width(bytes - 1);
  TSF_ASSERT(shift <= kMaxShift, "arena block of " << bytes << " bytes "
                                 << "exceeds the 64 MiB single-block ceiling");
  return shift - kMinShift;
}

Arena::Slab* Arena::new_slab(std::size_t min_capacity) {
  const std::size_t header = round_up(sizeof(Slab), kMinClassBytes);
  const std::size_t capacity =
      min_capacity > slab_bytes_ ? min_capacity : slab_bytes_;
  const std::size_t total = round_up(header + capacity, kSlabAlign);
  // TSF_LINT_ALLOW[rt-alloc]: slab growth point — warm arenas serve every
  // request from the freelists/bump pointer and never reach this line.
  void* raw = ::operator new(total, std::align_val_t{kSlabAlign});
  Slab* slab = static_cast<Slab*>(raw);
  slab->next = slabs_;
  slab->capacity = total - header;
  slab->used = 0;
  slabs_ = slab;
  ++slab_count_;
  bytes_reserved_ += total;
  return slab;
}

void* Arena::bump(std::size_t bytes, std::size_t align) {
  Slab* slab = slabs_;
  if (slab != nullptr) {
    const std::size_t header = round_up(sizeof(Slab), kMinClassBytes);
    const auto base = reinterpret_cast<std::uintptr_t>(slab) + header;
    const std::size_t aligned =
        round_up(base + slab->used, align) - base;
    if (aligned + bytes <= slab->capacity) {
      slab->used = aligned + bytes;
      return reinterpret_cast<void*>(base + aligned);
    }
  }
  // A fresh slab's data start is kSlabAlign-aligned (header is a multiple
  // of kMinClassBytes; bump from offset 0 keeps class-size multiples
  // aligned because `align` <= kSlabAlign and the header rounds to it
  // below). Over-provision so the block fits whatever the alignment costs.
  Slab* fresh = new_slab(bytes + align);
  const std::size_t header = round_up(sizeof(Slab), kMinClassBytes);
  const auto base = reinterpret_cast<std::uintptr_t>(fresh) + header;
  const std::size_t aligned = round_up(base, align) - base;
  fresh->used = aligned + bytes;
  return reinterpret_cast<void*>(base + aligned);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  TSF_ASSERT(align <= kSlabAlign && (align & (align - 1)) == 0,
             "unsupported arena alignment " << align);
  // The class is keyed on max(bytes, align) so a freelisted block of class
  // k is always at least min(2^k, 4096)-aligned and serves any same-class
  // request regardless of which alignment first carved it.
  const int cls = class_of(bytes > align ? bytes : align);
  if (FreeNode* node = free_[cls]) {
    free_[cls] = node->next;
    ++freelist_hits_;
    return node;
  }
  ++fresh_blocks_;
  const std::size_t block = class_bytes(cls);
  const std::size_t block_align = block < kSlabAlign ? block : kSlabAlign;
  return bump(block, block_align);
}

void Arena::deallocate(void* p, std::size_t bytes, std::size_t align) {
  if (p == nullptr) return;
  // Same class key as allocate, or an over-aligned block would drift into a
  // smaller class on release and never be found by its own class again.
  const int cls = class_of(bytes > align ? bytes : align);
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = free_[cls];
  free_[cls] = node;
}

void Arena::reset() {
  std::memset(free_, 0, sizeof(free_));
  for (Slab* s = slabs_; s != nullptr; s = s->next) s->used = 0;
}

}  // namespace tsf::common
