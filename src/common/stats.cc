#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace tsf::common {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  // Neumaier's variant of Kahan summation: exact running sum even when the
  // addend is larger than the running total.
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    sum_c_ += (sum_ - t) + x;
  } else {
    sum_c_ += (x - t) + sum_;
  }
  sum_ = t;
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

QuantileReservoir::QuantileReservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed) {}

void QuantileReservoir::add(double x) {
  ++count_;
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Algorithm R: replace a uniformly-chosen slot with probability cap/count.
  // SplitMix64 step — deterministic, independent of any global RNG.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const std::uint64_t slot = z % count_;
  if (slot < samples_.size()) {
    samples_[slot] = x;
    sorted_ = false;
  }
}

double QuantileReservoir::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1));
  return samples_[std::min(idx, samples_.size() - 1)];
}

}  // namespace tsf::common
