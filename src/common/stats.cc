#include "common/stats.h"

#include <cmath>

namespace tsf::common {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace tsf::common
