// Streaming trace consumers: VCD edges and run metrics computed online.
//
// Both sinks hold per-entity cursor state plus the records of the current
// instant only — never the trace — so they are O(entities) in memory for a
// trace of any length. The one-instant holdback exists for two reasons:
// zero-length busy windows (opened and closed at the same instant) must be
// dropped exactly like Timeline::busy_intervals drops them, and the VM's
// provisional horizon-pause kPreempt may be retracted before time advances.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/sketch.h"
#include "common/stats.h"
#include "common/trace.h"

namespace tsf::common {

// Streams VCD edge lines into `body` as virtual time advances. After
// finish(), header() + the body stream is byte-identical to
// to_vcd(timeline, timeline.entities()) for any engine-produced trace (the
// engines close every interval by the final horizon; an interval still open
// at finish is dropped by both paths only when it never closed).
class StreamingVcd final : public TraceSink {
 public:
  explicit StreamingVcd(std::ostream& body) : body_(body) {}

  TSF_DETERMINISM_CRITICAL
  void record(TimePoint at, TraceKind kind, std::string_view who,
              std::int64_t value = 0, std::string_view note = {}) override;
  TSF_DETERMINISM_CRITICAL
  bool retract(TimePoint at, TraceKind kind, std::string_view who) override;

  // Flushes the final instant. Call once, before header().
  TSF_DETERMINISM_CRITICAL
  void finish();

  // Declarations + the #0 zero-initialization block; prepend to the body.
  std::string header() const;

 private:
  struct Entity {
    std::string name;
    bool open = false;
    std::int64_t begin = 0;
  };
  struct Held {
    TraceKind kind;
    std::size_t entity;
  };

  std::size_t intern(std::string_view who);
  void flush();

  std::ostream& body_;
  std::vector<Entity> entities_;
  // Determinism audit: lookup-only intern table; iteration and all output
  // ordering go through `entities_` (insertion-ordered), so bucket order is
  // unobservable.
  std::unordered_map<std::string, std::size_t> ids_;
  std::int64_t cur_at_ = 0;
  bool have_instant_ = false;
  std::vector<Held> held_;  // interval-affecting records of cur_at_
  std::int64_t emitted_at_ = 0;
};

// Online counters and distributions over a trace stream: record/kind
// counts, makespan, per-entity busy time, and a response-time sketch built
// by pairing each entity's kRelease instants with its kComplete instants
// (FIFO per entity).
class StreamingTraceMetrics final : public TraceSink {
 public:
  explicit StreamingTraceMetrics(double sketch_accuracy = 0.01)
      : response_sketch_(sketch_accuracy) {}

  TSF_DETERMINISM_CRITICAL
  void record(TimePoint at, TraceKind kind, std::string_view who,
              std::int64_t value = 0, std::string_view note = {}) override;
  TSF_DETERMINISM_CRITICAL
  bool retract(TimePoint at, TraceKind kind, std::string_view who) override;

  // Folds the final instant into the aggregates. Call once, after the
  // stream ends.
  TSF_DETERMINISM_CRITICAL
  void finish();

  std::uint64_t records() const { return records_; }
  std::uint64_t retractions() const { return retractions_; }
  std::uint64_t kind_count(TraceKind kind) const {
    return kind_counts_[static_cast<std::size_t>(kind)];
  }
  std::size_t entity_count() const { return entities_.size(); }
  std::int64_t first_ticks() const { return first_ticks_; }
  std::int64_t last_ticks() const { return last_ticks_; }
  // Sum of closed busy windows over every entity, in ticks.
  std::int64_t busy_ticks() const { return busy_ticks_; }
  // Release-to-complete times (paired per entity, FIFO), in time units.
  const LogSketch& response_sketch() const { return response_sketch_; }
  const Accumulator& response_stats() const { return response_stats_; }

 private:
  struct Entity {
    std::string name;
    bool open = false;
    std::int64_t begin = 0;
    std::deque<std::int64_t> outstanding_releases;
  };
  struct Held {
    TraceKind kind;
    std::size_t entity;
  };

  std::size_t intern(std::string_view who);
  void flush();

  std::uint64_t records_ = 0;
  std::uint64_t retractions_ = 0;
  std::uint64_t kind_counts_[kTraceKindCount] = {};
  std::int64_t first_ticks_ = 0;
  std::int64_t last_ticks_ = 0;
  bool any_ = false;
  std::int64_t busy_ticks_ = 0;
  LogSketch response_sketch_;
  Accumulator response_stats_;
  std::vector<Entity> entities_;
  // Determinism audit: lookup-only intern table, same contract as
  // StreamingVcd::ids_ — aggregates and reports read `entities_` only.
  std::unordered_map<std::string, std::size_t> ids_;
  std::int64_t cur_at_ = 0;
  bool have_instant_ = false;
  std::vector<Held> held_;
};

}  // namespace tsf::common
