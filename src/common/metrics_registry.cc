#include "common/metrics_registry.h"

#include "common/json_writer.h"

namespace tsf::common {

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  const auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) {
    counters_[it->second].value += delta;
    return;
  }
  counter_index_.emplace(std::string(name), counters_.size());
  counters_.push_back(Counter{std::string(name), delta});
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) {
    gauges_[it->second].value = value;
    return;
  }
  gauge_index_.emplace(std::string(name), gauges_.size());
  gauges_.push_back(Gauge{std::string(name), value});
}

void MetricsRegistry::observe(std::string_view name, double value) {
  const auto it = histogram_index_.find(std::string(name));
  if (it != histogram_index_.end()) {
    histograms_[it->second].sketch.add(value);
    histograms_[it->second].stats.add(value);
    return;
  }
  histogram_index_.emplace(std::string(name), histograms_.size());
  histograms_.push_back(Histogram{std::string(name), LogSketch(), {}});
  histograms_.back().sketch.add(value);
  histograms_.back().stats.add(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counter_index_.find(std::string(name));
  return it == counter_index_.end() ? 0 : counters_[it->second].value;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauge_index_.find(std::string(name));
  return it == gauge_index_.end() ? 0.0 : gauges_[it->second].value;
}

const LogSketch* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histogram_index_.find(std::string(name));
  return it == histogram_index_.end() ? nullptr
                                      : &histograms_[it->second].sketch;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("tsf-metrics/1");
  w.key("counters").begin_object();
  for (const auto& c : counters_) {
    w.key(c.name).value(c.value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : gauges_) {
    w.key(g.name).value(g.value);
  }
  w.end_object();
  w.key("histograms").begin_array();
  for (const auto& h : histograms_) {
    w.begin_object();
    w.key("name").value(h.name);
    w.key("count").value(static_cast<std::uint64_t>(h.stats.count()));
    w.key("mean").value(h.stats.mean());
    w.key("min").value(h.stats.min());
    w.key("max").value(h.stats.max());
    w.key("p50").value(h.sketch.p50());
    w.key("p95").value(h.sketch.p95());
    w.key("p99").value(h.sketch.p99());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace tsf::common
