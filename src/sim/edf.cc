#include "sim/edf.h"

#include <algorithm>
#include <map>

#include "common/diag.h"

namespace tsf::sim {

using common::Duration;
using common::TimePoint;

double total_value(const std::vector<DynJob>& jobs) {
  double v = 0.0;
  for (const auto& j : jobs) v += j.effective_value();
  return v;
}

DynResult simulate_edf(std::vector<DynJob> jobs, const EdfOptions& options) {
  struct Live {
    std::size_t index;
    Duration remaining;
  };

  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].release < jobs[b].release;
                   });

  DynResult result;
  result.outcomes.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    result.outcomes[i].name = jobs[i].name;
  }

  std::vector<Live> ready;
  std::size_t next = 0;
  TimePoint now = TimePoint::origin();

  auto earliest_deadline = [&]() -> std::size_t {
    std::size_t best = ready.size();
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (best == ready.size() ||
          jobs[ready[i].index].deadline < jobs[ready[best].index].deadline) {
        best = i;
      }
    }
    return best;
  };

  while (next < order.size() || !ready.empty()) {
    // Admit everything released by now.
    while (next < order.size() && jobs[order[next]].release <= now) {
      ready.push_back(Live{order[next], jobs[order[next]].cost});
      ++next;
    }
    if (ready.empty()) {
      TSF_ASSERT(next < order.size(), "EDF ran out of work unexpectedly");
      now = jobs[order[next]].release;
      continue;
    }
    const std::size_t r = earliest_deadline();
    Live& run = ready[r];
    const DynJob& job = jobs[run.index];

    // Next decision point: completion, next arrival, or (firm) the running
    // job's deadline.
    TimePoint t = now + run.remaining;
    if (next < order.size()) t = common::min(t, jobs[order[next]].release);
    if (options.firm) t = common::min(t, job.deadline);

    run.remaining -= (t - now);
    now = t;

    if (run.remaining.is_zero()) {
      auto& out = result.outcomes[run.index];
      out.completed = true;
      out.completion = now;
      if (now <= job.deadline) {
        out.value_obtained = job.effective_value();
        result.total_value += out.value_obtained;
      } else {
        ++result.missed;
      }
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(r));
    } else if (options.firm && now >= job.deadline) {
      result.outcomes[run.index].abandoned = true;
      ++result.missed;
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(r));
    }
    // Firm mode: drop any ready job whose deadline passed while it waited.
    if (options.firm) {
      for (std::size_t i = ready.size(); i-- > 0;) {
        if (ready[i].remaining > Duration::zero() &&
            now >= jobs[ready[i].index].deadline) {
          result.outcomes[ready[i].index].abandoned = true;
          ++result.missed;
          ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
    }
  }
  return result;
}

}  // namespace tsf::sim
