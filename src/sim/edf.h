// Preemptive EDF over a finite job set (an RTSS policy).
#pragma once

#include <vector>

#include "sim/job.h"

namespace tsf::sim {

struct EdfOptions {
  // Firm deadlines: a job that reaches its deadline unfinished is abandoned
  // immediately (it obtains no value). With false, jobs run to completion
  // and the miss is only recorded — the classic soft-deadline EDF.
  bool firm = false;
};

// Simulates the job set to completion (or to the last deadline, for firm
// sets) and reports per-job outcomes, accrued value and misses.
DynResult simulate_edf(std::vector<DynJob> jobs, const EdfOptions& options = {});

}  // namespace tsf::sim
