// Job model for the dynamic-priority policies (EDF, D-OVER) of the RTSS
// simulator (§5: "three scheduling policies are implemented: Preemptive
// Fixed Priority, EDF and D-OVER").
#pragma once

#include <string>
#include <vector>

#include "common/time.h"

namespace tsf::sim {

// A one-shot job with a firm deadline and a value (the D-OVER currency; for
// EDF the value is informational).
struct DynJob {
  std::string name;
  common::TimePoint release;
  common::Duration cost;
  common::TimePoint deadline;  // absolute
  double value = 0.0;          // defaults to cost in tu when <= 0

  double effective_value() const {
    return value > 0.0 ? value : cost.to_tu();
  }
};

struct DynOutcome {
  std::string name;
  bool completed = false;
  bool abandoned = false;  // D-OVER gave up on it (or firm deadline passed)
  common::TimePoint completion = common::TimePoint::never();
  double value_obtained = 0.0;
};

struct DynResult {
  std::vector<DynOutcome> outcomes;
  double total_value = 0.0;
  std::size_t missed = 0;  // jobs not completed by their deadline
};

// Sum of values of all jobs (the clairvoyant upper bound when the set is
// feasible).
double total_value(const std::vector<DynJob>& jobs);

}  // namespace tsf::sim
