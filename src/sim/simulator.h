// RTSS re-creation, part 1: the preemptive fixed-priority engine with
// *theoretical* Polling / Deferrable servers (paper §5).
//
// "The simulated policies are the ones described in literature: this is not
// a simulation of our implementations. Moreover, it does not take into
// account the servers overhead, nor the execution overhead."
//
// Differences from the tsf::core implementation, by design:
//  - aperiodic service is resumable: a job can be suspended when capacity
//    runs out and resumed at the next replenishment (scenario 2's footnote);
//  - the queue is strict FIFO;
//  - capacity is consumed only by actual service — there is no overhead and
//    no Timed interruption, so the interrupted ratio is structurally zero.
#pragma once

#include <deque>
#include <vector>

#include "common/trace_sink.h"
#include "model/run_result.h"
#include "model/spec.h"

namespace tsf::sim {

class Simulator {
 public:
  explicit Simulator(model::SystemSpec spec);

  // Runs to spec.horizon and extracts per-job outcomes and the trace.
  model::RunResult run();

  // Adds a streaming consumer alongside the materialized result timeline;
  // every record the engine emits reaches both. The sink must outlive run().
  void add_trace_sink(common::TraceSink* sink) { trace_.add(sink); }

 private:
  struct PeriodicJob {
    std::size_t task = 0;  // index into spec_.periodic_tasks
    common::TimePoint release;
    common::Duration remaining;
  };
  struct AperiodicJob {
    std::size_t index = 0;  // index into spec_.aperiodic_jobs
    common::TimePoint release;
    common::Duration remaining;
    bool started = false;
    common::TimePoint start;
  };

  // Who holds the processor at `now_`: nobody, a periodic job, or the
  // server (serving the head aperiodic job).
  enum class Runner { kIdle, kPeriodic, kServer };

  void process_arrivals();
  void process_replenishment();
  // Highest-priority ready periodic job, if any (priority, then FIFO).
  PeriodicJob* top_periodic();
  bool server_eligible() const;
  common::TimePoint next_static_event() const;
  void switch_runner(Runner next, const std::string& label);
  void complete_aperiodic_head();

  model::SystemSpec spec_;
  common::TimePoint now_;
  model::RunResult result_;
  common::TeeSink trace_;  // fans out to result_.timeline + external sinks

  // Periodic state: per-task FIFO of released-but-unfinished jobs plus the
  // next release instant.
  std::vector<std::deque<PeriodicJob>> ready_periodic_;
  std::vector<common::TimePoint> next_release_;

  // Aperiodic state. The first timed_arrivals_ entries are timer-released
  // jobs sorted by release; channel-triggered jobs (which the simulator,
  // having no channel fabric, can never release) sit behind them so they
  // keep an outcome row but are never reached by the arrival cursor.
  std::vector<model::AperiodicJobSpec> arrivals_;
  std::size_t timed_arrivals_ = 0;
  std::size_t next_arrival_ = 0;
  std::deque<AperiodicJob> aqueue_;

  // Server state.
  common::Duration capacity_ = common::Duration::zero();
  common::TimePoint next_replenish_ = common::TimePoint::never();
  bool ps_in_instance_ = false;
  // Sporadic Server: amount-based replenishments. A service segment opens
  // when the server takes the processor and closes when it loses it; the
  // consumed amount returns one period after the segment began.
  struct SsReplenishment {
    common::TimePoint at;
    common::Duration amount;
  };
  std::deque<SsReplenishment> ss_replenishments_;
  bool ss_segment_open_ = false;
  common::TimePoint ss_segment_start_;
  common::Duration ss_segment_consumed_ = common::Duration::zero();
  void ss_close_segment();

  Runner runner_ = Runner::kIdle;
  std::string runner_label_;
};

// Convenience wrapper used by the experiment harness.
model::RunResult simulate(const model::SystemSpec& spec);

}  // namespace tsf::sim
