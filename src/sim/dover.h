// D-OVER (Koren & Shasha, 1995) — optimal on-line scheduling for overloaded
// firm-deadline systems; the third RTSS policy (§5).
//
// Behaviour implemented:
//  - While the admitted ("privileged") set is EDF-feasible, schedule EDF;
//    newly arrived jobs join it whenever the set stays feasible.
//  - A job that cannot be admitted waits. When its latest start time
//    (deadline - cost) expires, D-OVER makes the overload decision: the
//    waiting job z takes over only if
//        value(z) > (1 + sqrt(k)) * (value(running) + sum(privileged)),
//    in which case the current running and privileged jobs are demoted to
//    waiting; otherwise z is abandoned. k is the importance ratio (max/min
//    value density); this test yields D-OVER's optimal competitive factor
//    1/(1+sqrt(k))^2.
//  - Jobs whose LST passes while waiting are abandoned (they could no
//    longer complete even if started immediately).
//
// Simplification vs the original paper (documented in DESIGN.md): demoted
// jobs re-enter through the same LST machinery rather than through the
// original's ready-group bookkeeping; on an idle processor, waiting jobs are
// re-admitted in EDF order when feasible.
#pragma once

#include <vector>

#include "sim/job.h"

namespace tsf::sim {

struct DOverOptions {
  // Importance ratio k; <= 0 means "derive from the job set".
  double importance_ratio = 0.0;
};

DynResult simulate_dover(std::vector<DynJob> jobs,
                         const DOverOptions& options = {});

}  // namespace tsf::sim
