#include "sim/dover.h"

#include <algorithm>
#include <cmath>

#include "common/diag.h"

namespace tsf::sim {

using common::Duration;
using common::TimePoint;

namespace {

struct Live {
  std::size_t index;
  Duration remaining;
  bool privileged = false;
};

double density(const DynJob& j) {
  const double c = j.cost.to_tu();
  return c <= 0.0 ? 1.0 : j.effective_value() / c;
}

}  // namespace

DynResult simulate_dover(std::vector<DynJob> jobs,
                         const DOverOptions& options) {
  DynResult result;
  result.outcomes.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    result.outcomes[i].name = jobs[i].name;
  }
  if (jobs.empty()) return result;

  double k = options.importance_ratio;
  if (k <= 0.0) {
    double dmin = density(jobs[0]), dmax = density(jobs[0]);
    for (const auto& j : jobs) {
      dmin = std::min(dmin, density(j));
      dmax = std::max(dmax, density(j));
    }
    k = dmin <= 0.0 ? 1.0 : dmax / dmin;
  }
  const double takeover_factor = 1.0 + std::sqrt(k);

  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].release < jobs[b].release;
                   });

  std::vector<Live> live;  // privileged + waiting
  std::size_t next = 0;
  TimePoint now = TimePoint::origin();

  auto lst = [&](const Live& l) -> TimePoint {
    return jobs[l.index].deadline - l.remaining;
  };
  // Would the privileged set plus the running candidate be EDF-feasible if
  // `cand` joined? Processor-demand check over deadlines.
  auto feasible_with = [&](std::size_t cand_pos) {
    std::vector<const Live*> set;
    for (const auto& l : live) {
      if (l.privileged) set.push_back(&l);
    }
    set.push_back(&live[cand_pos]);
    std::sort(set.begin(), set.end(), [&](const Live* a, const Live* b) {
      return jobs[a->index].deadline < jobs[b->index].deadline;
    });
    Duration demand = Duration::zero();
    for (const Live* l : set) {
      demand += l->remaining;
      if (now + demand > jobs[l->index].deadline) return false;
    }
    return true;
  };
  auto abandon = [&](std::size_t pos) {
    result.outcomes[live[pos].index].abandoned = true;
    ++result.missed;
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(pos));
  };

  while (next < order.size() || !live.empty()) {
    // Admit arrivals; each becomes privileged if the set stays feasible.
    while (next < order.size() && jobs[order[next]].release <= now) {
      live.push_back(Live{order[next], jobs[order[next]].cost, false});
      live.back().privileged = feasible_with(live.size() - 1);
      ++next;
    }
    // Re-admit waiting jobs (EDF order) while feasible — covers both the
    // idle case and slack freed by completions.
    {
      std::vector<std::size_t> waiting;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (!live[i].privileged) waiting.push_back(i);
      }
      std::sort(waiting.begin(), waiting.end(),
                [&](std::size_t a, std::size_t b) {
                  return jobs[live[a].index].deadline <
                         jobs[live[b].index].deadline;
                });
      for (std::size_t w : waiting) {
        if (feasible_with(w)) live[w].privileged = true;
      }
    }

    if (live.empty()) {
      TSF_ASSERT(next < order.size(), "D-OVER ran out of work unexpectedly");
      now = jobs[order[next]].release;
      continue;
    }

    // Run the earliest-deadline privileged job.
    std::size_t run_pos = live.size();
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (!live[i].privileged) continue;
      if (run_pos == live.size() ||
          jobs[live[i].index].deadline < jobs[live[run_pos].index].deadline) {
        run_pos = i;
      }
    }

    // Next decision point: completion, arrival, or the earliest LST of a
    // waiting job.
    TimePoint t = TimePoint::never();
    if (run_pos < live.size()) t = now + live[run_pos].remaining;
    if (next < order.size()) t = common::min(t, jobs[order[next]].release);
    TimePoint first_lst = TimePoint::never();
    for (const auto& l : live) {
      if (!l.privileged) first_lst = common::min(first_lst, lst(l));
    }
    t = common::min(t, common::max(first_lst, now));
    TSF_ASSERT(!t.is_never(), "D-OVER has no next event");

    if (run_pos < live.size() && t > now) {
      live[run_pos].remaining -= (t - now);
    }
    now = t;

    // Completion?
    if (run_pos < live.size() && live[run_pos].remaining.is_zero()) {
      auto& out = result.outcomes[live[run_pos].index];
      out.completed = true;
      out.completion = now;
      out.value_obtained = jobs[live[run_pos].index].effective_value();
      result.total_value += out.value_obtained;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(run_pos));
      continue;
    }

    // LST interrupts for waiting jobs.
    for (std::size_t i = live.size(); i-- > 0;) {
      if (live[i].privileged || lst(live[i]) > now) continue;
      // Recompute the running job (indices shift as we erase).
      run_pos = live.size();
      double privileged_value = 0.0;
      for (std::size_t p = 0; p < live.size(); ++p) {
        if (!live[p].privileged) continue;
        privileged_value += jobs[live[p].index].effective_value();
        if (run_pos == live.size() ||
            jobs[live[p].index].deadline <
                jobs[live[run_pos].index].deadline) {
          run_pos = p;
        }
      }
      const double challenger = jobs[live[i].index].effective_value();
      if (challenger > takeover_factor * privileged_value) {
        // Takeover: demote everyone, promote the challenger. Demoted jobs
        // whose LST has now passed will be abandoned on the next sweep.
        for (auto& l : live) l.privileged = false;
        live[i].privileged = true;
      } else {
        abandon(i);
      }
    }
  }
  return result;
}

}  // namespace tsf::sim
