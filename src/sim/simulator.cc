#include "sim/simulator.h"

#include <algorithm>
#include <limits>

#include "common/diag.h"

namespace tsf::sim {

using common::Duration;
using common::TimePoint;
using common::TraceKind;

Simulator::Simulator(model::SystemSpec spec) : spec_(std::move(spec)) {
  trace_.add(&result_.timeline);
  TSF_ASSERT(!spec_.horizon.is_never(), "simulator needs a finite horizon");
  const auto policy = spec_.server.policy;
  TSF_ASSERT(policy != model::ServerPolicy::kNone || true,
             "unreachable");  // every policy is simulatable
  (void)policy;

  arrivals_ = spec_.aperiodic_jobs;
  // Triggered jobs are released only by a cross-core fire, and the
  // simulator has no channel fabric: park them behind the timed arrivals
  // so they end the run unserved instead of being released at their
  // (meaningless) default instant.
  const auto timed_end = std::stable_partition(
      arrivals_.begin(), arrivals_.end(),
      [](const model::AperiodicJobSpec& j) { return !j.triggered; });
  timed_arrivals_ =
      static_cast<std::size_t>(std::distance(arrivals_.begin(), timed_end));
  std::stable_sort(arrivals_.begin(), timed_end,
                   [](const model::AperiodicJobSpec& a,
                      const model::AperiodicJobSpec& b) {
                     return a.release < b.release;
                   });

  ready_periodic_.resize(spec_.periodic_tasks.size());
  next_release_.reserve(spec_.periodic_tasks.size());
  for (const auto& t : spec_.periodic_tasks) next_release_.push_back(t.start);

  const bool periodic_replenish = policy == model::ServerPolicy::kPolling ||
                                  policy == model::ServerPolicy::kDeferrable;
  next_replenish_ =
      periodic_replenish ? TimePoint::origin() : TimePoint::never();
  if (policy == model::ServerPolicy::kSporadic) {
    capacity_ = spec_.server.capacity;
  }
}

void Simulator::ss_close_segment() {
  if (!ss_segment_open_) return;
  ss_segment_open_ = false;
  if (ss_segment_consumed_ > Duration::zero()) {
    // Replenishment rule (Sprunt et al., simplified per DESIGN.md): the
    // consumed amount returns one period after the segment began.
    ss_replenishments_.push_back(
        {ss_segment_start_ + spec_.server.period, ss_segment_consumed_});
  }
  ss_segment_consumed_ = Duration::zero();
}

void Simulator::process_arrivals() {
  // Aperiodic arrivals first, then periodic releases: a Polling Server
  // activating at the same instant as an arrival polls a non-empty queue
  // (this matches the execution engine's kernel-timers-first rule).
  while (next_arrival_ < timed_arrivals_ &&
         arrivals_[next_arrival_].release <= now_) {
    const auto& spec = arrivals_[next_arrival_];
    AperiodicJob j;
    j.index = next_arrival_;
    j.release = spec.release;
    j.remaining = spec.cost;
    aqueue_.push_back(j);
    trace_.record(now_, TraceKind::kRelease, spec.name);
    ++next_arrival_;
  }
  for (std::size_t i = 0; i < spec_.periodic_tasks.size(); ++i) {
    while (next_release_[i] <= now_ && next_release_[i] < spec_.horizon) {
      PeriodicJob j;
      j.task = i;
      j.release = next_release_[i];
      j.remaining = spec_.periodic_tasks[i].cost;
      ready_periodic_[i].push_back(j);
      next_release_[i] += spec_.periodic_tasks[i].period;
    }
  }
}

void Simulator::process_replenishment() {
  while (!ss_replenishments_.empty() && ss_replenishments_.front().at <= now_) {
    capacity_ = common::min(capacity_ + ss_replenishments_.front().amount,
                            spec_.server.capacity);
    ss_replenishments_.pop_front();
    ++result_.server_activations;
    trace_.record(now_, TraceKind::kReplenish, "server", capacity_.count());
  }
  while (next_replenish_ <= now_) {
    ++result_.server_activations;
    if (spec_.server.policy == model::ServerPolicy::kPolling) {
      // "The PS is activated every period with its full capacity. If there
      // are aperiodic tasks pending, it serves them ... and then loses its
      // remaining capacity" — an empty poll forfeits the whole budget.
      ps_in_instance_ = !aqueue_.empty();
      capacity_ = ps_in_instance_ ? spec_.server.capacity : Duration::zero();
    } else {
      capacity_ = spec_.server.capacity;
    }
    trace_.record(now_, TraceKind::kReplenish, "server", capacity_.count());
    next_replenish_ += spec_.server.period;
  }
}

Simulator::PeriodicJob* Simulator::top_periodic() {
  PeriodicJob* best = nullptr;
  int best_prio = std::numeric_limits<int>::min();
  for (std::size_t i = 0; i < ready_periodic_.size(); ++i) {
    if (ready_periodic_[i].empty()) continue;
    PeriodicJob* j = &ready_periodic_[i].front();
    const int prio = spec_.periodic_tasks[i].priority;
    if (best == nullptr || prio > best_prio ||
        (prio == best_prio && j->release < best->release)) {
      best = j;
      best_prio = prio;
    }
  }
  return best;
}

bool Simulator::server_eligible() const {
  if (aqueue_.empty()) return false;
  switch (spec_.server.policy) {
    case model::ServerPolicy::kNone:
      return false;
    case model::ServerPolicy::kBackground:
      return true;
    case model::ServerPolicy::kPolling:
      return ps_in_instance_ && capacity_ > Duration::zero();
    case model::ServerPolicy::kDeferrable:
    case model::ServerPolicy::kSporadic:
      return capacity_ > Duration::zero();
    default:
      return false;
  }
}

TimePoint Simulator::next_static_event() const {
  TimePoint t = spec_.horizon;
  if (next_arrival_ < timed_arrivals_) {
    t = common::min(t, arrivals_[next_arrival_].release);
  }
  for (std::size_t i = 0; i < next_release_.size(); ++i) {
    if (next_release_[i] < spec_.horizon) {
      t = common::min(t, next_release_[i]);
    }
  }
  t = common::min(t, next_replenish_);
  if (!ss_replenishments_.empty()) {
    t = common::min(t, ss_replenishments_.front().at);
  }
  return t;
}

void Simulator::switch_runner(Runner next, const std::string& label) {
  if (runner_ == next && runner_label_ == label) return;
  if (runner_ != Runner::kIdle) {
    trace_.record(now_, TraceKind::kPreempt, runner_label_);
  }
  runner_ = next;
  runner_label_ = label;
  if (runner_ != Runner::kIdle) {
    trace_.record(now_, TraceKind::kResume, runner_label_);
  }
}

void Simulator::complete_aperiodic_head() {
  const AperiodicJob& j = aqueue_.front();
  model::JobOutcome& out = result_.jobs[j.index];
  out.served = true;
  out.start = j.start;
  out.completion = now_;
  aqueue_.pop_front();
  if (spec_.server.policy == model::ServerPolicy::kPolling &&
      aqueue_.empty()) {
    // Pending work exhausted: the Polling Server forfeits its remainder.
    ps_in_instance_ = false;
    capacity_ = Duration::zero();
    trace_.record(now_, TraceKind::kCapacity, "server", 0);
  }
}

model::RunResult Simulator::run() {
  now_ = TimePoint::origin();

  // Pre-create one outcome per aperiodic spec, in arrival order.
  result_.jobs.resize(arrivals_.size());
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    result_.jobs[i].name = arrivals_[i].name;
    result_.jobs[i].release = arrivals_[i].release;
    result_.jobs[i].cost = arrivals_[i].cost;
  }

  for (;;) {
    process_arrivals();
    process_replenishment();

    // Decide who runs. Ties go to the server (construct specs with a
    // distinct server priority to avoid relying on this).
    PeriodicJob* pj = top_periodic();
    const bool srv = server_eligible();
    Runner next = Runner::kIdle;
    std::string label;
    if (srv && (pj == nullptr ||
                spec_.server.priority >=
                    spec_.periodic_tasks[pj->task].priority)) {
      next = Runner::kServer;
      label = arrivals_[aqueue_.front().index].name;
    } else if (pj != nullptr) {
      next = Runner::kPeriodic;
      label = spec_.periodic_tasks[pj->task].name;
    }
    switch_runner(next, label);

    if (spec_.server.policy == model::ServerPolicy::kSporadic) {
      if (next == Runner::kServer && !ss_segment_open_) {
        ss_segment_open_ = true;
        ss_segment_start_ = now_;
      } else if (next != Runner::kServer) {
        ss_close_segment();
      }
    }

    if (next == Runner::kServer) {
      AperiodicJob& head = aqueue_.front();
      if (!head.started) {
        head.started = true;
        head.start = now_;
        ++result_.server_dispatches;
      }
    }

    // Earliest decision point.
    TimePoint t = next_static_event();
    if (next == Runner::kPeriodic) {
      t = common::min(t, now_ + pj->remaining);
    } else if (next == Runner::kServer) {
      Duration slice = aqueue_.front().remaining;
      if (spec_.server.policy != model::ServerPolicy::kBackground) {
        slice = common::min(slice, capacity_);
      }
      t = common::min(t, now_ + slice);
    }
    t = common::min(t, spec_.horizon);

    // Advance and account the service.
    const Duration delta = t - now_;
    if (delta > Duration::zero()) {
      if (next == Runner::kPeriodic) {
        pj->remaining -= delta;
      } else if (next == Runner::kServer) {
        aqueue_.front().remaining -= delta;
        if (spec_.server.policy != model::ServerPolicy::kBackground) {
          capacity_ -= delta;
        }
        if (spec_.server.policy == model::ServerPolicy::kSporadic) {
          ss_segment_consumed_ += delta;
        }
      }
      now_ = t;
    }

    // Completions at the new instant.
    if (next == Runner::kPeriodic && pj->remaining.is_zero()) {
      model::PeriodicOutcome out;
      out.task = spec_.periodic_tasks[pj->task].name;
      out.release = pj->release;
      out.completion = now_;
      out.deadline_missed =
          now_ - pj->release >
          spec_.periodic_tasks[pj->task].effective_deadline();
      result_.periodic_jobs.push_back(out);
      ready_periodic_[pj->task].pop_front();
    } else if (next == Runner::kServer) {
      if (aqueue_.front().remaining.is_zero()) {
        complete_aperiodic_head();
      } else if (spec_.server.policy == model::ServerPolicy::kPolling &&
                 capacity_.is_zero()) {
        // Capacity exhausted mid-job: the theoretical PS suspends the job
        // and resumes it at the next activation (scenario 2's footnote).
        ps_in_instance_ = false;
      }
    }

    if (now_ >= spec_.horizon) break;
  }
  switch_runner(Runner::kIdle, "");
  return std::move(result_);
}

model::RunResult simulate(const model::SystemSpec& spec) {
  return Simulator(spec).run();
}

}  // namespace tsf::sim
