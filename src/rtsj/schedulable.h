// Schedulable / Scheduler, including the paper's §3 proposal.
//
// The paper argues that RTSJ's centralised feasibility API is insufficient:
// "each schedulable object should have a getInterference() method, which
// would be called by the Scheduler feasibility methods". We implement that
// proposal: every Schedulable reports its worst-case CPU demand over a
// window, and the scheduler's response-time analysis is written against that
// interface — which is what lets a DeferrableTaskServer plug its modified
// (back-to-back) interference into an otherwise unchanged analysis.
#pragma once

#include <string>
#include <vector>

#include "rtsj/params.h"
#include "rtsj/time.h"

namespace tsf::rtsj {

class Schedulable {
 public:
  virtual ~Schedulable() = default;

  virtual const std::string& name() const = 0;
  virtual int priority() const = 0;
  virtual const ReleaseParameters* release_parameters() const = 0;

  // Deadline used by feasibility analysis (period for deadline-on-request
  // periodic entities).
  virtual RelativeTime deadline() const = 0;

  // Worst-case cost of one release.
  virtual RelativeTime cost() const = 0;

  // Worst-case CPU demand this schedulable can place on lower-priority work
  // within any window of the given length (the paper's getInterference()).
  virtual RelativeTime interference(RelativeTime window) const = 0;

  // Long-run processor utilisation.
  virtual double utilization() const = 0;
};

// Feasibility-set management (RTSJ's addToFeasibility protocol).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  void add_to_feasibility(const Schedulable* s);
  bool remove_from_feasibility(const Schedulable* s);
  const std::vector<const Schedulable*>& feasibility_set() const {
    return set_;
  }

  virtual bool is_feasible() const = 0;

 private:
  std::vector<const Schedulable*> set_;
};

// Preemptive fixed-priority scheduler (the RTSJ base scheduler). Feasibility
// here is response-time analysis over the interference interface; the
// closed-form tests live in tsf::analysis.
class PriorityScheduler : public Scheduler {
 public:
  static constexpr int kMinPriority = 1;
  static constexpr int kMaxPriority = 39;

  // Exact test for each member: iterate R = C + sum_{hp} interference(R)
  // over the strictly-higher-priority members, succeed if R <= deadline.
  bool is_feasible() const override;

  // Response time of member `s` against the current feasibility set;
  // RelativeTime::infinite() if the iteration diverges past the deadline.
  RelativeTime response_time(const Schedulable* s) const;
};

}  // namespace tsf::rtsj
