#include "rtsj/async_event.h"

#include <algorithm>

#include "common/diag.h"

namespace tsf::rtsj {

AsyncEventHandler::AsyncEventHandler(vm::VirtualMachine& machine,
                                     std::string name,
                                     PriorityParameters scheduling,
                                     Action action,
                                     AperiodicParameters release)
    : vm_(machine),
      name_(std::move(name)),
      scheduling_(scheduling),
      release_(release),
      action_(std::move(action)) {
  fiber_ = vm_.create_fiber(name_, scheduling_.priority(), [this] {
    for (;;) {
      if (fire_count_ == 0) {
        vm_.block();
        continue;
      }
      --fire_count_;
      handle_async_event();
      ++handled_;
    }
  });
}

void AsyncEventHandler::handle_async_event() {
  if (action_) action_(*this);
}

void AsyncEventHandler::release() {
  ++fire_count_;
  if (!fiber_started_) {
    fiber_started_ = true;
    vm_.start_fiber(fiber_);
  } else {
    vm_.unblock(fiber_);
  }
}

RelativeTime AsyncEventHandler::interference(RelativeTime window) const {
  (void)window;
  return RelativeTime::infinite();
}

AsyncEvent::AsyncEvent(vm::VirtualMachine& machine, std::string name)
    : vm_(machine), name_(std::move(name)) {}

void AsyncEvent::add_handler(AsyncEventHandler* handler) {
  TSF_ASSERT(handler != nullptr, "null handler added to " << name_);
  if (!handled_by(handler)) handlers_.push_back(handler);
}

void AsyncEvent::remove_handler(AsyncEventHandler* handler) {
  auto it = std::find(handlers_.begin(), handlers_.end(), handler);
  if (it != handlers_.end()) handlers_.erase(it);
}

bool AsyncEvent::handled_by(const AsyncEventHandler* handler) const {
  return std::find(handlers_.begin(), handlers_.end(), handler) !=
         handlers_.end();
}

void AsyncEvent::fire() {
  ++fires_;
  vm_.trace().record(vm_.now(), common::TraceKind::kFire, name_);
  for (AsyncEventHandler* h : handlers_) h->release();
}

}  // namespace tsf::rtsj
