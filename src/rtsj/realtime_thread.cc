#include "rtsj/realtime_thread.h"

#include <algorithm>

#include "common/diag.h"
#include "rtsj/async_event.h"
#include "rtsj/pgp.h"

namespace tsf::rtsj {

RealtimeThread::RealtimeThread(vm::VirtualMachine& machine, std::string name,
                               PriorityParameters scheduling,
                               PeriodicParameters release, Logic logic)
    : vm_(machine),
      name_(std::move(name)),
      scheduling_(scheduling),
      release_(release),
      logic_(std::move(logic)) {
  TSF_ASSERT(release_.period() > RelativeTime::zero(),
             "thread " << name_ << " needs a positive period");
  fiber_ = vm_.create_fiber(name_, scheduling_.priority(), [this] {
    if (release_.start() > vm_.now()) vm_.sleep_until(release_.start());
    if (logic_) logic_(*this);
  });
}

void RealtimeThread::start() { vm_.start_fiber(fiber_); }

void RealtimeThread::work(RelativeTime d) {
  if (group_ != nullptr) {
    group_->charged_work(vm_, d);
  } else {
    vm_.work(d);
  }
  consumed_this_release_ += d;
  // Cost overrun: the job consumed more service than its declared cost.
  if (overrun_handler_ != nullptr && !overrun_fired_this_release_ &&
      !release_.cost().is_zero() &&
      consumed_this_release_ > release_.cost()) {
    overrun_fired_this_release_ = true;
    ++cost_overruns_;
    overrun_handler_->release();
  }
}

bool RealtimeThread::wait_for_next_period() {
  // Deadline check happens at job completion, i.e. here.
  const AbsoluteTime released_at =
      release_.start() + release_.period() * release_index_;
  if (vm_.now() - released_at > release_.effective_deadline()) {
    ++deadline_misses_;
    if (miss_handler_ != nullptr) miss_handler_->release();
  }
  consumed_this_release_ = RelativeTime::zero();
  overrun_fired_this_release_ = false;
  // Next release: the first boundary at or after now that is beyond the
  // current release. Finishing exactly on a boundary is on time — the new
  // period begins at that very instant (a 100%-utilisation server must not
  // skip activations).
  const std::int64_t prev_index = release_index_;
  const RelativeTime since_start = vm_.now() - release_.start();
  const std::int64_t k_now =
      (since_start.count() + release_.period().count() - 1) /
      release_.period().count();
  release_index_ = std::max(prev_index + 1, k_now);
  const bool on_time = release_index_ == prev_index + 1;
  overruns_ += static_cast<std::uint64_t>(release_index_ - (prev_index + 1));
  vm_.sleep_until(release_.start() + release_.period() * release_index_);
  return on_time;
}

RelativeTime RealtimeThread::interference(RelativeTime window) const {
  if (window <= RelativeTime::zero()) return RelativeTime::zero();
  const std::int64_t releases =
      (window.count() + release_.period().count() - 1) /
      release_.period().count();
  return release_.cost() * releases;
}

}  // namespace tsf::rtsj
