#include "rtsj/vm/vm.h"

#include <algorithm>

#include "common/diag.h"

namespace tsf::rtsj::vm {

VirtualMachine::VirtualMachine(OverheadModel overhead) : overhead_(overhead) {
  // Charged by the event queue right before a taxed (kernel-timer) callback
  // fires — applied here once instead of wrapped into every scheduled
  // closure, which would heap-allocate on each timer re-arm.
  timers_.set_fire_tax([this] {
    if (!overhead_.timer_fire.is_zero()) add_overhead(overhead_.timer_fire);
  });
}

VirtualMachine::~VirtualMachine() {
  shutting_down_ = true;
  // Signal termination to every unfinished fiber BEFORE joining any thread.
  // Each released fiber observes shutting_down_ on wake (the semaphore
  // hand-off orders the flag write before the read), throws FiberShutdown
  // from its park point, unwinds, and exits without handing the baton to
  // anyone. Signalling first matters when a run aborted mid-horizon: a
  // fiber that is already unwinding (its state not yet kFinished when we
  // look) must never be joined while another parked fiber still waits for
  // its wake-up token, or teardown could stall behind a fiber whose exit
  // depends on state the parked one holds. Finished fibers get no token —
  // they are past their last acquire and only need the join.
  for (auto& f : fibers_) {
    if (f->thread_.joinable() && !f->finished()) f->sem_.release();
  }
  for (auto& f : fibers_) {
    if (f->thread_.joinable()) f->thread_.join();
  }
}

Fiber* VirtualMachine::create_fiber(std::string name, int priority,
                                    Fiber::Body body) {
  fibers_.push_back(std::unique_ptr<Fiber>(
      new Fiber(this, std::move(name), priority, std::move(body))));
  return fibers_.back().get();
}

void VirtualMachine::start_fiber(Fiber* fiber) {
  TSF_ASSERT(fiber->state_ == Fiber::State::kNew,
             "fiber " << fiber->name_ << " started twice");
  fiber->thread_ = std::thread([this, fiber] { fiber_main(fiber); });
  make_ready(fiber);
}

void VirtualMachine::fiber_main(Fiber* self) {
  self->sem_.acquire();  // wait for the first grant
  if (!shutting_down_) {
    try {
      self->body_();
    } catch (const FiberShutdown&) {
      // normal teardown path
    } catch (...) {
      // During teardown every released fiber unwinds concurrently, so
      // pending_error_ (single-threaded baton state) must not be touched —
      // the VM is being destroyed and nobody would rethrow it anyway.
      if (!shutting_down_ && !pending_error_) {
        pending_error_ = std::current_exception();
      }
    }
  }
  self->state_ = Fiber::State::kFinished;
  if (shutting_down_) return;  // the destructor owns the baton now
  close_trace(self);
  yield_to_scheduler(self);  // returns immediately for finished fibers
}

VirtualMachine::TimerHandle VirtualMachine::schedule_timer(
    TimePoint at, std::function<void()> fn) {
  TSF_ASSERT(at >= now_, "timer scheduled in the past: " << at << " < "
                                                         << now_);
  return timers_.schedule(at, std::move(fn), /*taxed=*/true);
}

VirtualMachine::TimerHandle VirtualMachine::schedule_silent(
    TimePoint at, std::function<void()> fn) {
  TSF_ASSERT(at >= now_, "timer scheduled in the past: " << at << " < "
                                                         << now_);
  return timers_.schedule(at, std::move(fn));
}

void VirtualMachine::run_until(TimePoint horizon) {
  TSF_ASSERT(current_ == nullptr, "run_until called from inside a fiber");
  TSF_ASSERT(horizon >= now_, "horizon " << horizon << " is in the past");
  if (frozen_ != nullptr && frozen_pause_recorded_) {
    // The previous run_until provisionally closed the frozen fiber's trace
    // in case it was the last one. It wasn't: retract the pause record so a
    // seamless resume leaves no mark of the epoch boundary.
    sink_->retract(now_, common::TraceKind::kPreempt, frozen_->label_);
    frozen_->trace_open_ = true;
    frozen_pause_recorded_ = false;
  }
  horizon_ = horizon;
  for (;;) {
    maybe_rethrow();
    process_due_timers();
    Fiber* next = pick_ready();
    if (next != nullptr && now_ < horizon_) {
      grant(next);
      main_sem_.acquire();  // baton comes back when no fiber can run
      continue;
    }
    if (now_ >= horizon_) break;
    const TimePoint t = timers_.next_time();
    if (t.is_never() || t > horizon_) {
      advance_to(horizon_);
      break;
    }
    advance_to(t);
  }
  if (frozen_ != nullptr && frozen_->trace_open_) {
    // Provisionally close the frozen fiber's busy interval at the horizon:
    // if this was the final run_until, the trace must not end mid-interval
    // (busy_intervals would drop it). A later run_until retracts this.
    close_trace(frozen_);
    frozen_pause_recorded_ = true;
  }
  maybe_rethrow();
}

void VirtualMachine::work(Duration d) {
  Fiber* self = current_;
  TSF_ASSERT(self != nullptr, "work() called from outside a fiber");
  if (shutting_down_) return;
  TSF_ASSERT(!d.is_negative(), "negative work " << d);
  Duration remaining = d;
  for (;;) {
    if (self->interrupt_pending_ && self->interruptible_depth_ > 0) {
      self->interrupt_pending_ = false;
      // TSF_LINT_ALLOW[rt-throw]: this is the RTSJ AIE emulation itself —
      // Timed/interrupt() delivers AsynchronouslyInterruptedException by
      // unwinding the fiber, exactly the semantics the paper's timed
      // dispatch relies on. The handler boundary catches it by design.
      throw AsyncInterrupt{};
    }
    if (Fiber* top = pick_ready();
        top != nullptr && top->priority_ > self->priority_) {
      // Preempted: go back to the ready set keeping our remaining demand.
      self->state_ = Fiber::State::kReady;
      close_trace(self);
      make_ready(self);
      yield_to_scheduler(self);
      continue;
    }
    if (remaining.is_zero()) return;

    const TimePoint progress_from = common::max(now_, overhead_until_);
    const TimePoint completion = progress_from + remaining;
    const TimePoint next_timer = timers_.next_time();

    if (common::min(completion, next_timer) > horizon_) {
      // Freeze at the horizon: bank the service earned on the way there,
      // stay ready, and let run_until() return. A later run_until resumes.
      // The trace stays open and no switch is charged — grant() undoes the
      // freeze seamlessly unless another fiber actually takes over.
      if (horizon_ > progress_from) remaining -= (horizon_ - progress_from);
      advance_to(horizon_);
      self->state_ = Fiber::State::kReady;
      frozen_ = self;
      // Keep the old ready_seq_: the running fiber was ahead of every
      // equal-priority waiter, and a driver pause must not rotate it
      // behind them (make_ready would hand out a fresh, larger seq).
      ready_.push_back(self);
      yield_to_scheduler(self);
      continue;
    }
    if (next_timer < completion) {
      if (next_timer > progress_from) remaining -= (next_timer - progress_from);
      advance_to(next_timer);
      process_due_timers();
      continue;
    }
    // No kernel activity strictly before completion: finish. A timer due at
    // exactly the completion instant fires at the next scheduling point, so
    // a handler whose demand exactly fits its Timed budget completes.
    advance_to(completion);
    remaining = Duration::zero();
  }
}

void VirtualMachine::sleep_until(TimePoint t) {
  Fiber* self = current_;
  TSF_ASSERT(self != nullptr, "sleep_until called from outside a fiber");
  if (shutting_down_) return;
  if (t <= now_) return;
  self->state_ = Fiber::State::kSleeping;
  schedule_silent(t, [this, self] {
    if (self->state_ == Fiber::State::kSleeping) {
      if (!overhead_.release.is_zero()) add_overhead(overhead_.release);
      make_ready(self);
    }
  });
  close_trace(self);
  yield_to_scheduler(self);
}

void VirtualMachine::block() {
  Fiber* self = current_;
  TSF_ASSERT(self != nullptr, "block called from outside a fiber");
  if (shutting_down_) return;
  self->state_ = Fiber::State::kBlocked;
  close_trace(self);
  yield_to_scheduler(self);
}

void VirtualMachine::unblock(Fiber* fiber) {
  if (fiber->state_ == Fiber::State::kBlocked) make_ready(fiber);
}

void VirtualMachine::set_label(std::string label) {
  Fiber* self = current_;
  TSF_ASSERT(self != nullptr, "set_label called from outside a fiber");
  if (label == self->label_) return;
  close_trace(self);
  self->label_ = std::move(label);
  open_trace(self);
}

void VirtualMachine::post_interrupt(Fiber* fiber) {
  fiber->interrupt_pending_ = true;
}

void VirtualMachine::clear_interrupt(Fiber* fiber) {
  fiber->interrupt_pending_ = false;
}

void VirtualMachine::enter_interruptible(Fiber* fiber) {
  TSF_ASSERT(fiber != nullptr, "not in a fiber");
  ++fiber->interruptible_depth_;
}

void VirtualMachine::exit_interruptible(Fiber* fiber) {
  // Tolerate teardown: a fiber frozen inside a Timed section unwinds its
  // RAII guards while the VM shuts down.
  if (shutting_down_) return;
  TSF_ASSERT(fiber != nullptr && fiber->interruptible_depth_ > 0,
             "unbalanced exit_interruptible");
  --fiber->interruptible_depth_;
}

// ---- internals ----

void VirtualMachine::advance_to(TimePoint t) {
  TSF_ASSERT(t >= now_, "time went backwards: " << t << " < " << now_);
  now_ = t;
}

void VirtualMachine::add_overhead(Duration d) {
  overhead_until_ = common::max(overhead_until_, now_) + d;
}

void VirtualMachine::process_due_timers() {
  while (!timers_.empty() && timers_.next_time() <= now_) {
    timers_.pop_and_run();
  }
}

Fiber* VirtualMachine::pick_ready() const {
  Fiber* best = nullptr;
  for (Fiber* f : ready_) {
    if (best == nullptr || f->priority_ > best->priority_ ||
        (f->priority_ == best->priority_ && f->ready_seq_ < best->ready_seq_)) {
      best = f;
    }
  }
  return best;
}

void VirtualMachine::remove_from_ready(Fiber* fiber) {
  auto it = std::find(ready_.begin(), ready_.end(), fiber);
  TSF_ASSERT(it != ready_.end(), "fiber " << fiber->name_ << " not ready");
  ready_.erase(it);
}

void VirtualMachine::make_ready(Fiber* fiber) {
  fiber->state_ = Fiber::State::kReady;
  fiber->ready_seq_ = next_ready_seq_++;
  ready_.push_back(fiber);
}

void VirtualMachine::grant(Fiber* fiber) {
  if (frozen_ != nullptr) {
    if (frozen_ == fiber) {
      // Resume a horizon-frozen fiber in place: same instant, trace still
      // open, no context switch — indistinguishable from never pausing.
      frozen_ = nullptr;
      remove_from_ready(fiber);
      fiber->state_ = Fiber::State::kRunning;
      current_ = fiber;
      fiber->sem_.release();
      return;
    }
    // Someone else runs first: the freeze was a real preemption after all.
    close_trace(frozen_);
    frozen_ = nullptr;
  }
  remove_from_ready(fiber);
  fiber->state_ = Fiber::State::kRunning;
  current_ = fiber;
  ++context_switches_;
  if (!overhead_.context_switch.is_zero()) {
    add_overhead(overhead_.context_switch);
  }
  open_trace(fiber);
  fiber->sem_.release();
}

void VirtualMachine::yield_to_scheduler(Fiber* self) {
  // Read our own state before handing the baton over: the instant grant()
  // (or the driver release) lets another thread run, that thread may
  // re-grant *this* fiber and write self->state_ — reading it afterwards
  // would race. Finished is final, so the early snapshot is equivalent.
  const bool finished = self->state_ == Fiber::State::kFinished;
  Fiber* next = (now_ < horizon_) ? pick_ready() : nullptr;
  if (next != nullptr) {
    grant(next);
  } else {
    current_ = nullptr;
    main_sem_.release();
  }
  if (finished) return;
  self->sem_.acquire();
  // TSF_LINT_ALLOW[rt-throw]: teardown-only unwind — FiberShutdown is
  // thrown exactly once per fiber, at VM destruction, to collapse the
  // fiber's stack; it can never fire during a live run_until.
  if (shutting_down_) throw FiberShutdown{};
  TSF_ASSERT(current_ == self, "woke without the baton: " << self->name_);
}

void VirtualMachine::open_trace(Fiber* fiber) {
  TSF_ASSERT(!fiber->trace_open_, "trace already open for " << fiber->name_);
  sink_->record(now_, common::TraceKind::kResume, fiber->label_);
  fiber->trace_open_ = true;
}

void VirtualMachine::close_trace(Fiber* fiber) {
  if (!fiber->trace_open_) return;
  sink_->record(now_, common::TraceKind::kPreempt, fiber->label_);
  fiber->trace_open_ = false;
}

void VirtualMachine::maybe_rethrow() {
  if (pending_error_) {
    auto e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace tsf::rtsj::vm
