// A deterministic virtual-time kernel for RTSJ-style schedulable objects.
//
// The paper's executions ran on the RTSJ Reference Implementation on an
// rtlinux kernel. This repository replaces that substrate with a virtual
// machine that reproduces the *mechanisms* the paper's evaluation depends on
// (preemptive fixed-priority scheduling, timers that preempt everything,
// wall-clock `Timed` budgets, asynchronous interruption) while being fully
// deterministic: scheduling decisions depend only on virtual time and
// insertion order, so every run is bit-reproducible and tests can assert
// exact timelines.
//
// Execution model
// ---------------
// Each schedulable entity is a Fiber: an OS thread that only ever runs while
// it holds the VM baton (exactly one fiber — or the driver inside
// run_until() — is unparked at any moment, enforced with binary semaphores).
// Fibers execute ordinary C++; only VirtualMachine::work() consumes virtual
// time. work(d) advances the global clock, yields to higher-priority fibers
// that become ready, and accounts for kernel overhead (timer fires, context
// switches) exactly the way the paper's §6/§7 discussion requires: overhead
// delays everyone, and a server that measures elapsed time around a handler
// will observe it.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/event_queue.h"
#include "common/time.h"
#include "common/trace.h"

namespace tsf::rtsj::vm {

using common::Duration;
using common::TimePoint;

// Kernel costs, all defaulting to zero (an ideal machine). The paper's
// execution results are driven by these being non-zero on a real VM.
struct OverheadModel {
  // CPU consumed, at effectively-infinite priority, each time a kernel timer
  // fires (the paper: "the timers charged to fire the asynchronous events").
  Duration timer_fire = Duration::zero();
  // CPU consumed on each fiber dispatch.
  Duration context_switch = Duration::zero();
  // CPU consumed when a sleeping fiber is released (period boundaries).
  Duration release = Duration::zero();
};

// Delivered inside a fiber at an interruptible point after post_interrupt().
// The RTSJ analogue is AsynchronouslyInterruptedException.
struct AsyncInterrupt {};

// Delivered inside a fiber when the VM shuts down; fibers must let it
// propagate out of their bodies.
struct FiberShutdown {};

class VirtualMachine;

class Fiber {
 public:
  using Body = std::function<void()>;

  const std::string& name() const { return name_; }
  int priority() const { return priority_; }
  bool finished() const { return state_ == State::kFinished; }

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

 private:
  friend class VirtualMachine;
  enum class State { kNew, kReady, kRunning, kBlocked, kSleeping, kFinished };

  Fiber(VirtualMachine* machine, std::string name, int priority, Body body)
      : vm_(machine),
        name_(std::move(name)),
        label_(name_),
        priority_(priority),
        body_(std::move(body)) {}

  VirtualMachine* vm_;
  std::string name_;
  std::string label_;  // current trace attribution (see set_label)
  int priority_;
  Body body_;
  State state_ = State::kNew;
  std::uint64_t ready_seq_ = 0;  // FIFO tie-break within a priority
  bool interrupt_pending_ = false;
  int interruptible_depth_ = 0;
  bool trace_open_ = false;
  std::binary_semaphore sem_{0};
  std::thread thread_;
};

class VirtualMachine {
 public:
  explicit VirtualMachine(OverheadModel overhead = {});
  ~VirtualMachine();
  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  TimePoint now() const { return now_; }
  const OverheadModel& overhead() const { return overhead_; }
  common::Timeline& timeline() { return timeline_; }
  std::uint64_t context_switches() const { return context_switches_; }

  // The sink every trace record goes through; the in-memory timeline by
  // default. All framework emission (servers, async events, the kernel
  // itself) must use this, not timeline(), so external consumers see the
  // whole stream.
  common::TraceSink& trace() { return *sink_; }

  // Replaces the trace sink (e.g. with a TeeSink feeding the timeline plus
  // streaming consumers); nullptr restores the internal timeline. The sink
  // must outlive the VM or be reset before destruction.
  void set_trace_sink(common::TraceSink* sink) {
    sink_ = sink != nullptr ? sink : &timeline_;
  }

  // ---- world construction (outside fibers or from fibers) ----

  // The fiber starts parked; start_fiber makes it ready.
  Fiber* create_fiber(std::string name, int priority, Fiber::Body body);
  void start_fiber(Fiber* fiber);

  using TimerHandle = common::EventQueue::Handle;
  // Kernel timer: charges OverheadModel::timer_fire when it expires, then
  // runs `fn` in kernel context (no fiber; may ready fibers, fire events).
  TimerHandle schedule_timer(TimePoint at, std::function<void()> fn);
  // Kernel event with no overhead charge (used for fiber wake-ups, whose
  // cost is modelled separately by OverheadModel::release).
  TimerHandle schedule_silent(TimePoint at, std::function<void()> fn);

  // Runs the world until `horizon`. Resumable: calling again with a later
  // horizon continues where the previous call stopped, with fibers exactly
  // where they were. Must be called from outside any fiber.
  void run_until(TimePoint horizon);

  // ---- calls made from inside fibers ----

  // Consume `d` units of CPU service. Yields to higher-priority fibers,
  // absorbs kernel overhead, and throws AsyncInterrupt if an interrupt is
  // delivered at an interruptible point. work(zero) is a pure
  // preemption/interruption point. TSF_REALTIME: this is the innermost
  // service loop — every handler tick passes through here.
  TSF_REALTIME
  void work(Duration d);
  void sleep_until(TimePoint t);
  // Park until another context calls unblock(). Not an interruptible point.
  void block();
  // Make a blocked fiber ready; no-op if the fiber is not blocked.
  void unblock(Fiber* fiber);

  Fiber* current() const { return current_; }

  // Re-attributes the current fiber's subsequent execution trace to `label`
  // (the framework labels server time vs individual handler service).
  void set_label(std::string label);

  // ---- asynchronous interruption (the RTSJ Timed/AIE machinery) ----
  void post_interrupt(Fiber* fiber);
  void clear_interrupt(Fiber* fiber);
  void enter_interruptible(Fiber* fiber);
  void exit_interruptible(Fiber* fiber);

 private:
  friend class Fiber;

  void fiber_main(Fiber* self);
  void advance_to(TimePoint t);
  void add_overhead(Duration d);
  void process_due_timers();
  Fiber* pick_ready() const;
  void remove_from_ready(Fiber* fiber);
  void make_ready(Fiber* fiber);
  void grant(Fiber* fiber);
  // Parks `self` (whose state has already been updated) and transfers the
  // baton to the next ready fiber or to the driver; returns when granted
  // again. Throws FiberShutdown if woken during teardown.
  void yield_to_scheduler(Fiber* self);
  void open_trace(Fiber* fiber);
  void close_trace(Fiber* fiber);
  void maybe_rethrow();

  OverheadModel overhead_;
  TimePoint now_ = TimePoint::origin();
  TimePoint overhead_until_ = TimePoint::origin();
  TimePoint horizon_ = TimePoint::origin();
  common::EventQueue timers_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<Fiber*> ready_;
  Fiber* current_ = nullptr;  // nullptr: the driver holds the baton
  // Fiber parked mid-work() by the run_until horizon, trace still open and
  // no context switch charged: resuming the world at the same instant is a
  // driver artifact, not a scheduling event, so a later run_until continues
  // it seamlessly (essential for lock-step multi-VM drivers, which pause
  // every epoch). If another fiber is granted first, the pause retroactively
  // becomes a real preemption (trace closed, switch charged as usual).
  // run_until exit provisionally records the pause (so a final timeline
  // never ends mid-interval); the next run_until retracts it.
  Fiber* frozen_ = nullptr;
  bool frozen_pause_recorded_ = false;
  std::binary_semaphore main_sem_{0};
  std::uint64_t next_ready_seq_ = 0;
  std::uint64_t context_switches_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr pending_error_;
  common::Timeline timeline_;
  common::TraceSink* sink_ = &timeline_;  // declared after timeline_
};

}  // namespace tsf::rtsj::vm
