// RTSJ timers: kernel-level alarms bound to an AsyncEvent.
//
// Timers fire in kernel context and — when the VM's OverheadModel says so —
// consume CPU at effectively-infinite priority. This is the "timers charged
// to fire the asynchronous events" interference source the paper's §7
// identifies as the main cause of its interrupted-task ratio.
#pragma once

#include "rtsj/async_event.h"
#include "rtsj/time.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj {

class Timer {
 public:
  Timer(vm::VirtualMachine& machine, AsyncEvent* event);
  virtual ~Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  virtual void start() = 0;
  // Stops the timer; a stopped timer never fires again until restarted.
  virtual void stop();
  bool active() const { return handle_.active(); }

 protected:
  vm::VirtualMachine& vm_;
  AsyncEvent* event_;
  vm::VirtualMachine::TimerHandle handle_;
};

// Fires the bound event once, at an absolute instant.
class OneShotTimer : public Timer {
 public:
  OneShotTimer(vm::VirtualMachine& machine, AbsoluteTime at,
               AsyncEvent* event);
  void start() override;

 private:
  AbsoluteTime at_;
};

// Fires the bound event at start, start+interval, start+2*interval, ...
class PeriodicTimer : public Timer {
 public:
  PeriodicTimer(vm::VirtualMachine& machine, AbsoluteTime start,
                RelativeTime interval, AsyncEvent* event);
  void start() override;

 private:
  void arm(AbsoluteTime at);

  AbsoluteTime start_;
  RelativeTime interval_;
};

}  // namespace tsf::rtsj
