#include "rtsj/timer.h"

#include "common/diag.h"

namespace tsf::rtsj {

Timer::Timer(vm::VirtualMachine& machine, AsyncEvent* event)
    : vm_(machine), event_(event) {
  TSF_ASSERT(event_ != nullptr, "timer needs an event");
}

Timer::~Timer() { handle_.cancel(); }

void Timer::stop() { handle_.cancel(); }

OneShotTimer::OneShotTimer(vm::VirtualMachine& machine, AbsoluteTime at,
                           AsyncEvent* event)
    : Timer(machine, event), at_(at) {}

void OneShotTimer::start() {
  handle_ = vm_.schedule_timer(at_, [this] { event_->fire(); });
}

PeriodicTimer::PeriodicTimer(vm::VirtualMachine& machine, AbsoluteTime start,
                             RelativeTime interval, AsyncEvent* event)
    : Timer(machine, event), start_(start), interval_(interval) {
  TSF_ASSERT(interval_ > RelativeTime::zero(),
             "periodic timer needs a positive interval");
}

void PeriodicTimer::start() { arm(start_); }

void PeriodicTimer::arm(AbsoluteTime at) {
  handle_ = vm_.schedule_timer(at, [this, at] {
    event_->fire();
    arm(at + interval_);
  });
}

}  // namespace tsf::rtsj
