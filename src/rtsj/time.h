// RTSJ time vocabulary.
//
// RTSJ's HighResolutionTime hierarchy (RelativeTime / AbsoluteTime) maps
// directly onto the repository-wide integer tick types; we alias rather than
// wrap so the whole codebase shares one arithmetic.
#pragma once

#include "common/time.h"

namespace tsf::rtsj {

using RelativeTime = common::Duration;
using AbsoluteTime = common::TimePoint;

}  // namespace tsf::rtsj
