// RTSJ Clock facade over the virtual machine's clock.
#pragma once

#include "rtsj/time.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj {

class Clock {
 public:
  explicit Clock(vm::VirtualMachine& machine) : vm_(machine) {}
  AbsoluteTime get_time() const { return vm_.now(); }

 private:
  vm::VirtualMachine& vm_;
};

}  // namespace tsf::rtsj
