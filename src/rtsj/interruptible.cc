#include "rtsj/interruptible.h"

#include "common/diag.h"

namespace tsf::rtsj {

namespace {
// Balances enter/exit even when AsyncInterrupt (or VM shutdown) unwinds the
// section. Captures the owning fiber: during teardown the guard runs on a
// fiber that no longer holds the baton.
class InterruptibleSection {
 public:
  InterruptibleSection(vm::VirtualMachine& machine, vm::Fiber* fiber)
      : vm_(machine), fiber_(fiber) {
    vm_.enter_interruptible(fiber_);
  }
  ~InterruptibleSection() { vm_.exit_interruptible(fiber_); }
  InterruptibleSection(const InterruptibleSection&) = delete;
  InterruptibleSection& operator=(const InterruptibleSection&) = delete;

 private:
  vm::VirtualMachine& vm_;
  vm::Fiber* fiber_;
};
}  // namespace

Timed::Timed(vm::VirtualMachine& machine, RelativeTime budget)
    : vm_(machine), budget_(budget) {
  TSF_ASSERT(!budget_.is_negative(), "negative Timed budget");
}

bool Timed::do_interruptible(Interruptible& logic) {
  vm::Fiber* self = vm_.current();
  TSF_ASSERT(self != nullptr, "do_interruptible outside a fiber");

  // The budget alarm is a kernel timer, so an expiring budget pays the
  // timer-fire overhead like any other timer (it is cancelled — and thus
  // free — when the section completes in time).
  auto alarm = vm_.schedule_timer(vm_.now() + budget_,
                                  [this, self] { vm_.post_interrupt(self); });
  bool interrupted = false;
  {
    InterruptibleSection section(vm_, self);
    try {
      logic.run(*this);
    } catch (const AsynchronouslyInterruptedException&) {
      interrupted = true;
    }
  }
  alarm.cancel();
  // A pending interrupt that raced with normal completion must not leak
  // into the caller's next interruptible section.
  vm_.clear_interrupt(self);
  if (interrupted) logic.interrupt_action(vm_.now());
  return !interrupted;
}

}  // namespace tsf::rtsj
