// ProcessingGroupParameters — the RTSJ facility the paper rejects (§1, §3).
//
// A PGP assigns a periodically replenished CPU budget to a *group* of
// schedulables. The paper's critique: no policy governs how the budget is
// spent, no schedulability analysis exists for it, and cost enforcement is
// optional (and absent in the Reference Implementation they used, making PGP
// "useless"). We implement PGP *with* enforcement so the ablation bench can
// demonstrate the critique empirically: PGP caps utilisation but, unlike a
// task server, provides neither ordering nor admission, so response times
// degrade unpredictably.
#pragma once

#include <cstdint>
#include <vector>

#include "rtsj/params.h"
#include "rtsj/time.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj {

class ProcessingGroupParameters : public ReleaseParameters {
 public:
  // cost = the group budget per period. When `enforce` is false the group
  // only accounts (the RI behaviour the paper observed).
  ProcessingGroupParameters(vm::VirtualMachine& machine, AbsoluteTime start,
                            RelativeTime period, RelativeTime cost,
                            bool enforce);

  RelativeTime period() const { return period_; }
  bool enforcing() const { return enforce_; }
  RelativeTime available() const { return budget_; }
  std::uint64_t replenish_count() const { return replenishments_; }
  // Total CPU charged against the group since construction.
  RelativeTime total_charged() const { return charged_; }

  // Performs `d` units of work on behalf of the calling fiber, charging the
  // group. With enforcement on, the fiber stalls (blocks) whenever the
  // budget is exhausted and resumes after the next replenishment.
  void charged_work(vm::VirtualMachine& machine, RelativeTime d);

 private:
  void arm_replenish(AbsoluteTime at);

  vm::VirtualMachine& vm_;
  RelativeTime period_;
  bool enforce_;
  RelativeTime budget_;
  RelativeTime charged_ = RelativeTime::zero();
  std::uint64_t replenishments_ = 0;
  std::vector<vm::Fiber*> stalled_;
};

}  // namespace tsf::rtsj
