// RealtimeThread: a periodic schedulable entity on the virtual machine.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rtsj/params.h"
#include "rtsj/schedulable.h"
#include "rtsj/time.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj {

class ProcessingGroupParameters;
class AsyncEventHandler;

// A periodic real-time thread. The logic callback is the thread body; it
// runs on a VM fiber and typically loops { work(cost);
// wait_for_next_period(); }. Execution does not begin before
// PeriodicParameters::start().
class RealtimeThread : public Schedulable {
 public:
  using Logic = std::function<void(RealtimeThread&)>;

  RealtimeThread(vm::VirtualMachine& machine, std::string name,
                 PriorityParameters scheduling, PeriodicParameters release,
                 Logic logic);

  // Makes the thread ready (it parks until start() time on its own).
  void start();

  // --- calls for use inside the thread body ---

  // Consume CPU service; honours the thread's processing group budget when
  // one is attached (see ProcessingGroupParameters).
  void work(RelativeTime d);
  // Blocks until the next period boundary. Returns false when the boundary
  // had already passed (an overrun release, RTSJ's deadline-miss signal).
  bool wait_for_next_period();
  AbsoluteTime now() const { return vm_.now(); }
  // Index of the current release, starting at 0 for the first.
  std::int64_t release_index() const { return release_index_; }

  vm::VirtualMachine& machine() { return vm_; }
  vm::Fiber* fiber() { return fiber_; }

  void set_processing_group(ProcessingGroupParameters* group) {
    group_ = group;
  }

  // RTSJ ReleaseParameters attachments: fired (released) when a job
  // completes after its deadline / consumes more than its declared cost.
  // Both are optional and fire at most once per release.
  void set_deadline_miss_handler(AsyncEventHandler* handler) {
    miss_handler_ = handler;
  }
  void set_cost_overrun_handler(AsyncEventHandler* handler) {
    overrun_handler_ = handler;
  }

  std::uint64_t overrun_count() const { return overruns_; }
  std::uint64_t deadline_miss_count() const { return deadline_misses_; }
  std::uint64_t cost_overrun_count() const { return cost_overruns_; }

  // --- Schedulable ---
  const std::string& name() const override { return name_; }
  int priority() const override { return scheduling_.priority(); }
  const ReleaseParameters* release_parameters() const override {
    return &release_;
  }
  RelativeTime deadline() const override {
    return release_.effective_deadline();
  }
  RelativeTime cost() const override { return release_.cost(); }
  // Periodic interference: ceil(window / T) releases of cost C.
  RelativeTime interference(RelativeTime window) const override;
  double utilization() const override {
    return release_.cost().to_tu() / release_.period().to_tu();
  }

 private:
  vm::VirtualMachine& vm_;
  std::string name_;
  PriorityParameters scheduling_;
  PeriodicParameters release_;
  Logic logic_;
  vm::Fiber* fiber_ = nullptr;
  std::int64_t release_index_ = 0;
  std::uint64_t overruns_ = 0;
  ProcessingGroupParameters* group_ = nullptr;
  AsyncEventHandler* miss_handler_ = nullptr;
  AsyncEventHandler* overrun_handler_ = nullptr;
  RelativeTime consumed_this_release_ = RelativeTime::zero();
  bool overrun_fired_this_release_ = false;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t cost_overruns_ = 0;
};

}  // namespace tsf::rtsj
