#include "rtsj/schedulable.h"

#include <algorithm>

#include "common/diag.h"

namespace tsf::rtsj {

void Scheduler::add_to_feasibility(const Schedulable* s) {
  if (std::find(set_.begin(), set_.end(), s) == set_.end()) set_.push_back(s);
}

bool Scheduler::remove_from_feasibility(const Schedulable* s) {
  auto it = std::find(set_.begin(), set_.end(), s);
  if (it == set_.end()) return false;
  set_.erase(it);
  return true;
}

RelativeTime PriorityScheduler::response_time(const Schedulable* s) const {
  const RelativeTime cost = s->cost();
  if (cost.is_zero()) return RelativeTime::zero();
  const RelativeTime bound = s->deadline().is_zero()
                                 ? RelativeTime::time_units(1'000'000)
                                 : s->deadline();
  RelativeTime r = cost;
  for (;;) {
    RelativeTime next = cost;
    for (const Schedulable* other : feasibility_set()) {
      if (other == s || other->priority() <= s->priority()) continue;
      next += other->interference(r);
    }
    if (next == r) return r;
    if (next > bound) return RelativeTime::infinite();
    r = next;
  }
}

bool PriorityScheduler::is_feasible() const {
  for (const Schedulable* s : feasibility_set()) {
    const RelativeTime d = s->deadline();
    if (d.is_zero()) continue;  // no deadline: nothing to check
    if (response_time(s) > d) return false;
  }
  return true;
}

}  // namespace tsf::rtsj
