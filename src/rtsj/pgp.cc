#include "rtsj/pgp.h"

#include "common/diag.h"

namespace tsf::rtsj {

ProcessingGroupParameters::ProcessingGroupParameters(
    vm::VirtualMachine& machine, AbsoluteTime start, RelativeTime period,
    RelativeTime cost, bool enforce)
    : ReleaseParameters(cost, period),
      vm_(machine),
      period_(period),
      enforce_(enforce),
      budget_(cost) {
  TSF_ASSERT(period_ > RelativeTime::zero(), "PGP needs a positive period");
  TSF_ASSERT(cost >= RelativeTime::zero(), "PGP needs a non-negative cost");
  arm_replenish(start + period_);
}

void ProcessingGroupParameters::arm_replenish(AbsoluteTime at) {
  vm_.schedule_silent(at, [this, at] {
    budget_ = cost();
    ++replenishments_;
    for (vm::Fiber* f : stalled_) vm_.unblock(f);
    stalled_.clear();
    arm_replenish(at + period_);
  });
}

void ProcessingGroupParameters::charged_work(vm::VirtualMachine& machine,
                                             RelativeTime d) {
  TSF_ASSERT(&machine == &vm_, "PGP used across virtual machines");
  RelativeTime left = d;
  while (left > RelativeTime::zero()) {
    if (budget_.is_zero() && enforce_) {
      // Budget exhausted: stall until the next replenishment.
      stalled_.push_back(vm_.current());
      vm_.block();
      continue;
    }
    const RelativeTime chunk =
        enforce_ ? common::min(left, budget_) : left;
    vm_.work(chunk);
    // Charged as pure service time; preemption while working does not
    // consume the group's budget (PGP meters CPU, unlike Timed).
    charged_ += chunk;
    if (enforce_) budget_ -= chunk;
    left -= chunk;
  }
}

}  // namespace tsf::rtsj
