// RTSJ scheduling and release parameters.
//
// These mirror the RTSJ classes the paper's framework builds on (Figure 1):
// SchedulingParameters/PriorityParameters, and the ReleaseParameters
// hierarchy. TaskServerParameters (the paper's extension) lives in
// core/task_server_parameters.h and derives from ReleaseParameters here.
#pragma once

#include "rtsj/time.h"

namespace tsf::rtsj {

class SchedulingParameters {
 public:
  virtual ~SchedulingParameters() = default;
};

// Fixed priority; larger values are more important (RTSJ convention).
class PriorityParameters : public SchedulingParameters {
 public:
  explicit PriorityParameters(int priority) : priority_(priority) {}
  int priority() const { return priority_; }

 private:
  int priority_;
};

class ReleaseParameters {
 public:
  ReleaseParameters() = default;
  ReleaseParameters(RelativeTime cost, RelativeTime deadline)
      : cost_(cost), deadline_(deadline) {}
  virtual ~ReleaseParameters() = default;

  RelativeTime cost() const { return cost_; }
  RelativeTime deadline() const { return deadline_; }
  void set_cost(RelativeTime c) { cost_ = c; }
  void set_deadline(RelativeTime d) { deadline_ = d; }

 private:
  RelativeTime cost_ = RelativeTime::zero();
  RelativeTime deadline_ = RelativeTime::zero();
};

class PeriodicParameters : public ReleaseParameters {
 public:
  PeriodicParameters(AbsoluteTime start, RelativeTime period,
                     RelativeTime cost = RelativeTime::zero(),
                     RelativeTime deadline = RelativeTime::zero())
      : ReleaseParameters(cost, deadline), start_(start), period_(period) {}

  AbsoluteTime start() const { return start_; }
  RelativeTime period() const { return period_; }
  RelativeTime effective_deadline() const {
    return deadline().is_zero() ? period_ : deadline();
  }

 private:
  AbsoluteTime start_;
  RelativeTime period_;
};

class AperiodicParameters : public ReleaseParameters {
 public:
  using ReleaseParameters::ReleaseParameters;
};

class SporadicParameters : public AperiodicParameters {
 public:
  SporadicParameters(RelativeTime min_interarrival, RelativeTime cost,
                     RelativeTime deadline = RelativeTime::zero())
      : AperiodicParameters(cost, deadline),
        min_interarrival_(min_interarrival) {}

  RelativeTime min_interarrival() const { return min_interarrival_; }

 private:
  RelativeTime min_interarrival_;
};

}  // namespace tsf::rtsj
