// Timed / Interruptible / AsynchronouslyInterruptedException.
//
// This is the machinery the paper uses to bound a handler's execution (§4):
// "This class allows us to execute the run() method of an Interruptible
// object for a given maximum amount of time." The budget is *wall-clock*
// (virtual) time, exactly like RTSJ's Timed — which is why kernel overhead
// that preempts a handler still drains its budget, the effect behind the
// paper's interrupted-aperiodics ratio.
#pragma once

#include <functional>

#include "rtsj/time.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj {

// The exception delivered into interruptible sections.
using AsynchronouslyInterruptedException = vm::AsyncInterrupt;

class Timed;

class Interruptible {
 public:
  virtual ~Interruptible() = default;
  // The interruptible section. Call Timed::work() (or VM work) inside;
  // those are the interruption points.
  virtual void run(Timed& timed) = 0;
  // Called after an interruption, at the instant the budget expired.
  virtual void interrupt_action(AbsoluteTime at) { (void)at; }
};

// Adapts a lambda to Interruptible.
class InterruptibleFn : public Interruptible {
 public:
  using Run = std::function<void(Timed&)>;
  explicit InterruptibleFn(Run run) : run_(std::move(run)) {}
  void run(Timed& timed) override { run_(timed); }

 private:
  Run run_;
};

class Timed {
 public:
  Timed(vm::VirtualMachine& machine, RelativeTime budget);

  // Runs logic.run() with the configured wall-clock budget. Returns true on
  // normal completion, false when the budget expired and the section was
  // interrupted (after invoking logic.interrupt_action()).
  bool do_interruptible(Interruptible& logic);

  // CPU service inside the section; the canonical interruption point.
  void work(RelativeTime d) { vm_.work(d); }

  vm::VirtualMachine& machine() { return vm_; }
  RelativeTime budget() const { return budget_; }

 private:
  vm::VirtualMachine& vm_;
  RelativeTime budget_;
};

}  // namespace tsf::rtsj
