// AsyncEvent / AsyncEventHandler — the RTSJ event machinery the paper's
// framework extends (§3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rtsj/params.h"
#include "rtsj/schedulable.h"
#include "rtsj/time.h"
#include "rtsj/vm/vm.h"

namespace tsf::rtsj {

class AsyncEvent;

// A handler bound to its own fiber (RTSJ BoundAsyncEventHandler semantics:
// one dedicated schedulable per handler). Each fire() of a bound event
// increments the fire count; the fiber drains it, invoking
// handle_async_event() once per fire.
class AsyncEventHandler : public Schedulable {
 public:
  using Action = std::function<void(AsyncEventHandler&)>;

  AsyncEventHandler(vm::VirtualMachine& machine, std::string name,
                    PriorityParameters scheduling, Action action,
                    AperiodicParameters release = AperiodicParameters());
  ~AsyncEventHandler() override = default;

  // Override in subclasses, or pass an Action; the default runs the action.
  virtual void handle_async_event();

  // Registers one release. Starts the backing fiber lazily on first use so
  // that unfired handlers cost nothing (also keeps the t=0 context-switch
  // count independent of how many handlers exist).
  void release();

  std::uint64_t pending_fire_count() const { return fire_count_; }
  std::uint64_t handled_count() const { return handled_; }
  vm::VirtualMachine& machine() { return vm_; }
  vm::Fiber* fiber() { return fiber_; }

  // --- Schedulable ---
  const std::string& name() const override { return name_; }
  int priority() const override { return scheduling_.priority(); }
  const ReleaseParameters* release_parameters() const override {
    return &release_;
  }
  RelativeTime deadline() const override { return release_.deadline(); }
  RelativeTime cost() const override { return release_.cost(); }
  // Without a minimum interarrival time an aperiodic handler's worst-case
  // interference is unbounded; the paper's point is exactly that such
  // handlers should be placed under a task server instead.
  RelativeTime interference(RelativeTime window) const override;
  double utilization() const override { return 0.0; }

 private:
  vm::VirtualMachine& vm_;
  std::string name_;
  PriorityParameters scheduling_;
  AperiodicParameters release_;
  Action action_;
  vm::Fiber* fiber_ = nullptr;
  bool fiber_started_ = false;
  std::uint64_t fire_count_ = 0;
  std::uint64_t handled_ = 0;
};

// An asynchronous event: fire() releases every attached handler. fire() may
// be called from kernel context (timers) or from any fiber.
class AsyncEvent {
 public:
  AsyncEvent(vm::VirtualMachine& machine, std::string name);
  virtual ~AsyncEvent() = default;

  void add_handler(AsyncEventHandler* handler);
  void remove_handler(AsyncEventHandler* handler);
  bool handled_by(const AsyncEventHandler* handler) const;

  virtual void fire();

  const std::string& name() const { return name_; }
  std::uint64_t fire_count() const { return fires_; }
  vm::VirtualMachine& machine() { return vm_; }

 protected:
  const std::vector<AsyncEventHandler*>& handlers() const { return handlers_; }

 private:
  vm::VirtualMachine& vm_;
  std::string name_;
  std::vector<AsyncEventHandler*> handlers_;
  std::uint64_t fires_ = 0;
};

}  // namespace tsf::rtsj
