// Random real-time system generation — the paper's fr.umlv.randomGenerator
// package (§6.1), with the same seven parameters:
//
//   "taskDensity, the average number of aperiodic events per server period;
//    averageCost, the average cost of aperiodic events;
//    stdDeviation, the standard deviation of the aperiodic-events' costs;
//    serverCapacity; serverPeriod; nbGeneration; seed."
//
// Event counts per server period are Poisson(taskDensity) with uniform
// placement inside the period; costs are normal(averageCost, stdDeviation).
// The paper's cost floor is reproduced verbatim: "if a cost lower than
// 0.1 ms is generated, we set it to 0.1 ms. So the average cost has no
// longer the correct value" (§6.2.1) — switchable via `reproduce_cost_floor`.
// Costs are deliberately NOT clamped to the server capacity: events larger
// than the capacity are exactly the ones the theoretical (resumable) servers
// can serve but the RTSJ implementation cannot, a key driver of the paper's
// simulation-vs-execution served-ratio gap.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "model/spec.h"

namespace tsf::gen {

struct GeneratorParams {
  double task_density = 1.0;
  double average_cost_tu = 3.0;
  double std_deviation_tu = 0.0;
  common::Duration server_capacity = common::Duration::time_units(4);
  common::Duration server_period = common::Duration::time_units(6);
  std::size_t nb_generation = 10;
  std::uint64_t seed = 1983;

  // "We limit our simulations and executions on ten server periods" (§6.1).
  int horizon_periods = 10;

  model::ServerPolicy policy = model::ServerPolicy::kPolling;
  model::QueueDiscipline queue = model::QueueDiscipline::kFifoFirstFit;
  int server_priority = 30;
  bool reproduce_cost_floor = true;
  common::Duration cost_floor = common::Duration::ticks(100);  // 0.1 tu

  // Optional periodic background load (the tables use none; the scenario
  // and ablation benches add tasks here).
  std::vector<model::PeriodicTaskSpec> periodic_tasks;
};

class RandomSystemGenerator {
 public:
  explicit RandomSystemGenerator(GeneratorParams params);

  // nb_generation systems; deterministic in (params, seed).
  std::vector<model::SystemSpec> generate() const;

  // A single system from an explicit sub-stream (used by property tests).
  model::SystemSpec generate_one(common::Rng& rng, std::size_t index) const;

  const GeneratorParams& params() const { return params_; }

 private:
  GeneratorParams params_;
};

}  // namespace tsf::gen
