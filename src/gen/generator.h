// Random real-time system generation — the paper's fr.umlv.randomGenerator
// package (§6.1), with the same seven parameters:
//
//   "taskDensity, the average number of aperiodic events per server period;
//    averageCost, the average cost of aperiodic events;
//    stdDeviation, the standard deviation of the aperiodic-events' costs;
//    serverCapacity; serverPeriod; nbGeneration; seed."
//
// Event counts per server period are Poisson(taskDensity) with uniform
// placement inside the period; costs are normal(averageCost, stdDeviation).
// The paper's cost floor is reproduced verbatim: "if a cost lower than
// 0.1 ms is generated, we set it to 0.1 ms. So the average cost has no
// longer the correct value" (§6.2.1) — switchable via `reproduce_cost_floor`.
// Costs are deliberately NOT clamped to the server capacity: events larger
// than the capacity are exactly the ones the theoretical (resumable) servers
// can serve but the RTSJ implementation cannot, a key driver of the paper's
// simulation-vs-execution served-ratio gap.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "model/spec.h"

namespace tsf::gen {

struct GeneratorParams {
  double task_density = 1.0;
  double average_cost_tu = 3.0;
  double std_deviation_tu = 0.0;
  common::Duration server_capacity = common::Duration::time_units(4);
  common::Duration server_period = common::Duration::time_units(6);
  std::size_t nb_generation = 10;
  std::uint64_t seed = 1983;

  // "We limit our simulations and executions on ten server periods" (§6.1).
  int horizon_periods = 10;

  model::ServerPolicy policy = model::ServerPolicy::kPolling;
  model::QueueDiscipline queue = model::QueueDiscipline::kFifoFirstFit;
  int server_priority = 30;
  bool reproduce_cost_floor = true;
  common::Duration cost_floor = common::Duration::ticks(100);  // 0.1 tu

  // Optional periodic background load (the tables use none; the scenario
  // and ablation benches add tasks here).
  std::vector<model::PeriodicTaskSpec> periodic_tasks;
};

class RandomSystemGenerator {
 public:
  explicit RandomSystemGenerator(GeneratorParams params);

  // nb_generation systems; deterministic in (params, seed).
  std::vector<model::SystemSpec> generate() const;

  // A single system from an explicit sub-stream (used by property tests).
  model::SystemSpec generate_one(common::Rng& rng, std::size_t index) const;

  const GeneratorParams& params() const { return params_; }

 private:
  GeneratorParams params_;
};

// Multi-core synthesis for the partitioned runtime (tsf::mp): one UUniFast
// task set per core at a target per-core periodic utilization, plus an
// aperiodic stream whose density scales with the core count. Tasks are left
// unpinned — hitting the per-core target is the partitioner's job; the
// generator only guarantees that a load of exactly that shape exists.
struct MpGeneratorParams {
  int cores = 4;
  // Target periodic utilization per core, *excluding* the server replica
  // (capacity/period is added on every core by the partitioner).
  double per_core_utilization = 0.4;
  std::size_t tasks_per_core = 4;
  common::Duration period_min = common::Duration::time_units(10);
  common::Duration period_max = common::Duration::time_units(100);

  // Aperiodic stream: events per server period PER CORE (so the offered
  // load grows with the machine, the way front-end traffic would).
  double task_density = 1.0;
  double average_cost_tu = 1.0;
  double std_deviation_tu = 0.0;
  common::Duration server_capacity = common::Duration::time_units(2);
  common::Duration server_period = common::Duration::time_units(6);
  model::ServerPolicy policy = model::ServerPolicy::kPolling;
  model::QueueDiscipline queue = model::QueueDiscipline::kFifoFirstFit;
  int horizon_periods = 10;
  std::uint64_t seed = 1983;
  bool reproduce_cost_floor = true;
  common::Duration cost_floor = common::Duration::ticks(100);  // 0.1 tu
};

// Deterministic in params. Priorities: rate-monotonic over the whole task
// set (1..N), server replicas above every task.
model::SystemSpec generate_mp_system(const MpGeneratorParams& params);

}  // namespace tsf::gen
