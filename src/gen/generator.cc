#include "gen/generator.h"

#include <algorithm>
#include <string>

#include "common/diag.h"
#include "gen/taskset.h"

namespace tsf::gen {

using common::Duration;
using common::TimePoint;

RandomSystemGenerator::RandomSystemGenerator(GeneratorParams params)
    : params_(std::move(params)) {
  TSF_ASSERT(params_.task_density >= 0.0, "negative task density");
  TSF_ASSERT(params_.server_capacity > Duration::zero() &&
                 params_.server_period >= params_.server_capacity,
             "invalid server parameters");
  TSF_ASSERT(params_.horizon_periods > 0, "horizon must be positive");
}

model::SystemSpec RandomSystemGenerator::generate_one(common::Rng& rng,
                                                      std::size_t index) const {
  model::SystemSpec spec;
  spec.name = "sys" + std::to_string(index);
  spec.periodic_tasks = params_.periodic_tasks;

  spec.server.policy = params_.policy;
  spec.server.capacity = params_.server_capacity;
  spec.server.period = params_.server_period;
  spec.server.priority = params_.server_priority;
  spec.server.queue = params_.queue;

  spec.horizon =
      TimePoint::origin() + params_.server_period * params_.horizon_periods;

  std::size_t job_id = 0;
  for (int k = 0; k < params_.horizon_periods; ++k) {
    const TimePoint window_start =
        TimePoint::origin() + params_.server_period * k;
    const std::uint64_t count = rng.poisson(params_.task_density);
    for (std::uint64_t j = 0; j < count; ++j) {
      model::AperiodicJobSpec job;
      job.name = "a" + std::to_string(job_id++);
      const std::int64_t offset = rng.uniform_i64(
          0, params_.server_period.count() - 1);
      job.release = window_start + Duration::ticks(offset);
      Duration cost = Duration::from_tu(
          rng.normal(params_.average_cost_tu, params_.std_deviation_tu));
      if (params_.reproduce_cost_floor && cost < params_.cost_floor) {
        cost = params_.cost_floor;
      }
      TSF_ASSERT(cost > Duration::zero(), "generated non-positive cost");
      job.cost = cost;
      spec.aperiodic_jobs.push_back(std::move(job));
    }
  }
  // Releases in time order (stable: generation order breaks ties).
  std::stable_sort(spec.aperiodic_jobs.begin(), spec.aperiodic_jobs.end(),
                   [](const model::AperiodicJobSpec& a,
                      const model::AperiodicJobSpec& b) {
                     return a.release < b.release;
                   });
  return spec;
}

std::vector<model::SystemSpec> RandomSystemGenerator::generate() const {
  std::vector<model::SystemSpec> out;
  out.reserve(params_.nb_generation);
  common::Rng master(params_.seed);
  for (std::size_t i = 0; i < params_.nb_generation; ++i) {
    // One independent sub-stream per system: system i is identical no
    // matter how many systems are generated before or after it.
    common::Rng sub = master.split();
    out.push_back(generate_one(sub, i));
  }
  return out;
}

model::SystemSpec generate_mp_system(const MpGeneratorParams& params) {
  TSF_ASSERT(params.cores >= 1, "need at least one core");
  TSF_ASSERT(params.per_core_utilization > 0.0 &&
                 params.per_core_utilization +
                         params.server_capacity.to_tu() /
                             params.server_period.to_tu() <=
                     1.0,
             "per-core utilization plus server replica must fit one core");
  TSF_ASSERT(params.tasks_per_core > 0, "need at least one task per core");

  model::SystemSpec spec;
  spec.name = "mp" + std::to_string(params.cores);
  spec.cores = params.cores;
  spec.server.policy = params.policy;
  spec.server.capacity = params.server_capacity;
  spec.server.period = params.server_period;
  spec.server.queue = params.queue;
  spec.horizon =
      TimePoint::origin() + params.server_period * params.horizon_periods;

  common::Rng master(params.seed);

  // One UUniFast task set per core, drawn from independent sub-streams so
  // core k's tasks don't change when the core count does.
  for (int c = 0; c < params.cores; ++c) {
    common::Rng sub = master.split();
    TaskSetParams ts;
    ts.count = params.tasks_per_core;
    ts.total_utilization = params.per_core_utilization;
    ts.period_min = params.period_min;
    ts.period_max = params.period_max;
    auto tasks = make_task_set(ts, sub);
    for (auto& t : tasks) spec.periodic_tasks.push_back(std::move(t));
  }
  // Unique names and global rate-monotonic priorities (1..N; the per-core
  // make_task_set calls each started from priority 1 and would collide).
  std::vector<std::size_t> order(spec.periodic_tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return spec.periodic_tasks[a].period > spec.periodic_tasks[b].period;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    spec.periodic_tasks[order[rank]].priority = static_cast<int>(rank) + 1;
  }
  for (std::size_t i = 0; i < spec.periodic_tasks.size(); ++i) {
    spec.periodic_tasks[i].name = "tau" + std::to_string(i);
  }
  // Server replicas preempt every periodic task, like the paper's PS.
  spec.server.priority = static_cast<int>(spec.periodic_tasks.size()) + 1;

  // Aperiodic stream: Poisson(density * cores) arrivals per server period,
  // placed uniformly inside the period, costs normal(mean, sd) with the
  // paper's 0.1 tu floor. Jobs stay unpinned: the partitioner spreads them
  // round-robin over the per-core server replicas.
  common::Rng arrivals = master.split();
  std::size_t job_id = 0;
  for (int k = 0; k < params.horizon_periods; ++k) {
    const TimePoint window_start =
        TimePoint::origin() + params.server_period * k;
    const std::uint64_t count = arrivals.poisson(
        params.task_density * static_cast<double>(params.cores));
    for (std::uint64_t j = 0; j < count; ++j) {
      model::AperiodicJobSpec job;
      job.name = "a" + std::to_string(job_id++);
      const std::int64_t offset =
          arrivals.uniform_i64(0, params.server_period.count() - 1);
      job.release = window_start + Duration::ticks(offset);
      Duration cost = Duration::from_tu(
          arrivals.normal(params.average_cost_tu, params.std_deviation_tu));
      if (params.reproduce_cost_floor && cost < params.cost_floor) {
        cost = params.cost_floor;
      }
      TSF_ASSERT(cost > Duration::zero(), "generated non-positive cost");
      job.cost = cost;
      spec.aperiodic_jobs.push_back(std::move(job));
    }
  }
  std::stable_sort(spec.aperiodic_jobs.begin(), spec.aperiodic_jobs.end(),
                   [](const model::AperiodicJobSpec& a,
                      const model::AperiodicJobSpec& b) {
                     return a.release < b.release;
                   });
  return spec;
}

}  // namespace tsf::gen
