#include "gen/generator.h"

#include <algorithm>
#include <string>

#include "common/diag.h"

namespace tsf::gen {

using common::Duration;
using common::TimePoint;

RandomSystemGenerator::RandomSystemGenerator(GeneratorParams params)
    : params_(std::move(params)) {
  TSF_ASSERT(params_.task_density >= 0.0, "negative task density");
  TSF_ASSERT(params_.server_capacity > Duration::zero() &&
                 params_.server_period >= params_.server_capacity,
             "invalid server parameters");
  TSF_ASSERT(params_.horizon_periods > 0, "horizon must be positive");
}

model::SystemSpec RandomSystemGenerator::generate_one(common::Rng& rng,
                                                      std::size_t index) const {
  model::SystemSpec spec;
  spec.name = "sys" + std::to_string(index);
  spec.periodic_tasks = params_.periodic_tasks;

  spec.server.policy = params_.policy;
  spec.server.capacity = params_.server_capacity;
  spec.server.period = params_.server_period;
  spec.server.priority = params_.server_priority;
  spec.server.queue = params_.queue;

  spec.horizon =
      TimePoint::origin() + params_.server_period * params_.horizon_periods;

  std::size_t job_id = 0;
  for (int k = 0; k < params_.horizon_periods; ++k) {
    const TimePoint window_start =
        TimePoint::origin() + params_.server_period * k;
    const std::uint64_t count = rng.poisson(params_.task_density);
    for (std::uint64_t j = 0; j < count; ++j) {
      model::AperiodicJobSpec job;
      job.name = "a" + std::to_string(job_id++);
      const std::int64_t offset = rng.uniform_i64(
          0, params_.server_period.count() - 1);
      job.release = window_start + Duration::ticks(offset);
      Duration cost = Duration::from_tu(
          rng.normal(params_.average_cost_tu, params_.std_deviation_tu));
      if (params_.reproduce_cost_floor && cost < params_.cost_floor) {
        cost = params_.cost_floor;
      }
      TSF_ASSERT(cost > Duration::zero(), "generated non-positive cost");
      job.cost = cost;
      spec.aperiodic_jobs.push_back(std::move(job));
    }
  }
  // Releases in time order (stable: generation order breaks ties).
  std::stable_sort(spec.aperiodic_jobs.begin(), spec.aperiodic_jobs.end(),
                   [](const model::AperiodicJobSpec& a,
                      const model::AperiodicJobSpec& b) {
                     return a.release < b.release;
                   });
  return spec;
}

std::vector<model::SystemSpec> RandomSystemGenerator::generate() const {
  std::vector<model::SystemSpec> out;
  out.reserve(params_.nb_generation);
  common::Rng master(params_.seed);
  for (std::size_t i = 0; i < params_.nb_generation; ++i) {
    // One independent sub-stream per system: system i is identical no
    // matter how many systems are generated before or after it.
    common::Rng sub = master.split();
    out.push_back(generate_one(sub, i));
  }
  return out;
}

}  // namespace tsf::gen
