// Periodic task-set generation for the extension benches: UUniFast
// utilisations (Bini & Buttazzo) with log-uniform periods and rate-monotonic
// priorities.
#pragma once

#include <vector>

#include "common/rng.h"
#include "model/spec.h"

namespace tsf::gen {

// n utilisations summing exactly to total_u, uniformly distributed over the
// simplex (UUniFast).
std::vector<double> uunifast(std::size_t n, double total_u, common::Rng& rng);

struct TaskSetParams {
  std::size_t count = 4;
  double total_utilization = 0.5;
  // Periods drawn log-uniformly from [min, max] and rounded to whole tu.
  common::Duration period_min = common::Duration::time_units(10);
  common::Duration period_max = common::Duration::time_units(100);
  // Priorities assigned rate-monotonically within [lowest, lowest+count).
  int lowest_priority = 1;
};

// A periodic task set with utilisations from UUniFast. Costs are rounded to
// ticks; tasks whose rounded cost is zero get one tick.
std::vector<model::PeriodicTaskSpec> make_task_set(const TaskSetParams& params,
                                                   common::Rng& rng);

}  // namespace tsf::gen
