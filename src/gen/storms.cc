#include "gen/storms.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/diag.h"
#include "common/rng.h"

namespace tsf::gen {

using common::Duration;
using common::TimePoint;

const char* to_string(StormShape shape) {
  switch (shape) {
    case StormShape::kRouterPacketStorm:
      return "router";
    case StormShape::kMarketOpenBurst:
      return "market";
    case StormShape::kCascadingFaultBurst:
      return "cascade";
  }
  return "?";
}

std::optional<StormShape> parse_storm_shape(std::string_view name) {
  if (name == "router") return StormShape::kRouterPacketStorm;
  if (name == "market") return StormShape::kMarketOpenBurst;
  if (name == "cascade") return StormShape::kCascadingFaultBurst;
  return std::nullopt;
}

namespace {

// One firm job; value and deadline carried explicitly, declared == cost.
void add_job(model::SystemSpec& spec, const std::string& name,
             TimePoint release, Duration cost, double value,
             Duration deadline) {
  TSF_ASSERT(cost > Duration::zero(), "storm job needs a positive cost");
  model::AperiodicJobSpec job;
  job.name = name;
  job.release = release;
  job.cost = cost;
  job.value = value;
  job.relative_deadline = deadline;
  spec.aperiodic_jobs.push_back(std::move(job));
}

void make_router(model::SystemSpec& spec, const StormParams& p,
                 common::Rng& rng, double budget_tu) {
  // Sustained saturation: the budget is spread evenly over every period but
  // the last (jobs released into the final period would be pure horizon
  // noise). Packets are small and mostly low-value; every eighth is a
  // control packet worth 8x its cost.
  const int windows = std::max(1, p.horizon_periods - 1);
  const double per_window = budget_tu / windows;
  std::size_t id = 0;
  for (int w = 0; w < windows; ++w) {
    const TimePoint start = TimePoint::origin() + p.server_period * w;
    double offered = 0.0;
    while (offered < per_window) {
      const Duration cost = Duration::from_tu(rng.uniform(0.3, 0.7));
      const bool control = id % 8 == 7;
      const double value = cost.to_tu() * (control ? 8.0 : 1.0);
      const Duration deadline =
          Duration::from_tu(rng.uniform(3.0, control ? 9.0 : 6.0));
      const std::int64_t offset =
          rng.uniform_i64(0, p.server_period.count() - 1);
      add_job(spec, "pkt" + std::to_string(id++),
              start + Duration::ticks(offset), cost, value, deadline);
      offered += cost.to_tu();
    }
  }
}

void make_market(model::SystemSpec& spec, const StormParams& p,
                 common::Rng& rng, double bandwidth_per_tu) {
  // A quiet prelude trickle, then the open: a burst of orders with
  // heavy-tailed values compressed into the first post-open period. The
  // burst budget is the overload factor times what the machine could serve
  // inside the longest order deadline — more would only pad the infeasible
  // tail.
  const TimePoint open = TimePoint::origin() + p.server_period * 2;
  std::size_t id = 0;
  for (int w = 0; w < 2; ++w) {
    const TimePoint start = TimePoint::origin() + p.server_period * w;
    for (int j = 0; j < 2; ++j) {
      const Duration cost = Duration::from_tu(rng.uniform(0.3, 0.6));
      const std::int64_t offset =
          rng.uniform_i64(0, p.server_period.count() - 1);
      add_job(spec, "bg" + std::to_string(id++),
              start + Duration::ticks(offset), cost, cost.to_tu(),
              Duration::from_tu(9.0));
    }
  }
  const double max_deadline_tu = p.server_period.to_tu() * 3.0;
  const double budget_tu =
      p.overload_factor * bandwidth_per_tu * max_deadline_tu;
  double offered = 0.0;
  std::size_t ord = 0;
  while (offered < budget_tu) {
    const Duration cost = Duration::from_tu(rng.uniform(0.4, 1.2));
    // Heavy tail: density 1, 2, 4, 8 or 16 times cost.
    const double density =
        static_cast<double>(std::uint64_t{1} << rng.uniform_u64(5));
    const Duration deadline =
        Duration::from_tu(rng.uniform(max_deadline_tu / 3.0, max_deadline_tu));
    const std::int64_t offset = rng.uniform_i64(0, p.server_period.count() - 1);
    add_job(spec, "ord" + std::to_string(ord++),
            open + Duration::ticks(offset), cost, cost.to_tu() * density,
            deadline);
    offered += cost.to_tu();
  }
}

void make_cascade(model::SystemSpec& spec, const StormParams& p,
                  common::Rng& rng, double budget_tu) {
  // Four waves, two periods apart. The leading edge is the symptom storm:
  // every affected component floods cheap low-value alarms (weight 8 of
  // 15). Diagnosis then escalates — each following wave is half the size
  // but twice the value density, ending in the rare root-cause alarms
  // (weight 1, density 8). FIFO service drowns in the early noise exactly
  // when the valuable tail arrives; shedding the backlog is what frees
  // capacity for it. Each wave spreads over one full server period so the
  // release-rate window sees a sustained spike, not a single tick.
  constexpr int kWaves = 4;
  constexpr double kWeightSum = 1.0 + 2.0 + 4.0 + 8.0;
  std::size_t id = 0;
  for (int w = 0; w < kWaves; ++w) {
    const TimePoint start = TimePoint::origin() + p.server_period * (1 + 2 * w);
    const double wave_budget =
        budget_tu * static_cast<double>(8 >> w) / kWeightSum;
    const double mean_cost = 0.6;
    const double density = static_cast<double>(1 << w);
    const Duration deadline =
        Duration::from_tu(p.server_period.to_tu() * 2.0);
    double offered = 0.0;
    while (offered < wave_budget) {
      const Duration cost = Duration::from_tu(
          std::max(0.1, rng.uniform(mean_cost * 0.7, mean_cost * 1.3)));
      const std::int64_t offset =
          rng.uniform_i64(0, p.server_period.count() - 1);
      add_job(spec, "alrm" + std::to_string(id++),
              start + Duration::ticks(offset), cost, cost.to_tu() * density,
              deadline);
      offered += cost.to_tu();
    }
  }
}

}  // namespace

model::SystemSpec make_storm(const StormParams& params) {
  TSF_ASSERT(params.cores >= 2, "a storm needs a multi-core machine");
  TSF_ASSERT(params.overload_factor > 0.0,
             "overload_factor must be positive");
  TSF_ASSERT(!params.server_capacity.is_zero() &&
                 !params.server_period.is_zero(),
             "storm server needs a positive capacity and period");
  TSF_ASSERT(params.horizon_periods >= 4, "storms need room to develop");

  model::SystemSpec spec;
  spec.name = std::string("storm-") + to_string(params.shape);
  spec.cores = params.cores;
  spec.server.policy = model::ServerPolicy::kPolling;
  spec.server.capacity = params.server_capacity;
  spec.server.period = params.server_period;
  spec.server.priority = 30;
  spec.horizon =
      TimePoint::origin() + params.server_period * params.horizon_periods;

  common::Rng rng(params.seed);
  // Service bandwidth: what all serving cores together retire per tu.
  const double bandwidth_per_tu = static_cast<double>(params.cores) *
                                  params.server_capacity.to_tu() /
                                  params.server_period.to_tu();
  const double budget_tu = params.overload_factor * bandwidth_per_tu *
                           params.server_period.to_tu() *
                           params.horizon_periods;
  switch (params.shape) {
    case StormShape::kRouterPacketStorm:
      make_router(spec, params, rng, budget_tu);
      break;
    case StormShape::kMarketOpenBurst:
      make_market(spec, params, rng, bandwidth_per_tu);
      break;
    case StormShape::kCascadingFaultBurst:
      make_cascade(spec, params, rng, budget_tu);
      break;
  }
  // Release order (ties by name) keeps downstream spec-order iteration
  // aligned with time, like the random generator's streams.
  std::stable_sort(spec.aperiodic_jobs.begin(), spec.aperiodic_jobs.end(),
                   [](const model::AperiodicJobSpec& a,
                      const model::AperiodicJobSpec& b) {
                     if (a.release != b.release) return a.release < b.release;
                     return a.name < b.name;
                   });
  return spec;
}

}  // namespace tsf::gen
