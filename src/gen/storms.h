// Overload storm synthesis — workloads that deliberately offer the serving
// cores more firm (deadline + value) aperiodic work than their server
// replicas can possibly serve, so the overload policies ([run] overload =
// off|shed|dover) have something real to disagree about. Three shapes:
//
//  * kRouterPacketStorm — sustained saturation: every server period of the
//    storm window releases a dense batch of small packets, most cheap and
//    low-value, a few high-value control packets mixed in. The policy
//    question is per-period triage under a persistent overload.
//
//  * kMarketOpenBurst — one spike: a quiet prelude, then at the open a
//    burst of heavy-tailed-value orders compressed into a single server
//    period. The policy question is what to keep from a backlog that
//    arrived almost at once and cannot all meet its deadlines.
//
//  * kCascadingFaultBurst — escalating waves: the fault's leading edge is
//    a broad storm of cheap low-value symptom alarms; diagnosis escalates
//    through waves that are each half the size but twice the value
//    density, ending in the rare root-cause alarms. The policy question is
//    keeping capacity free for the valuable tail while the noise is
//    already queued in front of it.
//
// Every generated job is firm: it carries a relative deadline and an
// explicit value, declared cost equals true cost (overload is about too
// much honest work, not lying about it), and jobs are unpinned so the
// partitioner spreads them round-robin over the serving cores. Generation
// is deterministic in (params, seed) via common::Rng.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/time.h"
#include "model/spec.h"

namespace tsf::gen {

enum class StormShape {
  kRouterPacketStorm,
  kMarketOpenBurst,
  kCascadingFaultBurst,
};

// "router" | "market" | "cascade".
const char* to_string(StormShape shape);
std::optional<StormShape> parse_storm_shape(std::string_view name);

struct StormParams {
  StormShape shape = StormShape::kRouterPacketStorm;
  std::uint64_t seed = 2007;
  int cores = 2;
  // Offered firm load as a multiple of the machine's total service
  // bandwidth (cores * capacity / period) over the storm window. 1.0 is
  // saturation; the default is a storm no policy can fully serve.
  double overload_factor = 2.5;
  common::Duration server_capacity = common::Duration::time_units(2);
  common::Duration server_period = common::Duration::time_units(6);
  int horizon_periods = 10;
};

// One storm system: per-core polling server replicas (placed by the
// partitioner), no periodic background load, and the shape's firm aperiodic
// stream. spec.cores = params.cores.
model::SystemSpec make_storm(const StormParams& params);

}  // namespace tsf::gen
