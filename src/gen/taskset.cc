#include "gen/taskset.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/diag.h"

namespace tsf::gen {

using common::Duration;

std::vector<double> uunifast(std::size_t n, double total_u,
                             common::Rng& rng) {
  TSF_ASSERT(n > 0, "uunifast needs at least one task");
  TSF_ASSERT(total_u > 0.0, "uunifast needs positive utilisation");
  std::vector<double> u(n);
  double sum = total_u;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.next_double(),
                       1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

std::vector<model::PeriodicTaskSpec> make_task_set(const TaskSetParams& params,
                                                   common::Rng& rng) {
  const auto utils = uunifast(params.count, params.total_utilization, rng);
  std::vector<model::PeriodicTaskSpec> tasks;
  tasks.reserve(params.count);
  const double log_min = std::log(params.period_min.to_tu());
  const double log_max = std::log(params.period_max.to_tu());
  for (std::size_t i = 0; i < params.count; ++i) {
    model::PeriodicTaskSpec t;
    t.name = "tau" + std::to_string(i);
    const double period_tu =
        std::exp(rng.uniform(log_min, log_max));
    t.period = Duration::time_units(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(period_tu)));
    t.cost = common::max(Duration::ticks(1),
                         Duration::from_tu(utils[i] * t.period.to_tu()));
    tasks.push_back(std::move(t));
  }
  // Rate-monotonic priorities: shorter period, higher priority.
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks[a].period > tasks[b].period;
                   });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    tasks[order[rank]].priority =
        params.lowest_priority + static_cast<int>(rank);
  }
  return tasks;
}

}  // namespace tsf::gen
