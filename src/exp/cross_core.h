// Cross-core communication interfaces between per-core execution worlds.
//
// The partitioned runtime (tsf::mp) advances one VirtualMachine per core in
// deterministic lock-step epochs; cross-core traffic rides those epoch
// boundaries. This header holds the vocabulary shared by both sides of that
// boundary: the per-core *port* a handler posts into (implemented by
// mp::ChannelFabric), and the per-core *endpoint* the fabric delivers into
// (implemented by exp::ExecSystem). Keeping the interfaces here — below the
// mp layer — lets the exec runner stay ignorant of mailboxes, epochs and
// routing while the fabric stays ignorant of servers, fibers and timers.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/time.h"
#include "model/spec.h"

namespace tsf::exp {

// A job handed across cores by the migration channel, the global ready pool
// or the semi-partitioned work stealer: enough of the spec to rebuild a
// servable handler on the receiving core. `actual_cost` already includes any
// execution-time jitter (applied once, deterministically, when the run is
// set up — not per delivery attempt).
struct MigratedJob {
  std::string name;
  common::Duration declared_cost = common::Duration::zero();
  common::Duration actual_cost = common::Duration::zero();
  // Propagated fires target: a migrated job may itself fire another job's
  // event on completion.
  std::string fires;
  // Scheduling value (ready-pool / steal ordering); zero means "use the
  // declared cost", mirroring AperiodicJobSpec::effective_value().
  double value = 0.0;
  // Firm deadline relative to release (zero = soft job, never shed). Travels
  // with the job so the receiving core's overload policy keeps honoring it.
  common::Duration relative_deadline = common::Duration::zero();

  double effective_value() const {
    return value == 0.0 ? declared_cost.to_tu() : value;
  }
};

// The shared ordering key of the global ready pool and the steal chooser:
// `a` is scheduled before `b` iff it has the higher value, breaking ties by
// earlier release and then by name. Deliberately independent of spec
// declaration order, which keeps the declaration-order-invariance
// determinism property true under the global/semi-partitioned policies.
inline bool schedules_before(double value_a, common::TimePoint release_a,
                             const std::string& name_a, double value_b,
                             common::TimePoint release_b,
                             const std::string& name_b) {
  if (value_a != value_b) return value_a > value_b;
  if (release_a != release_b) return release_a < release_b;
  return name_a < name_b;
}

// A pending request removed from a core's queue by the work stealer:
// the job identity plus its original release instant, preserved so the
// outcome on the thief core keeps the true response time (and so
// mp::merge_results can deduplicate by (job, release) against the home
// core's bookkeeping).
struct StolenJob {
  MigratedJob job;
  common::TimePoint release = common::TimePoint::never();
};

// One core's outbound side of the channel fabric. A handler that completes a
// job with a `fires` target posts here; delivery happens at a later epoch
// boundary, never synchronously.
class CrossCorePort {
 public:
  virtual ~CrossCorePort() = default;
  // Posts a fire of `job`'s event (resolved to its core by the fabric's
  // routing table) at virtual instant `now`.
  virtual void fire_remote(const std::string& job, common::TimePoint now) = 0;
};

// One core's inbound side: the fabric calls these while every VM is paused
// at an epoch boundary, so the effects (releases, server wake-ups) are
// processed when the core's VM resumes — deterministically at the boundary
// instant.
class CoreEndpoint {
 public:
  virtual ~CoreEndpoint() = default;
  // Fires the local event of `job`. Returns false when this core hosts no
  // such event (the fabric counts the message as undeliverable).
  //
  // Every mutating endpoint hook below is TSF_BARRIER_ONLY: the fabric and
  // the boundary policies (sched_policy, rebalance, overload) may only call
  // in while all VMs are paused at an epoch boundary. tsf_lint enforces
  // that no TSF_WORKER_PHASE code can reach them.
  TSF_BARRIER_ONLY
  virtual bool deliver_fire(const std::string& job) = 0;
  // Instantiates a migrated job on this core (handler + event bound to the
  // local server) and releases it immediately.
  TSF_BARRIER_ONLY
  virtual void deliver_migrated(const MigratedJob& job) = 0;
  // Whether this core has an aperiodic server (migration targets only
  // serving cores).
  virtual bool serves_aperiodics() const = 0;
  // Current pending-queue depth — the load signal behind least-loaded
  // migration, shared-pool dispatch and steal-victim selection.
  virtual std::size_t queue_depth() const = 0;

  // --- scheduling-policy hooks (mp::SchedPolicyEngine; defaults keep
  //     plain endpoints — tests, uniprocessor worlds — working unchanged)

  // Instantiates (or re-uses) `job`'s handler on this core and releases it
  // carrying the given original release instant. Unlike deliver_migrated the
  // outcome keeps the job's true release, so its response time includes the
  // time spent waiting in the shared pool or the victim's queue.
  TSF_BARRIER_ONLY
  virtual void deliver_job(const MigratedJob& job, common::TimePoint release) {
    (void)release;
    deliver_migrated(job);
  }
  // Removes and returns the highest-priority *stealable* pending request
  // (unpinned job, not currently being served), or nullopt when none exists.
  TSF_BARRIER_ONLY
  virtual std::optional<StolenJob> steal_pending() { return std::nullopt; }

  // --- load sensing / online admission (mp::Rebalancer; defaults keep
  //     plain endpoints working unchanged)

  // Read-only copies of every pending request steal_pending could take
  // right now (stealable and released strictly before the current instant),
  // in queue order. The rebalancer packs from this snapshot and then
  // removes, via steal_exact, only the requests that actually move — so an
  // unplaceable request is never popped and re-released.
  TSF_BARRIER_ONLY
  virtual std::vector<StolenJob> stealable_snapshot() const { return {}; }
  // Removes the specific pending request the snapshot promised (matched by
  // (job, release)), or nullopt if it is no longer there.
  TSF_BARRIER_ONLY
  virtual std::optional<StolenJob> steal_exact(const std::string& job,
                                               common::TimePoint release) {
    (void)job;
    (void)release;
    return std::nullopt;
  }

  // Cumulative declared cost of every aperiodic request released on this
  // core so far — the signal the online rebalancer integrates over its
  // sliding window to measure this core's offered aperiodic utilization.
  virtual common::Duration released_cost() const {
    return common::Duration::zero();
  }
  // Online admission of a periodic task the offline partitioner rejected
  // (rebalance = admit): builds the task's thread on this core and starts
  // it. The task's `start` must be at or after the core's current virtual
  // instant. Returns false when this endpoint cannot host periodic tasks.
  TSF_BARRIER_ONLY
  virtual bool admit_task(const model::PeriodicTaskSpec& task) {
    (void)task;
    return false;
  }

  // --- overload shedding (mp::OverloadGovernor; defaults keep plain
  //     endpoints working unchanged)

  // A pending firm request the governor may drop: identity plus the fields
  // its lowest-value-density-first ordering needs.
  struct ShedCandidate {
    std::string job;
    common::TimePoint release = common::TimePoint::never();
    common::Duration declared_cost = common::Duration::zero();
    double value = 0.0;
    common::Duration relative_deadline = common::Duration::zero();
  };
  // Read-only copies of every pending request the governor could shed right
  // now: firm (non-zero relative deadline), released strictly before the
  // current instant, and not currently being served. Queue order.
  TSF_BARRIER_ONLY
  virtual std::vector<ShedCandidate> shed_candidates() const { return {}; }
  // Drops the specific pending request the snapshot promised (matched by
  // (job, release)): removes it from the queue, records the shed outcome,
  // the kShed trace record and the ledger event. Returns false if the
  // request is no longer pending.
  TSF_BARRIER_ONLY
  virtual bool shed_exact(const std::string& job, common::TimePoint release) {
    (void)job;
    (void)release;
    return false;
  }
};

// One message's life, recorded by the fabric for the latency metrics: when
// it was posted, when (and whether) it was delivered, and between which
// cores. `from_core == kNoCore` marks a migration release (posted by the
// fabric itself at the job's release instant, not by a core).
struct ChannelDelivery {
  // kFire / kMigrate: PR 2 channel messages (posted → delivered is wire +
  // quantization latency). kPool: a shared-ready-pool dispatch under the
  // global policy (posted = the job's release; the gap is pool wait).
  // kSteal: a work-steal under the semi-partitioned policy (posted = the
  // job's original release on the victim core; the gap is the queue wait
  // before the steal).
  // kRebalance: a move decided by the online rebalancer (mp/rebalance.h) at
  // an epoch boundary. from_core != kNoCore: a pending job migrated to its
  // re-packed home, release-preserving like kSteal (posted = the original
  // release; the gap is the queue wait before the rebalance). from_core ==
  // kNoCore: the online admission of a periodic task the offline
  // partitioner had rejected (posted == delivered == the admission instant).
  // kShed / kTakeover: overload-policy ledger entries folded in from the
  // per-core ShedEvent records (from_core == to_core == the deciding core;
  // posted = the job's release, delivered = the decision instant).
  enum class Kind { kFire, kMigrate, kPool, kSteal, kRebalance, kShed,
                    kTakeover };
  static constexpr std::size_t kNoCore = static_cast<std::size_t>(-1);

  Kind kind = Kind::kFire;
  std::string job;  // target job name
  std::size_t from_core = kNoCore;
  std::size_t to_core = kNoCore;
  common::TimePoint posted = common::TimePoint::never();
  common::TimePoint delivered = common::TimePoint::never();
  bool ok = false;  // delivered to a live endpoint before the horizon

  common::Duration latency() const {
    return ok ? delivered - posted : common::Duration::infinite();
  }
};

}  // namespace tsf::exp
