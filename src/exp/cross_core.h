// Cross-core communication interfaces between per-core execution worlds.
//
// The partitioned runtime (tsf::mp) advances one VirtualMachine per core in
// deterministic lock-step epochs; cross-core traffic rides those epoch
// boundaries. This header holds the vocabulary shared by both sides of that
// boundary: the per-core *port* a handler posts into (implemented by
// mp::ChannelFabric), and the per-core *endpoint* the fabric delivers into
// (implemented by exp::ExecSystem). Keeping the interfaces here — below the
// mp layer — lets the exec runner stay ignorant of mailboxes, epochs and
// routing while the fabric stays ignorant of servers, fibers and timers.
#pragma once

#include <cstddef>
#include <string>

#include "common/time.h"

namespace tsf::exp {

// A job handed across cores by the migration channel: enough of the spec to
// rebuild a servable handler on the receiving core. `actual_cost` already
// includes any execution-time jitter (applied once, deterministically, when
// the run is set up — not per delivery attempt).
struct MigratedJob {
  std::string name;
  common::Duration declared_cost = common::Duration::zero();
  common::Duration actual_cost = common::Duration::zero();
  // Propagated fires target: a migrated job may itself fire another job's
  // event on completion.
  std::string fires;
};

// One core's outbound side of the channel fabric. A handler that completes a
// job with a `fires` target posts here; delivery happens at a later epoch
// boundary, never synchronously.
class CrossCorePort {
 public:
  virtual ~CrossCorePort() = default;
  // Posts a fire of `job`'s event (resolved to its core by the fabric's
  // routing table) at virtual instant `now`.
  virtual void fire_remote(const std::string& job, common::TimePoint now) = 0;
};

// One core's inbound side: the fabric calls these while every VM is paused
// at an epoch boundary, so the effects (releases, server wake-ups) are
// processed when the core's VM resumes — deterministically at the boundary
// instant.
class CoreEndpoint {
 public:
  virtual ~CoreEndpoint() = default;
  // Fires the local event of `job`. Returns false when this core hosts no
  // such event (the fabric counts the message as undeliverable).
  virtual bool deliver_fire(const std::string& job) = 0;
  // Instantiates a migrated job on this core (handler + event bound to the
  // local server) and releases it immediately.
  virtual void deliver_migrated(const MigratedJob& job) = 0;
  // Whether this core has an aperiodic server (migration targets only
  // serving cores).
  virtual bool serves_aperiodics() const = 0;
  // Current pending-queue depth — the load signal behind least-loaded
  // migration.
  virtual std::size_t queue_depth() const = 0;
};

// One message's life, recorded by the fabric for the latency metrics: when
// it was posted, when (and whether) it was delivered, and between which
// cores. `from_core == kNoCore` marks a migration release (posted by the
// fabric itself at the job's release instant, not by a core).
struct ChannelDelivery {
  enum class Kind { kFire, kMigrate };
  static constexpr std::size_t kNoCore = static_cast<std::size_t>(-1);

  Kind kind = Kind::kFire;
  std::string job;  // target job name
  std::size_t from_core = kNoCore;
  std::size_t to_core = kNoCore;
  common::TimePoint posted = common::TimePoint::never();
  common::TimePoint delivered = common::TimePoint::never();
  bool ok = false;  // delivered to a live endpoint before the horizon

  common::Duration latency() const {
    return ok ? delivered - posted : common::Duration::infinite();
  }
};

}  // namespace tsf::exp
